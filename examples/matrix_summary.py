#!/usr/bin/env python
"""Summarize the full evaluation matrix at quick scale.

Runs the Figures 14-20 / Section 6.8 pipelines at a reduced scale and
prints the geomean reduction factors the paper headlines — a compact way
to sanity-check the whole evaluation in one go.

Run:  python examples/matrix_summary.py   (takes several minutes)
"""
import time
from repro.experiments.common import Settings, geomean
from repro.experiments.latency_matrix import run, reduction_vs
from repro.experiments import fig15_breakdown, fig18_throughput, \
    fig19_sensitivity, fig20_synthetic, sec68_iso_area

S = Settings(n_servers=1, duration_s=0.025)
APPS = ("Text", "SGraph", "HomeT", "CPost", "UrlShort")
t0 = time.time()
matrix = run(loads=(5000, 10000, 15000), apps=APPS, settings=S)
print("== MATRIX ==")
for load in (5000, 10000, 15000):
    sc_t = reduction_vs(matrix, "p99_ns", "ServerClass", load, APPS)
    so_t = reduction_vs(matrix, "p99_ns", "ScaleOut", load, APPS)
    sc_a = reduction_vs(matrix, "mean_ns", "ServerClass", load, APPS)
    so_a = reduction_vs(matrix, "mean_ns", "ScaleOut", load, APPS)
    print(f"load={load} tail SC={sc_t:.1f} SO={so_t:.1f} avg SC={sc_a:.1f} SO={so_a:.1f}")
import numpy as np
for sys_ in ("uManycore", "ScaleOut", "ServerClass"):
    vals = [matrix[(sys_, a, l)].summary.tail_to_average
            for a in APPS for l in (5000, 10000, 15000)]
    print(f"t2a {sys_}: {float(np.mean(vals)):.2f}")
print("matrix wall", round(time.time()-t0))

print("== FIG15 ==")
r15 = fig15_breakdown.run(rps=15000, apps=("Text", "SGraph", "CPost", "UrlShort"), settings=S)
from repro.systems.configs import ablation_ladder
for step in [c.name for c in ablation_ladder()]:
    red = geomean([r15[("ScaleOut", a)] / r15[(step, a)]
                   for a in ("Text", "SGraph", "CPost", "UrlShort")])
    print(f"{step}: {red:.2f}x")

print("== FIG19 ==")
r19 = fig19_sensitivity.run(rps=15000, apps=("HomeT", "UrlShort", "Text"), settings=S)
from repro.experiments.fig19_sensitivity import SHAPES
for app in ("HomeT", "UrlShort", "Text"):
    base = r19[(SHAPES[0], app)]
    print(app, " ".join(f"{r19[(s, app)]/base:.2f}" for s in SHAPES))

print("== FIG20 ==")
r20 = fig20_synthetic.run(loads=(5000, 15000), settings=S)
sc, so = [], []
for d in ("exponential", "lognormal", "bimodal"):
    for l in (5000, 15000):
        sc.append(r20[("ServerClass", d, l)] / r20[("uManycore", d, l)])
        so.append(r20[("ScaleOut", d, l)] / r20[("uManycore", d, l)])
print(f"avg tail reduction: SC={geomean(sc):.1f}x SO={geomean(so):.1f}x")

print("== SEC68 ==")
r68 = sec68_iso_area.run(apps=("Text", "CPost"), loads=(5000, 15000), settings=S)
ratios = [r68[("ServerClass-128", a, l)] / r68[("uManycore", a, l)]
          for a in ("Text", "CPost") for l in (5000, 15000)]
print(f"SC128/uM tail avg: {geomean(ratios):.1f}x")

print("== FIG18 ==")
r18 = fig18_throughput.run(apps=("Text", "UrlShort"),
                           settings=Settings(n_servers=1, duration_s=0.015))
for a in ("Text", "UrlShort"):
    um = r18[("uManycore", a)]
    print(f"{a}: uM={um/1000:.0f}K vsSC={um/r18[('ServerClass', a)]:.1f}x "
          f"vsSO={um/r18[('ScaleOut', a)]:.1f}x")
print("total wall", round(time.time()-t0))
