#!/usr/bin/env python
"""Reproduce the Section 3 characterization on your own machine.

Walks through the paper's pre-design analysis: the Alibaba-statistics
workload shape (Figures 2/4/5), handler footprint sharing (Figure 8) and
cache fit (Figure 9) — the evidence that motivated villages, hardware
queues and hardware context switching.

Run:  python examples/characterize_workload.py
"""

import numpy as np

from repro.cpu.hierarchy import UMANYCORE_HIERARCHY, CacheHierarchy
from repro.cpu.traces import MICRO_PROFILES, data_address_trace
from repro.mem.footprint import FootprintModel, sharing
from repro.workloads.alibaba import AlibabaTraceGenerator


def workload_shape() -> None:
    gen = AlibabaTraceGenerator(np.random.default_rng(0))
    s = gen.summary(n=100_000)
    print("workload shape (Alibaba-trace statistics):")
    print(f"  median server load:      {s['rps_median']:6.0f} RPS "
          f"(bursts: {s['rps_frac_ge_1500']:.0%} of seconds over 1500)")
    print(f"  median CPU utilization:  {s['util_median']:6.1%} per request")
    print(f"  median RPCs per request: {s['rpc_median']:6.1f}")
    print(f"  requests under 1 ms:     {s['dur_frac_lt_1ms']:6.1%}")
    print("  -> requests are short, bursty, and mostly *blocked*.\n")


def footprint_sharing() -> None:
    model = FootprintModel(np.random.default_rng(1))
    a, b = model.handler_footprint(), model.handler_footprint()
    rep = sharing(a, b)
    print("footprint sharing between two handlers of one instance:")
    for k, v in rep.as_dict().items():
        print(f"  {k}: {v:.0%} common")
    print("  -> read-mostly state is shared; a per-cluster memory pool "
          "serves it.\n")


def cache_fit() -> None:
    rng = np.random.default_rng(2)
    h = CacheHierarchy(UMANYCORE_HIERARCHY)
    addrs = data_address_trace(MICRO_PROFILES[0], 60_000, rng)
    for a in addrs:                       # warm-up
        h.access_data(int(a))
    for c in (h.l1d, h.l2, h.dtlb):
        c.reset_stats()
    for a in addrs:
        h.access_data(int(a))
    rates = h.hit_rates()
    print("cache fit of a handler working set (uManycore hierarchy):")
    print(f"  L1D hit rate:   {rates['L1D']:.1%}")
    print(f"  L1 DTLB:        {rates['L1DTLB']:.1%}")
    print(f"  shared L2:      {rates['L2']:.1%} (L1-filtered)")
    print("  -> two cache levels suffice; spend the area on cores.")


if __name__ == "__main__":
    workload_shape()
    footprint_sharing()
    cache_fit()
