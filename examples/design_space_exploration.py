#!/usr/bin/env python
"""Explore uManycore design points: village size and context-switch cost.

Uses the config system to answer two what-if questions the paper raises:

1. How does village size (cores per hardware queue) affect tail latency
   for a call-heavy vs a call-free service?  (Figure 19's observation.)
2. How expensive could the hardware context switch get before it starts
   hurting?  (Figure 6's 128-256-cycle design target.)

Run:  python examples/design_space_exploration.py
"""

import dataclasses

from repro.systems import UMANYCORE, simulate, umanycore_variant
from repro.workloads import SOCIAL_NETWORK_APPS


def village_size_study() -> None:
    print("1) village size vs app style (P99 us at 15K RPS)\n")
    shapes = ((8, 4, 32), (32, 1, 32))
    print(f"{'app':>10s}" + "".join(f"{'x'.join(map(str, s)):>12s}"
                                    for s in shapes))
    for app_name in ("HomeT", "UrlShort"):
        app = SOCIAL_NETWORK_APPS[app_name]
        row = f"{app_name:>10s}"
        for shape in shapes:
            r = simulate(umanycore_variant(*shape), app,
                         rps_per_server=15_000, n_servers=1,
                         duration_s=0.02, seed=2)
            row += f"{r.p99_ns/1e3:12.0f}"
        print(row)
    print("\ncall-heavy services (HomeT) like many small villages; "
          "call-free ones (UrlShort) tolerate big villages.\n")


def context_switch_budget() -> None:
    print("2) hardware context-switch budget (P99 us at 15K RPS, Text)\n")
    app = SOCIAL_NETWORK_APPS["Text"]
    print(f"{'CS cycles':>10s} {'P99 (us)':>10s}")
    for cycles in (64, 128, 256, 1024, 4096):
        cfg = dataclasses.replace(
            UMANYCORE, name=f"uM-cs{cycles}",
            cs=UMANYCORE.cs.scaled(cycles))
        r = simulate(cfg, app, rps_per_server=15_000, n_servers=1,
                     duration_s=0.02, seed=2)
        print(f"{cycles:10d} {r.p99_ns/1e3:10.0f}")
    print("\nanything in the 128-256-cycle range is safely flat "
          "(the paper's hardware target).")


if __name__ == "__main__":
    village_size_study()
    context_switch_budget()
