#!/usr/bin/env python
"""Quickstart: simulate one SocialNetwork app on all three architectures.

Builds a small cluster (2 servers) for each of uManycore, ScaleOut and
ServerClass, drives the Text request type at 15K RPS per server, and
prints mean/P99 latency — the paper's headline comparison in miniature.

Run:  python examples/quickstart.py
"""

from repro.systems import SCALEOUT, SERVERCLASS, UMANYCORE, simulate
from repro.workloads import SOCIAL_NETWORK_APPS


def main() -> None:
    app = SOCIAL_NETWORK_APPS["Text"]
    print(f"app: {app.name} (root service {app.root!r}, "
          f"{app.mean_rpc_count():.1f} RPCs per request)\n")
    results = {}
    for config in (UMANYCORE, SCALEOUT, SERVERCLASS):
        result = simulate(config, app, rps_per_server=15_000,
                          n_servers=2, duration_s=0.03, seed=1)
        results[config.name] = result
        s = result.summary
        print(f"{config.name:12s}  mean = {s.mean/1e3:8.1f} us   "
              f"P99 = {s.p99/1e3:9.1f} us   "
              f"({result.completed} requests)")

    um = results["uManycore"].summary
    print("\ntail-latency reduction with uManycore:")
    for name in ("ScaleOut", "ServerClass"):
        print(f"  vs {name}: {results[name].summary.p99 / um.p99:.1f}x")


if __name__ == "__main__":
    main()
