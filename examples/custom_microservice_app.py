#!/usr/bin/env python
"""Define a custom microservice application and find its scaling limit.

Shows the workload-definition API: build your own service graph (an
e-commerce checkout flow here), then sweep the offered load on uManycore
and watch the tail rise as the service's villages saturate.

Run:  python examples/custom_microservice_app.py
"""

from repro.systems import UMANYCORE, simulate
from repro.workloads import STORAGE, AppSpec, CallSpec, ServiceSpec

K = 1000.0


def build_checkout_app() -> AppSpec:
    """A 4-tier checkout flow: gateway -> {inventory, payment} -> ledger."""
    services = {
        "ledger": ServiceSpec("ledger", segment_instructions=1200 * K,
                              calls=(CallSpec(STORAGE),)),
        "inventory": ServiceSpec("inventory", segment_instructions=1500 * K,
                                 calls=(CallSpec(STORAGE),)),
        "payment": ServiceSpec("payment", segment_instructions=2000 * K,
                               calls=(CallSpec("ledger"),
                                      CallSpec(STORAGE))),
        "gateway": ServiceSpec("gateway", segment_instructions=1000 * K,
                               calls=(CallSpec("inventory"),
                                      CallSpec("payment"))),
    }
    return AppSpec(name="Checkout", root="gateway", services=services)


def main() -> None:
    app = build_checkout_app()
    print(f"app {app.name}: {app.mean_rpc_count():.0f} RPCs/request, "
          f"{app.mean_instructions()/1e6:.1f}M instructions/request\n")
    print(f"{'load (RPS)':>12s} {'mean (us)':>12s} {'P99 (us)':>12s} "
          f"{'P99/mean':>9s}")
    for rps in (2_000, 20_000, 60_000, 120_000, 200_000):
        r = simulate(UMANYCORE, app, rps_per_server=rps, n_servers=1,
                     duration_s=0.02, seed=3)
        s = r.summary
        print(f"{rps:12,d} {s.mean/1e3:12.1f} {s.p99/1e3:12.1f} "
              f"{s.tail_to_average:9.2f}")
    print("\nThe knee in P99 marks where the gateway villages saturate.")


if __name__ == "__main__":
    main()
