#!/usr/bin/env python
"""Check that relative links in the repo's Markdown files resolve.

Scans every tracked ``*.md`` file for inline links and flags those
whose target does not exist on disk.  External links (``http(s)://``,
``mailto:``) and pure in-page anchors (``#...``) are skipped; an
anchor suffix on a file link (``DESIGN.md#calibration``) is checked
for file existence only.

Usage::

    python scripts/check_markdown_links.py [root]

Exits non-zero when any link is broken, printing one line per failure.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline Markdown links: [text](target).  Images share the syntax.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Fenced code blocks are stripped before scanning (``](...)`` inside
#: example output is not a link).
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)

SKIP_PREFIXES = ("http://", "https://", "mailto:")

#: Directories never scanned for Markdown files.
SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules",
             ".ruff_cache", "build", "dist"}

#: Files excluded from the check: SNIPPETS.md quotes third-party
#: material verbatim, including links to assets that live elsewhere.
SKIP_FILES = {"SNIPPETS.md"}


def iter_markdown(root: Path):
    """Yield every Markdown file under ``root``, skipping junk dirs."""
    for path in sorted(root.rglob("*.md")):
        if path.name in SKIP_FILES:
            continue
        if not SKIP_DIRS.intersection(path.relative_to(root).parts):
            yield path


def check_file(path: Path) -> list:
    """Return ``(line, target)`` tuples for broken links in one file.

    Args:
        path: The Markdown file to scan.
    """
    text = FENCE_RE.sub(lambda m: "\n" * m.group(0).count("\n"), path.read_text())
    broken = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                continue
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            if not (path.parent / rel).exists():
                broken.append((lineno, target))
    return broken


def main(argv=None) -> int:
    """Scan the tree and report broken links.

    Returns:
        0 when every relative link resolves, 1 otherwise.
    """
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    checked = failures = 0
    for md in iter_markdown(root):
        checked += 1
        for lineno, target in check_file(md):
            failures += 1
            print(f"{md.relative_to(root)}:{lineno}: broken link -> {target}")
    print(f"checked {checked} markdown files, {failures} broken links")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
