"""Benchmark: regenerate Figure 20 (synthetic distributions) at reduced
scale."""

from repro.experiments.common import Settings
from repro.experiments.fig20_synthetic import run


def test_fig20_synthetic(benchmark):
    results = benchmark.pedantic(
        lambda: run(loads=(15000,),
                    settings=Settings(n_servers=1, duration_s=0.012)),
        rounds=1, iterations=1)
    # Shape: uManycore has the lowest tail for every service-time
    # distribution.
    for dist in ("exponential", "lognormal", "bimodal"):
        um = results[("uManycore", dist, 15000)]
        assert results[("ServerClass", dist, 15000)] > um
        assert results[("ScaleOut", dist, 15000)] > 0.8 * um
