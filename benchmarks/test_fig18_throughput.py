"""Benchmark: regenerate Figure 18 (max QoS throughput) at reduced scale."""

from repro.experiments.common import Settings
from repro.experiments.fig18_throughput import max_throughput
from repro.systems.configs import SERVERCLASS, UMANYCORE
from repro.workloads.deathstar import social_network_app


def test_fig18_throughput(benchmark):
    app = social_network_app("Text")
    settings = Settings(n_servers=1, duration_s=0.01)

    def run():
        return {
            cfg.name: max_throughput(cfg, app, settings, low=2000.0,
                                     high=120_000.0, iterations=4)
            for cfg in (UMANYCORE, SERVERCLASS)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Shape: uManycore sustains far more load within QoS than ServerClass.
    assert results["uManycore"] > 3.0 * results["ServerClass"]
