"""Benchmarks: regenerate Figures 2, 4, 5 (Alibaba-statistics CDFs)."""

import numpy as np

from repro.experiments.fig02_rps_cdf import run as run_fig02
from repro.experiments.fig04_cpu_util import run as run_fig04
from repro.experiments.fig05_rpc_count import run as run_fig05


def test_fig02_rps_cdf(benchmark):
    r = benchmark(run_fig02, n=100_000)
    samples = r["samples"]
    assert 450 < np.median(samples) < 550          # paper: ~500 RPS
    assert 0.10 < (samples >= 1000).mean() < 0.25  # paper: ~20%
    assert (r["cdf"][1:] >= r["cdf"][:-1]).all()   # a CDF is monotone


def test_fig04_cpu_util_cdf(benchmark):
    r = benchmark(run_fig04, n=100_000)
    samples = r["samples"]
    assert 0.12 < np.median(samples) < 0.16        # paper: ~14%
    assert np.percentile(samples, 99) < 0.65       # paper: 99% < 60%


def test_fig05_rpc_count_cdf(benchmark):
    r = benchmark(run_fig05, n=100_000)
    samples = r["samples"]
    assert 3.5 <= np.median(samples) <= 5.0        # paper: ~4.2
    assert 0.02 < (samples >= 16).mean() < 0.09    # paper: ~5%
