"""Benchmark: regenerate Figure 7 (ICN contention impact)."""

from repro.experiments.common import Settings
from repro.experiments.fig07_icn_contention import run


def test_fig07_icn_contention(benchmark):
    results = benchmark.pedantic(
        lambda: run(loads=(5000, 50_000),
                    settings=Settings(n_servers=1, duration_s=0.03)),
        rounds=1, iterations=1)
    # Shape: contention is mild at 5K and severe at 50K for both fabrics.
    assert results[("mesh", 50_000)] > 2.0
    assert results[("fattree", 50_000)] > 2.0
    assert results[("mesh", 5000)] < 2.0
    assert results[("fattree", 5000)] < 2.0
