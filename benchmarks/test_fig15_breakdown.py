"""Benchmark: regenerate Figure 15 (technique breakdown) at reduced scale."""

from repro.experiments.fig15_breakdown import run
from repro.experiments.common import geomean


def test_fig15_breakdown(benchmark, quick_settings):
    apps = ("Text", "CPost")
    results = benchmark.pedantic(
        lambda: run(rps=15_000, apps=apps, settings=quick_settings),
        rounds=1, iterations=1)

    def reduction(step):
        return geomean([results[("ScaleOut", a)] / results[(step, a)]
                        for a in apps])

    # Shape: cumulative application of the techniques keeps reducing the
    # tail, and the full stack is a significant win over ScaleOut.
    full = reduction("+HW Context Switch")
    assert full > 1.5
    assert full >= reduction("+Villages") * 0.9
