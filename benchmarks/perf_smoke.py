#!/usr/bin/env python
"""Perf smoke for the fault-injection/resilience layer.

Runs one fixed mid-load simulation twice — clean, then with a canned
fault schedule + resilience policy — and records wall-time and p99 into
``BENCH_faults.json`` (``--update-baseline``) or checks the measurement
against the committed baseline (``--check``, the CI mode).

Absolute wall-times are host-dependent, so the committed gating number
is the *overhead ratio* (faulted wall / clean wall measured on the same
host in the same process): CI fails when the measured ratio regresses
more than ``--tolerance`` (default 25%) over the baseline ratio.  The
absolute numbers are still recorded for eyeballing, and p99 is checked
exactly — it is deterministic, so any drift is a behaviour change.

A second leg benchmarks the ``repro.hybrid`` fast path at a longer
horizon into ``BENCH_hybrid.json``: the hybrid/detailed wall ratio must
stay above the committed ``min_speedup`` floor (a same-host ratio, like
the overhead gate), its deterministic outputs are checked exactly, and
``hybrid_equivalence`` enforces the byte-identity contracts (tol=0 and
faulted runs must replay the plain runs event-for-event).

A third leg benchmarks the event-engine hot path at the fig18 mid-sweep
point (~75K RPS) into ``BENCH_engine.json``: deterministic outputs
(events processed, completions, p99) are checked exactly, the measured
events/sec must clear a deliberately loose ``min_events_per_sec`` floor
(a catastrophic-regression tripwire that tolerates slow CI hosts — the
honest per-host throughput lives in the recorded baseline), and
``engine_equivalence`` pins the calendar-queue backend byte-identical
to the default heapq backend.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py --check
    PYTHONPATH=src python benchmarks/perf_smoke.py --update-baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import FaultSchedule, ResilienceConfig  # noqa: E402
from repro.systems.cluster import ClusterSimulation       # noqa: E402
from repro.systems.configs import UMANYCORE               # noqa: E402
from repro.workloads.deathstar import social_network_app  # noqa: E402

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_faults.json"
HYBRID_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_hybrid.json"
ENGINE_BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"

#: Fixed mid-load point: reduced-scale uManycore at ~60% of saturation.
CONFIG = replace(UMANYCORE, n_cores=128, n_clusters=8)
RPS = 15_000.0
DURATION_S = 0.008
SEED = 11
REPEATS = 3

#: The hybrid speedup leg needs a run that outlives detection +
#: calibration by a healthy margin, so it gets its own duration.
HYBRID_DURATION_S = 0.15

#: Engine leg: the fig18 mid-sweep load the hot-path rebuild was
#: profiled at (~75K RPS on the reduced-scale config above).
ENGINE_RPS = 75_000.0
ENGINE_DURATION_S = 0.008


def _schedule() -> FaultSchedule:
    """A canned outage mix exercising every injection path."""
    return FaultSchedule(detection_ns=100_000.0) \
        .fail_village(0, 1, at_ns=2e6, recover_at_ns=5e6) \
        .degrade_village(0, 3, at_ns=1e6, factor=4.0, recover_at_ns=6e6) \
        .fail_nic(0, 5, "rnic", at_ns=3e6, recover_at_ns=4e6)


def _run(faulted: bool):
    sim = ClusterSimulation(CONFIG, social_network_app("Text"),
                            rps_per_server=RPS, n_servers=1,
                            duration_s=DURATION_S, seed=SEED)
    if faulted:
        sim.install_faults(_schedule(), ResilienceConfig(
            timeout_ns=600_000.0, max_retries=3,
            hedge_delay_ns=1_000_000.0))
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result


def measure() -> dict:
    """Best-of-N wall for each mode (p99 is identical across repeats)."""
    clean_walls, faulted_walls = [], []
    clean = faulted = None
    for __ in range(REPEATS):
        wall, clean = _run(faulted=False)
        clean_walls.append(wall)
        wall, faulted = _run(faulted=True)
        faulted_walls.append(wall)
    clean_wall = min(clean_walls)
    faulted_wall = min(faulted_walls)
    return {
        "clean_wall_s": round(clean_wall, 4),
        "faulted_wall_s": round(faulted_wall, 4),
        "overhead_ratio": round(faulted_wall / clean_wall, 4),
        "clean_p99_us": round(clean.p99_ns / 1e3, 3),
        "faulted_p99_us": round(faulted.p99_ns / 1e3, 3),
        "faulted_completed": faulted.completed,
        "faulted_retries": int(faulted.fault_stats["rpc_retries"]),
    }


def runner_equivalence() -> list:
    """Check the repro.runner path against direct simulation.

    Runs the benchmark's clean and faulted points through a jobs=2
    :class:`~repro.runner.ParallelRunner` twice (cold, then warm from
    the cache it just filled) and compares every ``as_dict`` field with
    direct in-process runs.

    Returns:
        A list of failure strings (empty when equivalent).
    """
    import tempfile

    from repro.runner import ParallelRunner, ResultCache, SweepPoint

    app = social_network_app("Text")
    points = [
        SweepPoint(config=CONFIG, app=app, rps=RPS, n_servers=1,
                   duration_s=DURATION_S, seed=SEED),
        SweepPoint(config=CONFIG, app=app, rps=RPS, n_servers=1,
                   duration_s=DURATION_S, seed=SEED, faults=_schedule(),
                   resilience=ResilienceConfig(
                       timeout_ns=600_000.0, max_retries=3,
                       hedge_delay_ns=1_000_000.0)),
    ]
    direct = [_run(faulted=False)[1].as_dict(),
              _run(faulted=True)[1].as_dict()]
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        for label in ("parallel", "warm-cache"):
            results = ParallelRunner(jobs=2, cache=cache).run(points)
            if [r.as_dict() for r in results] != direct:
                failures.append(f"runner {label} results diverge from "
                                f"direct simulation")
    return failures


def policy_equivalence() -> list:
    """Check that naming the default scheduling policies explicitly is
    byte-identical to leaving them implicit (the repro.sched refactor's
    zero-behaviour-change contract).

    Returns:
        A list of failure strings (empty when equivalent).
    """
    explicit = replace(CONFIG, dispatch="rr", rq_policy="fcfs",
                       steal_policy="first", core_bypass=False)
    failures = []
    for faulted in (False, True):
        sim = ClusterSimulation(explicit, social_network_app("Text"),
                                rps_per_server=RPS, n_servers=1,
                                duration_s=DURATION_S, seed=SEED)
        if faulted:
            sim.install_faults(_schedule(), ResilienceConfig(
                timeout_ns=600_000.0, max_retries=3,
                hedge_delay_ns=1_000_000.0))
        got = sim.run().as_dict()
        want = _run(faulted=faulted)[1].as_dict()
        if got != want:
            mode = "faulted" if faulted else "clean"
            failures.append(f"explicit default policies diverge from "
                            f"implicit defaults ({mode} run)")
    return failures


def dc_equivalence() -> list:
    """Check the datacenter tier's zero-behaviour-change contract.

    A ``DcConfig(lb="rr")`` run at one server routes every arrival
    through the front-end LB, but the arrival stream, dispatch order and
    timing must replay the plain single-server path byte-for-byte — the
    only allowed difference is the extra ``dc`` stats block.

    Returns:
        A list of failure strings (empty when equivalent).
    """
    from repro.dc import DcConfig

    sim = ClusterSimulation(CONFIG, social_network_app("Text"),
                            rps_per_server=RPS, n_servers=1,
                            duration_s=DURATION_S, seed=SEED,
                            dc=DcConfig(lb="rr"))
    got = sim.run().as_dict()
    failures = []
    if got.pop("dc", None) is None:
        failures.append("dc-mode run is missing its dc stats block")
    if got != _run(faulted=False)[1].as_dict():
        failures.append("dc-mode (lb=rr, 1 server) diverges from the "
                        "plain single-server path")
    return failures


def _hybrid_run(duration_s: float, hybrid):
    sim = ClusterSimulation(CONFIG, social_network_app("Text"),
                            rps_per_server=RPS, n_servers=1,
                            duration_s=duration_s, seed=SEED,
                            hybrid=hybrid)
    t0 = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - t0, result


def hybrid_equivalence() -> list:
    """Check the hybrid fast path's byte-identity contracts.

    * ``tol=0`` can never converge, so an armed-but-idle hybrid run
      must reproduce the plain run exactly (modulo its stats block).
    * A faulted run must never commit (the structural guard sees the
      injector) and must reproduce the faulted plain run exactly.

    Returns:
        A list of failure strings (empty when equivalent).
    """
    from repro.hybrid import HybridConfig

    failures = []
    got = _hybrid_run(DURATION_S, HybridConfig(tol=0.0))[1].as_dict()
    stats = got.pop("hybrid", None)
    if stats is None:
        failures.append("tol=0 hybrid run is missing its stats block")
    elif stats["commits"] or stats["roots_elided"]:
        failures.append("tol=0 hybrid run committed/elided "
                        "(the never-converge contract is broken)")
    if got != _run(faulted=False)[1].as_dict():
        failures.append("tol=0 hybrid run diverges from the plain run")

    sim = ClusterSimulation(CONFIG, social_network_app("Text"),
                            rps_per_server=RPS, n_servers=1,
                            duration_s=DURATION_S, seed=SEED,
                            hybrid=HybridConfig())
    sim.install_faults(_schedule(), ResilienceConfig(
        timeout_ns=600_000.0, max_retries=3,
        hedge_delay_ns=1_000_000.0))
    got = sim.run().as_dict()
    stats = got.pop("hybrid", None)
    if stats is None:
        failures.append("faulted hybrid run is missing its stats block")
    elif stats["commits"] or stats["roots_elided"]:
        failures.append("faulted hybrid run committed past the "
                        "structural guard")
    if got != _run(faulted=True)[1].as_dict():
        failures.append("faulted hybrid run diverges from the faulted "
                        "plain run")
    return failures


def measure_hybrid() -> dict:
    """Best-of-N walls for the hybrid speedup leg (default tolerance,
    longer horizon); deterministic fields come from the last run."""
    from repro.hybrid import HybridConfig

    det_walls, hyb_walls = [], []
    det = hyb = None
    for __ in range(REPEATS):
        wall, det = _hybrid_run(HYBRID_DURATION_S, None)
        det_walls.append(wall)
        wall, hyb = _hybrid_run(HYBRID_DURATION_S, HybridConfig())
        hyb_walls.append(wall)
    stats = hyb.hybrid_stats
    return {
        "detailed_wall_s": round(min(det_walls), 4),
        "hybrid_wall_s": round(min(hyb_walls), 4),
        "speedup": round(min(det_walls) / min(hyb_walls), 4),
        "detailed_p99_us": round(det.p99_ns / 1e3, 3),
        "hybrid_p99_us": round(hyb.p99_ns / 1e3, 3),
        "roots_elided": stats["roots_elided"],
        "calls_elided": stats["calls_elided"],
        "aborts": stats["aborts"],
    }


def _engine_run(backend=None):
    """One engine-leg run, optionally forcing a queue backend.

    The backend is selected through ``REPRO_SIM_QUEUE`` (the same knob
    users have), which only matters while the :class:`Engine` is
    constructed; the env var is restored before the run starts.

    Returns:
        ``(wall_s, events_processed, queue_backend, result)``.
    """
    import os

    old = os.environ.pop("REPRO_SIM_QUEUE", None)
    if backend is not None:
        os.environ["REPRO_SIM_QUEUE"] = backend
    try:
        sim = ClusterSimulation(CONFIG, social_network_app("Text"),
                                rps_per_server=ENGINE_RPS, n_servers=1,
                                duration_s=ENGINE_DURATION_S, seed=SEED)
    finally:
        if backend is not None:
            del os.environ["REPRO_SIM_QUEUE"]
        if old is not None:
            os.environ["REPRO_SIM_QUEUE"] = old
    t0 = time.perf_counter()
    result = sim.run()
    wall = time.perf_counter() - t0
    return wall, sim.engine.events_processed, sim.engine.queue_backend, result


def measure_engine() -> dict:
    """Best-of-N wall for the engine leg on the default backend."""
    walls = []
    events = backend = result = None
    for __ in range(REPEATS):
        wall, events, backend, result = _engine_run()
        walls.append(wall)
    wall = min(walls)
    return {
        "wall_s": round(wall, 4),
        "events_processed": events,
        "events_per_sec": int(events / wall),
        "queue_backend": backend,
        "completed": result.completed,
        "p99_us": round(result.p99_ns / 1e3, 3),
    }


def engine_equivalence() -> list:
    """Check the calendar queue replays the heapq run byte-for-byte.

    The two backends share the ``(time, seq)`` total order contract, so
    every output — event count included — must match exactly.

    Returns:
        A list of failure strings (empty when equivalent).
    """
    failures = []
    __, h_events, h_backend, h_res = _engine_run()
    __, c_events, c_backend, c_res = _engine_run("calendar")
    if h_backend != "heapq":
        failures.append(f"default queue backend is {h_backend!r}, "
                        f"expected heapq")
    if c_backend != "calendar":
        failures.append("REPRO_SIM_QUEUE=calendar did not select the "
                        "calendar backend")
    if c_events != h_events or c_res.as_dict() != h_res.as_dict():
        failures.append("calendar-queue run diverges from the heapq run "
                        "(event-order byte-identity broken)")
    return failures


def main() -> int:
    """Entry point; returns the process exit code."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = ap.add_mutually_exclusive_group(required=True)
    mode.add_argument("--check", action="store_true",
                      help="compare against the committed baseline (CI)")
    mode.add_argument("--update-baseline", action="store_true",
                      help="rewrite BENCH_faults.json with this host's "
                           "measurement")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed overhead-ratio regression (default 0.25)")
    args = ap.parse_args()

    measured = measure()
    print("measured:", json.dumps(measured, indent=2))
    hybrid = measure_hybrid()
    print("hybrid:", json.dumps(hybrid, indent=2))
    engine = measure_engine()
    print("engine:", json.dumps(engine, indent=2))

    if args.update_baseline:
        doc = {
            "schema": 1,
            "bench": "faults_mid_load_smoke",
            "workload": {"system": CONFIG.name, "n_cores": CONFIG.n_cores,
                         "rps_per_server": RPS, "duration_s": DURATION_S,
                         "seed": SEED, "repeats": REPEATS},
            "baseline": measured,
            "tolerance": {"overhead_ratio_regression": args.tolerance},
        }
        BASELINE_PATH.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        hdoc = {
            "schema": 1,
            "bench": "hybrid_speedup_smoke",
            "workload": {"system": CONFIG.name, "n_cores": CONFIG.n_cores,
                         "rps_per_server": RPS,
                         "duration_s": HYBRID_DURATION_S,
                         "seed": SEED, "repeats": REPEATS},
            "baseline": hybrid,
            "gate": {"min_speedup": 3.0},
        }
        HYBRID_BASELINE_PATH.write_text(json.dumps(hdoc, indent=2) + "\n")
        print(f"hybrid baseline written to {HYBRID_BASELINE_PATH}")
        edoc = {
            "schema": 1,
            "bench": "engine_hot_path_smoke",
            "workload": {"system": CONFIG.name, "n_cores": CONFIG.n_cores,
                         "rps_per_server": ENGINE_RPS,
                         "duration_s": ENGINE_DURATION_S,
                         "seed": SEED, "repeats": REPEATS},
            "baseline": engine,
            # Floor = a third of the baseline host's throughput: loose
            # enough for slow CI runners, tight enough to trip on a
            # hot-path regression that re-introduces per-event Python
            # overhead wholesale.
            "gate": {"min_events_per_sec": engine["events_per_sec"] // 3},
            "reference": {
                "pre_rebuild_events_per_sec": 116_000,
                "note": "same point at the PR base commit on the "
                        "baseline host (see docs/PERFORMANCE.md)",
            },
        }
        ENGINE_BASELINE_PATH.write_text(json.dumps(edoc, indent=2) + "\n")
        print(f"engine baseline written to {ENGINE_BASELINE_PATH}")
        return 0

    doc = json.loads(BASELINE_PATH.read_text())
    base = doc["baseline"]
    tol = doc["tolerance"]["overhead_ratio_regression"]
    failures = (runner_equivalence() + policy_equivalence()
                + dc_equivalence() + hybrid_equivalence())
    limit = base["overhead_ratio"] * (1.0 + tol)
    if measured["overhead_ratio"] > limit:
        failures.append(
            f"fault-mode wall-time overhead regressed: "
            f"{measured['overhead_ratio']:.3f}x > "
            f"{limit:.3f}x allowed ({base['overhead_ratio']:.3f}x "
            f"baseline + {tol:.0%})")
    for key in ("clean_p99_us", "faulted_p99_us", "faulted_completed",
                "faulted_retries"):
        if measured[key] != base[key]:
            failures.append(f"deterministic output drifted: {key} "
                            f"{measured[key]} != baseline {base[key]}")
    hdoc = json.loads(HYBRID_BASELINE_PATH.read_text())
    hbase = hdoc["baseline"]
    min_speedup = hdoc["gate"]["min_speedup"]
    if hybrid["speedup"] < min_speedup:
        failures.append(
            f"hybrid fast-path speedup regressed: "
            f"{hybrid['speedup']:.2f}x < {min_speedup:.1f}x required")
    for key in ("detailed_p99_us", "hybrid_p99_us", "roots_elided",
                "calls_elided", "aborts"):
        if hybrid[key] != hbase[key]:
            failures.append(f"deterministic hybrid output drifted: {key} "
                            f"{hybrid[key]} != baseline {hbase[key]}")
    edoc = json.loads(ENGINE_BASELINE_PATH.read_text())
    ebase = edoc["baseline"]
    failures += engine_equivalence()
    floor = edoc["gate"]["min_events_per_sec"]
    if engine["events_per_sec"] < floor:
        failures.append(
            f"engine throughput collapsed: {engine['events_per_sec']} "
            f"ev/s < {floor} ev/s floor "
            f"(baseline host: {ebase['events_per_sec']} ev/s)")
    for key in ("events_processed", "completed", "p99_us",
                "queue_backend"):
        if engine[key] != ebase[key]:
            failures.append(f"deterministic engine output drifted: {key} "
                            f"{engine[key]} != baseline {ebase[key]}")
    if failures:
        print("PERF SMOKE FAILED")
        for f in failures:
            print(" -", f)
        return 1
    print(f"perf smoke OK (overhead {measured['overhead_ratio']:.3f}x, "
          f"limit {limit:.3f}x; hybrid {hybrid['speedup']:.2f}x, "
          f"floor {min_speedup:.1f}x; engine "
          f"{engine['events_per_sec']} ev/s, floor {floor} ev/s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
