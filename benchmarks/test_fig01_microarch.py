"""Benchmark: regenerate Figure 1 (microarch optimizations mono vs micro)."""

from repro.experiments.fig01_microarch import run


def test_fig01_microarch(benchmark):
    results = benchmark.pedantic(
        lambda: run(n_accesses=40_000, n_branches=20_000),
        rounds=1, iterations=1)
    # Shape: every optimization helps monoliths more than microservices,
    # and the microservice gains are marginal.  (At this reduced trace
    # length the learning prefetchers are training-limited, so only the
    # ordering is asserted for them; full-scale values are recorded in
    # EXPERIMENTS.md.)
    for name, r in results.items():
        assert r["mono"] >= r["micro"] - 0.02, name
    assert results["D-Prefetcher"]["mono"] >= 1.0
    assert results["I-Prefetcher"]["mono"] > 1.03
    assert results["Branch Predictor"]["mono"] > 1.05
    assert results["D-Prefetcher"]["micro"] < 1.10
    assert results["Branch Predictor"]["micro"] < 1.10
