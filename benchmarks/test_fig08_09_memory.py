"""Benchmarks: regenerate Figure 8 (footprint sharing) and Figure 9
(cache/TLB hit rates)."""

from repro.experiments.fig08_footprint import run as run_fig08
from repro.experiments.fig09_hit_rates import run as run_fig09


def test_fig08_footprint_sharing(benchmark):
    results = benchmark(run_fig08, n_handlers=10)
    # Paper: 78-99% of the footprint is common, at page and line
    # granularity, for data and instructions, in both comparisons.
    for group in ("Handler-Handler", "Handler-Init"):
        for bar, value in results[group].items():
            assert 0.70 <= value <= 1.0, (group, bar, value)


def test_fig09_hit_rates(benchmark):
    results = benchmark.pedantic(lambda: run_fig09(n_accesses=60_000),
                                 rounds=1, iterations=1)
    # Paper: L1 structures above 95% (the handler working set fits);
    # the L2 sees only the few L1 misses (the L1s act as filters), so no
    # assertion is made on its rate at this trace scale (see
    # EXPERIMENTS.md).
    assert results["data"]["L1TLB"] > 0.95
    assert results["data"]["L1Cache"] > 0.93
    assert results["instructions"]["L1TLB"] > 0.95
    assert results["instructions"]["L1Cache"] > 0.95
