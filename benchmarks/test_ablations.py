"""Ablation benchmarks for design choices DESIGN.md calls out.

These are not paper figures; they probe the design space around the
paper's choices: FCFS vs SRPT dequeue (Section 4.3's discussion), the
partitioned RQ_Map design (Section 4.3's "more advanced design"),
heterogeneous villages and core borrowing (Section 8), and arrival
burstiness (the Figure 2 motivation).
"""

import dataclasses

from repro.systems import UMANYCORE, simulate
from repro.systems.configs import heterogeneous_umanycore
from repro.workloads import SOCIAL_NETWORK_APPS, synthetic_app


def test_ablation_fcfs_vs_srpt(benchmark):
    """Section 4.3: 'SRPT is unlikely to improve much over FCFS' for
    same-service requests; with a bimodal synthetic it can matter more."""
    app = synthetic_app("bimodal", mean_service_us=120.0, blocking_calls=2)

    def run():
        out = {}
        for policy in ("fcfs", "srpt"):
            cfg = dataclasses.replace(UMANYCORE, name=f"uM-{policy}",
                                      rq_policy=policy)
            out[policy] = simulate(cfg, app, rps_per_server=40_000,
                                   n_servers=1, duration_s=0.012, seed=4)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = results["fcfs"].p99_ns / results["srpt"].p99_ns
    # SRPT should not make things dramatically worse, and the difference
    # stays modest — the paper's argument.
    assert 0.5 < ratio < 3.0


def test_ablation_bursty_vs_poisson(benchmark):
    """Figure 2's burstiness is why queues (and their hardware) matter."""
    app = SOCIAL_NETWORK_APPS["Text"]

    def run():
        return {
            kind: simulate(UMANYCORE, app, rps_per_server=15_000,
                           n_servers=1, duration_s=0.012, seed=5,
                           arrivals=kind)
            for kind in ("poisson", "bursty")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["bursty"].p99_ns > 0.8 * results["poisson"].p99_ns


def test_ablation_heterogeneous_villages(benchmark):
    """Section 8: big villages for leaf services should not hurt, and can
    help the leaf-service request type."""
    app = SOCIAL_NETWORK_APPS["UrlShort"]

    def run():
        return {
            "homogeneous": simulate(UMANYCORE, app, rps_per_server=10_000,
                                    n_servers=1, duration_s=0.012, seed=6),
            "heterogeneous": simulate(heterogeneous_umanycore(0.25), app,
                                      rps_per_server=10_000, n_servers=1,
                                      duration_s=0.012, seed=6),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = results["heterogeneous"].p99_ns / results["homogeneous"].p99_ns
    assert ratio < 1.6


def test_ablation_auto_scaling(benchmark):
    """Section 4.1: snapshot-booted instances absorb overload that would
    otherwise reject requests."""
    base = dataclasses.replace(UMANYCORE, name="uM-tiny", rq_capacity=4,
                               n_cores=64, cores_per_queue=8, n_clusters=8)
    app = SOCIAL_NETWORK_APPS["Text"]

    def run():
        return {
            "static": simulate(base, app, rps_per_server=60_000,
                               n_servers=1, duration_s=0.01, seed=7),
            "autoscale": simulate(
                dataclasses.replace(base, name="uM-tiny-as",
                                    auto_scale=True), app,
                rps_per_server=60_000, n_servers=1, duration_s=0.01,
                seed=7),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert results["autoscale"].rejected <= results["static"].rejected


def test_ablation_work_stealing(benchmark):
    """Work stealing across villages under random dispatch (Figure 3's
    remedy for per-core queues)."""
    base = dataclasses.replace(UMANYCORE, name="uM-rand",
                               dispatch="random")
    app = SOCIAL_NETWORK_APPS["SGraph"]

    def run():
        return {
            steal: simulate(dataclasses.replace(
                base, name=f"uM-steal{steal}", work_steal=steal), app,
                rps_per_server=30_000, n_servers=1, duration_s=0.01,
                seed=8)
            for steal in (False, True)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Stealing should not hurt badly under imbalance-prone dispatch.
    assert results[True].p99_ns < 2.0 * results[False].p99_ns
