"""Benchmarks: regenerate Figures 14/16/17 (the latency matrix) at
reduced scale."""

from repro.experiments.latency_matrix import reduction_vs, run


def test_fig14_16_17_latency_matrix(benchmark, quick_settings):
    apps = ("Text", "CPost", "UrlShort")
    matrix = benchmark.pedantic(
        lambda: run(loads=(5000, 15000), apps=apps,
                    settings=quick_settings),
        rounds=1, iterations=1)
    # Figure 14 shape: uManycore cuts the tail vs both baselines, more at
    # higher load.
    sc_15 = reduction_vs(matrix, "p99_ns", "ServerClass", 15000, apps)
    so_15 = reduction_vs(matrix, "p99_ns", "ScaleOut", 15000, apps)
    assert sc_15 > 2.0
    assert so_15 > 1.5
    # Figure 16 shape: average latency improves too, by less than the tail
    # at high load for the ServerClass comparison.
    sc_avg_15 = reduction_vs(matrix, "mean_ns", "ServerClass", 15000, apps)
    assert sc_avg_15 > 1.5
    # Figure 17 shape: uManycore's tail-to-average ratio is the smallest.
    for app in apps:
        um = matrix[("uManycore", app, 15000)].summary.tail_to_average
        sc = matrix[("ServerClass", app, 15000)].summary.tail_to_average
        assert um < sc * 1.8
