"""Shared fixtures/helpers for the per-figure benchmarks.

Each benchmark regenerates (a reduced-scale version of) one paper figure
or table and asserts its headline *shape*; pytest-benchmark reports the
time to regenerate it.  Full-scale regeneration is done by
``python -m repro.experiments.<figure>``.
"""

import pytest

from repro.experiments.common import Settings


@pytest.fixture(scope="session")
def quick_settings() -> Settings:
    """Reduced-scale settings so every benchmark finishes in seconds."""
    return Settings(n_servers=1, duration_s=0.02, seed=1)
