"""Benchmarks: Section 6.8 iso-area comparison and the Section 5
power/area table."""

from repro.experiments.common import Settings
from repro.experiments.power_area import run as run_power
from repro.experiments.sec68_iso_area import run as run_iso


def test_sec68_iso_area(benchmark):
    results = benchmark.pedantic(
        lambda: run_iso(apps=("Text",), loads=(15000,),
                        settings=Settings(n_servers=1, duration_s=0.02)),
        rounds=1, iterations=1)
    ratio = results[("ServerClass-128", "Text", 15000)] / \
        results[("uManycore", "Text", 15000)]
    # Shape: even at iso-area, ServerClass trails uManycore on the tail.
    assert ratio > 1.2


def test_power_area_table(benchmark):
    results = benchmark(run_power)
    assert results["iso"]["iso_power_cores"] == 40
    assert 0.35 < results["uManycore"]["per_core_w"] < 0.50
    assert 9.0 < results["ServerClass"]["per_core_w"] < 11.5
    assert results["ServerClass-128"]["power_w"] > \
        2.5 * results["uManycore"]["power_w"]
