"""Benchmark: regenerate Figure 19 (topology sensitivity) at reduced scale."""

from repro.experiments.fig19_sensitivity import SHAPES, run


def test_fig19_sensitivity(benchmark, quick_settings):
    apps = ("HomeT", "UrlShort")
    results = benchmark.pedantic(
        lambda: run(rps=15_000, apps=apps, settings=quick_settings),
        rounds=1, iterations=1)
    # Shape: all configurations are in the same ballpark (paper: ~15%;
    # allow 2x at this reduced scale), and the variants behave
    # differently per app style.
    for app in apps:
        base = results[(SHAPES[0], app)]
        for shape in SHAPES:
            assert results[(shape, app)] < 2.5 * base
