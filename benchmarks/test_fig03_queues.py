"""Benchmark: regenerate Figure 3 (tail vs queue granularity)."""

from repro.experiments.common import Settings
from repro.experiments.fig03_queues import run


def test_fig03_queue_granularity(benchmark):
    results = benchmark.pedantic(
        lambda: run(rps=50_000, compute_scale=15.0,
                    queue_counts=(1024, 128, 1),
                    settings=Settings(n_servers=1, duration_s=0.02)),
        rounds=1, iterations=1)
    best = results[(128, False)]["p99_us"]
    # Shape: the U-curve — both extremes are worse than the wide plateau.
    assert results[(1024, False)]["p99_us"] > 1.1 * best
    assert results[(1, False)]["p99_us"] > 1.3 * best
