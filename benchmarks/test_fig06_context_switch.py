"""Benchmark: regenerate Figure 6 (tail vs context-switch cost)."""

from repro.experiments.common import Settings
from repro.experiments.fig06_context_switch import run


def test_fig06_context_switch_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: run(loads=(50_000,), cs_cycles=(0, 256, 8192),
                    settings=Settings(n_servers=1, duration_s=0.03)),
        rounds=1, iterations=1)
    base = results[(0, 50_000)]
    # Shape: the hardware target (128-256 cycles) barely registers;
    # Linux-class costs blow the tail up at 50K RPS.
    assert results[(256, 50_000)] < 1.5 * base
    assert results[(8192, 50_000)] > 5.0 * base
