"""Tests for the invariant sanitizer (repro.check)."""

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.check import (
    CheckContext,
    CheckError,
    NULL_CHECK,
    check_span_tree,
)
from repro.systems.cluster import simulate
from repro.systems.configs import UMANYCORE
from repro.workloads.deathstar import SOCIAL_NETWORK_APPS

SMALL = replace(UMANYCORE, n_cores=128, n_clusters=8)


def run(check=None, tracer=None, seed=1, **kw):
    kw.setdefault("rps_per_server", 6000)
    kw.setdefault("n_servers", 1)
    kw.setdefault("duration_s", 0.004)
    return simulate(SMALL, SOCIAL_NETWORK_APPS["Text"], seed=seed,
                    check=check, tracer=tracer, **kw)


# ---------------------------------------------------------------- unit level

def test_null_check_is_disabled_and_inert():
    assert not NULL_CHECK.enabled
    NULL_CHECK.clock_advance(5.0, 1.0)          # no-op, never raises
    assert NULL_CHECK.finalize() == []


def test_violation_collection_and_ok():
    check = CheckContext(strict=False)
    assert check.ok
    check.violation("clock", "went backwards", where="engine", time_ns=3.0)
    assert not check.ok
    assert "clock" in str(check.violations[0])
    assert "engine" in str(check.violations[0])


def test_raise_if_violations_lists_each_one():
    check = CheckContext()
    check.violation("a", "first")
    check.violation("b", "second")
    with pytest.raises(CheckError) as err:
        check.raise_if_violations()
    assert "first" in str(err.value) and "second" in str(err.value)


def test_fail_fast_raises_on_first_violation():
    check = CheckContext(fail_fast=True)
    with pytest.raises(CheckError):
        check.violation("clock", "boom")


def test_clock_advance_flags_backwards_motion():
    check = CheckContext(strict=False)
    check.clock_advance(0.0, 10.0)
    assert check.ok
    check.clock_advance(10.0, 4.0)
    assert any(v.category == "clock" for v in check.violations)


def test_report_summarizes_both_outcomes():
    check = CheckContext(strict=False)
    check.clock_advance(0.0, 1.0)
    assert check.report().startswith("ok:")
    check.violation("x", "bad")
    assert check.report().startswith("FAIL")


# ------------------------------------------------------------- span checker

def _info(i, root=None, span_id=None, parent=None, start=0.0, end=10.0):
    return SimpleNamespace(index=i, root_index=root if root is not None
                           else i, span_id=span_id if span_id is not None
                           else i, parent_span_id=parent, service=f"s{i}",
                           start_ns=start, end_ns=end)


def _tracer(infos, spans=()):
    return SimpleNamespace(requests=list(infos), spans=list(spans),
                           enabled=True)


def test_span_tree_clean():
    parent = _info(0, start=0.0, end=100.0)
    child = _info(1, root=0, parent=0, start=10.0, end=90.0)
    assert check_span_tree(_tracer([parent, child])) == []


def test_span_tree_flags_unclosed_root():
    open_root = _info(0, end=None)
    vs = check_span_tree(_tracer([open_root]), require_closed=True)
    assert any("never" in v.message for v in vs)
    assert check_span_tree(_tracer([open_root]), require_closed=False) == []


def test_span_tree_flags_negative_duration_and_bad_parent():
    bad = _info(0, start=50.0, end=10.0)
    orphan = _info(1, root=0, parent=99, start=0.0, end=5.0)
    vs = check_span_tree(_tracer([bad, orphan]))
    messages = " | ".join(v.message for v in vs)
    assert "negative duration" in messages
    assert "unknown parent" in messages


def test_span_tree_strict_nesting_toggle():
    parent = _info(0, start=0.0, end=100.0)
    late = _info(1, root=0, parent=0, start=10.0, end=150.0)
    tr = _tracer([parent, late])
    assert any("outlives" in v.message for v in check_span_tree(tr))
    assert check_span_tree(tr, strict_nesting=False) == []


def test_span_tree_scans_non_request_spans():
    span = SimpleNamespace(span_id=7, category="compute", name="seg",
                           start_ns=20.0, end_ns=5.0)
    vs = check_span_tree(_tracer([], spans=[span]))
    assert any("negative duration" in v.message for v in vs)


# ------------------------------------------------------------- whole-system

def test_checked_clean_run_has_zero_violations():
    check = CheckContext(strict=False)
    run(check=check)
    assert check.ok, "\n".join(str(v) for v in check.violations)
    assert check.stats.checks > 1000
    assert check.stats.structural_scans > 0


def test_checked_traced_run_has_zero_violations():
    from repro.telemetry import Tracer

    check = CheckContext(strict=False)
    run(check=check, tracer=Tracer())
    assert check.ok, "\n".join(str(v) for v in check.violations)


def test_checked_faulted_run_has_zero_violations():
    from repro.check.harness import Trial, run_trial

    check = run_trial(Trial(seed=11, fault_rate=1000.0, trace=True))
    assert check.ok, "\n".join(str(v) for v in check.violations)


def test_checked_policy_run_has_zero_violations():
    """Work stealing, core bypass and non-FCFS ordering all on at once:
    the steal/bypass ledgers must balance under the sanitizer."""
    from repro.check.harness import Trial, run_trial

    check = run_trial(Trial(seed=11, rps=16_000.0, dispatch="least",
                            rq_policy="sjf", steal="maxload",
                            core_bypass=True))
    assert check.ok, "\n".join(str(v) for v in check.violations)
    assert check._bypasses_seen > 0      # the fast path actually fired


def test_checked_policy_faulted_run_has_zero_violations():
    from repro.check.harness import Trial, run_trial

    check = run_trial(Trial(seed=11, rps=16_000.0, fault_rate=1000.0,
                            dispatch="affinity", rq_policy="srpt",
                            steal="first", core_bypass=True))
    assert check.ok, "\n".join(str(v) for v in check.violations)


def test_steal_and_bypass_ledgers_catch_drift():
    """Village steal/bypass counters that drift from the observed hook
    events must be flagged at finalize."""
    from repro.systems.cluster import ClusterSimulation
    from repro.workloads.deathstar import SOCIAL_NETWORK_APPS as APPS

    check = CheckContext(strict=False)
    sim = ClusterSimulation(SMALL, APPS["Text"], rps_per_server=4000,
                            n_servers=1, duration_s=0.002, seed=1,
                            check=check)
    village = sim.servers[0].villages[0]
    village.steals += 1          # drift with no matching rq_steal hook
    village.bypasses += 1        # drift with no matching core_bypass hook
    sim.run()
    assert not check.ok
    messages = [v.message for v in check.violations]
    assert any("steal" in m for m in messages)
    assert any("bypass" in m for m in messages)


def test_check_does_not_perturb_the_simulation():
    """A checked run is byte-identical to an unchecked one."""
    plain = run().as_dict()
    checked = run(check=CheckContext(strict=True)).as_dict()
    assert plain == checked


def test_strict_check_raises_at_drain(monkeypatch):
    """A seeded violation surfaces as CheckError from sim.run()."""
    check = CheckContext(strict=True)
    original = CheckContext.finalize

    def poisoned(self, sim=None, drained=True):
        self.violation("test", "seeded failure")
        return original(self, sim, drained)

    monkeypatch.setattr(CheckContext, "finalize", poisoned)
    with pytest.raises(CheckError, match="seeded failure"):
        run(check=check)


def test_finalize_is_idempotent():
    check = CheckContext(strict=False)
    run(check=check)
    before = list(check.violations)
    assert check.finalize() == before
