"""Tests for the partitioned Request Queue (Section 4.3 advanced design)
and Section 8 core borrowing."""

import pytest

from repro.core import HARDWARE_CS, RequestQueue, RequestRecord, \
    SchedulerDomain, Village
from repro.core.request import RequestStatus
from repro.core.rq_map import PartitionedRequestQueue
from repro.sim import Engine


def rec(service, segments=None):
    return RequestRecord(app_name="app", service=service,
                         segments=segments or [1000.0],
                         on_complete=lambda r: None)


def make_prq(capacity=16, shares=None):
    return PartitionedRequestQueue(capacity,
                                   shares or {"a": 0.5, "b": 0.5})


def test_rq_map_reflects_shares():
    prq = PartitionedRequestQueue(64, {"a": 0.75, "b": 0.25})
    assert prq.rq_map["a"] == 48
    assert prq.rq_map["b"] == 16
    assert sum(prq.rq_map.values()) == 64


def test_enqueue_routes_by_service():
    prq = make_prq()
    ra, rb = rec("a"), rec("b")
    assert prq.enqueue(ra) and prq.enqueue(rb)
    assert prq.partition("a").occupancy == 1
    assert prq.partition("b").occupancy == 1
    assert prq.occupancy == 2


def test_per_service_dequeue_ignores_other_partitions():
    prq = make_prq()
    prq.enqueue(rec("b"))
    assert prq.dequeue("a") is None
    assert prq.dequeue("b") is not None


def test_unfiltered_dequeue_serves_globally_oldest():
    prq = make_prq()
    rb, ra = rec("b"), rec("a")
    prq.enqueue(rb)
    prq.enqueue(ra)
    assert prq.dequeue() is rb
    assert prq.dequeue() is ra


def test_partition_overflow_isolated():
    """One service flooding its partition cannot evict the other's slots."""
    prq = PartitionedRequestQueue(8, {"a": 0.5, "b": 0.5})
    for __ in range(4):
        assert prq.enqueue(rec("a"))
    assert not prq.enqueue(rec("a"))      # a's partition is full
    assert prq.rejected == 1
    assert prq.enqueue(rec("b"))          # b is unaffected
    assert not prq.is_full


def test_block_ready_complete_cycle():
    prq = make_prq()
    ra = rec("a", [100.0, 100.0])
    prq.enqueue(ra)
    got = prq.dequeue("a")
    prq.mark_blocked(got)
    assert not prq.has_ready("a")
    prq.mark_ready(got)
    assert prq.has_ready("a") and prq.has_ready()
    assert prq.dequeue("a") is got
    prq.complete(got)
    assert got.status is RequestStatus.FINISHED
    assert prq.occupancy == 0


def test_unknown_service_raises():
    prq = make_prq()
    with pytest.raises(KeyError):
        prq.enqueue(rec("ghost"))


def test_validation():
    with pytest.raises(ValueError):
        PartitionedRequestQueue(1, {"a": 0.5, "b": 0.5})
    with pytest.raises(ValueError):
        PartitionedRequestQueue(8, {})
    with pytest.raises(ValueError):
        PartitionedRequestQueue(8, {"a": 0.0})


# ------------------------------------------- non-FCFS dequeue policies

def test_uniform_srpt_global_dequeue_serves_shortest():
    from repro.sched import SRPT_POLICY

    prq = PartitionedRequestQueue(16, {"a": 0.5, "b": 0.5},
                                  policy=SRPT_POLICY)
    long_a = rec("a", [9000.0])
    short_b = rec("b", [10.0])
    prq.enqueue(long_a)
    prq.enqueue(short_b)
    # Unpartitioned dequeue compares policy keys across partitions: the
    # later-arriving but shorter request wins.
    assert prq.dequeue() is short_b
    assert prq.dequeue() is long_a


def test_per_partition_policy_override():
    from repro.sched import FCFS_POLICY, SRPT_POLICY

    prq = PartitionedRequestQueue(16, {"a": 0.5, "b": 0.5},
                                  policy=FCFS_POLICY,
                                  policies={"b": SRPT_POLICY})
    assert prq.partition("a").policy is FCFS_POLICY
    assert prq.partition("b").policy is SRPT_POLICY
    # Mixed policies: the unpartitioned path keeps global arrival order.
    assert prq._uniform_policy is None
    a1, b_long, b_short = rec("a"), rec("b", [9000.0]), rec("b", [10.0])
    prq.enqueue(b_long)
    prq.enqueue(a1)
    prq.enqueue(b_short)
    assert prq.dequeue("b") is b_short   # SRPT within the partition
    assert prq.dequeue() is b_long       # arrival order across partitions


def test_uniform_srpt_skips_blocked_heads():
    from repro.sched import SRPT_POLICY

    prq = PartitionedRequestQueue(16, {"a": 0.5, "b": 0.5},
                                  policy=SRPT_POLICY)
    short_a = rec("a", [10.0, 10.0])
    long_b = rec("b", [9000.0])
    prq.enqueue(short_a)
    prq.enqueue(long_b)
    got = prq.dequeue()
    assert got is short_a
    prq.mark_blocked(got)
    # The blocked entry's stale heap head must be discarded, not served.
    assert prq.dequeue() is long_b


def test_soft_entries_and_soft_enqueue_under_srpt():
    from repro.sched import SRPT_POLICY

    prq = PartitionedRequestQueue(16, {"a": 0.5, "b": 0.5},
                                  policy=SRPT_POLICY)
    prq.soft_enqueue(rec("a"))
    prq.soft_enqueue(rec("b", [10.0]))
    assert prq.soft_entries == 2
    assert prq.occupancy == 0            # soft entries hold no slot
    got = prq.dequeue()
    assert got is not None and got.service == "b"


def test_observe_forwards_to_partition_policy():
    from repro.sched.policies import SjfPolicy

    sjf = SjfPolicy()
    prq = PartitionedRequestQueue(16, {"a": 0.5, "b": 0.5}, policy=sjf)
    prq.observe("a", 1234.0)
    assert sjf._estimate_ns["a"] == 1234.0
    # FCFS partitions have no observe hook; the forward is a no-op.
    fcfs_prq = make_prq()
    fcfs_prq.observe("a", 1.0)


def test_purge_under_non_fcfs_policy():
    from repro.sched import SRPT_POLICY

    prq = PartitionedRequestQueue(16, {"a": 0.5, "b": 0.5},
                                  policy=SRPT_POLICY)
    for service in ("a", "a", "b"):
        prq.enqueue(rec(service))
    assert prq.purge() == 3
    assert prq.occupancy == 0
    assert prq.dequeue() is None


# ------------------------------------------------- village integration

class StubExecutor:
    def __init__(self, engine, segment_ns=100.0):
        self.engine = engine
        self.segment_ns = segment_ns

    def segment_time_ns(self, r, core):
        return self.segment_ns

    def segment_done(self, r, village, core):
        village.finish(r, core)


def make_village(engine, prq=None, core_borrowing=False, n_cores=2):
    dom = SchedulerDomain(engine, HARDWARE_CS, freq_ghz=2.0)
    village = Village(engine, 0, n_cores, dom, StubExecutor(engine),
                      rq=prq, core_borrowing=core_borrowing)
    return village


def test_village_with_partitioned_rq_partitioned_cores():
    eng = Engine()
    village = make_village(eng, prq=make_prq())
    village.cores[0].service = "a"
    village.cores[1].service = "b"
    done = []
    ra = RequestRecord("app", "a", [1000.0],
                       on_complete=lambda r: done.append("a"))
    rb = RequestRecord("app", "b", [1000.0],
                       on_complete=lambda r: done.append("b"))
    village.submit(ra)
    village.submit(rb)
    eng.run()
    assert sorted(done) == ["a", "b"]
    assert village.cores[0].requests_run == 1
    assert village.cores[1].requests_run == 1


def test_core_borrowing_serves_colocated_backlog():
    """Section 8: service b is idle; its core helps service a's backlog."""
    eng = Engine()
    village = make_village(eng, prq=make_prq(), core_borrowing=True)
    village.cores[0].service = "a"
    village.cores[1].service = "b"
    done = []
    for __ in range(4):
        village.submit(RequestRecord("app", "a", [1000.0],
                                     on_complete=lambda r: done.append(
                                         eng.now)))
    eng.run()
    assert len(done) == 4
    # Both cores participated, so the batch finishes in 2 rounds not 4.
    assert village.cores[1].requests_run > 0
    assert max(done) == pytest.approx(200.0)


def test_without_borrowing_partitioned_core_stays_idle():
    eng = Engine()
    village = make_village(eng, prq=make_prq(), core_borrowing=False)
    village.cores[0].service = "a"
    village.cores[1].service = "b"
    done = []
    for __ in range(4):
        village.submit(RequestRecord("app", "a", [1000.0],
                                     on_complete=lambda r: done.append(
                                         eng.now)))
    eng.run()
    assert village.cores[1].requests_run == 0
    assert max(done) == pytest.approx(400.0)
