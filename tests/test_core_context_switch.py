"""Tests for context-switch / scheduler-overhead models."""

import pytest

from repro.core import (
    CS_PRESETS,
    HARDWARE_CS,
    LINUX_CS,
    SHINJUKU_CS,
    SchedulerDomain,
)
from repro.sim import Engine


def test_preset_costs_match_paper():
    """Section 3.3: ~5K cycles for Linux, ~2K for software schedulers,
    128-256 for the hardware target."""
    assert LINUX_CS.switch_cycles == pytest.approx(5000)
    assert SHINJUKU_CS.switch_cycles == pytest.approx(2000)
    assert 128 <= HARDWARE_CS.switch_cycles <= 256
    assert set(CS_PRESETS) == {"hardware", "shinjuku", "shenango", "zygos",
                               "linux"}


def test_scaled_keeps_regime_changes_cost():
    cfg = SHINJUKU_CS.scaled(4096)
    assert cfg.switch_cycles == pytest.approx(4096)
    assert cfg.centralized == SHINJUKU_CS.centralized


def test_save_restore_timing():
    eng = Engine()
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    times = []
    dom.charge_save(lambda: times.append(eng.now))
    eng.run()
    assert times == [pytest.approx(64 / 2.0)]
    dom.charge_restore(lambda: times.append(eng.now))
    eng.run()
    assert times[1] == pytest.approx(64 / 2.0 + 64 / 2.0)
    assert dom.switches == 1


def test_hardware_scheduler_op_is_free_and_synchronous():
    eng = Engine()
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    fired = []
    dom.scheduler_op(lambda: fired.append(eng.now))
    assert fired == [0.0]   # immediate, no event needed


def test_centralized_scheduler_serializes_ops():
    eng = Engine()
    dom = SchedulerDomain(eng, SHINJUKU_CS, freq_ghz=2.0)
    op_ns = SHINJUKU_CS.scheduler_op_cycles / 2.0
    done = []
    for __ in range(3):
        dom.scheduler_op(lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(op_ns * (i + 1)) for i in range(3)]
    assert dom.scheduler_utilization() > 0


def test_distributed_software_ops_do_not_serialize():
    eng = Engine()
    dom = SchedulerDomain(eng, LINUX_CS, freq_ghz=2.0)
    op_ns = LINUX_CS.scheduler_op_cycles / 2.0
    done = []
    for __ in range(3):
        dom.scheduler_op(lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(op_ns)] * 3


def test_invalid_frequency():
    with pytest.raises(ValueError):
        SchedulerDomain(Engine(), HARDWARE_CS, freq_ghz=0)
