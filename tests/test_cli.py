"""Tests for the command-line interface."""

import pytest

from repro.cli import SYSTEMS, _resolve_app, build_parser, main


def test_parser_simulate_defaults():
    args = build_parser().parse_args(["simulate", "--system", "umanycore"])
    assert args.system == "umanycore"
    assert args.app == "Text"
    assert args.arrivals == "poisson"


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--system", "cray"])


def test_resolve_app():
    assert _resolve_app("Text").name == "Text"
    assert _resolve_app("bimodal").name == "Syn-bimodal"
    with pytest.raises(SystemExit):
        _resolve_app("nope")


def test_list_command(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "umanycore" in out and "CPost" in out and "fig14" in out


def test_simulate_command(capsys):
    main(["simulate", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008"])
    out = capsys.readouterr().out
    assert "P50 / P99" in out and "uManycore" in out


def test_experiment_command_power(capsys):
    main(["experiment", "power"])
    out = capsys.readouterr().out
    assert "iso-power ServerClass cores: 40" in out


def test_systems_table_complete():
    assert set(SYSTEMS) == {"umanycore", "scaleout", "serverclass",
                            "serverclass128"}
