"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SYSTEMS, _resolve_app, build_parser, main


def test_parser_simulate_defaults():
    args = build_parser().parse_args(["simulate", "--system", "umanycore"])
    assert args.system == "umanycore"
    assert args.app == "Text"
    assert args.arrivals == "poisson"


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--system", "cray"])


def test_resolve_app():
    assert _resolve_app("Text").name == "Text"
    assert _resolve_app("bimodal").name == "Syn-bimodal"
    with pytest.raises(SystemExit):
        _resolve_app("nope")


def test_list_command(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "umanycore" in out and "CPost" in out and "fig14" in out


def test_simulate_command(capsys):
    main(["simulate", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008"])
    out = capsys.readouterr().out
    assert "P50 / P99" in out and "uManycore" in out


def test_simulate_json_output(capsys):
    main(["simulate", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["system"] == "uManycore"
    assert doc["completed"] > 0
    assert doc["latency_ns"]["p99"] >= doc["latency_ns"]["p50"]
    assert "breakdown" not in doc        # no tracer on a plain simulate


def test_trace_command(tmp_path, capsys):
    trace_file = tmp_path / "trace.json"
    csv_file = tmp_path / "spans.csv"
    main(["trace", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--out", str(trace_file), "--csv-out", str(csv_file)])
    out = capsys.readouterr().out
    assert "perfetto" in out and "compute" in out
    doc = json.loads(trace_file.read_text())
    cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"request", "compute", "nic_dispatch"} <= cats
    assert csv_file.read_text().startswith("span_id,")


def test_trace_command_json_breakdown(tmp_path, capsys):
    main(["trace", "--system", "scaleout", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--out", str(tmp_path / "t.json"), "--json"])
    doc = json.loads(capsys.readouterr().out)
    fractions = doc["breakdown"]["fraction"]
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_experiment_command_power(capsys):
    main(["experiment", "power"])
    out = capsys.readouterr().out
    assert "iso-power ServerClass cores: 40" in out


def test_systems_table_complete():
    assert set(SYSTEMS) == {"umanycore", "scaleout", "serverclass",
                            "serverclass128"}
