"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import SYSTEMS, _resolve_app, build_parser, main


def test_parser_simulate_defaults():
    args = build_parser().parse_args(["simulate", "--system", "umanycore"])
    assert args.system == "umanycore"
    assert args.app == "Text"
    assert args.arrivals == "poisson"


def test_parser_rejects_unknown_system():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--system", "cray"])


def test_resolve_app():
    assert _resolve_app("Text").name == "Text"
    assert _resolve_app("bimodal").name == "Syn-bimodal"
    with pytest.raises(SystemExit):
        _resolve_app("nope")


def test_list_command(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "umanycore" in out and "CPost" in out and "fig14" in out


def test_simulate_command(capsys):
    main(["simulate", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008"])
    out = capsys.readouterr().out
    assert "P50 / P99" in out and "uManycore" in out


def test_simulate_json_output(capsys):
    main(["simulate", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--json"])
    doc = json.loads(capsys.readouterr().out)
    assert doc["system"] == "uManycore"
    assert doc["completed"] > 0
    assert doc["latency_ns"]["p99"] >= doc["latency_ns"]["p50"]
    assert "breakdown" not in doc        # no tracer on a plain simulate


def test_trace_command(tmp_path, capsys):
    trace_file = tmp_path / "trace.json"
    csv_file = tmp_path / "spans.csv"
    main(["trace", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--out", str(trace_file), "--csv-out", str(csv_file)])
    out = capsys.readouterr().out
    assert "perfetto" in out and "compute" in out
    doc = json.loads(trace_file.read_text())
    cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert {"request", "compute", "nic_dispatch"} <= cats
    assert csv_file.read_text().startswith("span_id,")


def test_trace_command_json_breakdown(tmp_path, capsys):
    main(["trace", "--system", "scaleout", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--out", str(tmp_path / "t.json"), "--json"])
    doc = json.loads(capsys.readouterr().out)
    fractions = doc["breakdown"]["fraction"]
    assert sum(fractions.values()) == pytest.approx(1.0)


def test_experiment_command_power(capsys):
    main(["experiment", "power"])
    out = capsys.readouterr().out
    assert "iso-power ServerClass cores: 40" in out


def test_systems_table_complete():
    assert set(SYSTEMS) == {"umanycore", "scaleout", "serverclass",
                            "serverclass128"}


def test_parser_sweep_defaults():
    args = build_parser().parse_args(["sweep"])
    assert args.systems == "umanycore,scaleout,serverclass"
    assert args.jobs == 1 and not args.no_cache and not args.json


def test_sweep_command_table(capsys):
    main(["sweep", "--systems", "umanycore,scaleout", "--apps", "UrlShort",
          "--loads", "2000", "--servers", "1", "--duration", "0.004",
          "--no-cache"])
    captured = capsys.readouterr()
    assert "uManycore" in captured.out and "ScaleOut" in captured.out
    assert "p99 us" in captured.out
    # Progress goes to stderr; stdout stays a clean table.
    assert "[1/2]" in captured.err and "[2/2]" in captured.err
    assert "cache:" not in captured.err


def test_parser_check_flags():
    args = build_parser().parse_args(["simulate", "--system", "umanycore",
                                      "--check"])
    assert args.check
    args = build_parser().parse_args(["sweep", "--check"])
    assert args.check
    args = build_parser().parse_args(["validate", "--trials", "3"])
    assert args.trials == 3 and args.seed == 0


def test_simulate_check_reports_zero_violations(capsys):
    main(["simulate", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--check"])
    captured = capsys.readouterr()
    assert "P50 / P99" in captured.out
    assert "0 violations" in captured.err


def test_sweep_check_bypasses_cache(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    main(["sweep", "--systems", "umanycore", "--apps", "UrlShort",
          "--loads", "2000", "--servers", "1", "--duration", "0.004",
          "--check"])
    captured = capsys.readouterr()
    assert "p99 us" in captured.out
    assert "cache:" not in captured.err     # check mode never caches
    assert not list(tmp_path.iterdir())


def test_validate_command_clean(capsys):
    main(["validate", "--trials", "2", "--seed", "1"])
    captured = capsys.readouterr()
    assert "2 trials, 0 violations" in captured.out
    assert "[  1/2]" in captured.err and "ok" in captured.err


def test_validate_command_failure_shrinks_and_exits(monkeypatch, capsys):
    from repro.check.context import CheckContext
    import repro.check.harness as harness

    def broken_run_trial(trial):
        check = CheckContext(strict=False)
        check.violation("conservation", "seeded imbalance")
        return check

    monkeypatch.setattr(harness, "run_trial", broken_run_trial)
    with pytest.raises(SystemExit) as err:
        main(["validate", "--trials", "1", "--seed", "2"])
    assert err.value.code == 1
    out = capsys.readouterr().out
    assert "FAILED" in out and "seeded imbalance" in out
    assert "shrunk to: Trial(" in out


# -------------------------------------------------- scheduling policies

def test_parser_policy_flags():
    args = build_parser().parse_args(
        ["simulate", "--system", "umanycore", "--dispatch", "least",
         "--rq-policy", "sjf", "--steal", "maxload", "--core-bypass"])
    assert args.dispatch == "least"
    assert args.rq_policy == "sjf"
    assert args.steal == "maxload"
    assert args.core_bypass
    # Defaults are None/False so unset flags never touch the config.
    args = build_parser().parse_args(["sweep"])
    assert args.dispatch is None and args.rq_policy is None
    assert args.steal is None and not args.core_bypass
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--system", "umanycore",
                                   "--dispatch", "hash"])


def test_policy_overrides_mapping():
    from repro.cli import _policy_overrides

    parse = build_parser().parse_args
    assert _policy_overrides(parse(["sweep"])) == {}
    assert _policy_overrides(parse(["sweep", "--steal", "off"])) == \
        {"work_steal": False}
    assert _policy_overrides(parse(["sweep", "--steal", "maxload"])) == \
        {"work_steal": True, "steal_policy": "maxload"}
    assert _policy_overrides(parse(
        ["sweep", "--dispatch", "affinity", "--rq-policy", "edf",
         "--core-bypass"])) == \
        {"dispatch": "affinity", "rq_policy": "edf", "core_bypass": True}


def test_simulate_policy_flags_json_and_check(capsys):
    main(["simulate", "--system", "umanycore", "--app", "UrlShort",
          "--rps", "2000", "--servers", "1", "--duration", "0.008",
          "--rq-policy", "srpt", "--steal", "maxload", "--core-bypass",
          "--check", "--json"])
    captured = capsys.readouterr()
    doc = json.loads(captured.out)
    assert doc["sched"]["rq_policy"] == "srpt"
    assert doc["sched"]["steal_policy"] == "maxload"
    assert doc["sched"]["core_bypass"]
    assert "0 violations" in captured.err


def test_list_includes_policies_and_figS(capsys):
    main(["list"])
    out = capsys.readouterr().out
    assert "figS" in out
    assert "least" in out and "maxload" in out and "edf" in out


def test_sweep_command_caches_between_invocations(tmp_path, monkeypatch,
                                                  capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    argv = ["sweep", "--systems", "umanycore", "--apps", "UrlShort",
            "--loads", "2000", "--seeds", "5", "--servers", "1",
            "--duration", "0.004", "--json"]
    main(argv)
    cold = capsys.readouterr()
    assert "1 misses" in cold.err
    main(argv)
    warm = capsys.readouterr()
    assert "(cache)" in warm.err and "1 hits" in warm.err
    assert json.loads(warm.out) == json.loads(cold.out)
