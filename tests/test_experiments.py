"""Integration tests: every experiment runner works at reduced scale."""

import numpy as np
import pytest

from repro.experiments.common import Settings, format_table, geomean

QUICK = Settings(n_servers=1, duration_s=0.01, seed=2)


def test_format_table():
    out = format_table(["a", "bb"], [["1", "22"], ["333", "4"]])
    lines = out.splitlines()
    assert len(lines) == 4          # header, separator, 2 rows
    assert "333" in lines[2] or "333" in lines[3]
    assert lines[1].strip("- ").replace("-", "") == ""  # separator line


def test_format_table_empty_and_ragged_rows():
    # No rows: still renders header + separator sized to the headers.
    out = format_table(["name", "value"], [])
    lines = out.splitlines()
    assert len(lines) == 2
    assert "name" in lines[0] and "value" in lines[0]
    assert set(lines[1]) <= {"-", " "}
    # Rows shorter than the header pad with blank cells instead of raising.
    out = format_table(["a", "b", "c"], [["1"], ["2", "3"]])
    assert len(out.splitlines()) == 4
    # Numeric cells are stringified.
    assert "42" in format_table(["n"], [[42]])


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, 0.0])


def test_fig01_runner():
    from repro.experiments.fig01_microarch import run

    results = run(n_accesses=20_000, n_branches=10_000)
    assert set(results) == {"D-Prefetcher", "Branch Predictor",
                            "I-Prefetcher", "I-Cache Replace"}
    for r in results.values():
        assert r["mono"] > 0 and r["micro"] > 0


def test_fig02_04_05_runners():
    from repro.experiments.fig02_rps_cdf import run as f2
    from repro.experiments.fig04_cpu_util import run as f4
    from repro.experiments.fig05_rpc_count import run as f5

    for run in (f2, f4, f5):
        r = run(n=20_000)
        assert (np.diff(r["cdf"]) >= 0).all()
        assert 0.0 <= r["cdf"][0] <= r["cdf"][-1] <= 1.0


def test_fig03_runner_tiny():
    from repro.experiments.fig03_queues import run

    results = run(rps=20_000, compute_scale=10.0, queue_counts=(32, 1),
                  settings=QUICK)
    assert set(results) == {(32, False), (1, False), (32, True), (1, True)}
    for v in results.values():
        assert v["p99_us"] >= v["mean_us"] > 0


def test_fig06_runner_tiny():
    from repro.experiments.fig06_context_switch import run

    results = run(loads=(5000,), cs_cycles=(0, 8192), settings=QUICK)
    assert results[(0, 5000)] > 0
    assert results[(8192, 5000)] > 0


def test_fig07_runner_tiny():
    from repro.experiments.fig07_icn_contention import run

    results = run(loads=(5000,), settings=QUICK)
    assert set(results) == {("mesh", 5000), ("fattree", 5000)}
    for ratio in results.values():
        assert ratio > 0.3


def test_fig08_fig09_runners():
    from repro.experiments.fig08_footprint import run as f8
    from repro.experiments.fig09_hit_rates import run as f9

    r8 = f8(n_handlers=6)
    assert set(r8) == {"Handler-Handler", "Handler-Init"}
    r9 = f9(n_accesses=20_000)
    assert r9["data"]["L1Cache"] > 0.8


def test_latency_matrix_and_wrappers():
    from repro.experiments.latency_matrix import reduction_vs, run

    matrix = run(loads=(5000,), apps=("UrlShort",), settings=QUICK)
    assert ("uManycore", "UrlShort", 5000) in matrix
    ratio = reduction_vs(matrix, "p99_ns", "ServerClass", 5000, ("UrlShort",))
    assert ratio > 0


def test_fig15_runner_tiny():
    from repro.experiments.fig15_breakdown import run

    results = run(rps=5000, apps=("UrlShort",), settings=QUICK)
    names = {name for name, __ in results}
    assert "ScaleOut" in names and "+HW Context Switch" in names


def test_fig18_max_throughput_search():
    from repro.experiments.fig18_throughput import max_throughput
    from repro.systems.configs import UMANYCORE
    from repro.workloads.deathstar import social_network_app

    app = social_network_app("UrlShort")
    t = max_throughput(UMANYCORE, app,
                       Settings(n_servers=1, duration_s=0.008),
                       low=1000.0, high=100_000.0, iterations=3)
    assert t >= 1000.0


def test_fig19_runner_tiny():
    from repro.experiments.fig19_sensitivity import run

    results = run(rps=5000, apps=("UrlShort",), settings=QUICK)
    assert len(results) == 4


def test_fig20_runner_tiny():
    from repro.experiments.fig20_synthetic import run

    results = run(loads=(5000,), settings=QUICK)
    assert len(results) == 9  # 3 systems x 3 distributions


def test_sec68_runner_tiny():
    from repro.experiments.sec68_iso_area import run

    results = run(apps=("UrlShort",), loads=(5000,), settings=QUICK)
    assert ("ServerClass-128", "UrlShort", 5000) in results


def test_power_area_runner():
    from repro.experiments.power_area import run

    results = run()
    assert results["iso"]["iso_power_cores"] == 40


def test_figS_runner_tiny():
    from repro.experiments.figS_policies import COMBOS, run

    tiny = Settings(n_servers=1, duration_s=0.004, seed=2)
    results = run(tiny, loads=(8000,))
    assert len(results) == len(COMBOS) * 2      # fault-free + faulted
    base = results[("rr+fcfs", False, 8000)]
    assert base.completed > 0 and base.sched_stats is None
    steal = results[("rr+steal", False, 8000)]
    assert steal.sched_stats["steal_policy"] == "maxload"
    assert results[("affinity+fcfs", True, 8000)].availability <= 1.0


def test_figS_bypass_runner_tiny():
    from repro.experiments.figS_policies import run_bypass

    tiny = Settings(n_servers=1, duration_s=0.004, seed=2)
    results = run_bypass(tiny, loads=(4000,))
    assert results[(False, 4000)].sched_stats is None
    assert results[(True, 4000)].sched_stats["bypasses"] > 0


def test_set_policy_overrides_folds_into_points():
    from repro.experiments.common import point_for, set_policy_overrides
    from repro.systems.configs import UMANYCORE
    from repro.workloads.deathstar import social_network_app

    app = social_network_app("Text")
    try:
        set_policy_overrides(dispatch="least", core_bypass=True)
        p = point_for(UMANYCORE, app, 1000, QUICK)
        assert p.config.dispatch == "least" and p.config.core_bypass
    finally:
        set_policy_overrides()
    clean = point_for(UMANYCORE, app, 1000, QUICK)
    assert clean.config is UMANYCORE    # no overrides -> untouched config
