"""Tests for the analytic core timing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.core_model import (
    SCALEOUT_CORE,
    SERVERCLASS_CORE,
    UMANYCORE_CORE,
    CoreConfig,
    CoreModel,
    SegmentProfile,
)


def test_table2_configs():
    assert UMANYCORE_CORE.issue_width == 4 and UMANYCORE_CORE.rob_entries == 64
    assert UMANYCORE_CORE.freq_ghz == 2.0
    assert SERVERCLASS_CORE.issue_width == 6 and SERVERCLASS_CORE.rob_entries == 352
    assert SERVERCLASS_CORE.freq_ghz == 3.0
    assert SCALEOUT_CORE == CoreConfig("scaleout", 4, 64, 64, 2.0)


def test_cpi_floor_is_issue_width_limit():
    m = CoreModel(UMANYCORE_CORE)
    perfect = SegmentProfile(ilp=100.0, l1_mpki=0.0, l2_miss_fraction=0.0,
                             branch_misp_mpki=0.0)
    assert m.effective_cpi(perfect) == pytest.approx(1.0 / 4)


def test_ilp_limits_cpi_when_below_issue_width():
    m = CoreModel(SERVERCLASS_CORE)
    narrow = SegmentProfile(ilp=2.0, l1_mpki=0.0, l2_miss_fraction=0.0,
                            branch_misp_mpki=0.0)
    assert m.effective_cpi(narrow) == pytest.approx(0.5)


def test_bigger_rob_hides_more_memory_latency():
    profile = SegmentProfile(ilp=3.0, l1_mpki=20.0, l2_miss_fraction=0.5)
    small = CoreModel(UMANYCORE_CORE).effective_cpi(profile)
    big = CoreModel(SERVERCLASS_CORE).effective_cpi(profile)
    # ServerClass has wider issue AND more MLP -> lower CPI on memory-bound code.
    assert big < small


def test_server_core_faster_per_segment_but_same_order():
    profile = SegmentProfile()
    t_server = CoreModel(SERVERCLASS_CORE).segment_time_ns(10_000, profile)
    t_many = CoreModel(UMANYCORE_CORE).segment_time_ns(10_000, profile)
    assert t_server < t_many < 4 * t_server


def test_segment_time_scales_linearly_with_instructions():
    m = CoreModel(UMANYCORE_CORE)
    p = SegmentProfile()
    assert m.segment_time_ns(2000, p) == pytest.approx(2 * m.segment_time_ns(1000, p))


def test_negative_instructions_rejected():
    with pytest.raises(ValueError):
        CoreModel(UMANYCORE_CORE).segment_time_ns(-1, SegmentProfile())


def test_cycle_time_conversions_roundtrip():
    m = CoreModel(UMANYCORE_CORE)
    assert m.cycles_to_ns(2000) == pytest.approx(1000.0)   # 2 GHz
    assert m.ns_to_cycles(m.cycles_to_ns(123.0)) == pytest.approx(123.0)


@given(
    l1_mpki=st.floats(min_value=0, max_value=100),
    l2f=st.floats(min_value=0, max_value=1),
    misp=st.floats(min_value=0, max_value=20),
    ilp=st.floats(min_value=0.5, max_value=8),
)
@settings(max_examples=100, deadline=None)
def test_cpi_monotone_in_miss_rates(l1_mpki, l2f, misp, ilp):
    """More misses/mispredictions can never make CPI smaller."""
    m = CoreModel(UMANYCORE_CORE)
    base = m.effective_cpi(SegmentProfile(ilp, l1_mpki, l2f, misp))
    worse = m.effective_cpi(SegmentProfile(ilp, l1_mpki + 1, min(1.0, l2f), misp + 1))
    assert worse >= base
    assert base >= 0.25  # never below the issue-width floor
