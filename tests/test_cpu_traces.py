"""Tests for the synthetic trace generators."""

import numpy as np
import pytest

from repro.cpu.traces import (
    MICRO_PROFILES,
    MONO_PROFILES,
    branch_trace,
    data_address_trace,
    handler_trace,
    instruction_address_trace,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def test_profiles_partitioned_by_kind():
    assert all(p.kind == "mono" for p in MONO_PROFILES)
    assert all(p.kind == "micro" for p in MICRO_PROFILES)
    assert len(MONO_PROFILES) == 5 and len(MICRO_PROFILES) == 3


def test_data_trace_length_and_bounds(rng):
    p = MICRO_PROFILES[0]
    addrs = data_address_trace(p, 10_000, rng)
    assert len(addrs) == 10_000
    assert addrs.min() >= 0
    assert addrs.max() < p.data_footprint_kb * 1024


def test_data_trace_line_aligned(rng):
    addrs = data_address_trace(MICRO_PROFILES[0], 1000, rng)
    assert (addrs % 64 == 0).all()


def test_micro_footprint_much_smaller_than_mono(rng):
    micro = data_address_trace(MICRO_PROFILES[0], 20_000, rng)
    mono = data_address_trace(MONO_PROFILES[0], 20_000, rng)
    micro_pages = len(np.unique(micro // 4096))
    mono_pages = len(np.unique(mono // 4096))
    assert mono_pages > 5 * micro_pages


def test_instruction_trace_bounds(rng):
    p = MONO_PROFILES[0]
    addrs = instruction_address_trace(p, 10_000, rng)
    assert len(addrs) == 10_000
    assert addrs.max() < p.instr_footprint_kb * 1024


def test_micro_instruction_reuse_higher(rng):
    micro = instruction_address_trace(MICRO_PROFILES[0], 20_000, rng)
    mono = instruction_address_trace(MONO_PROFILES[0], 20_000, rng)
    assert len(np.unique(micro)) < len(np.unique(mono))


def test_branch_trace_shapes(rng):
    pcs, taken = branch_trace(MICRO_PROFILES[0], 5000, rng)
    assert len(pcs) == len(taken) == 5000
    assert set(np.unique(taken)) <= {0, 1}


def test_micro_branches_more_biased(rng):
    """Micro handler branches are near-deterministic; mono are not."""
    def per_branch_bias(profile):
        pcs, taken = branch_trace(profile, 30_000, rng)
        biases = []
        for pc in np.unique(pcs):
            sel = taken[pcs == pc]
            if len(sel) >= 20:
                p = sel.mean()
                biases.append(max(p, 1 - p))
        return np.mean(biases)

    assert per_branch_bias(MICRO_PROFILES[0]) > per_branch_bias(MONO_PROFILES[3])


def test_handler_trace_sharing(rng):
    d, i = handler_trace(MICRO_PROFILES[0], 8000, rng, n_handlers=4,
                         shared_fraction=0.9)
    assert len(d) == len(i) == 8000
    # Most data pages are in the shared region (below the private base).
    shared = (d < MICRO_PROFILES[0].data_footprint_kb * 1024 * 2).mean()
    assert shared > 0.8


def test_traces_reproducible():
    a = data_address_trace(MICRO_PROFILES[0], 1000, np.random.default_rng(7))
    b = data_address_trace(MICRO_PROFILES[0], 1000, np.random.default_rng(7))
    assert (a == b).all()
