"""Tests for mesh, fat-tree and leaf-spine topologies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.icn import FatTree, HierarchicalLeafSpine, Mesh2D
from repro.icn.topology import Topology


# ---------------------------------------------------------------- base graph

def test_add_link_and_capacity():
    t = Topology()
    t.add_link("a", "b", capacity=3)
    assert t.has_link("a", "b") and t.has_link("b", "a")
    assert t.link_capacity("a", "b") == 3


def test_unidirectional_link():
    t = Topology()
    t.add_link("a", "b", bidirectional=False)
    assert t.has_link("a", "b") and not t.has_link("b", "a")


def test_shortest_path_bfs():
    t = Topology()
    t.add_link("a", "b")
    t.add_link("b", "c")
    t.add_link("a", "c")
    assert t.shortest_path("a", "c") == ["a", "c"]
    assert t.shortest_path("a", "a") == ["a"]


def test_disconnected_raises():
    t = Topology()
    t.add_node("a")
    t.add_node("z")
    with pytest.raises(ValueError):
        t.shortest_path("a", "z")


def test_invalid_capacity():
    t = Topology()
    with pytest.raises(ValueError):
        t.add_link("a", "b", capacity=0)


# --------------------------------------------------------------------- mesh

def test_mesh_xy_routing_is_manhattan():
    m = Mesh2D(5, 4)
    path = m.path(m.tile(0, 0), m.tile(3, 2))
    assert len(path) - 1 == 3 + 2
    assert m.validate_path(path)
    # XY: all x moves first.
    xs = [m.coords(n)[0] for n in path]
    assert xs == sorted(xs)


def test_mesh_attachment_endpoint():
    m = Mesh2D(4, 4)
    m.attach_at("nic", 0, 0)
    path = m.path("nic", m.tile(2, 1))
    assert path[0] == "nic" and path[-1] == m.tile(2, 1)
    assert m.validate_path(path)


def test_mesh_self_path():
    m = Mesh2D(3, 3)
    assert m.path(m.tile(1, 1), m.tile(1, 1)) == [m.tile(1, 1)]


@given(st.integers(0, 4), st.integers(0, 3), st.integers(0, 4), st.integers(0, 3))
@settings(max_examples=60, deadline=None)
def test_mesh_path_property(x0, y0, x1, y1):
    m = Mesh2D(5, 4)
    path = m.path(m.tile(x0, y0), m.tile(x1, y1))
    assert m.validate_path(path)
    assert len(path) - 1 == abs(x1 - x0) + abs(y1 - y0)


# ----------------------------------------------------------------- fat-tree

def test_fattree_paper_geometry():
    """Section 5: 63 NHs, longest path 10 hops."""
    ft = FatTree(32)
    assert ft.n_switches == 63
    assert len(ft.path(ft.leaf(0), ft.leaf(31))) - 1 == 10


def test_fattree_sibling_leaves_two_hops():
    ft = FatTree(32)
    assert len(ft.path(ft.leaf(0), ft.leaf(1))) - 1 == 2


def test_fattree_path_validity():
    ft = FatTree(16)
    for a, b in [(0, 15), (3, 4), (7, 8), (5, 5)]:
        path = ft.path(ft.leaf(a), ft.leaf(b))
        assert path[0] == ft.leaf(a) and path[-1] == ft.leaf(b)
        assert ft.validate_path(path)


def test_fattree_capacity_grows_toward_root():
    ft = FatTree(32, max_link_capacity=4)
    leaf_cap = ft.link_capacity(ft.switch(0, 0), ft.switch(1, 0))
    root_cap = ft.link_capacity(ft.switch(4, 0), ft.switch(5, 0))
    assert root_cap >= leaf_cap


def test_fattree_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        FatTree(12)


@given(st.integers(0, 31), st.integers(0, 31))
@settings(max_examples=60, deadline=None)
def test_fattree_path_property(a, b):
    ft = FatTree(32)
    path = ft.path(ft.leaf(a), ft.leaf(b))
    assert ft.validate_path(path)
    assert len(path) - 1 <= 10


# --------------------------------------------------------------- leaf-spine

def test_leafspine_paper_geometry():
    """Section 5: 32 leaves, 16 spines, 8 core NHs = 56 NHs; max 4 hops."""
    ls = HierarchicalLeafSpine()
    assert ls.n_leaves == 32
    assert ls.n_switches == 56


def test_leafspine_intra_pod_two_hops():
    ls = HierarchicalLeafSpine()
    path = ls.path(ls.leaf(0), ls.leaf(7))  # same pod
    assert len(path) - 1 == 2
    assert ls.validate_path(path)


def test_leafspine_cross_pod_four_hops():
    ls = HierarchicalLeafSpine()
    path = ls.path(ls.leaf(0), ls.leaf(31))  # pods 0 and 3
    assert len(path) - 1 == 4
    assert ls.validate_path(path)


def test_leafspine_ecmp_uses_multiple_paths():
    ls = HierarchicalLeafSpine()
    rng = np.random.default_rng(0)
    paths = {tuple(ls.path(ls.leaf(0), ls.leaf(31), rng)) for __ in range(50)}
    assert len(paths) > 10  # 4 spines x 8 cores x 4 spines = 128 choices


def test_leafspine_deterministic_without_rng():
    ls = HierarchicalLeafSpine()
    assert ls.path(ls.leaf(0), ls.leaf(31)) == ls.path(ls.leaf(0), ls.leaf(31))


def test_leafspine_rejects_non_leaf_endpoints():
    ls = HierarchicalLeafSpine()
    with pytest.raises(ValueError):
        ls.path("core0", ls.leaf(0))


@given(st.integers(0, 31), st.integers(0, 31), st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_leafspine_path_property(a, b, seed):
    ls = HierarchicalLeafSpine()
    rng = np.random.default_rng(seed)
    path = ls.path(ls.leaf(a), ls.leaf(b), rng)
    assert ls.validate_path(path)
    assert len(path) - 1 <= 4  # the paper's longest-path guarantee
