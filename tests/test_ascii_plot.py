"""Tests for the terminal plotting helpers."""

import pytest

from repro.experiments.ascii_plot import bar_chart, sparkline


def test_bar_chart_scales_to_max():
    out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
    lines = out.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "2.00" in lines[1]


def test_bar_chart_title_and_alignment():
    out = bar_chart(["x", "long"], [1, 1], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("   x |")


def test_bar_chart_validation():
    with pytest.raises(ValueError):
        bar_chart(["a"], [1.0, 2.0])
    with pytest.raises(ValueError):
        bar_chart([], [])
    with pytest.raises(ValueError):
        bar_chart(["a"], [-1.0])


def test_sparkline_monotone():
    s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
    assert len(s) == 8
    assert s[0] == "▁" and s[-1] == "█"


def test_sparkline_flat_and_empty():
    assert sparkline([3, 3, 3]) == "▁▁▁"
    with pytest.raises(ValueError):
        sparkline([])


def test_sparkline_explicit_bounds():
    s = sparkline([5.0], lo=0.0, hi=10.0)
    assert s in "▁▂▃▄▅▆▇█"
