"""Tests for system configurations (Table 2) and ablation builders."""

import pytest

from repro.systems import (
    SCALEOUT,
    SERVERCLASS,
    SERVERCLASS_128,
    UMANYCORE,
    ablation_ladder,
    umanycore_variant,
)


def test_umanycore_geometry_matches_section5():
    """1024 cores, 128 villages of 8, 32 clusters, leaf-spine, 64-entry RQ."""
    assert UMANYCORE.n_cores == 1024
    assert UMANYCORE.cores_per_queue == 8
    assert UMANYCORE.n_queues == 128
    assert UMANYCORE.n_clusters == 32
    assert UMANYCORE.villages_per_cluster == 4
    assert UMANYCORE.topology == "leafspine"
    assert UMANYCORE.rq_capacity == 64
    assert UMANYCORE.hw_queues
    assert UMANYCORE.cs.name == "hardware"
    assert UMANYCORE.coherence_domain_cores == 8


def test_scaleout_matches_section5():
    """Same cores as uManycore, fat-tree, one queue per 32-core cluster,
    global coherence, software scheduling."""
    assert SCALEOUT.n_cores == 1024
    assert SCALEOUT.cores_per_queue == 32
    assert SCALEOUT.n_queues == 32
    assert SCALEOUT.topology == "fattree"
    assert SCALEOUT.coherence_domain_cores == 1024
    assert SCALEOUT.cs.centralized
    assert not SCALEOUT.hw_queues
    assert SCALEOUT.core.issue_width == UMANYCORE.core.issue_width


def test_serverclass_iso_power_and_iso_area():
    assert SERVERCLASS.n_cores == 40
    assert SERVERCLASS_128.n_cores == 128
    assert SERVERCLASS.topology == "mesh"
    assert SERVERCLASS.core.freq_ghz == 3.0
    assert SERVERCLASS.core.rob_entries == 352


def test_software_systems_pay_stack_costs_umanycore_does_not():
    assert UMANYCORE.sw_rpc_core_ns == 0
    assert UMANYCORE.preempt_quantum_ns == 0
    assert SCALEOUT.sw_rpc_core_ns > 0
    assert SERVERCLASS.sw_rpc_core_ns >= SCALEOUT.sw_rpc_core_ns
    assert SCALEOUT.preempt_quantum_ns > 0


def test_state_locality_is_the_villages_pool_advantage():
    assert UMANYCORE.local_state_fraction > 0.5
    assert SCALEOUT.local_state_fraction == 0.0
    assert SERVERCLASS.local_state_fraction == 0.0


def test_ablation_ladder_is_cumulative():
    """Figure 15: each step adds exactly one uManycore technique."""
    villages, leafspine, hw_sched, hw_cs = ablation_ladder()
    # Step 1: village-sized domains + local state.
    assert villages.cores_per_queue == 8
    assert villages.coherence_domain_cores == 8
    assert villages.topology == "fattree"
    # Step 2: only the topology changes.
    assert leafspine.topology == "leafspine"
    assert leafspine.cores_per_queue == villages.cores_per_queue
    # Step 3: hardware queues/scheduling, software context switch remains.
    assert hw_sched.hw_queues
    assert hw_sched.cs.scheduler_op_cycles == 0
    assert hw_sched.cs.switch_cycles == pytest.approx(2000)
    # Step 4: hardware context switching == full uManycore regime.
    assert hw_cs.cs.name == "hardware"
    assert hw_cs.topology == UMANYCORE.topology
    assert hw_cs.cores_per_queue == UMANYCORE.cores_per_queue


def test_umanycore_variants_fig19():
    for shape in ((8, 4, 32), (32, 1, 32), (32, 2, 16), (32, 4, 8)):
        cfg = umanycore_variant(*shape)
        assert cfg.n_cores == 1024
        assert cfg.cores_per_queue == shape[0]
    with pytest.raises(ValueError):
        umanycore_variant(8, 4, 16)


def test_config_validation():
    import dataclasses

    with pytest.raises(ValueError):
        dataclasses.replace(UMANYCORE, cores_per_queue=7)
    with pytest.raises(ValueError):
        dataclasses.replace(UMANYCORE, topology="torus")
    with pytest.raises(ValueError):
        dataclasses.replace(UMANYCORE, locality=1.5)
