"""Tests for the arrival rate-profile layer, trace replay, and the new
DeathStarBench graphs.

Covers the bursty window-boundary regression (index-computed, stable at
long horizons), per-profile determinism and horizon exclusivity, the
poisson byte-identity contract, trace replay round-trips, the Media and
Hotel service graphs, bulk ledger accounting, the profile-aware hybrid
drift guard, and the figW flash-crowd acceptance behaviors.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.systems.cluster import ClusterSimulation, simulate
from repro.systems.configs import UMANYCORE
from repro.workloads import (
    ARRIVAL_NAMES,
    ConstantProfile,
    FlashCrowdProfile,
    MmppProfile,
    TraceReplay,
    arrival_times,
    bursty_arrival_times,
    deathstar_app,
    get_profile,
    load_trace,
    resolve_trace,
    sample_alibaba_trace,
    save_trace,
)
from repro.workloads.deathstar import (
    DEATHSTAR_APPS,
    SOCIAL_NETWORK_APPS,
    social_network_app,
)

CONFIG = replace(UMANYCORE, n_cores=128, n_clusters=8)


# ------------------------------------------------- bursty boundary bugfix

def test_bursty_long_horizon_same_seed_identical():
    """Regression: window boundaries are index-computed, so a long
    horizon (thousands of windows) stays exactly reproducible."""
    a = bursty_arrival_times(200, 10.0, np.random.default_rng(11))
    b = bursty_arrival_times(200, 10.0, np.random.default_rng(11))
    assert a.shape == b.shape
    assert (a == b).all()
    assert a[-1] < 10.0 * 1e9


def test_bursty_covers_full_horizon_without_drift():
    """With boundaries at ``i * window_s`` the last window still ends
    exactly at the horizon — no accumulated-float shortfall or
    overshoot, even for a window count with inexact float steps."""
    duration_s, window_s = 1.0, 0.007  # 1/0.007 is not exact in binary
    times = bursty_arrival_times(50_000, duration_s,
                                 np.random.default_rng(3),
                                 window_s=window_s)
    assert times[-1] < duration_s * 1e9
    # Every window (including the short tail window) receives samples
    # at this rate; a drifting boundary would leave gaps or spill.
    n_windows = math.ceil(duration_s / window_s)
    counts = np.histogram(times, bins=n_windows,
                          range=(0.0, duration_s * 1e9))[0]
    assert (counts > 0).all()


def test_bursty_start_offset():
    base = bursty_arrival_times(1000, 0.1, np.random.default_rng(2))
    off = bursty_arrival_times(1000, 0.1, np.random.default_rng(2),
                               start_ns=5e7)
    assert np.allclose(off - base, 5e7)


# ------------------------------------------------------ profile contracts

@pytest.mark.parametrize("name", ARRIVAL_NAMES)
def test_profile_deterministic_and_inside_horizon(name):
    prof = get_profile(name)
    a = prof.generate(20_000, 0.05, np.random.default_rng(9))
    b = prof.generate(20_000, 0.05, np.random.default_rng(9))
    assert (a == b).all()
    assert (np.diff(a) >= 0).all()
    assert a[0] >= 0.0 and a[-1] < 0.05 * 1e9


def test_constant_profile_matches_arrival_times_exactly():
    """The default path is byte-identical to the pre-profile layer."""
    direct = arrival_times(15_000, 0.02, np.random.default_rng(1))
    via = ConstantProfile().generate(15_000, 0.02,
                                     np.random.default_rng(1))
    assert (direct == via).all()


@pytest.mark.parametrize("name", ["poisson", "bursty", "mmpp", "diurnal"])
def test_mean_rate_preserved(name):
    """Mean-one profiles deliver the requested average load."""
    prof = get_profile(name)
    n = len(prof.generate(50_000, 1.0, np.random.default_rng(4)))
    assert n == pytest.approx(50_000, rel=0.10)


def test_flash_profile_peak_and_ramp_span():
    flash = FlashCrowdProfile(at=0.4, ramp=0.1, hold=0.2, decay=0.1,
                              magnitude=3.0)
    times = flash.generate(20_000, 1.0, np.random.default_rng(6))
    counts = np.histogram(times, bins=10, range=(0.0, 1e9))[0]
    # The hold plateau (t in [0.5, 0.7)) runs at ~3x the baseline.
    assert counts[5] > 2.0 * counts[0]
    r0, r1 = flash.ramp_span(1.0)
    assert (r0, r1) == (0.4, 0.5)


def test_count_cv_classification():
    assert get_profile("poisson").count_cv(0.01) == 0.0
    assert get_profile("bursty").count_cv(0.01) > 0.0
    assert get_profile("mmpp").count_cv(0.01) > 0.0
    for name in ("diurnal", "flash", "ramp"):
        assert get_profile(name).count_cv(0.01) is None


def test_get_profile_passthrough_and_unknown():
    prof = MmppProfile()
    assert get_profile(prof) is prof
    with pytest.raises(ValueError, match="unknown arrival process"):
        get_profile("weibull")


def test_profiles_fingerprint_distinct():
    from repro.runner.point import SweepPoint

    base = dict(config=CONFIG, app=social_network_app("Text"),
                rps=1000.0, seed=1, n_servers=1, duration_s=0.01)
    keys = {SweepPoint(arrivals=a, **base).key()
            for a in ["poisson", "bursty", MmppProfile(),
                      MmppProfile(multipliers=(0.5, 3.0)),
                      TraceReplay(times_ns=(1.0, 2.0))]}
    assert len(keys) == 5


# ----------------------------------------------------------- trace replay

def test_replay_round_trip_csv_json(tmp_path):
    times = tuple(sample_alibaba_trace(0.01, 5000.0, seed=3).times_ns)
    for ext in ("csv", "json"):
        path = tmp_path / f"trace.{ext}"
        save_trace(path, times)
        assert tuple(load_trace(path).times_ns) == times


def test_replay_generate_clips_and_offsets():
    replay = TraceReplay(times_ns=(0.0, 5e6, 9e6, 2e7))
    out = replay.generate(99.0, 0.01, None)
    assert list(out) == [0.0, 5e6, 9e6]          # 2e7 is past the horizon
    shifted = replay.generate(99.0, 0.01, None, start_ns=1e6)
    assert list(shifted) == [1e6, 5e6 + 1e6, 9e6 + 1e6]


def test_replay_validation_and_resolution():
    with pytest.raises(ValueError):
        TraceReplay(times_ns=(2.0, 1.0))
    with pytest.raises(ValueError):
        TraceReplay(times_ns=(-1.0,))
    sample = resolve_trace("sample")
    assert isinstance(sample, TraceReplay) and len(sample.times_ns) > 0
    assert resolve_trace(sample) is sample
    assert resolve_trace(None) is None


def test_replay_cluster_run_offers_exactly_the_trace():
    from repro.check import CheckContext

    trace = sample_alibaba_trace(0.01, 8000.0, seed=5)
    check = CheckContext(strict=True)
    result = simulate(CONFIG, social_network_app("Text"), 99.0,
                      n_servers=2, duration_s=0.01, seed=1,
                      arrivals=trace, check=check)
    assert result.offered == len(trace.times_ns)
    assert check.ok


# ------------------------------------------------- Media / Hotel graphs

def test_deathstar_apps_superset_and_new_labels():
    assert set(SOCIAL_NETWORK_APPS) < set(DEATHSTAR_APPS)
    for label in ("MCompose", "MPage", "MInfo",
                  "HSearch", "HReserve", "HRecommend"):
        assert label in DEATHSTAR_APPS


@pytest.mark.parametrize("label", sorted(DEATHSTAR_APPS))
def test_deathstar_app_builds_valid_spec(label):
    """AppSpec validation (root present, targets known, acyclic) runs
    in the constructor — building each app is the structural test."""
    app = deathstar_app(label)
    assert app.root in app.services
    for spec in app.services.values():
        for call in spec.calls:
            assert call.is_storage or call.target in app.services


def test_new_graphs_have_fanout_and_storage():
    compose = deathstar_app("MCompose")
    root = compose.services[compose.root]
    assert len(root.calls) >= 4
    search = deathstar_app("HSearch")
    assert len(search.services) >= 4


def test_deathstar_app_unknown_label():
    with pytest.raises(KeyError, match="unknown DeathStarBench app"):
        deathstar_app("Nope")
    with pytest.raises(KeyError):
        social_network_app("MCompose")  # new labels are not SocialNetwork


# ------------------------------------------------- ledger / determinism

def test_bulk_root_offered_counts():
    from repro.check import CheckContext, NullCheckContext

    ctx = CheckContext(strict=True)
    ctx.root_offered(5)
    ctx.root_offered()
    assert ctx._roots_offered == 6
    NullCheckContext().root_offered(3)  # no-op, must accept n


@pytest.mark.parametrize("name", ["mmpp", "flash"])
def test_lb_path_byte_identical_to_per_server_at_one_server(name):
    """With one server, rr LB and zero hop cost, the dc tier consumes
    the same aggregate stream the per-server path would draw."""
    from repro.dc import DcConfig

    plain = simulate(CONFIG, social_network_app("Text"), 8000.0,
                     n_servers=1, duration_s=0.008, seed=2,
                     arrivals=name).as_dict()
    lb = simulate(CONFIG, social_network_app("Text"), 8000.0,
                  n_servers=1, duration_s=0.008, seed=2,
                  arrivals=name, dc=DcConfig(lb="rr")).as_dict()
    lb.pop("dc", None)
    plain.pop("dc", None)
    assert lb == plain


def test_checked_run_every_profile():
    from repro.check import CheckContext

    for name in ARRIVAL_NAMES:
        check = CheckContext(strict=True)
        simulate(CONFIG, social_network_app("Text"), 6000.0,
                 n_servers=2, duration_s=0.006, seed=4,
                 arrivals=name, check=check)
        assert check.ok, name


# ------------------------------------------------- hybrid drift guard

def _bursty_hybrid_sim(seed):
    from repro.hybrid import HybridConfig

    return ClusterSimulation(
        CONFIG, social_network_app("Text"), rps_per_server=16_000.0,
        n_servers=1, duration_s=0.012, seed=seed, arrivals="bursty",
        hybrid=HybridConfig(windows=3, min_samples=5,
                            window_ns=300_000.0, calibration_roots=10))


def test_hybrid_no_spurious_abort_on_bursty():
    """Stationary burstiness widens the guard band: the fast path must
    commit on a bursty run (default tol) and never strike out."""
    for seed in (1, 3, 7):
        stats = _bursty_hybrid_sim(seed).run().hybrid_stats
        assert stats["state"] == "committed", seed
        assert stats["aborts"] == 0, seed
        assert stats["roots_elided"] > 0, seed


def test_hybrid_guard_widening_is_load_bearing():
    """Counterfactual: force the stationary-poisson band (count_cv 0)
    onto the same bursty run — without the profile-aware widening the
    guard strikes spuriously."""
    sim = _bursty_hybrid_sim(3)
    sim.rate_profile = ConstantProfile()    # narrow band, bursty load
    stats = sim.run().hybrid_stats
    assert stats["aborts"] >= 1


def test_hybrid_poisson_guard_band_unchanged():
    """count_cv == 0.0 keeps the poisson guard arithmetic (and thus
    every pre-profile hybrid run) byte-identical."""
    sim = ClusterSimulation(CONFIG, social_network_app("Text"),
                            rps_per_server=16_000.0, n_servers=1,
                            duration_s=0.003, seed=7,
                            hybrid=None)
    assert sim.rate_profile.count_cv(0.01) == 0.0


# ------------------------------------------------- figW acceptance

def test_figw_flash_cells_acceptance():
    from repro.experiments.figW_scenarios import (
        QUICK_FLASH_DURATION_S,
        run_flash_cell,
    )

    auto = run_flash_cell(autoscale=True, hybrid=False,
                          duration_s=QUICK_FLASH_DURATION_S, quick=True)
    assert auto["scale_ups"] > 0          # the autoscaler reacts

    hyb = run_flash_cell(autoscale=False, hybrid=True,
                         duration_s=QUICK_FLASH_DURATION_S, quick=True)
    # Never commits through the ramp: either it aborts in the ramp or
    # it never reached commitment at all.
    assert not hyb["survived_ramp_committed"]
