"""Tests for the parallel cached sweep runner (repro.runner)."""

import json

import pytest

from repro.runner import (ParallelRunner, ResultCache, SweepPoint, SweepSpec,
                          clear_memo, executing, result_from_dict,
                          result_to_dict, run_points)
from repro.systems import SCALEOUT, UMANYCORE, simulate
from repro.telemetry import Tracer
from repro.workloads import SOCIAL_NETWORK_APPS

APP = SOCIAL_NETWORK_APPS["UrlShort"]


def point(config=UMANYCORE, rps=2000.0, seed=3, **kw):
    kw.setdefault("n_servers", 1)
    kw.setdefault("duration_s", 0.004)
    return SweepPoint(config=config, app=APP, rps=rps, seed=seed, **kw)


# ------------------------------------------------------------- SweepSpec

def test_spec_expansion_order_is_seed_load_app_config_major():
    spec = SweepSpec(configs=(UMANYCORE, SCALEOUT), apps=(APP,),
                     loads=(1000.0, 2000.0), seeds=(1, 2))
    labels = [p.label for p in spec.points()]
    assert len(spec) == len(labels) == 8
    assert labels[:4] == ["uManycore/UrlShort@1000 seed1",
                          "ScaleOut/UrlShort@1000 seed1",
                          "uManycore/UrlShort@2000 seed1",
                          "ScaleOut/UrlShort@2000 seed1"]
    assert all(lbl.endswith("seed2") for lbl in labels[4:])


def test_spec_rejects_empty_axes():
    with pytest.raises(ValueError):
        SweepSpec(configs=(), apps=(APP,), loads=(1000.0,))


# ------------------------------------------------------------- cache key

def test_key_is_stable_and_input_sensitive():
    assert point().key() == point().key()
    base = point().key()
    assert point(config=SCALEOUT).key() != base
    assert point(rps=2001.0).key() != base
    assert point(seed=4).key() != base


def test_key_sensitive_to_scheduling_policy_fields():
    """The policy knobs are SystemConfig fields, so they must enter the
    cache fingerprint — a policy change can never hit a stale entry."""
    from dataclasses import replace

    base = point().key()
    assert point(config=replace(UMANYCORE, dispatch="least")).key() != base
    assert point(config=replace(UMANYCORE, rq_policy="srpt")).key() != base
    assert point(config=replace(UMANYCORE, steal_policy="maxload")).key() \
        != base
    assert point(config=replace(UMANYCORE, core_bypass=True)).key() != base


def test_cache_roundtrip_preserves_sched_stats(tmp_path):
    from dataclasses import replace

    p = point(config=replace(UMANYCORE, core_bypass=True))
    result = p.run()
    assert result.sched_stats is not None
    assert result.sched_stats["bypasses"] > 0
    restored = result_from_dict(result_to_dict(result))
    assert restored.sched_stats == result.sched_stats
    cache = ResultCache(tmp_path)
    cache.put(p.key(), result)
    assert cache.get(p.key()).as_dict() == result.as_dict()


# ----------------------------------------------------------- round-trip

def run_direct(p):
    return simulate(p.config, p.app, rps_per_server=p.rps,
                    n_servers=p.n_servers, duration_s=p.duration_s,
                    seed=p.seed, warmup_fraction=p.warmup_fraction,
                    arrivals=p.arrivals)


def test_cache_roundtrip_preserves_every_field(tmp_path):
    p = point()
    result = p.run()
    restored = result_from_dict(result_to_dict(result))
    assert restored.as_dict() == result.as_dict()

    cache = ResultCache(tmp_path)
    assert cache.get(p.key()) is None and cache.misses == 1
    assert cache.put(p.key(), result)
    assert len(cache) == 1
    again = cache.get(p.key())
    assert cache.hits == 1
    assert again.as_dict() == result.as_dict()


def test_traced_results_are_not_cacheable(tmp_path):
    p = point()
    traced = simulate(p.config, p.app, rps_per_server=p.rps, n_servers=1,
                      duration_s=p.duration_s, seed=p.seed, tracer=Tracer())
    with pytest.raises(ValueError):
        result_to_dict(traced)
    cache = ResultCache(tmp_path)
    assert cache.put(p.key(), traced) is False
    assert len(cache) == 0


def test_cache_misses_on_config_change(tmp_path):
    cache = ResultCache(tmp_path)
    p = point()
    cache.put(p.key(), p.run())
    assert cache.get(point(config=SCALEOUT).key()) is None
    assert cache.get(point(seed=99).key()) is None
    assert cache.misses == 2 and cache.evicted == 0


def test_corrupted_entry_is_evicted_and_recomputed(tmp_path):
    cache = ResultCache(tmp_path)
    p = point()
    result = p.run()
    cache.put(p.key(), result)

    entry = cache._path(p.key())
    entry.write_text("{not json")
    assert cache.get(p.key()) is None
    assert cache.evicted == 1 and not entry.exists()

    # A healed cache accepts the recomputed entry again.
    cache.put(p.key(), result)
    assert cache.get(p.key()).as_dict() == result.as_dict()


def test_incompatible_schema_is_evicted(tmp_path):
    cache = ResultCache(tmp_path)
    p = point()
    cache.put(p.key(), p.run())
    entry = cache._path(p.key())
    doc = json.loads(entry.read_text())
    doc["schema"] = 999
    entry.write_text(json.dumps(doc))
    assert cache.get(p.key()) is None
    assert cache.evicted == 1


# ------------------------------------------------- execution equivalence

def test_serial_equals_parallel_equals_cached(tmp_path):
    points = [point(rps=r) for r in (1500.0, 2500.0, 3500.0)]
    serial = [run_direct(p) for p in points]

    cache = ResultCache(tmp_path)
    events = []
    runner = ParallelRunner(jobs=2, cache=cache, progress=events.append)
    cold = runner.run(points)
    assert [r.as_dict() for r in cold] == [r.as_dict() for r in serial]
    assert cache.misses == len(points)
    # Progress arrives in completion order; every point reports once.
    assert sorted(e["index"] for e in events) == [0, 1, 2]
    assert all(e["source"] == "run" and e["total"] == 3 for e in events)

    warm = ParallelRunner(jobs=2, cache=cache).run(points)
    assert cache.hits == len(points)
    assert [r.as_dict() for r in warm] == [r.as_dict() for r in serial]


def test_resume_runs_only_the_missing_points(tmp_path):
    points = [point(rps=1500.0), point(rps=2500.0)]
    cache = ResultCache(tmp_path)
    # Simulate an interrupted sweep: only the first point was stored.
    cache.put(points[0].key(), points[0].run())

    events = []
    results = ParallelRunner(jobs=1, cache=cache,
                             progress=events.append).run(points)
    assert cache.hits == 1 and cache.misses == 1
    sources = {e["index"]: e["source"] for e in events}
    assert sources == {0: "cache", 1: "run"}
    assert [r.as_dict() for r in results] == \
        [run_direct(p).as_dict() for p in points]


# ------------------------------------------------------ execution context

def test_run_points_memoizes_repeats_within_a_batch():
    clear_memo()
    p = point(rps=1800.0)
    a, b = run_points([p, p])
    assert a.as_dict() == b.as_dict()

    events = []
    (c,) = run_points([p], progress=events.append)
    assert events[0]["source"] == "memo"
    assert c.as_dict() == a.as_dict()
    clear_memo()


def test_executing_context_routes_runs_through_the_cache(tmp_path):
    clear_memo()
    p = point(rps=2200.0)
    cache = ResultCache(tmp_path)
    with executing(jobs=1, cache=cache):
        (first,) = run_points([p], memo=False)
        (second,) = run_points([p], memo=False)
    assert cache.misses == 1 and cache.hits == 1
    assert first.as_dict() == second.as_dict()
    assert first.as_dict() == run_direct(p).as_dict()
