"""Tests for the NIC dispatch, steal-victim and core-bypass policies
(the repro.sched pluggable decision points)."""

import numpy as np
import pytest

from repro.core import HARDWARE_CS, RequestRecord, SchedulerDomain, Village
from repro.sched.dispatch import AffinityDispatch, DISPATCH_NAMES, \
    LeastOccupancyDispatch, RandomDispatch, RoundRobinDispatch, \
    get_dispatch_policy
from repro.sched.stealing import FIRST_STEAL, MAXLOAD_STEAL, STEAL_NAMES, \
    MaxLoadSteal, get_steal_policy
from repro.sim import Engine


class StubNic:
    """Just enough NIC surface for a DispatchPolicy: rng + occupancy."""

    def __init__(self, occupancy=None, seed=0):
        self.rng = np.random.default_rng(seed)
        self._occupancy = occupancy or {}
        self.occupancy_of = self._occupancy.get


# ----------------------------------------------------------- registries

def test_dispatch_registry():
    assert DISPATCH_NAMES == ("affinity", "least", "random", "rr")
    assert isinstance(get_dispatch_policy("rr"), RoundRobinDispatch)
    # Stateful rotation: every NIC gets its own instance.
    assert get_dispatch_policy("rr") is not get_dispatch_policy("rr")
    with pytest.raises(ValueError):
        get_dispatch_policy("hash")


def test_steal_registry():
    assert STEAL_NAMES == ("first", "maxload")
    assert get_steal_policy("first") is FIRST_STEAL
    assert get_steal_policy("maxload") is MAXLOAD_STEAL
    with pytest.raises(ValueError):
        get_steal_policy("nearest")


# -------------------------------------------------------- round robin

def test_round_robin_rotates_per_service():
    p = RoundRobinDispatch()
    nic = StubNic()
    vs = [0, 1, 2]
    got = [p.choose(nic, "a", vs, vs) for __ in range(4)]
    assert got == [0, 1, 2, 0]
    # Rotations are independent per service.
    assert p.choose(nic, "b", vs, vs) == 0


def test_round_robin_skips_unhealthy_in_place():
    """A down village is skipped without shifting the rotation for the
    survivors — the pointer is keyed on the *unfiltered* list."""
    p = RoundRobinDispatch()
    nic = StubNic()
    vs = [0, 1, 2]
    assert p.choose(nic, "a", vs, vs) == 0
    # Village 1 goes down: its turn passes straight to 2.
    assert p.choose(nic, "a", vs, [0, 2]) == 2
    assert p.choose(nic, "a", vs, [0, 2]) == 0
    # Village 1 recovers and is back in its old rotation slot.
    assert p.choose(nic, "a", vs, vs) == 1


# ------------------------------------------------------------- random

def test_random_dispatch_uses_nic_rng():
    vs = [0, 1, 2, 3]
    a = [RandomDispatch().choose(StubNic(seed=5), "a", vs, vs)
         for __ in range(8)]
    b = [RandomDispatch().choose(StubNic(seed=5), "a", vs, vs)
         for __ in range(8)]
    assert a == b                    # deterministic given the NIC rng
    assert set(a) <= set(vs)


# ----------------------------------------------------- least occupancy

def test_least_occupancy_picks_shortest_queue():
    p = LeastOccupancyDispatch()
    nic = StubNic(occupancy={0: 5, 1: 2, 2: 9})
    assert p.choose(nic, "a", [0, 1, 2], [0, 1, 2]) == 1


def test_least_occupancy_tie_breaks_by_registration_order():
    p = LeastOccupancyDispatch()
    nic = StubNic(occupancy={0: 3, 1: 3, 2: 3})
    assert p.choose(nic, "a", [0, 1, 2], [0, 1, 2]) == 0
    assert p.choose(nic, "a", [0, 1, 2], [2, 1]) == 2


def test_needs_occupancy_flags():
    assert LeastOccupancyDispatch.needs_occupancy
    assert AffinityDispatch.needs_occupancy
    assert not RoundRobinDispatch.needs_occupancy
    assert not RandomDispatch.needs_occupancy


# ------------------------------------------------------------ affinity

def test_affinity_sticks_to_home_within_margin():
    p = AffinityDispatch(spill_margin=4)
    nic = StubNic(occupancy={0: 4, 1: 0})
    assert p.choose(nic, "a", [0, 1], [0, 1]) == 0   # 4 - 0 == margin
    assert p.spills == 0


def test_affinity_spills_past_margin():
    p = AffinityDispatch(spill_margin=4)
    nic = StubNic(occupancy={0: 5, 1: 0})
    assert p.choose(nic, "a", [0, 1], [0, 1]) == 1
    assert p.spills == 1


def test_affinity_pure_spill_when_home_down():
    p = AffinityDispatch(spill_margin=4)
    nic = StubNic(occupancy={1: 7, 2: 3})
    assert p.choose(nic, "a", [0, 1, 2], [1, 2]) == 2
    assert p.spills == 0             # not a load spill, home is absent


def test_affinity_rejects_negative_margin():
    with pytest.raises(ValueError):
        AffinityDispatch(spill_margin=-1)


# ----------------------------------------------------- steal policies

class StubExecutor:
    def __init__(self, engine, segment_ns=100.0):
        self.engine = engine
        self.segment_ns = segment_ns

    def segment_time_ns(self, rec, core):
        return self.segment_ns

    def segment_done(self, rec, village, core):
        village.finish(rec, core)


def make_request(service="svc", on_complete=None):
    return RequestRecord(app_name="app", service=service,
                         segments=[1000.0],
                         on_complete=on_complete or (lambda r: None))


def _villages(engine, n=3, **thief_kw):
    dom = SchedulerDomain(engine, HARDWARE_CS, freq_ghz=2.0)
    executor = StubExecutor(engine)
    peers = [Village(engine, i, 1, dom, executor) for i in range(n)]
    thief = Village(engine, n, 1, dom, executor, steal_from=peers,
                    **thief_kw)
    return thief, peers


def test_first_peer_steal_takes_list_order():
    eng = Engine()
    thief, peers = _villages(eng, steal_policy=FIRST_STEAL)
    # Fill peers without letting their own cores run.
    for v in peers:
        v.cores[0].busy = True
    peers[1].submit(make_request())
    peers[2].submit(make_request())
    rec = thief.steal_policy.steal(thief, thief.cores[0])
    assert rec is not None and rec.village == 1


def test_maxload_steal_raids_deepest_peer():
    eng = Engine()
    thief, peers = _villages(eng, steal_policy=MAXLOAD_STEAL)
    for v in peers:
        v.cores[0].busy = True
    peers[1].submit(make_request())
    for __ in range(3):
        peers[2].submit(make_request())
    rec = thief.steal_policy.steal(thief, thief.cores[0])
    assert rec is not None and rec.village == 2


def test_maxload_steal_ties_keep_list_order():
    eng = Engine()
    thief, peers = _villages(eng, steal_policy=MAXLOAD_STEAL)
    for v in peers:
        v.cores[0].busy = True
        v.submit(make_request())
    rec = thief.steal_policy.steal(thief, thief.cores[0])
    assert rec is not None and rec.village == 0


def test_maxload_steal_empty_peers_returns_none():
    eng = Engine()
    thief, __ = _villages(eng, steal_policy=MAXLOAD_STEAL)
    assert thief.steal_policy.steal(thief, thief.cores[0]) is None


def test_maxload_backlog_counts_soft_entries():
    class RQ:
        occupancy = 2
        soft_entries = 3

    class V:
        rq = RQ()

    assert MaxLoadSteal._backlog(V()) == 5


def test_village_counts_steals_and_finishes_stolen_work():
    eng = Engine()
    thief, peers = _villages(eng, steal_policy=MAXLOAD_STEAL,
                             steal_overhead_ns=10.0)
    done = []
    peers[0].cores[0].busy = True
    for __ in range(3):
        peers[0].submit(make_request(
            on_complete=lambda r: done.append(eng.now)))
    eng.schedule(1.0, thief._kick)
    eng.run()
    assert thief.steals > 0
    # Conservation stays at the owner: all three complete at peer 0's RQ.
    assert len(done) == 3
    assert peers[0].rq.occupancy == 0


# -------------------------------------------------------- core bypass

def test_bypass_runs_arrival_on_idle_core_immediately():
    eng = Engine()
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    village = Village(eng, 0, 1, dom, StubExecutor(eng), core_bypass=True)
    done = []
    village.submit(make_request(on_complete=lambda r: done.append(eng.now)))
    assert village.bypasses == 1
    assert village.cores[0].busy
    eng.run()
    assert len(done) == 1


def test_bypass_skipped_when_cores_busy():
    eng = Engine()
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    village = Village(eng, 0, 1, dom, StubExecutor(eng), core_bypass=True)
    village.submit(make_request())
    village.submit(make_request())   # core taken by the first
    assert village.bypasses == 1     # second one queued normally
    eng.run()
    assert village.completed == 2


def test_bypass_never_jumps_older_ready_work():
    """An arrival must not bypass past READY work already queued for the
    idle core (that would invert FCFS under the default policy)."""
    eng = Engine()
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    village = Village(eng, 0, 1, dom, StubExecutor(eng), core_bypass=True)
    # Queue an entry while the core is (artificially) busy...
    village.cores[0].busy = True
    first = make_request()
    village.submit(first)
    assert village.bypasses == 0
    # ...then free the core without kicking and submit a new arrival:
    # bypass must refuse because `first` is older and ready.
    village.cores[0].busy = False
    village.submit(make_request())
    assert village.bypasses == 0


def test_bypass_respects_service_partitioning():
    eng = Engine()
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    village = Village(eng, 0, 2, dom, StubExecutor(eng), core_bypass=True)
    village.cores[0].service = "a"
    village.cores[1].service = "b"
    village.submit(make_request(service="b"))
    assert village.bypasses == 1
    assert not village.cores[0].busy and village.cores[1].busy


def test_bypass_zeroes_queue_wait():
    eng = Engine()
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    village = Village(eng, 0, 1, dom, StubExecutor(eng), core_bypass=True)
    rec = make_request()
    village.submit(rec)
    eng.run()
    assert rec.queue_wait_ns == 0.0
