"""Path-redundancy under link failures, per topology.

The paper claims the hierarchical leaf-spine's "many redundant
equal-cost paths" (Section 4.2) as a robustness property.  These tests
pin the property down: leaf-spine connectivity survives *any* single
fabric link removal, while the 2D mesh's deterministic XY routing loses
routes even though the grid stays connected, and the fat-tree — a tree —
partitions outright on every link failure.
"""

import itertools

import pytest

from repro.icn import FatTree, HierarchicalLeafSpine, Mesh2D, NoPathError


def fabric_links(topo):
    """Every physical link once (the graph stores both directions)."""
    return sorted({tuple(sorted(link)) for link in topo.links})


def path_alive(topo, path):
    return all(topo.link_alive(u, v) for u, v in zip(path, path[1:]))


def loses_route(topo, src, dst):
    try:
        topo.path(src, dst)
        return False
    except NoPathError:
        return True


# ------------------------------------------------------------ leaf-spine


def test_leafspine_equal_cost_path_counts():
    topo = HierarchicalLeafSpine(n_pods=2, leaves_per_pod=4,
                                 spines_per_pod=3, n_core=5)
    intra = topo.equal_cost_paths(topo.leaf_name(0, 0), topo.leaf_name(0, 1))
    assert len(intra) == 3                      # one per pod spine
    cross = topo.equal_cost_paths(topo.leaf_name(0, 0), topo.leaf_name(1, 2))
    assert len(cross) == 3 * 5 * 3              # up spine x core x down spine
    assert all(len(p) == 5 for p in cross)      # all minimal: 4 hops
    assert len({tuple(p) for p in cross}) == len(cross)
    assert all(topo.validate_path(p) for p in cross)


def test_leafspine_alive_only_filters_failed_paths():
    topo = HierarchicalLeafSpine(n_pods=1, leaves_per_pod=2,
                                 spines_per_pod=3, n_core=1)
    src, dst = topo.leaf_name(0, 0), topo.leaf_name(0, 1)
    assert len(topo.equal_cost_paths(src, dst, alive_only=True)) == 3
    topo.fail_link(src, topo.spine_name(0, 0))
    alive = topo.equal_cost_paths(src, dst, alive_only=True)
    assert len(alive) == 2
    assert all(topo.spine_name(0, 0) not in p for p in alive)
    topo.recover_link(src, topo.spine_name(0, 0))
    assert len(topo.equal_cost_paths(src, dst, alive_only=True)) == 3


def test_leafspine_survives_any_single_link_failure():
    """ECMP redundancy: for every fabric link, killing it leaves all
    leaf pairs routable over surviving links."""
    topo = HierarchicalLeafSpine(n_pods=2, leaves_per_pod=2,
                                 spines_per_pod=2, n_core=2)
    pairs = [(topo.leaf_name(0, 0), topo.leaf_name(0, 1)),   # intra-pod
             (topo.leaf_name(0, 0), topo.leaf_name(1, 1)),   # cross-pod
             (topo.leaf_name(1, 0), topo.leaf_name(0, 1))]
    for u, v in fabric_links(topo):
        topo.fail_link(u, v)
        for src, dst in pairs:
            path = topo.path(src, dst)
            assert path_alive(topo, path), \
                f"route {src}->{dst} crosses dead link {u}-{v}"
        topo.recover_link(u, v)
    assert not topo.has_failures


# ------------------------------------------------------------------ mesh


def test_mesh_xy_blackholes_on_failed_link_though_grid_connected():
    topo = Mesh2D(3, 3)
    src, dst = topo.tile(0, 0), topo.tile(2, 0)
    topo.fail_link(topo.tile(0, 0), topo.tile(1, 0))
    # The grid itself is still connected...
    assert topo.shortest_path(src, dst)
    # ...but the XY dimension-order route is gone: blackhole.
    with pytest.raises(NoPathError):
        topo.path(src, dst)
    # Routes not crossing the dead link are unaffected.
    assert path_alive(topo, topo.path(topo.tile(0, 1), topo.tile(2, 1)))
    topo.recover_link(topo.tile(0, 0), topo.tile(1, 0))
    assert path_alive(topo, topo.path(src, dst))


def test_adaptive_mesh_detours_around_failure():
    topo = Mesh2D(3, 3, adaptive=True)
    src, dst = topo.tile(0, 0), topo.tile(2, 0)
    baseline = topo.path(src, dst)
    topo.fail_link(topo.tile(0, 0), topo.tile(1, 0))
    detour = topo.path(src, dst)
    assert len(detour) > len(baseline)
    assert path_alive(topo, detour)


# --------------------------------------------------------------- fat-tree


def test_fattree_any_single_link_failure_partitions():
    """The fabric is a tree: every link failure cuts some leaf pair off,
    and recovery restores it (no redundancy to fall back on)."""
    topo = FatTree(n_leaves=8)
    leaves = [topo.leaf(i) for i in range(topo.n_leaves)]
    for u, v in fabric_links(topo):
        topo.fail_link(u, v)
        cut = [(a, b) for a, b in itertools.combinations(leaves, 2)
               if loses_route(topo, a, b)]
        assert cut, f"link {u}-{v} should partition the tree"
        topo.recover_link(u, v)
        a, b = cut[0]
        assert path_alive(topo, topo.path(a, b))


# ----------------------------------------------------------- common rules


def test_fail_unknown_link_raises():
    with pytest.raises(KeyError):
        Mesh2D(2, 2).fail_link("t0,0", "t1,1")   # diagonal: no such link


def test_endpoint_link_failure_is_fatal_even_when_adaptive():
    """Attachment hops are fixed wires; rerouting cannot save them."""
    topo = HierarchicalLeafSpine(n_pods=1, leaves_per_pod=2,
                                 spines_per_pod=2, n_core=1)
    topo.attach("nicA", topo.leaf_name(0, 0))
    topo.fail_link("nicA", topo.leaf_name(0, 0))
    with pytest.raises(NoPathError):
        topo.path("nicA", topo.leaf_name(0, 1))
