"""Tests for the per-invocation state-fetch path and related Server
internals."""

import dataclasses

import numpy as np

from repro.core.request import RequestRecord
from repro.net.fabric import InterServerFabric, StorageBackend
from repro.sim import Engine
from repro.systems import SCALEOUT, UMANYCORE, Server
from repro.workloads import SOCIAL_NETWORK_APPS


def build(config, app_name="UrlShort", seed=0):
    engine = Engine()
    fabric = InterServerFabric(engine, 1)
    storage = StorageBackend(engine, np.random.default_rng(seed + 1))
    app = SOCIAL_NETWORK_APPS[app_name]
    server = Server(engine, 0, config, {app.name: app},
                    np.random.default_rng(seed), fabric, storage)
    return engine, server, app


def test_state_fetch_mostly_local_for_umanycore():
    """Villages + pools: >=85% of state fetches come from the local
    cluster, so local leaf->village links carry the traffic."""
    engine, server, __ = build(UMANYCORE)
    for __i in range(50):
        server.client_request("UrlShort", lambda rec: None)
    engine.run()
    # All uManycore state fetch hops are 1-hop (leaf -> village) when
    # local; remote ones add spine hops.  Measure the mean hops per
    # message as a proxy.
    mean_hops = server.network.hops_traversed / server.network.messages_sent
    assert mean_hops < 2.5


def test_state_fetch_crosses_fabric_for_global_coherence():
    engine, server, __ = build(SCALEOUT)
    for __i in range(50):
        server.client_request("UrlShort", lambda rec: None)
    engine.run()
    mean_hops = server.network.hops_traversed / server.network.messages_sent
    assert mean_hops > 2.5


def test_segment_done_waits_for_inflight_fetch():
    """If the state fetch has not arrived when the compute segment ends,
    the request stalls until the last fetch message lands."""
    engine, server, app = build(UMANYCORE)
    rec = server._make_request("UrlShort", "urlshorten",
                               lambda r: None)
    village = server.villages[server.top_nic.pick_village("urlshorten")]
    village.submit(rec)
    # Force a pending fetch and call segment_done directly.
    rec._fetch_remaining = 2
    rec._fetch_cont = None
    core = village.cores[0]
    server.segment_done(rec, village, core)
    assert rec._fetch_cont == (village, core)   # parked, not finished


def test_coherence_traffic_inflates_message_bytes():
    __, um, __a = build(UMANYCORE)
    __, so, __a2 = build(SCALEOUT)
    assert um._coh_bytes(1000) == 1000            # village coherence
    assert so._coh_bytes(1000) > 1000             # global coherence


def test_resume_penalty_zero_for_fresh_request():
    engine, server, __ = build(UMANYCORE)
    rec = RequestRecord("UrlShort", "urlshorten", [1000.0],
                        on_complete=lambda r: None)
    rec.village = 0
    assert server._resume_penalty_ns(rec, server.villages[0].cores[0]) == 0.0


def test_retry_counter_increments_on_full_rq():
    cfg = dataclasses.replace(UMANYCORE, name="uM-tiny-rq", rq_capacity=1,
                              n_cores=16, cores_per_queue=8, n_clusters=2)
    engine, server, __ = build(cfg, app_name="Text")
    for __i in range(50):
        server.client_request("Text", lambda rec: None)
    engine.run()
    assert server.retries > 0


def test_village_cluster_mapping():
    __, server, __a = build(UMANYCORE)
    assert server.village_cluster(0) == 0
    assert server.village_cluster(3) == 0     # 4 villages per cluster
    assert server.village_cluster(4) == 1
    assert server.village_cluster(127) == 31
