"""Tests for the service-graph IR and the SocialNetwork apps."""

import numpy as np
import pytest

from repro.workloads import (
    SOCIAL_NETWORK_APPS,
    STORAGE,
    AppSpec,
    CallSpec,
    ServiceSpec,
    social_network_app,
)


def simple_spec(**kw):
    defaults = dict(name="svc", segment_instructions=1000.0)
    defaults.update(kw)
    return ServiceSpec(**defaults)


def test_segments_one_more_than_calls():
    s = simple_spec(calls=(CallSpec(STORAGE), CallSpec(STORAGE)))
    assert s.n_segments == 3


def test_sample_segments_mean_close():
    rng = np.random.default_rng(0)
    s = simple_spec(segment_cv=0.5)
    samples = np.array([s.sample_segments(rng)[0] for __ in range(5000)])
    assert np.mean(samples) == pytest.approx(1000.0, rel=0.05)


def test_zero_cv_is_deterministic():
    rng = np.random.default_rng(0)
    s = simple_spec(segment_cv=0.0, calls=(CallSpec(STORAGE),))
    assert s.sample_segments(rng) == [1000.0, 1000.0]


def test_invalid_service_specs():
    with pytest.raises(ValueError):
        simple_spec(segment_instructions=0)
    with pytest.raises(ValueError):
        simple_spec(segment_cv=-1)


def test_app_spec_validates_call_targets():
    a = simple_spec(name="a", calls=(CallSpec("missing"),))
    with pytest.raises(ValueError):
        AppSpec(name="app", root="a", services={"a": a})


def test_app_spec_requires_root():
    a = simple_spec(name="a")
    with pytest.raises(ValueError):
        AppSpec(name="app", root="b", services={"a": a})


def test_app_spec_rejects_cycles():
    a = simple_spec(name="a", calls=(CallSpec("b"),))
    b = simple_spec(name="b", calls=(CallSpec("a"),))
    with pytest.raises(ValueError):
        AppSpec(name="app", root="a", services={"a": a, "b": b})


def test_mean_rpc_count_counts_nested_calls():
    leaf = simple_spec(name="leaf", calls=(CallSpec(STORAGE),))
    root = simple_spec(name="root", calls=(CallSpec("leaf"), CallSpec(STORAGE)))
    app = AppSpec(name="app", root="root", services={"root": root, "leaf": leaf})
    assert app.mean_rpc_count() == 3.0   # leaf call + its storage + own storage


def test_social_network_has_eight_apps():
    assert len(SOCIAL_NETWORK_APPS) == 8
    assert set(SOCIAL_NETWORK_APPS) == {
        "Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost",
        "UrlShort"}


def test_unknown_app_label_raises():
    with pytest.raises(KeyError):
        social_network_app("NoSuchApp")


def test_social_network_reachability_closed():
    for app in SOCIAL_NETWORK_APPS.values():
        for spec in app.services.values():
            for call in spec.calls:
                if not call.is_storage:
                    assert call.target in app.services


def test_average_rpc_count_near_paper():
    """Section 3.3: the average request performs ~3.1 RPC invocations."""
    counts = [app.mean_rpc_count() for app in SOCIAL_NETWORK_APPS.values()]
    avg = sum(counts) / len(counts)
    assert 2.0 < avg < 4.5


def test_average_execution_time_near_paper():
    """Section 3.3: average per-invocation execution time ~120 us.

    Instructions -> time at ~0.5 CPI on the 2 GHz uManycore cores; the
    paper's number is per dynamic service invocation, so divide the tree
    total by the number of invocations (RPC fanout).
    """
    per_invocation = []
    for app in SOCIAL_NETWORK_APPS.values():
        n_invocations = 1 + app.mean_rpc_count() / 2  # half the RPCs are storage
        per_invocation.append(app.mean_instructions() / n_invocations)
    avg_us = (sum(per_invocation) / len(per_invocation)) * 0.5 / 2.0 / 1000.0
    assert 40.0 < avg_us < 250.0


def test_cpost_is_heaviest_urlshort_lightest():
    rpc = {name: app.mean_rpc_count() for name, app in SOCIAL_NETWORK_APPS.items()}
    assert rpc["CPost"] == max(rpc.values())
    assert rpc["UrlShort"] == min(rpc.values())
