"""Tests for NICs, the ServiceMap dispatcher and the inter-server fabric."""

import numpy as np
import pytest

from repro.net import (
    FabricConfig,
    InterServerFabric,
    LNic,
    Message,
    MessageKind,
    NicConfig,
    RNic,
    StorageBackend,
    TopLevelNic,
)
from repro.sim import Engine


def test_message_ids_unique_and_kinds():
    eng = Engine()
    a = Message.create(eng, MessageKind.REQUEST, "svc")
    b = Message.create(eng, MessageKind.RESPONSE, "svc")
    assert a.msg_id != b.msg_id
    assert a.is_request and not b.is_request


def test_message_ids_are_run_local():
    # A fresh engine restarts the id sequence: two same-seed runs in one
    # process see identical ids (the determinism contract), unlike a
    # module-level counter.
    first = Message.create(Engine(), MessageKind.REQUEST, "svc")
    second = Message.create(Engine(), MessageKind.REQUEST, "svc")
    assert first.msg_id == second.msg_id == 0


def test_lnic_serializes_messages():
    eng = Engine()
    nic = LNic(eng, NicConfig(rpc_processing_ns=100.0, bytes_per_ns=100.0))
    done = []
    nic.process(1000, lambda: done.append(eng.now))
    nic.process(1000, lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(110.0), pytest.approx(220.0)]
    assert nic.messages == 2


def test_rnic_pays_transport_overhead():
    eng = Engine()
    lnic = LNic(eng, NicConfig())
    rnic = RNic(eng, NicConfig(transport_overhead_ns=200.0))
    times = {}
    lnic.process(512, lambda: times.__setitem__("l", eng.now))
    rnic.process(512, lambda: times.__setitem__("r", eng.now))
    eng.run()
    assert times["r"] == pytest.approx(times["l"] + 200.0)


def test_service_map_round_robin():
    nic = TopLevelNic(Engine())
    nic.register_instance("svc", 3)
    nic.register_instance("svc", 7)
    nic.register_instance("svc", 3)      # duplicate ignored
    picks = [nic.pick_village("svc") for __ in range(4)]
    assert picks == [3, 7, 3, 7]
    assert nic.villages_for("svc") == [3, 7]


def test_service_map_round_robin_skips_down_villages():
    nic = TopLevelNic(Engine())
    for v in (3, 7):
        nic.register_instance("svc", v)
    nic.mark_village_down(3)
    assert [nic.pick_village("svc") for __ in range(3)] == [7, 7, 7]
    nic.mark_village_down(7)
    with pytest.raises(KeyError):
        nic.pick_village("svc")


def test_service_map_rotation_survives_down_up_cycle():
    """The round-robin pointer rotates over the registered list, so a
    village going down and back up does not skew which instance the
    rotation hands out next.  The pre-fix code advanced the pointer over
    the *filtered* list, so after 0 recovered here the next pick was 2
    (skipping 0 entirely for a whole cycle)."""
    nic = TopLevelNic(Engine())
    for v in (0, 1, 2):
        nic.register_instance("svc", v)
    nic.mark_village_down(0)
    assert [nic.pick_village("svc") for __ in range(2)] == [1, 2]
    nic.mark_village_up(0)
    assert nic.pick_village("svc") == 0    # rotation resumes where it was


def test_service_map_exclude_prefers_alternative():
    nic = TopLevelNic(Engine())
    for v in (1, 2):
        nic.register_instance("svc", v)
    assert all(nic.pick_village("svc", exclude=1) == 2 for __ in range(4))
    # With a single instance the exclusion cannot be honoured.
    nic.register_instance("solo", 5)
    assert nic.pick_village("solo", exclude=5) == 5


def test_service_map_deregister():
    nic = TopLevelNic(Engine())
    nic.register_instance("svc", 1)
    nic.deregister_instance("svc", 1)
    with pytest.raises(KeyError):
        nic.pick_village("svc")


def test_unknown_service_raises():
    with pytest.raises(KeyError):
        TopLevelNic(Engine()).pick_village("ghost")


def test_nic_buffering_and_rejection():
    nic = TopLevelNic(Engine(), buffer_capacity=2)
    assert nic.try_buffer("a") and nic.try_buffer("b")
    assert not nic.try_buffer("c")
    assert nic.rejected == 1
    assert nic.drain_buffered() == "a"
    assert nic.buffered == 1


def test_nic_overflow_buffer_then_reject_then_recover():
    """Section 4.3 overflow path: fill the buffer, reject while full,
    drain FIFO back to empty, then accept again."""
    nic = TopLevelNic(Engine(), buffer_capacity=3)
    for item in ("a", "b", "c"):
        assert nic.try_buffer(item)
    assert nic.buffered == 3
    # Every attempt against a full buffer is a distinct rejection.
    assert not nic.try_buffer("d")
    assert not nic.try_buffer("e")
    assert nic.rejected == 2
    # Drain is FIFO and returns None once empty (not an exception).
    assert [nic.drain_buffered() for __ in range(4)] == \
        ["a", "b", "c", None]
    assert nic.buffered == 0
    # A drained buffer accepts again; past rejections stay counted.
    assert nic.try_buffer("f")
    assert nic.rejected == 2


def test_nic_zero_capacity_buffer_rejects_everything():
    nic = TopLevelNic(Engine(), buffer_capacity=0)
    assert not nic.try_buffer("a")
    assert nic.rejected == 1 and nic.buffered == 0
    assert nic.drain_buffered() is None


def test_rnic_default_config_includes_transport_overhead():
    """RNic() without a config models the lossy-network transport cost
    (200ns); an explicit config takes whatever overhead it specifies,
    including zero."""
    assert RNic(Engine()).config.transport_overhead_ns == 200.0
    assert RNic(Engine(), NicConfig()).config.transport_overhead_ns == 0.0
    eng = Engine()
    lnic = LNic(eng)
    rnic = RNic(eng)
    times = {}
    lnic.process(512, lambda: times.__setitem__("l", eng.now))
    rnic.process(512, lambda: times.__setitem__("r", eng.now))
    eng.run()
    assert times["r"] == pytest.approx(times["l"] + 200.0)


def test_rnic_transport_overhead_serializes_with_port():
    """Overhead is part of the port service time, so back-to-back
    messages pay it back-to-back (no pipelining through the port)."""
    eng = Engine()
    rnic = RNic(eng, NicConfig(rpc_processing_ns=100.0,
                               bytes_per_ns=100.0,
                               transport_overhead_ns=200.0))
    done = []
    rnic.process(1000, lambda: done.append(eng.now))
    rnic.process(1000, lambda: done.append(eng.now))
    eng.run()
    per_msg = 100.0 + 200.0 + 10.0
    assert done == [pytest.approx(per_msg), pytest.approx(2 * per_msg)]


def test_nics_emit_dispatch_spans_when_traced():
    from repro.telemetry import Tracer

    eng = Engine()
    eng.tracer = Tracer()
    lnic = LNic(eng, NicConfig(), name="v0.lnic")
    top = TopLevelNic(eng, NicConfig(), name="tnic")
    lnic.process(512, lambda: None)
    top.process(512, lambda: None)
    eng.run()
    spans = {(s.track, s.category) for s in eng.tracer.spans}
    assert ("v0.lnic", "nic_dispatch") in spans
    assert ("tnic", "nic_dispatch") in spans
    assert all(s.duration_ns > 0 for s in eng.tracer.spans)


def test_fabric_latency_and_serialization():
    eng = Engine()
    fabric = InterServerFabric(
        eng, 2, FabricConfig(one_way_latency_ns=500.0, bytes_per_ns=200.0))
    done = []
    fabric.send(0, 1, 2000, lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(500.0 + 10.0)]


def test_fabric_egress_contention():
    eng = Engine()
    fabric = InterServerFabric(eng, 2)
    done = []
    for __ in range(2):
        fabric.send(0, 1, 20_000, lambda: done.append(eng.now))
    eng.run()
    assert done[1] - done[0] == pytest.approx(100.0)  # second serializes


def test_fabric_validation():
    with pytest.raises(ValueError):
        InterServerFabric(Engine(), 0)


def test_storage_latency_distribution():
    eng = Engine()
    storage = StorageBackend(eng, np.random.default_rng(0),
                             FabricConfig(storage_mean_ns=100_000.0,
                                          storage_cv=1.2))
    latencies = []
    for __ in range(3000):
        storage.access(latencies.append)
    eng.run()
    assert np.mean(latencies) == pytest.approx(100_000.0, rel=0.1)
    assert np.percentile(latencies, 99) > 3 * np.mean(latencies)
    assert storage.accesses == 3000
