"""Tests for NICs, the ServiceMap dispatcher and the inter-server fabric."""

import numpy as np
import pytest

from repro.net import (
    FabricConfig,
    InterServerFabric,
    LNic,
    Message,
    MessageKind,
    NicConfig,
    RNic,
    StorageBackend,
    TopLevelNic,
)
from repro.sim import Engine


def test_message_ids_unique_and_kinds():
    a = Message(MessageKind.REQUEST, "svc")
    b = Message(MessageKind.RESPONSE, "svc")
    assert a.msg_id != b.msg_id
    assert a.is_request and not b.is_request


def test_lnic_serializes_messages():
    eng = Engine()
    nic = LNic(eng, NicConfig(rpc_processing_ns=100.0, bytes_per_ns=100.0))
    done = []
    nic.process(1000, lambda: done.append(eng.now))
    nic.process(1000, lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(110.0), pytest.approx(220.0)]
    assert nic.messages == 2


def test_rnic_pays_transport_overhead():
    eng = Engine()
    lnic = LNic(eng, NicConfig())
    rnic = RNic(eng, NicConfig(transport_overhead_ns=200.0))
    times = {}
    lnic.process(512, lambda: times.__setitem__("l", eng.now))
    rnic.process(512, lambda: times.__setitem__("r", eng.now))
    eng.run()
    assert times["r"] == pytest.approx(times["l"] + 200.0)


def test_service_map_round_robin():
    nic = TopLevelNic(Engine())
    nic.register_instance("svc", 3)
    nic.register_instance("svc", 7)
    nic.register_instance("svc", 3)      # duplicate ignored
    picks = [nic.pick_village("svc") for __ in range(4)]
    assert picks == [3, 7, 3, 7]
    assert nic.villages_for("svc") == [3, 7]


def test_service_map_deregister():
    nic = TopLevelNic(Engine())
    nic.register_instance("svc", 1)
    nic.deregister_instance("svc", 1)
    with pytest.raises(KeyError):
        nic.pick_village("svc")


def test_unknown_service_raises():
    with pytest.raises(KeyError):
        TopLevelNic(Engine()).pick_village("ghost")


def test_nic_buffering_and_rejection():
    nic = TopLevelNic(Engine(), buffer_capacity=2)
    assert nic.try_buffer("a") and nic.try_buffer("b")
    assert not nic.try_buffer("c")
    assert nic.rejected == 1
    assert nic.drain_buffered() == "a"
    assert nic.buffered == 1


def test_fabric_latency_and_serialization():
    eng = Engine()
    fabric = InterServerFabric(
        eng, 2, FabricConfig(one_way_latency_ns=500.0, bytes_per_ns=200.0))
    done = []
    fabric.send(0, 1, 2000, lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(500.0 + 10.0)]


def test_fabric_egress_contention():
    eng = Engine()
    fabric = InterServerFabric(eng, 2)
    done = []
    for __ in range(2):
        fabric.send(0, 1, 20_000, lambda: done.append(eng.now))
    eng.run()
    assert done[1] - done[0] == pytest.approx(100.0)  # second serializes


def test_fabric_validation():
    with pytest.raises(ValueError):
        InterServerFabric(Engine(), 0)


def test_storage_latency_distribution():
    eng = Engine()
    storage = StorageBackend(eng, np.random.default_rng(0),
                             FabricConfig(storage_mean_ns=100_000.0,
                                          storage_cv=1.2))
    latencies = []
    for __ in range(3000):
        storage.access(latencies.append)
    eng.run()
    assert np.mean(latencies) == pytest.approx(100_000.0, rel=0.1)
    assert np.percentile(latencies, 99) > 3 * np.mean(latencies)
    assert storage.accesses == 3000
