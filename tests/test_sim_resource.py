"""Unit tests + analytic validation for the Resource queueing model."""

import pytest

from repro.sim import Engine, Resource, RngStreams


def test_single_server_serializes_jobs():
    eng = Engine()
    res = Resource(eng, capacity=1)
    finishes = []
    res.acquire(10.0, lambda s, f: finishes.append((s, f)))
    res.acquire(10.0, lambda s, f: finishes.append((s, f)))
    eng.run()
    assert finishes == [(0.0, 10.0), (10.0, 20.0)]
    assert res.jobs_served == 2


def test_capacity_two_runs_jobs_in_parallel():
    eng = Engine()
    res = Resource(eng, capacity=2)
    finishes = []
    for __ in range(2):
        res.acquire(10.0, lambda s, f: finishes.append(f))
    eng.run()
    assert finishes == [10.0, 10.0]


def test_fifo_order_preserved():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []
    for i in range(5):
        res.acquire(1.0, lambda s, f, i=i: order.append(i))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_utilization_accounting():
    eng = Engine()
    res = Resource(eng, capacity=1)
    res.acquire(30.0, lambda s, f: None)
    eng.run()
    eng.now = 60.0
    assert res.utilization() == pytest.approx(0.5)


def test_negative_service_time_rejected():
    eng = Engine()
    res = Resource(eng)
    with pytest.raises(ValueError):
        res.acquire(-1.0, lambda s, f: None)


def test_mm1_queue_matches_theory():
    """M/M/1 with rho=0.5: mean sojourn time = 1/(mu-lambda)."""
    eng = Engine()
    res = Resource(eng, capacity=1)
    rng = RngStreams(seed=7).stream("mm1")
    mu = 1.0 / 10.0       # service rate per ns (mean service 10 ns)
    lam = 0.05            # arrival rate per ns -> rho = 0.5
    n_jobs = 40000
    sojourn = []

    t = 0.0
    for __ in range(n_jobs):
        t += rng.exponential(1.0 / lam)
        svc = rng.exponential(1.0 / mu)
        def arrive(svc=svc, arrival=t):
            res.acquire(svc, lambda s, f, a=arrival: sojourn.append(f - a))
        eng.schedule_at(t, arrive)
    eng.run()

    mean = sum(sojourn) / len(sojourn)
    expected = 1.0 / (mu - lam)   # 20 ns
    assert mean == pytest.approx(expected, rel=0.05)


def test_rng_streams_reproducible_and_independent():
    a1 = RngStreams(seed=1).stream("x").random(5)
    a2 = RngStreams(seed=1).stream("x").random(5)
    b = RngStreams(seed=1).stream("y").random(5)
    c = RngStreams(seed=2).stream("x").random(5)
    assert list(a1) == list(a2)
    assert list(a1) != list(b)
    assert list(a1) != list(c)
