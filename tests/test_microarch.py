"""Tests for the microarchitectural optimization models (Figure 1 substrate)."""

import numpy as np
import pytest

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.microarch.branch import (
    GSharePredictor,
    PerceptronPredictor,
    measure_accuracy,
)
from repro.cpu.microarch.evaluate import (
    OptimizationResult,
    evaluate_branch_predictor,
    evaluate_data_prefetcher,
    geometric_mean_speedup,
)
from repro.cpu.microarch.iprefetch import ISpyPrefetcher, run_instruction_prefetch
from repro.cpu.microarch.prefetch import (
    PythiaPrefetcher,
    StridePrefetcher,
    run_data_prefetch,
)
from repro.cpu.microarch.replacement import profile_transient_lines
from repro.cpu.traces import MICRO_PROFILES, MONO_PROFILES


@pytest.fixture
def rng():
    return np.random.default_rng(3)


def test_stride_prefetcher_learns_sequential_stream():
    cache = SetAssociativeCache(4096, 4)
    addrs = np.arange(0, 64 * 500, 64)
    run_data_prefetch(cache, StridePrefetcher(), addrs)
    # After the stride confirms, almost everything is prefetched ahead.
    assert cache.stats.hit_rate > 0.9


def test_stride_prefetcher_idle_on_random_stream(rng):
    cache = SetAssociativeCache(4096, 4)
    addrs = rng.integers(0, 1 << 24, 500) * 64
    run_data_prefetch(cache, StridePrefetcher(), addrs)
    assert cache.stats.hit_rate < 0.2


def test_pythia_learns_constant_offset_pattern(rng):
    cache = SetAssociativeCache(4096, 4)
    addrs = np.arange(0, 64 * 2000, 64)
    pf = PythiaPrefetcher(rng=rng)
    run_data_prefetch(cache, pf, addrs)
    assert pf.rewarded > 0
    assert cache.stats.hit_rate > 0.5


def test_gshare_learns_biased_branch():
    g = GSharePredictor()
    # Always-taken branch converges fast.
    acc = measure_accuracy(g, np.zeros(500, dtype=int), np.ones(500, dtype=np.int8))
    assert acc > 0.95


def test_perceptron_learns_history_pattern_gshare_struggles_on():
    """Outcome = parity of last 10 outcomes: linearly separable for a
    perceptron with history >= 10... parity is NOT linearly separable; use
    a single-history-bit correlation instead (out[t] = out[t-7])."""
    n = 6000
    taken = np.zeros(n, dtype=np.int8)
    state = [1, 0, 1, 1, 0, 1, 0]
    for i in range(n):
        taken[i] = state[i % 7]
    pcs = np.zeros(n, dtype=int)
    acc_p = measure_accuracy(PerceptronPredictor(history_len=24), pcs, taken)
    assert acc_p > 0.95  # periodic pattern is linearly separable in history


def test_branch_eval_perceptron_beats_gshare_on_mono(rng):
    res = evaluate_branch_predictor(
        MONO_PROFILES[0], GSharePredictor, PerceptronPredictor, rng,
        n_branches=40_000)
    assert res.speedup > 1.10


def test_branch_eval_marginal_on_micro(rng):
    res = evaluate_branch_predictor(
        MICRO_PROFILES[0], GSharePredictor, PerceptronPredictor, rng,
        n_branches=60_000)
    assert res.speedup < 1.09


def test_ispy_prefetcher_reduces_icache_misses(rng):
    from repro.cpu.traces import instruction_address_trace

    addrs = instruction_address_trace(MONO_PROFILES[0], 60_000, rng)
    base = SetAssociativeCache(64 * 1024, 8)
    for a in addrs:
        base.access(int(a))
    opt = SetAssociativeCache(64 * 1024, 8)
    run_instruction_prefetch(opt, ISpyPrefetcher(), addrs)
    assert opt.stats.misses < base.stats.misses


def test_profile_transient_lines_finds_streaming_lines():
    # 10 hot lines touched constantly + 1000 lines touched once each.
    hot = np.tile(np.arange(10) * 64, 200)
    cold = (np.arange(1000) + 100) * 64
    trace = np.concatenate([hot[:1000], cold, hot[1000:]])
    transient = profile_transient_lines(trace, cache_lines=64)
    hot_lines = set(range(10))
    assert hot_lines.isdisjoint(transient)
    assert len(transient) >= 900  # the streaming lines


def test_data_prefetch_eval_mono_gains_more_than_micro(rng):
    mono = evaluate_data_prefetcher(MONO_PROFILES[0], PythiaPrefetcher, rng,
                                    n_accesses=40_000)
    micro = evaluate_data_prefetcher(MICRO_PROFILES[0], PythiaPrefetcher, rng,
                                     n_accesses=40_000)
    assert mono.speedup >= micro.speedup
    assert micro.speedup < 1.10


def test_geometric_mean_speedup():
    results = [OptimizationResult("a", "mono", 2.0, 1.0),
               OptimizationResult("b", "mono", 1.0, 2.0)]
    assert geometric_mean_speedup(results) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        geometric_mean_speedup([])
