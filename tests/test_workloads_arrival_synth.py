"""Tests for arrivals, synthetic apps and the Alibaba generator."""

import numpy as np
import pytest

from repro.workloads import (
    SYNTHETIC_DISTRIBUTIONS,
    AlibabaTraceGenerator,
    PoissonArrivals,
    arrival_times,
    synthetic_app,
)


# ----------------------------------------------------------------- arrivals

def test_poisson_iterator_monotone():
    rng = np.random.default_rng(0)
    arr = PoissonArrivals(1e6, rng)
    times = [next(arr) for __ in range(100)]
    assert all(b > a for a, b in zip(times, times[1:]))


def test_poisson_rate():
    rng = np.random.default_rng(0)
    times = arrival_times(50_000, 1.0, rng)
    assert len(times) == pytest.approx(50_000, rel=0.05)
    assert times[-1] < 1e9


def test_arrival_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        PoissonArrivals(0, rng)
    with pytest.raises(ValueError):
        arrival_times(100, 0, rng)


def test_arrivals_reproducible():
    a = arrival_times(1000, 0.5, np.random.default_rng(5))
    b = arrival_times(1000, 0.5, np.random.default_rng(5))
    assert (a == b).all()


# ---------------------------------------------------------------- synthetic

def test_synthetic_app_structure():
    app = synthetic_app("exponential", blocking_calls=3)
    spec = app.services[app.root]
    assert spec.n_segments == 4
    assert all(c.is_storage for c in spec.calls)


def test_synthetic_distributions_mean():
    rng = np.random.default_rng(1)
    for dist in SYNTHETIC_DISTRIBUTIONS:
        app = synthetic_app(dist, mean_service_us=50.0, blocking_calls=4)
        spec = app.services[app.root]
        totals = [sum(spec.sample_segments(rng)) for __ in range(4000)]
        expected = spec.segment_instructions * spec.n_segments
        assert np.mean(totals) == pytest.approx(expected, rel=0.08), dist


def test_bimodal_has_two_modes():
    rng = np.random.default_rng(2)
    app = synthetic_app("bimodal")
    spec = app.services[app.root]
    totals = np.array([sum(spec.sample_segments(rng)) for __ in range(2000)])
    assert len(np.unique(np.round(totals))) == 2
    assert totals.max() / totals.min() == pytest.approx(10.0, rel=0.01)


def test_lognormal_heavier_tail_than_exponential():
    rng = np.random.default_rng(3)

    def p99_over_mean(dist):
        spec = synthetic_app(dist).services[f"synthetic-{dist}"]
        totals = np.array([sum(spec.sample_segments(rng)) for __ in range(20000)])
        return np.percentile(totals, 99) / totals.mean()

    assert p99_over_mean("lognormal") > p99_over_mean("exponential")


def test_synthetic_validation():
    with pytest.raises(ValueError):
        synthetic_app("uniform")
    with pytest.raises(ValueError):
        synthetic_app("exponential", blocking_calls=1)
    with pytest.raises(ValueError):
        synthetic_app("exponential", blocking_calls=7)


# ------------------------------------------------------------------ alibaba

@pytest.fixture(scope="module")
def summary():
    gen = AlibabaTraceGenerator(np.random.default_rng(7))
    return gen.summary(n=200_000)


def test_alibaba_rps_marginals(summary):
    """Figure 2: median ~500 RPS; ~20% >= 1000; ~5% >= 1500."""
    assert summary["rps_median"] == pytest.approx(500, rel=0.05)
    assert 0.12 < summary["rps_frac_ge_1000"] < 0.25
    assert 0.03 < summary["rps_frac_ge_1500"] < 0.10


def test_alibaba_util_marginals(summary):
    """Figure 4: median ~14%; 99% of requests below 60%."""
    assert summary["util_median"] == pytest.approx(0.14, rel=0.08)
    assert summary["util_p99"] <= 0.65


def test_alibaba_rpc_marginals(summary):
    """Figure 5: median ~4.2 RPCs; ~5% >= 16."""
    assert 3.5 <= summary["rpc_median"] <= 5.0
    assert 0.03 < summary["rpc_frac_ge_16"] < 0.08


def test_alibaba_duration_marginals(summary):
    """Section 3.3: 36.7% < 1 ms; geomean of the rest ~2.8 ms."""
    assert summary["dur_frac_lt_1ms"] == pytest.approx(0.367, abs=0.02)
    assert summary["dur_geomean_ge_1ms"] == pytest.approx(2.8, rel=0.08)


def test_cdf_helper():
    from repro.workloads.alibaba import cdf

    values = np.array([1.0, 2.0, 3.0, 4.0])
    grid = np.array([0.0, 2.5, 10.0])
    assert list(cdf(values, grid)) == [0.0, 0.5, 1.0]
