"""Determinism regression: same seed => byte-identical results.

The simulation contract is that a run is a pure function of
(config, app, load, seed).  These tests pin that down end to end,
including the telemetry span stream — trace exports must not leak
process-global state (object ids, global counters, wall-clock time).
"""

import json
from dataclasses import replace

from repro.systems.cluster import simulate
from repro.systems.configs import SCALEOUT, UMANYCORE
from repro.telemetry import Tracer, chrome_trace, spans_as_dicts
from repro.workloads.deathstar import social_network_app


def _traced_run(config, seed=7):
    tracer = Tracer()
    result = simulate(config, social_network_app("Text"),
                      rps_per_server=5000, n_servers=2, duration_s=0.005,
                      seed=seed, tracer=tracer)
    return result, tracer


def test_same_seed_identical_summary():
    a, __ = _traced_run(UMANYCORE)
    b, __ = _traced_run(UMANYCORE)
    assert a.summary.as_dict() == b.summary.as_dict()
    assert (a.completed, a.rejected, a.offered) == \
        (b.completed, b.rejected, b.offered)
    assert json.dumps(a.as_dict(), sort_keys=True) == \
        json.dumps(b.as_dict(), sort_keys=True)


def test_same_seed_identical_span_stream():
    __, ta = _traced_run(SCALEOUT)
    __, tb = _traced_run(SCALEOUT)
    assert len(ta.spans) == len(tb.spans)
    # Flat span dump and the Chrome trace must serialize byte-identically
    # even though the two tracers live in one process (request indices are
    # trace-local, never the global RequestRecord counter).
    assert json.dumps(spans_as_dicts(ta)) == json.dumps(spans_as_dicts(tb))
    assert json.dumps(chrome_trace(ta), sort_keys=True) == \
        json.dumps(chrome_trace(tb), sort_keys=True)


def test_different_seed_differs():
    a, __ = _traced_run(UMANYCORE, seed=7)
    b, __ = _traced_run(UMANYCORE, seed=8)
    assert a.summary.as_dict() != b.summary.as_dict()


# ------------------------------------------------- faults stay deterministic

def _faulted_run(seed=7):
    """A run with a village outage and an aggressive resilience policy
    chosen to exercise every recovery path (timeouts, retries, hedges)."""
    from repro.faults import FaultSchedule, ResilienceConfig

    sched = FaultSchedule(detection_ns=50_000.0) \
        .fail_village(0, 1, at_ns=1_000_000.0, recover_at_ns=3_000_000.0) \
        .degrade_village(1, 2, at_ns=500_000.0, factor=6.0)
    policy = ResilienceConfig(timeout_ns=400_000.0, max_retries=3,
                              hedge_delay_ns=250_000.0)
    tracer = Tracer()
    result = simulate(UMANYCORE, social_network_app("Text"),
                      rps_per_server=5000, n_servers=2, duration_s=0.005,
                      seed=seed, tracer=tracer, faults=sched,
                      resilience=policy)
    return result, tracer


def test_same_seed_same_schedule_identical_including_recovery_spans():
    """(config, app, load, seed, schedule) -> byte-identical output, and
    the recovery machinery actually fired (the equality is not vacuous)."""
    a, ta = _faulted_run()
    b, tb = _faulted_run()
    assert json.dumps(a.as_dict(), sort_keys=True) == \
        json.dumps(b.as_dict(), sort_keys=True)
    assert json.dumps(spans_as_dicts(ta)) == json.dumps(spans_as_dicts(tb))
    assert json.dumps(chrome_trace(ta), sort_keys=True) == \
        json.dumps(chrome_trace(tb), sort_keys=True)
    categories = {s.category for s in ta.spans}
    assert {"retry", "hedge", "blackhole_wait"} <= categories
    assert a.fault_stats["rpc_retries"] > 0
    assert a.fault_stats["rpc_hedges"] > 0


class TestSchedulingPolicies:
    """Determinism of the pluggable repro.sched layer."""

    def test_every_policy_key_ends_with_rq_seq(self):
        """Tie-breaking audit: every registered dequeue policy's key must
        end with the queue's own admission counter, so ties never fall
        through to object identity or insertion races."""
        from repro.core.request import RequestRecord
        from repro.sched.policies import POLICY_NAMES, get_policy

        r = RequestRecord(app_name="app", service="svc",
                          segments=[100.0], on_complete=lambda x: None)
        r._rq_seq = 41
        r.arrival_ns = 7.0
        for name in POLICY_NAMES:
            key = get_policy(name).key(r)
            assert key[-1] == 41, f"{name} key must end with _rq_seq"

    def test_same_seed_identical_with_all_policies_enabled(self):
        """(config, seed) -> byte-identical output holds off the default
        path too: occupancy dispatch, SJF ordering, maxload stealing and
        core bypass all enabled at once."""
        cfg = replace(UMANYCORE, dispatch="least", rq_policy="sjf",
                      work_steal=True, steal_policy="maxload",
                      core_bypass=True)
        a, ta = _traced_run(cfg)
        b, tb = _traced_run(cfg)
        assert json.dumps(a.as_dict(), sort_keys=True) == \
            json.dumps(b.as_dict(), sort_keys=True)
        assert json.dumps(spans_as_dicts(ta)) == \
            json.dumps(spans_as_dicts(tb))
        # The equality is not vacuous: the policy layer actually fired.
        assert a.sched_stats is not None
        assert a.sched_stats["bypasses"] > 0

    def test_random_dispatch_deterministic_per_seed(self):
        cfg = replace(UMANYCORE, dispatch="random")
        a, __ = _traced_run(cfg)
        b, __ = _traced_run(cfg)
        c, __ = _traced_run(cfg, seed=9)
        assert json.dumps(a.as_dict(), sort_keys=True) == \
            json.dumps(b.as_dict(), sort_keys=True)
        assert a.summary.as_dict() != c.summary.as_dict()

    def test_explicit_default_policies_byte_identical_to_implicit(self):
        """Naming the defaults must not perturb the run at all — same
        RNG draws, same spans, same summary (the refactor's
        zero-behaviour-change contract)."""
        explicit = replace(UMANYCORE, dispatch="rr", rq_policy="fcfs",
                           steal_policy="first", core_bypass=False)
        a, ta = _traced_run(UMANYCORE)
        b, tb = _traced_run(explicit)
        assert json.dumps(a.as_dict(), sort_keys=True) == \
            json.dumps(b.as_dict(), sort_keys=True)
        assert json.dumps(spans_as_dicts(ta)) == \
            json.dumps(spans_as_dicts(tb))


def test_empty_fault_schedule_is_byte_identical_to_no_schedule():
    """Zero-overhead default: an empty schedule must not perturb the run
    at all — same RNG draws, same spans, same summary."""
    from repro.faults import FaultSchedule

    plain, t_plain = _traced_run(UMANYCORE)
    t_empty = Tracer()
    empty = simulate(UMANYCORE, social_network_app("Text"),
                     rps_per_server=5000, n_servers=2, duration_s=0.005,
                     seed=7, tracer=t_empty, faults=FaultSchedule())
    assert json.dumps(plain.as_dict(), sort_keys=True) == \
        json.dumps(empty.as_dict(), sort_keys=True)
    assert json.dumps(spans_as_dicts(t_plain)) == \
        json.dumps(spans_as_dicts(t_empty))
