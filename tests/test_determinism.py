"""Determinism regression: same seed => byte-identical results.

The simulation contract is that a run is a pure function of
(config, app, load, seed).  These tests pin that down end to end,
including the telemetry span stream — trace exports must not leak
process-global state (object ids, global counters, wall-clock time).
"""

import json

from repro.systems.cluster import simulate
from repro.systems.configs import SCALEOUT, UMANYCORE
from repro.telemetry import Tracer, chrome_trace, spans_as_dicts
from repro.workloads.deathstar import social_network_app


def _traced_run(config, seed=7):
    tracer = Tracer()
    result = simulate(config, social_network_app("Text"),
                      rps_per_server=5000, n_servers=2, duration_s=0.005,
                      seed=seed, tracer=tracer)
    return result, tracer


def test_same_seed_identical_summary():
    a, __ = _traced_run(UMANYCORE)
    b, __ = _traced_run(UMANYCORE)
    assert a.summary.as_dict() == b.summary.as_dict()
    assert (a.completed, a.rejected, a.offered) == \
        (b.completed, b.rejected, b.offered)
    assert json.dumps(a.as_dict(), sort_keys=True) == \
        json.dumps(b.as_dict(), sort_keys=True)


def test_same_seed_identical_span_stream():
    __, ta = _traced_run(SCALEOUT)
    __, tb = _traced_run(SCALEOUT)
    assert len(ta.spans) == len(tb.spans)
    # Flat span dump and the Chrome trace must serialize byte-identically
    # even though the two tracers live in one process (request indices are
    # trace-local, never the global RequestRecord counter).
    assert json.dumps(spans_as_dicts(ta)) == json.dumps(spans_as_dicts(tb))
    assert json.dumps(chrome_trace(ta), sort_keys=True) == \
        json.dumps(chrome_trace(tb), sort_keys=True)


def test_different_seed_differs():
    a, __ = _traced_run(UMANYCORE, seed=7)
    b, __ = _traced_run(UMANYCORE, seed=8)
    assert a.summary.as_dict() != b.summary.as_dict()
