"""Unit tests for the discrete-event engine.

Every micro-semantics test runs against BOTH queue backends (the
default C-heapq and the calendar queue): the two must agree on the
full ``(time, seq)`` total order — same-time FIFO, cancellation,
clock clamping and event budgets included — because the simulation's
byte-identity contract rides on it (see docs/PERFORMANCE.md).
"""

import pytest

from repro.sim import Engine
from repro.sim.engine import CalendarEngine

BACKENDS = ("heapq", "calendar")


@pytest.fixture(params=BACKENDS)
def eng(request):
    return Engine(queue=request.param)


def test_backend_selection():
    assert Engine().queue_backend == "heapq"
    assert Engine(queue="heapq").queue_backend == "heapq"
    cal = Engine(queue="calendar")
    assert cal.queue_backend == "calendar"
    assert isinstance(cal, CalendarEngine)
    assert isinstance(cal, Engine)
    with pytest.raises(ValueError):
        Engine(queue="fibheap")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
    assert Engine().queue_backend == "calendar"
    # An explicit argument beats the environment.
    assert Engine(queue="heapq").queue_backend == "heapq"


def test_events_fire_in_time_order(eng):
    fired = []
    eng.schedule(5.0, fired.append, "late")
    eng.schedule(1.0, fired.append, "early")
    eng.schedule(3.0, fired.append, "mid")
    eng.run()
    assert fired == ["early", "mid", "late"]
    assert eng.now == 5.0


def test_same_time_events_fire_in_scheduling_order(eng):
    fired = []
    for i in range(10):
        eng.schedule(1.0, fired.append, i)
    eng.run()
    assert fired == list(range(10))


def test_cancelled_event_does_not_fire(eng):
    fired = []
    ev = eng.schedule(1.0, fired.append, "x")
    ev.cancel()
    eng.schedule(2.0, fired.append, "y")
    eng.run()
    assert fired == ["y"]


def test_peek_time_skips_cancelled_events(eng):
    first = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.peek_time() == 1.0
    first.cancel()
    assert eng.peek_time() == 2.0


def test_peek_time_empty_after_all_cancelled(eng):
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    assert eng.peek_time() is None


def test_step_skips_cancelled_and_advances_clock(eng):
    fired = []
    ev = eng.schedule(1.0, fired.append, "dead")
    eng.schedule(2.0, fired.append, "live")
    ev.cancel()
    assert eng.step() is True
    assert fired == ["live"] and eng.now == 2.0
    assert eng.step() is False


def test_run_until_stops_clock_at_bound(eng):
    fired = []
    eng.schedule(1.0, fired.append, "a")
    eng.schedule(10.0, fired.append, "b")
    eng.run(until=5.0)
    assert fired == ["a"]
    assert eng.now == 5.0
    eng.run()
    assert fired == ["a", "b"]


def test_run_until_earlier_horizon_does_not_rewind_clock(eng):
    """A second run() with an until below the current time must clamp
    rather than move the clock backwards past times already handed out."""
    eng.schedule(10.0, lambda: None)
    eng.run()
    assert eng.now == 10.0
    eng.schedule(5.0, lambda: None)      # pending at t=15
    eng.run(until=3.0)                   # horizon already in the past
    assert eng.now == 10.0               # clock did not rewind
    eng.run()
    assert eng.now == 15.0


def test_schedule_during_event_execution(eng):
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            eng.schedule(1.0, chain, n + 1)

    eng.schedule(0.0, chain, 0)
    eng.run()
    assert fired == [0, 1, 2, 3]
    assert eng.now == 3.0


def test_negative_delay_rejected(eng):
    with pytest.raises(ValueError):
        eng.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time(eng):
    fired = []
    eng.schedule_at(4.0, fired.append, "x")
    eng.run()
    assert eng.now == 4.0 and fired == ["x"]
    with pytest.raises(ValueError):
        eng.schedule_at(1.0, fired.append, "past")


def test_schedule_at_batch_matches_loop(eng):
    """Batch insertion must replay a schedule_at loop exactly —
    same (time, seq) order, including ties across the two paths."""
    fired = []
    times = [3.0, 3.0, 7.5, 7.5, 12.0]
    eng.schedule(3.0, fired.append, ("pre", 3.0))
    eng.schedule_at_batch(times, lambda t: fired.append(("batch", t)),
                          append_time=True)
    eng.schedule(3.0, fired.append, ("post", 3.0))
    eng.run()
    assert fired == [("pre", 3.0), ("batch", 3.0), ("batch", 3.0),
                     ("post", 3.0), ("batch", 7.5), ("batch", 7.5),
                     ("batch", 12.0)]


def test_schedule_at_batch_past_time_rejected(eng):
    eng.schedule(2.0, lambda: None)
    eng.run()
    with pytest.raises(ValueError):
        eng.schedule_at_batch([1.0], lambda t: None, append_time=True)


def test_max_events_bound(eng):
    fired = []
    for i in range(5):
        eng.schedule(float(i), fired.append, i)
    eng.run(max_events=2)
    assert fired == [0, 1]


def test_events_processed_counter(eng):
    for i in range(7):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert eng.events_processed == 7


def test_backends_agree_on_adversarial_schedule():
    """Cross-check the calendar queue against heapq on a schedule built
    to stress its mechanics: far-future events (overflow heap), dense
    same-bucket ties (width retune), reschedules below the cursor, and
    mid-run cancellations."""
    import numpy as np

    def drive(backend):
        rng = np.random.default_rng(1234)
        eng = Engine(queue=backend)
        fired = []
        pending = []

        def fire(tag):
            fired.append((round(eng.now, 9), tag))
            # Occasionally cancel a pending event and schedule new ones
            # (some near, some far beyond the calendar window).
            if pending and tag % 3 == 0:
                pending.pop(len(pending) // 2).cancel()
            if tag < 400:
                delay = float(rng.choice([0.0, 0.25, 1.0, 900_000.0]))
                pending.append(eng.schedule(delay, fire, tag + 400))

        for i in range(400):
            t = float(rng.integers(0, 50)) * 0.5   # heavy ties
            pending.append(eng.schedule_at(t, fire, i))
        eng.run()
        return fired, eng.now, eng.events_processed

    assert drive("heapq") == drive("calendar")
