"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Engine


def test_events_fire_in_time_order():
    eng = Engine()
    fired = []
    eng.schedule(5.0, fired.append, "late")
    eng.schedule(1.0, fired.append, "early")
    eng.schedule(3.0, fired.append, "mid")
    eng.run()
    assert fired == ["early", "mid", "late"]
    assert eng.now == 5.0


def test_same_time_events_fire_in_scheduling_order():
    eng = Engine()
    fired = []
    for i in range(10):
        eng.schedule(1.0, fired.append, i)
    eng.run()
    assert fired == list(range(10))


def test_cancelled_event_does_not_fire():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, fired.append, "x")
    ev.cancel()
    eng.schedule(2.0, fired.append, "y")
    eng.run()
    assert fired == ["y"]


def test_run_until_stops_clock_at_bound():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, "a")
    eng.schedule(10.0, fired.append, "b")
    eng.run(until=5.0)
    assert fired == ["a"]
    assert eng.now == 5.0
    eng.run()
    assert fired == ["a", "b"]


def test_run_until_earlier_horizon_does_not_rewind_clock():
    """A second run() with an until below the current time must clamp
    rather than move the clock backwards past times already handed out."""
    eng = Engine()
    eng.schedule(10.0, lambda: None)
    eng.run()
    assert eng.now == 10.0
    eng.schedule(5.0, lambda: None)      # pending at t=15
    eng.run(until=3.0)                   # horizon already in the past
    assert eng.now == 10.0               # clock did not rewind
    eng.run()
    assert eng.now == 15.0


def test_schedule_during_event_execution():
    eng = Engine()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            eng.schedule(1.0, chain, n + 1)

    eng.schedule(0.0, chain, 0)
    eng.run()
    assert fired == [0, 1, 2, 3]
    assert eng.now == 3.0


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    eng = Engine()
    fired = []
    eng.schedule_at(4.0, fired.append, "x")
    eng.run()
    assert eng.now == 4.0 and fired == ["x"]
    with pytest.raises(ValueError):
        eng.schedule_at(1.0, fired.append, "past")


def test_max_events_bound():
    eng = Engine()
    fired = []
    for i in range(5):
        eng.schedule(float(i), fired.append, i)
    eng.run(max_events=2)
    assert fired == [0, 1]


def test_events_processed_counter():
    eng = Engine()
    for i in range(7):
        eng.schedule(float(i), lambda: None)
    eng.run()
    assert eng.events_processed == 7
