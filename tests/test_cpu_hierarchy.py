"""Tests for the multi-level cache hierarchy walker."""

from repro.cpu.hierarchy import (
    SCALEOUT_HIERARCHY,
    SERVERCLASS_HIERARCHY,
    UMANYCORE_HIERARCHY,
    CacheHierarchy,
)


def test_latency_accumulates_through_levels():
    h = CacheHierarchy(UMANYCORE_HIERARCHY)
    c = h.config
    # Cold access: TLB miss (page walk) + L1 miss + L2 miss + memory.
    cold = h.access_data(0)
    assert cold == (c.l1_tlb_latency + c.memory_latency  # TLB walk
                    + c.l1_latency + c.l2_latency + c.memory_latency)
    # Warm access: TLB hit + L1 hit.
    warm = h.access_data(0)
    assert warm == c.l1_tlb_latency + c.l1_latency


def test_l2_hit_path():
    h = CacheHierarchy(UMANYCORE_HIERARCHY)
    c = h.config
    h.access_data(0)
    # Evict the L1 line by filling its set (8-way, 64KB/8/64 = 128 sets).
    stride = 64 * 128
    for i in range(1, 9):
        h.access_data(i * stride)
    lat = h.access_data(0)
    # addr 0 now misses L1 but hits L2 (L2 is bigger / different set map).
    assert lat == c.l1_tlb_latency + c.l1_latency + c.l2_latency


def test_serverclass_has_l3_and_l2_tlb():
    h = CacheHierarchy(SERVERCLASS_HIERARCHY)
    assert h.l3 is not None and h.l2_dtlb is not None
    rates = h.hit_rates()
    assert "L3" in rates and "L2DTLB" in rates


def test_manycore_has_single_level_tlb_no_l3():
    for cfg in (UMANYCORE_HIERARCHY, SCALEOUT_HIERARCHY):
        h = CacheHierarchy(cfg)
        assert h.l3 is None and h.l2_dtlb is None


def test_small_working_set_gets_high_hit_rates():
    """Section 3.5: microservice working sets fit in L1 (hit rate > 95%)."""
    import numpy as np

    from repro.cpu.traces import MICRO_PROFILES, data_address_trace

    rng = np.random.default_rng(0)
    h = CacheHierarchy(UMANYCORE_HIERARCHY)
    addrs = data_address_trace(MICRO_PROFILES[0], 50_000, rng)
    for a in addrs:          # warm-up: services run continuously
        h.access_data(int(a))
    for cache in (h.l1d, h.l2, h.dtlb):
        cache.reset_stats()
    for a in addrs:
        h.access_data(int(a))
    rates = h.hit_rates()
    assert rates["L1D"] > 0.90
    assert rates["L1DTLB"] > 0.95
