"""Tests for the Server assembly and executor behaviour."""

import numpy as np

from repro.net.fabric import InterServerFabric, StorageBackend
from repro.sim import Engine
from repro.systems import SCALEOUT, SERVERCLASS, UMANYCORE, Server
from repro.workloads import SOCIAL_NETWORK_APPS


def build_server(config, app_name="Text", seed=0):
    engine = Engine()
    rng = np.random.default_rng(seed)
    fabric = InterServerFabric(engine, 1)
    storage = StorageBackend(engine, np.random.default_rng(seed + 1))
    app = SOCIAL_NETWORK_APPS[app_name]
    server = Server(engine, 0, config, {app.name: app}, rng, fabric, storage)
    return engine, server, app


def test_umanycore_builds_128_villages_of_8():
    __, server, __a = build_server(UMANYCORE)
    assert len(server.villages) == 128
    assert all(v.n_cores == 8 for v in server.villages)
    assert len(server.pools) == 32


def test_serverclass_builds_single_40_core_domain():
    __, server, __a = build_server(SERVERCLASS)
    assert len(server.villages) == 1
    assert server.villages[0].n_cores == 40


def test_scaleout_shares_one_central_scheduler():
    __, server, __a = build_server(SCALEOUT)
    scheds = {id(v.scheduler) for v in server.villages}
    assert len(scheds) == 1          # Shinjuku: one instance per chip


def test_umanycore_has_per_village_schedulers():
    __, server, __a = build_server(UMANYCORE)
    scheds = {id(v.scheduler) for v in server.villages}
    assert len(scheds) == len(server.villages)


def test_placement_registers_every_service():
    __, server, app = build_server(UMANYCORE)
    for service in app.services:
        villages = server.top_nic.villages_for(service)
        assert villages, service
    # 128 villages over 3 services of the Text app.
    total = sum(len(v) for v in
                (server.top_nic.villages_for(s) for s in app.services))
    assert total == 128


def test_snapshots_stored_in_every_cluster_pool():
    __, server, app = build_server(UMANYCORE)
    for pool in server.pools:
        for service in app.services:
            assert pool.has_snapshot(service)


def test_segment_time_faster_on_server_cores():
    """Same work: the 6-wide 3 GHz core beats the 4-wide 2 GHz core."""
    __, um, app = build_server(UMANYCORE)
    __, sc, __a = build_server(SERVERCLASS)
    from repro.core.request import RequestRecord

    def rec():
        return RequestRecord(app_name="Text", service="text",
                             segments=[100_000.0], on_complete=lambda r: None)

    r_um, r_sc = rec(), rec()
    r_um.village, r_sc.village = 0, 0
    core_um = um.villages[0].cores[0]
    core_sc = sc.villages[0].cores[0]
    t_um = um.segment_time_ns(r_um, core_um)
    # Strip ServerClass's software RPC-stack cost for an apples-to-apples
    # core comparison.
    t_sc = sc.segment_time_ns(r_sc, core_sc) - sc.config.sw_rpc_core_ns
    # Remove preemption overhead too (approximate: it is small).
    assert t_sc < t_um


def test_resume_penalty_ordering():
    """Same core < same L2 < cross-domain; cross-domain costs more
    without remote-cache coherence than with it."""
    __, server, __a = build_server(SCALEOUT)   # 32-core domains, global coh.
    from repro.core.request import RequestRecord

    rec = RequestRecord(app_name="Text", service="text",
                        segments=[1000.0, 1000.0], on_complete=lambda r: None)
    rec.village = 0
    rec.has_run = True

    class FakeCore:
        def __init__(self, core_id):
            self.core_id = core_id

    rec.last_core = (0, 0)
    same_core = server._resume_penalty_ns(rec, FakeCore(0))
    same_l2 = server._resume_penalty_ns(rec, FakeCore(1))      # cores 0-7: L2 0
    cross_l2 = server._resume_penalty_ns(rec, FakeCore(9))     # L2 group 1
    assert same_core == 0.0
    assert 0 < same_l2 < cross_l2


def test_storage_call_round_trip_completes():
    engine, server, app = build_server(UMANYCORE, app_name="UrlShort")
    done = []
    server.client_request("UrlShort", lambda rec: done.append(engine.now))
    engine.run()
    assert len(done) == 1
    assert server.storage.accesses == 1      # UrlShort does 1 storage call
    assert done[0] > 0


def test_nested_service_calls_complete():
    engine, server, app = build_server(UMANYCORE, app_name="Text")
    done = []
    server.client_request("Text", lambda rec: done.append(rec))
    engine.run()
    assert len(done) == 1 and not done[0].rejected
    # Text calls urlshorten + usermention, each with 1 storage access.
    assert server.storage.accesses == 2


def test_cross_server_calls_route_through_fabric():
    engine = Engine()
    fabric = InterServerFabric(engine, 2)
    storage = StorageBackend(engine, np.random.default_rng(1))
    app = SOCIAL_NETWORK_APPS["Text"]
    import dataclasses
    cfg = dataclasses.replace(UMANYCORE, locality=0.0)  # all calls remote
    servers = [Server(engine, i, cfg, {app.name: app},
                      np.random.default_rng(10 + i), fabric, storage)
               for i in range(2)]
    for s in servers:
        s.peers = servers
    done = []
    servers[0].client_request("Text", lambda rec: done.append(rec))
    engine.run()
    assert len(done) == 1
    # client in/out + 2 remote service calls (requests and responses).
    assert fabric.messages >= 6
