"""Tests for the telemetry subsystem: tracer, metrics, export, breakdown."""

import csv
import json

import pytest

from repro.core.context_switch import HARDWARE_CS, SchedulerDomain
from repro.core.request import RequestRecord
from repro.core.village import Village
from repro.sim.engine import Engine
from repro.systems.cluster import simulate
from repro.systems.configs import SCALEOUT, UMANYCORE
from repro.telemetry import (
    BREAKDOWN_CATEGORIES,
    MetricsRegistry,
    NULL_TRACER,
    Span,
    Tracer,
    aggregate_breakdown,
    chrome_trace,
    format_breakdown,
    per_request_breakdown,
    write_chrome_trace,
    write_spans_csv,
    write_spans_json,
)
from repro.telemetry.breakdown import _sweep
from repro.workloads.deathstar import social_network_app


def _rec(service="svc", segments=(100.0,)):
    return RequestRecord(app_name="app", service=service,
                         segments=list(segments),
                         on_complete=lambda r: None)


# ------------------------------------------------------------------ tracer

def test_null_tracer_is_disabled_noop():
    assert NULL_TRACER.enabled is False
    rec = _rec()
    NULL_TRACER.begin_request(rec, 0.0)
    NULL_TRACER.span("compute", "x", 0.0, 1.0, rec=rec)
    NULL_TRACER.end_request(rec, 1.0)     # all silently ignored


def test_engine_defaults_to_null_tracer():
    assert Engine().tracer is NULL_TRACER


def test_tracer_request_tree_links():
    tr = Tracer()
    root, child = _rec("root"), _rec("child")
    tr.begin_request(root, 0.0)
    tr.begin_request(child, 10.0, parent=root)
    tr.span("compute", "seg", 20.0, 30.0, rec=child)
    tr.end_request(child, 40.0)
    tr.end_request(root, 50.0)
    assert [info.index for info in tr.requests] == [0, 1]
    assert tr.root_of(1) == 0             # child belongs to root's tree
    spans = {(s.category, s.name): s for s in tr.spans}
    child_span = spans[("request", "child")]
    root_span = spans[("request", "root")]
    assert child_span.parent_id == root_span.span_id
    assert root_span.parent_id is None
    compute = spans[("compute", "seg")]
    assert compute.req_index == 1
    assert compute.parent_id == child_span.span_id


def test_tracer_end_request_idempotent_and_rejection():
    tr = Tracer()
    rec = _rec()
    tr.begin_request(rec, 0.0)
    tr.end_request(rec, 5.0, rejected=True)
    tr.end_request(rec, 99.0)             # second end ignored
    (span,) = tr.request_spans()
    assert span.end_ns == 5.0
    assert span.attrs.get("rejected") is True
    assert tr.requests[0].rejected


def test_tracer_span_without_request():
    tr = Tracer()
    tr.span("icn_hop", "a->b", 1.0, 4.0, track="icn", hops=3)
    (span,) = tr.spans
    assert span.req_index is None and span.parent_id is None
    assert span.duration_ns == pytest.approx(3.0)
    assert span.attrs == {"hops": 3}
    assert tr.category_totals() == {"icn_hop": pytest.approx(3.0)}


def test_span_as_dict_roundtrip():
    s = Span(span_id=7, name="n", category="compute", start_ns=1.0,
             end_ns=3.5, track="v0", req_index=2, parent_id=1,
             attrs={"core": 0})
    d = s.as_dict()
    assert d["duration_ns"] == pytest.approx(2.5)
    assert d["attrs"] == {"core": 0}


# ----------------------------------------------------------------- metrics

def test_counter_and_histogram():
    reg = MetricsRegistry()
    c = reg.counter("retries")
    c.inc()
    c.inc(2)
    assert reg.counter("retries").value == 3          # create-or-get
    with pytest.raises(ValueError):
        c.inc(-1)
    h = reg.histogram("lat")
    for v in (1.0, 2.0, 3.0, 4.0):
        h.observe(v)
    assert h.summary()["count"] == 4
    assert h.percentile(50) == pytest.approx(2.5)
    assert reg.histogram("empty").summary() == {"count": 0}


def test_gauge_sampling_driven_by_engine():
    eng = Engine()
    reg = MetricsRegistry()
    state = {"v": 0.0}
    reg.gauge("depth", lambda: state["v"])
    with pytest.raises(ValueError):
        reg.gauge("depth", lambda: 0.0)               # duplicate name
    # Some sim activity for 1000 ns; gauge changes halfway through.
    eng.schedule(500.0, lambda: state.__setitem__("v", 7.0))
    eng.schedule(1000.0, lambda: None)
    reg.start_sampling(eng, interval_ns=200.0)
    eng.run()
    series = reg.series["depth"]
    assert [t for t, __ in series[:3]] == [200.0, 400.0, 600.0]
    values = dict(series)
    assert values[400.0] == 0.0 and values[600.0] == 7.0
    # Sampler must not keep the drained engine alive forever.
    assert series[-1][0] <= 1200.0
    stats = reg.series_stats("depth")
    assert stats["max"] == 7.0 and stats["samples"] == len(series)


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        MetricsRegistry().start_sampling(Engine(), 0.0)


# ----------------------------------------------------------------- export

def _small_trace():
    tr = Tracer()
    rec = _rec("svc")
    tr.begin_request(rec, 0.0)
    tr.span("compute", "seg0", 100.0, 300.0, rec=rec, track="v0", core=1)
    tr.span("icn_hop", "a->b", 300.0, 350.0, track="icn")
    tr.end_request(rec, 400.0)
    return tr


def test_chrome_trace_structure():
    trace = chrome_trace(_small_trace())
    events = trace["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == 3
    compute = next(e for e in xs if e["cat"] == "compute")
    assert compute["ts"] == pytest.approx(0.1)        # us
    assert compute["dur"] == pytest.approx(0.2)
    assert compute["args"]["core"] == 1
    # Request-attributed spans share the root request's track...
    req = next(e for e in xs if e["cat"] == "request")
    assert compute["tid"] == req["tid"]
    # ...unattributed spans get a component track.
    icn = next(e for e in xs if e["cat"] == "icn_hop")
    assert icn["tid"] != compute["tid"]
    names = {m["args"]["name"] for m in metas if m["name"] == "thread_name"}
    assert {"req0", "icn"} <= names


def test_trace_file_exports(tmp_path):
    tr = _small_trace()
    out = tmp_path / "trace.json"
    n = write_chrome_trace(tr, str(out))
    assert n == 3
    loaded = json.loads(out.read_text())
    assert isinstance(loaded["traceEvents"], list)

    write_spans_json(tr, str(tmp_path / "spans.json"))
    flat = json.loads((tmp_path / "spans.json").read_text())
    assert len(flat) == 3 and flat[0]["category"] in BREAKDOWN_CATEGORIES \
        + ("request",)

    write_spans_csv(tr, str(tmp_path / "spans.csv"))
    with open(tmp_path / "spans.csv") as fh:
        rows = list(csv.DictReader(fh))
    assert len(rows) == 3
    assert {r["category"] for r in rows} == {"compute", "icn_hop", "request"}


# --------------------------------------------------------------- breakdown

def test_sweep_priority_attribution():
    # compute [0,4) shadows rq_wait [2,8); residual [8,10) is `other`.
    intervals = [(0.0, 4.0, 0), (2.0, 8.0, 2)]       # 0=compute, 2=rq_wait
    out = _sweep(intervals, 0.0, 10.0)
    assert out[0] == pytest.approx(4.0)
    assert out[2] == pytest.approx(4.0)
    assert out[-1] == pytest.approx(2.0)
    assert sum(out) == pytest.approx(10.0)


def test_sweep_no_spans_is_all_other():
    out = _sweep([], 5.0, 25.0)
    assert out[-1] == pytest.approx(20.0) and sum(out) == pytest.approx(20.0)


def test_breakdown_sums_to_wall_time():
    tr = Tracer()
    rec = _rec()
    tr.begin_request(rec, 0.0)
    tr.span("rq_wait", "v0", 0.0, 50.0, rec=rec)
    tr.span("compute", "seg0", 50.0, 150.0, rec=rec)
    tr.span("storage_rpc", "storage", 150.0, 350.0, rec=rec)
    tr.end_request(rec, 400.0)
    rows = per_request_breakdown(tr)
    assert set(rows) == {0}
    row = rows[0]
    assert row["compute"] == pytest.approx(100.0)
    assert row["rq_wait"] == pytest.approx(50.0)
    assert row["storage_rpc"] == pytest.approx(200.0)
    assert row["other"] == pytest.approx(50.0)
    assert sum(row.values()) == pytest.approx(400.0)

    agg = aggregate_breakdown(tr)
    assert agg["n_requests"] == 1
    assert agg["wall_mean_ns"] == pytest.approx(400.0)
    assert sum(agg["fraction"].values()) == pytest.approx(1.0)
    assert "compute" in format_breakdown(agg)


def test_breakdown_excludes_rejected_and_warmup():
    tr = Tracer()
    early, late, rej = _rec("early"), _rec("late"), _rec("rej")
    tr.begin_request(early, 0.0)
    tr.end_request(early, 100.0)
    tr.begin_request(rej, 50.0)
    tr.end_request(rej, 120.0, rejected=True)
    tr.begin_request(late, 500.0)
    tr.end_request(late, 900.0)
    rows = per_request_breakdown(tr, after_ns=200.0)
    assert len(rows) == 1
    (row,) = rows.values()
    assert sum(row.values()) == pytest.approx(400.0)
    assert aggregate_breakdown(tr, after_ns=5000.0) is None


def test_breakdown_spans_nested_rpc_tree():
    """A child RPC's compute shadows the parent's wait in the sweep."""
    tr = Tracer()
    root, child = _rec("root"), _rec("child")
    tr.begin_request(root, 0.0)
    tr.span("compute", "seg0", 0.0, 100.0, rec=root)
    tr.begin_request(child, 100.0, parent=root)
    tr.span("rq_wait", "v1", 100.0, 150.0, rec=child)
    tr.span("compute", "seg0", 150.0, 250.0, rec=child)
    tr.end_request(child, 300.0)
    tr.end_request(root, 300.0)
    rows = per_request_breakdown(tr)
    assert set(rows) == {0}                # one tree, rooted at request 0
    row = rows[0]
    assert row["compute"] == pytest.approx(200.0)
    assert row["rq_wait"] == pytest.approx(50.0)
    assert row["other"] == pytest.approx(50.0)


# ------------------------------------------------------------ integration

def test_village_emits_rq_wait_under_contention():
    class Exec:
        def segment_time_ns(self, rec, core):
            return 1000.0

        def segment_done(self, rec, village, core):
            village.finish(rec, core)

    eng = Engine()
    tracer = Tracer()
    eng.tracer = tracer
    dom = SchedulerDomain(eng, HARDWARE_CS, 2.0)
    village = Village(eng, 0, 1, dom, Exec(), rq_capacity=8)
    for __ in range(3):
        rec = _rec()
        tracer.begin_request(rec, eng.now)
        village.submit(rec)
    eng.run()
    waits = sorted(s.duration_ns for s in tracer.spans
                   if s.category == "rq_wait")
    assert waits[0] == pytest.approx(0.0)      # first runs immediately
    assert waits[-1] > 0.0                     # later ones queued
    computes = [s for s in tracer.spans if s.category == "compute"]
    assert len(computes) == 3
    assert all(s.duration_ns == pytest.approx(1000.0) for s in computes)


@pytest.mark.parametrize("config", [UMANYCORE, SCALEOUT],
                         ids=lambda c: c.name)
def test_traced_simulation_breakdown_consistent(config):
    """Acceptance: span-derived per-category sums reproduce the run's
    end-to-end latency summary (exactly, by construction)."""
    tracer = Tracer()
    result = simulate(config, social_network_app("UrlShort"),
                      rps_per_server=4000, n_servers=1, duration_s=0.008,
                      seed=3, tracer=tracer)
    assert result.completed > 0
    assert len(tracer.spans) > result.completed
    agg = result.breakdown()
    assert agg is not None
    assert agg["wall_mean_ns"] == pytest.approx(result.summary.mean,
                                                rel=0.05)
    assert sum(agg["mean_ns"].values()) == pytest.approx(
        agg["wall_mean_ns"], rel=1e-9)
    assert agg["mean_ns"]["compute"] > 0


def test_tracing_does_not_perturb_timing():
    """The tracer is a pure observer: same seed, same latencies."""
    app = social_network_app("UrlShort")
    base = simulate(UMANYCORE, app, rps_per_server=3000, n_servers=1,
                    duration_s=0.006, seed=5)
    traced = simulate(UMANYCORE, app, rps_per_server=3000, n_servers=1,
                      duration_s=0.006, seed=5, tracer=Tracer())
    assert base.summary.as_dict() == traced.summary.as_dict()


def test_metrics_wired_into_simulation():
    result = simulate(UMANYCORE, social_network_app("UrlShort"),
                      rps_per_server=3000, n_servers=1, duration_s=0.006,
                      seed=5, metrics_interval_ns=50_000.0)
    assert result.metrics is not None
    d = result.metrics.as_dict()
    assert d["samples_taken"] > 10
    assert "s0.rq_depth" in d["gauges"]
    assert d["gauges"]["s0.utilization"]["max"] > 0
    assert d["histograms"]["latency_ns"]["count"] == result.completed
    assert "metrics" in result.as_dict()
