"""Tests for the event-driven network contention model."""

import numpy as np
import pytest

from repro.icn import HierarchicalLeafSpine, Mesh2D, Network, NetworkConfig
from repro.sim import Engine


def line_topology(n=3):
    from repro.icn.topology import Topology

    t = Topology()
    for i in range(n - 1):
        t.add_link(f"n{i}", f"n{i+1}")
    return t


def test_single_message_latency_equals_hops_times_hop_time():
    eng = Engine()
    net = Network(eng, line_topology(4),
                  NetworkConfig(hop_cycles=5, freq_ghz=2.0, link_bytes_per_ns=1e9))
    done = []
    net.send("n0", "n3", 64, lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(3 * 2.5)]


def test_serialization_adds_to_hop_time():
    eng = Engine()
    cfg = NetworkConfig(hop_cycles=5, freq_ghz=2.0, link_bytes_per_ns=128.0)
    net = Network(eng, line_topology(2), cfg)
    done = []
    net.send("n0", "n1", 1280, lambda: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(2.5 + 10.0)]


def test_contention_queues_messages_on_shared_link():
    eng = Engine()
    net = Network(eng, line_topology(2),
                  NetworkConfig(hop_cycles=2, freq_ghz=1.0, link_bytes_per_ns=1e9))
    arrivals = []
    for __ in range(3):
        net.send("n0", "n1", 64, lambda: arrivals.append(eng.now))
    eng.run()
    assert arrivals == [pytest.approx(2.0), pytest.approx(4.0), pytest.approx(6.0)]


def test_no_contention_mode_is_pure_delay():
    eng = Engine()
    net = Network(eng, line_topology(2),
                  NetworkConfig(hop_cycles=2, freq_ghz=1.0,
                                link_bytes_per_ns=1e9, contention=False))
    arrivals = []
    for __ in range(3):
        net.send("n0", "n1", 64, lambda: arrivals.append(eng.now))
    eng.run()
    assert arrivals == [pytest.approx(2.0)] * 3


def test_self_message_delivered_immediately():
    eng = Engine()
    net = Network(eng, line_topology(2), NetworkConfig())
    done = []
    net.send("n0", "n0", 64, lambda: done.append(eng.now))
    eng.run()
    assert done == [0.0]


def test_network_stats():
    eng = Engine()
    net = Network(eng, line_topology(3), NetworkConfig())
    net.send("n0", "n2", 64, lambda: None)
    eng.run()
    assert net.messages_sent == 1
    assert net.hops_traversed == 2
    assert net.mean_latency > 0


def test_leafspine_suffers_less_contention_than_mesh():
    """The Figure 7 mechanism: same random traffic, same hop latency;
    ECMP spreads load while XY mesh concentrates it."""
    rng = np.random.default_rng(1)

    def run(topology, endpoints, use_rng):
        eng = Engine()
        net = Network(eng, topology, NetworkConfig(),
                      rng=np.random.default_rng(2) if use_rng else None)
        latencies = []
        pairs = [(endpoints[rng.integers(len(endpoints))],
                  endpoints[rng.integers(len(endpoints))]) for __ in range(400)]
        for i, (src, dst) in enumerate(pairs):
            t = i * 0.7  # aggressive injection
            eng.schedule_at(t, lambda s=src, d=dst, st=t: net.send(
                s, d, 256, lambda st=st: latencies.append(eng.now - st)))
        eng.run()
        return float(np.mean(latencies))

    mesh = Mesh2D(8, 4)
    mesh_eps = [mesh.tile(x, y) for x in range(8) for y in range(4)]
    ls = HierarchicalLeafSpine()
    ls_eps = [ls.leaf(i) for i in range(32)]
    assert run(ls, ls_eps, True) < run(mesh, mesh_eps, False)


def test_busiest_links_reporting():
    eng = Engine()
    net = Network(eng, line_topology(3), NetworkConfig())
    for __ in range(5):
        net.send("n0", "n2", 64, lambda: None)
    eng.run()
    top = net.busiest_links(top=1)
    assert top[0][1] == 5
