"""Tests for the memory substrate: footprints, memory pool, DRAM."""

import numpy as np
import pytest

from repro.mem import (
    Dram,
    DramConfig,
    FootprintModel,
    MemoryPool,
    MemoryPoolConfig,
    sharing,
)
from repro.sim import Engine


# --------------------------------------------------------------- footprints

@pytest.fixture
def fpm():
    return FootprintModel(np.random.default_rng(0))


def test_handler_footprint_size_near_half_mb(fpm):
    """Section 3.5: handler memory footprint averages ~0.5 MB."""
    sizes = [fpm.handler_footprint().data_bytes for __ in range(20)]
    assert 0.2e6 < np.mean(sizes) < 0.7e6


def test_handler_handler_sharing_in_paper_range(fpm):
    """Figure 8: 78-99% of pages/lines common between two handlers."""
    reports = []
    for __ in range(10):
        a, b = fpm.handler_footprint(), fpm.handler_footprint()
        reports.append(sharing(a, b))
    for key in ("d_page", "d_line", "i_page", "i_line"):
        mean = np.mean([getattr(r, key) for r in reports])
        assert 0.70 <= mean <= 1.0, (key, mean)


def test_handler_init_sharing_in_paper_range(fpm):
    init = fpm.init_footprint()
    reports = [sharing(fpm.handler_footprint(), init) for __ in range(10)]
    for key in ("d_page", "d_line", "i_page", "i_line"):
        mean = np.mean([getattr(r, key) for r in reports])
        assert 0.70 <= mean <= 1.0, (key, mean)


def test_instruction_sharing_higher_than_data(fpm):
    a, b = fpm.handler_footprint(), fpm.handler_footprint()
    rep = sharing(a, b)
    assert rep.i_page >= rep.d_page - 0.05


def test_footprint_validation():
    with pytest.raises(ValueError):
        FootprintModel(np.random.default_rng(0), shared_data_page_fraction=1.5)


# -------------------------------------------------------------- memory pool

def test_snapshot_store_and_capacity():
    eng = Engine()
    pool = MemoryPool(eng, MemoryPoolConfig(capacity_mb=32))
    assert pool.store_snapshot("svc", 16 * 1024 * 1024)
    assert pool.has_snapshot("svc")
    assert not pool.store_snapshot("big", 20 * 1024 * 1024)
    pool.evict_snapshot("svc")
    assert pool.store_snapshot("big", 20 * 1024 * 1024)


def test_snapshot_boot_under_10ms_cold_over_300ms():
    """Section 3.5: snapshots cut instance boot from >300 ms to <10 ms."""
    eng = Engine()
    pool = MemoryPool(eng)
    pool.store_snapshot("warm", 16 * 1024 * 1024)
    times = {}
    pool.boot_instance("warm", lambda t: times.__setitem__("warm", t))
    pool.boot_instance("cold", lambda t: times.__setitem__("cold", t))
    eng.run()
    assert times["warm"] < 10e6      # < 10 ms in ns
    assert times["cold"] >= 300e6    # >= 300 ms
    assert pool.snapshot_boots == 1 and pool.cold_boots == 1


def test_snapshot_reads_serialize_on_lmem():
    eng = Engine()
    cfg = MemoryPoolConfig(read_bandwidth_bytes_per_ns=1.0,
                           snapshot_boot_overhead_ms=0.0, access_latency_ns=0.0)
    pool = MemoryPool(eng, cfg)
    pool.store_snapshot("svc", 1000)
    done = []
    pool.boot_instance("svc", done.append)
    pool.boot_instance("svc", done.append)
    eng.run()
    assert done[0] == pytest.approx(1000.0)
    assert done[1] == pytest.approx(2000.0)   # queued behind the first copy


def test_snapshot_size_validation():
    pool = MemoryPool(Engine())
    with pytest.raises(ValueError):
        pool.store_snapshot("svc", 0)


# --------------------------------------------------------------------- dram

def test_dram_row_hit_faster_than_miss():
    eng = Engine()
    dram = Dram(eng)
    lat = []
    dram.access(0, lat.append)
    eng.run()
    dram.access(2048, lat.append)   # line 32: channel 0, bank 0, row 0 again
    eng.run()
    assert lat[0] == pytest.approx(45.0)   # cold: row miss
    assert lat[1] == pytest.approx(15.0)   # open-row hit


def test_dram_channel_queueing():
    eng = Engine()
    dram = Dram(eng, DramConfig(channels=1, banks_per_channel=1))
    lat = []
    dram.access(0, lat.append)
    dram.access(0, lat.append)
    eng.run()
    assert lat[1] > lat[0]


def test_dram_interleaving_spreads_channels():
    eng = Engine()
    dram = Dram(eng, DramConfig(channels=4))
    channels = {dram._map(line * 64)[0] for line in range(8)}
    assert channels == {0, 1, 2, 3}


def test_dram_row_hit_rate_sequential():
    eng = Engine()
    dram = Dram(eng, DramConfig(channels=1, banks_per_channel=1))
    for line in range(64):
        dram.access(line * 64, lambda t: None)
    eng.run()
    assert dram.row_hit_rate() > 0.9


def test_dram_config_validation():
    with pytest.raises(ValueError):
        DramConfig(channels=0)
