"""Tests for the property-based fuzz/shrink harness (repro.check.harness)."""

from dataclasses import replace

import numpy as np

from repro.check.harness import Trial, draw_trial, fuzz, run_trial, shrink


def test_trial_describe_is_executable_repro():
    trial = Trial(seed=42, config="scaleout", app="User", rps=4000.0,
                  fault_rate=200.0, trace=False)
    rebuilt = eval(trial.describe())          # noqa: S307 - own repr
    assert rebuilt == trial


def test_draw_trial_is_deterministic():
    a = [draw_trial(np.random.default_rng(5)) for __ in range(3)]
    b = [draw_trial(np.random.default_rng(5)) for __ in range(3)]
    assert a == b


def test_draw_trial_respects_fault_fraction():
    rng = np.random.default_rng(0)
    none = [draw_trial(rng, fault_fraction=0.0) for __ in range(10)]
    assert all(t.fault_rate == 0.0 for t in none)
    rng = np.random.default_rng(0)
    every = [draw_trial(rng, fault_fraction=1.0) for __ in range(10)]
    assert all(t.fault_rate > 0.0 for t in every)


def test_run_trial_returns_collecting_context():
    check = run_trial(Trial(seed=2, duration_s=0.002, trace=False))
    assert check.ok
    assert check.stats.checks > 0


def test_fuzz_small_budget_is_clean_and_reports_progress():
    seen = []
    failures = fuzz(trials=3, seed=1, fault_fraction=0.5,
                    progress=lambda i, t, c: seen.append((i, t.seed, c.ok)))
    assert failures == []
    assert [i for i, __, __ok in seen] == [0, 1, 2]
    assert all(ok for __, __seed, ok in seen)


def test_shrink_reduces_along_each_axis():
    """With an injected predicate, shrink strips every reducible axis."""
    big = Trial(seed=9, config="umanycore", app="HomeT", rps=16_000.0,
                n_servers=2, duration_s=0.008, arrivals="bursty",
                fault_rate=1000.0, trace=True)
    small = shrink(big, fails=lambda t: True)
    assert small.fault_rate == 0.0
    assert not small.trace
    assert small.duration_s == big.duration_s / 4
    assert small.n_servers == 1
    assert small.app == "Text"
    assert small.arrivals == "poisson"
    assert small.rps == 4000.0
    assert small.seed == big.seed            # the seed is the repro anchor


def test_shrink_keeps_only_still_failing_reductions():
    """An axis change that stops reproducing is rolled back."""
    big = Trial(seed=9, fault_rate=1000.0, n_servers=2, trace=True)

    def fails(t: Trial) -> bool:
        return t.fault_rate > 0        # the bug needs the fault schedule

    small = shrink(big, fails=fails)
    assert small.fault_rate == big.fault_rate
    assert not small.trace and small.n_servers == 1


def test_shrink_returns_trial_itself_when_irreducible():
    minimal = Trial(seed=3, config="umanycore", app="Text", rps=4000.0,
                    n_servers=1, duration_s=0.002, arrivals="poisson",
                    fault_rate=0.0, trace=False)
    calls = []

    def fails(t: Trial) -> bool:
        calls.append(t)
        return t == minimal

    assert shrink(minimal, fails=fails) == minimal
    assert all(c != minimal for c in calls)   # only candidates re-ran


def test_run_trial_tolerates_warmup_only_runs():
    """A run whose completions all land in the warm-up window is
    inconclusive for latency but still checkable for invariants."""
    check = run_trial(replace(Trial(seed=4, trace=False),
                              rps=4000.0, duration_s=0.002))
    assert check.ok
