"""Tests for the village execution engine with a stub executor."""

import pytest

from repro.core import HARDWARE_CS, RequestRecord, SchedulerDomain, Village
from repro.core.request import RequestStatus
from repro.sim import Engine


class StubExecutor:
    """Fixed 100 ns segments; blocks between segments for ``block_ns``."""

    def __init__(self, engine, block_ns=500.0, segment_ns=100.0):
        self.engine = engine
        self.block_ns = block_ns
        self.segment_ns = segment_ns

    def segment_time_ns(self, rec, core):
        return self.segment_ns

    def segment_done(self, rec, village, core):
        if rec.is_last_segment:
            village.finish(rec, core)
            return
        village.block_for_call(rec, core)

        def respond():
            rec.advance_segment()
            village.make_ready(rec)

        self.engine.schedule(self.block_ns, respond)


def make_village(engine, n_cores=2, executor=None, **kw):
    executor = executor or StubExecutor(engine)
    dom = SchedulerDomain(engine, HARDWARE_CS, freq_ghz=2.0)
    return Village(engine, 0, n_cores, dom, executor, **kw), executor


def make_request(n_segments=1, on_complete=None):
    return RequestRecord(app_name="app", service="svc",
                         segments=[1000.0] * n_segments,
                         on_complete=on_complete or (lambda r: None))


def test_single_segment_request_completes():
    eng = Engine()
    village, __ = make_village(eng)
    done = []
    rec = make_request(on_complete=lambda r: done.append(eng.now))
    assert village.submit(rec)
    eng.run()
    assert len(done) == 1
    assert rec.status is RequestStatus.FINISHED
    assert village.completed == 1
    # segment 100 ns (no restore on first run; hw scheduler op free).
    assert done[0] == pytest.approx(100.0)


def test_multi_segment_request_blocks_and_resumes():
    eng = Engine()
    village, ex = make_village(eng)
    done = []
    rec = make_request(n_segments=3, on_complete=lambda r: done.append(eng.now))
    village.submit(rec)
    eng.run()
    # 3 segments + 2 blocks; timing: seg + block(>=500) + restore + ...
    assert len(done) == 1
    assert done[0] >= 3 * 100 + 2 * 500
    assert rec.seg_index == 2


def test_core_freed_during_block_serves_other_requests():
    eng = Engine()
    village, __ = make_village(eng, n_cores=1)
    finished = []
    blocked_rec = make_request(n_segments=2,
                               on_complete=lambda r: finished.append("blocked"))
    short_rec = make_request(on_complete=lambda r: finished.append("short"))
    village.submit(blocked_rec)
    village.submit(short_rec)
    eng.run()
    # The short request runs while the first is blocked on its call.
    assert finished == ["short", "blocked"]


def test_two_cores_run_in_parallel():
    eng = Engine()
    village, __ = make_village(eng, n_cores=2)
    done = []
    for __i in range(2):
        village.submit(make_request(on_complete=lambda r: done.append(eng.now)))
    eng.run()
    assert done == [pytest.approx(100.0)] * 2


def test_queue_wait_recorded_under_contention():
    eng = Engine()
    village, __ = make_village(eng, n_cores=1)
    recs = [make_request() for __ in range(3)]
    for r in recs:
        village.submit(r)
    eng.run()
    assert recs[0].queue_wait_ns == pytest.approx(0.0)
    assert recs[1].queue_wait_ns > 0
    assert recs[2].queue_wait_ns > recs[1].queue_wait_ns


def test_rq_overflow_rejects():
    eng = Engine()
    village, __ = make_village(eng, n_cores=1, rq_capacity=2)
    assert village.submit(make_request())
    assert village.submit(make_request())
    assert not village.submit(make_request())


def test_partitioned_cores_only_run_their_service():
    eng = Engine()
    village, __ = make_village(eng, n_cores=2)
    village.cores[0].service = "s1"
    village.cores[1].service = "s2"
    done = []
    r1 = RequestRecord("app", "s1", [1000.0],
                       on_complete=lambda r: done.append("s1"))
    village.submit(r1)
    eng.run()
    assert done == ["s1"]
    assert village.cores[0].requests_run == 1
    assert village.cores[1].requests_run == 0


def test_work_stealing_moves_requests():
    eng = Engine()
    executor = StubExecutor(eng)
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
    busy = Village(eng, 0, 1, dom, executor)
    idle = Village(eng, 1, 1, dom, executor, steal_from=[busy],
                   steal_overhead_ns=10.0)
    done = []
    for __ in range(4):
        busy.submit(make_request(on_complete=lambda r: done.append(eng.now)))
    # Kick the idle village after requests land in the busy one.
    eng.schedule(1.0, idle._kick)
    eng.run()
    assert len(done) == 4
    assert idle.steals > 0


def test_utilization_accounting():
    eng = Engine()
    village, __ = make_village(eng, n_cores=2)
    village.submit(make_request())
    eng.run()
    # 1 core busy 100 ns out of 2 cores x 100 ns elapsed.
    assert village.utilization() == pytest.approx(0.5)


def test_invalid_core_count():
    eng = Engine()
    with pytest.raises(ValueError):
        make_village(eng, n_cores=0)
