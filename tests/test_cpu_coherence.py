"""Tests for the coherence-domain model."""

import pytest

from repro.cpu.coherence import CoherenceConfig, CoherenceModel


def village(cores=8):
    return CoherenceModel(CoherenceConfig(domain_cores=cores, total_cores=1024))


def global_domain():
    return CoherenceModel(CoherenceConfig(domain_cores=1024, total_cores=1024))


def test_global_vs_village_classification():
    assert global_domain().is_global
    assert not village().is_global


def test_village_directory_is_local():
    assert village().directory_roundtrip_cycles() == pytest.approx(2.0)


def test_global_directory_pays_icn_hops():
    v = village().directory_roundtrip_cycles()
    g = global_domain().directory_roundtrip_cycles()
    assert g > 10 * v


def test_directory_latency_monotone_in_domain_size():
    sizes = [8, 32, 128, 512, 1024]
    lats = [CoherenceModel(CoherenceConfig(s, 1024)).directory_roundtrip_cycles()
            for s in sizes]
    assert lats == sorted(lats)


def test_resume_warmth_ordering():
    v, g = village(), global_domain()
    assert v.resume_warm_fraction(same_village=True) > g.resume_warm_fraction(False)
    assert g.resume_warm_fraction(False) > v.resume_warm_fraction(False) == 0.0


def test_coherence_traffic_factor():
    assert village().coherence_message_factor() == 1.0
    g = global_domain().coherence_message_factor()
    assert 1.0 < g <= 2.0


def test_invalid_domain_rejected():
    with pytest.raises(ValueError):
        CoherenceConfig(domain_cores=0, total_cores=8)
    with pytest.raises(ValueError):
        CoherenceConfig(domain_cores=16, total_cores=8)
