"""Tests for the datacenter tier (repro.dc): LB, placement, autoscale."""

from dataclasses import replace

import numpy as np
import pytest

from repro.check import CheckContext
from repro.check.harness import Trial, run_trial, shrink
from repro.dc import (DcConfig, FrontEndLB, LB_NAMES, PlacementPlan,
                      get_lb_policy)
from repro.dc.lb import AffinityLB
from repro.metrics.latency import LatencyRecorder, pooled_summary
from repro.runner import SweepPoint, result_from_dict, result_to_dict
from repro.systems import UMANYCORE, simulate
from repro.workloads import SOCIAL_NETWORK_APPS

APP = SOCIAL_NETWORK_APPS["Text"]
SMALL = replace(UMANYCORE, n_cores=64, n_clusters=4)


def lb_for(policy_name, n=4, seed=0):
    policy = get_lb_policy(policy_name)
    rng = np.random.default_rng(seed) if policy.needs_rng else None
    return FrontEndLB(n, policy, rng=rng)


def run(n_servers=1, dc=None, rps=4000.0, duration_s=0.003, seed=1, **kw):
    return simulate(SMALL, APP, rps_per_server=rps, n_servers=n_servers,
                    duration_s=duration_s, seed=seed, dc=dc, **kw)


# ------------------------------------------------------------ policies

def test_rr_rotates_and_keeps_phase_across_drains():
    lb = lb_for("rr")
    assert [lb.route("Text") for __ in range(5)] == [0, 1, 2, 3, 0]
    # Draining 2 must not shift where the rotation sends everyone else:
    # the pointer keys on the id space, not the active list.
    lb.drain(2)
    assert [lb.route("Text") for __ in range(4)] == [1, 3, 0, 1]
    lb.activate(2)
    assert lb.route("Text") == 2
    assert lb.activations == 1 and lb.drains == 1


def test_least_outstanding_breaks_ties_to_lowest_id():
    lb = lb_for("least")
    assert lb.route("Text") == 0          # all zero -> lowest id
    assert lb.route("Text") == 1
    lb.request_done(0)
    assert lb.route("Text") == 0          # 0 free again, beats 2 and 3


def test_p2c_picks_fewer_outstanding_of_two_distinct_draws():
    class Scripted:
        def __init__(self, draws):
            self.draws = list(draws)

        def integers(self, __n):
            return self.draws.pop(0)

    lb = FrontEndLB(4, get_lb_policy("p2c"), rng=Scripted([1, 1, 0, 0]))
    lb.outstanding[1] = 5
    # Draws (1, 1): the second draw shifts past the first -> servers
    # {1, 2}; 2 has fewer outstanding.
    assert lb.route("Text") == 2
    # Draws (0, 0) -> servers {0, 1}; tie (0 vs 1 after the route above
    # bumped 2) is broken to the lower id.
    lb.outstanding[1] = 0
    assert lb.route("Text") == 0


def test_affinity_home_is_stable_and_spills_under_load():
    lb = lb_for("affinity", n=4)
    home = lb.route("Text")
    assert all(lb.route("Text") == home for __ in range(3))
    # Pile outstanding work on the home until the margin is exceeded.
    other = next(s for s in range(4) if s != home)
    lb.outstanding[home] = lb.policy.spill_margin + 1
    assert lb.route("Text") == other or lb.route("Text") != home
    assert lb.policy.spills >= 1


def test_affinity_spill_margin_flows_from_config():
    assert get_lb_policy("affinity", spill_margin=9).spill_margin == 9
    with pytest.raises(ValueError):
        AffinityLB(spill_margin=-1)


def test_lb_registry_rejects_unknown_policy():
    with pytest.raises(ValueError, match="unknown lb policy"):
        get_lb_policy("magic")


def test_lb_refuses_to_drain_the_last_active_server():
    lb = lb_for("rr", n=2)
    lb.drain(0)
    with pytest.raises(ValueError, match="last active"):
        lb.drain(1)
    lb.drain(0)                           # idempotent on a drained server
    assert lb.drains == 1


def test_lb_outstanding_ledger():
    lb = lb_for("rr", n=2)
    sid = lb.route("Text")
    assert lb.routed[sid] == 1 and lb.outstanding[sid] == 1
    lb.request_done(sid)
    assert lb.outstanding == [0, 0] and sum(lb.routed) == 1


# ----------------------------------------------------------- placement

def test_placement_roots_everywhere_and_leaves_striped():
    plan = PlacementPlan.build(["a", "b", "c", "root"], roots={"root"},
                               n_servers=3, replication=1)
    assert plan.servers_for("root") == (0, 1, 2)
    assert {plan.servers_for(s) for s in "abc"} == {(0,), (1,), (2,)}
    assert all(plan.is_local(sid, "root") for sid in range(3))
    hosted = [plan.services_on(sid) for sid in range(3)]
    assert sorted(len(h) for h in hosted) == [2, 2, 2]


def test_placement_replication_zero_or_ge_n_means_everywhere():
    for k in (0, 3, 7):
        plan = PlacementPlan.build(["a", "b"], roots=set(), n_servers=3,
                                   replication=k)
        assert plan.servers_for("a") == (0, 1, 2)


def test_placement_rejects_bad_assignments():
    with pytest.raises(ValueError, match="no hosting server"):
        PlacementPlan({"a": ()}, n_servers=2)
    with pytest.raises(ValueError, match="invalid server"):
        PlacementPlan({"a": (5,)}, n_servers=2)


# -------------------------------------------------------------- config

def test_dc_config_validation():
    with pytest.raises(ValueError):
        DcConfig(lb="nope")
    with pytest.raises(ValueError):
        DcConfig(lb_latency_ns=-1.0)
    with pytest.raises(ValueError):
        DcConfig(replication=-1)
    with pytest.raises(ValueError):
        DcConfig(min_servers=0)
    with pytest.raises(ValueError):
        DcConfig(scale_down_util=0.8, scale_up_util=0.5)
    with pytest.raises(ValueError):
        DcConfig(autoscale_interval_ns=0.0)


# ------------------------------------------ cache fingerprint (runner)

def point(**kw):
    kw.setdefault("n_servers", 1)
    kw.setdefault("duration_s", 0.004)
    return SweepPoint(config=SMALL, app=APP, rps=2000.0, seed=3, **kw)


def test_key_sensitive_to_n_servers_and_every_dc_field():
    base = point().key()
    assert point(n_servers=2).key() != base
    assert point(dc=DcConfig()).key() != base
    dc_base = point(dc=DcConfig()).key()
    for change in (DcConfig(lb="least"),
                   DcConfig(lb_latency_ns=500.0),
                   DcConfig(replication=1),
                   DcConfig(spill_margin=9),
                   DcConfig(autoscale=True),
                   DcConfig(autoscale=True, min_servers=2),
                   DcConfig(autoscale_interval_ns=100_000.0),
                   DcConfig(scale_up_util=0.9),
                   DcConfig(scale_down_util=0.05)):
        assert point(dc=change).key() != dc_base, change


def test_cache_roundtrip_preserves_dc_stats():
    result = point(dc=DcConfig(lb="least"), n_servers=2).run()
    assert result.dc_stats is not None
    rebuilt = result_from_dict(result_to_dict(result))
    assert rebuilt.dc_stats == result.dc_stats
    assert rebuilt.as_dict() == result.as_dict()


# ------------------------------------------------ determinism / parity

@pytest.mark.parametrize("lb", LB_NAMES)
def test_every_lb_policy_is_deterministic(lb):
    a = run(n_servers=2, dc=DcConfig(lb=lb)).as_dict()
    b = run(n_servers=2, dc=DcConfig(lb=lb)).as_dict()
    assert a == b


def test_dc_rr_one_server_is_byte_identical_to_plain_path():
    plain = run().as_dict()
    dc = run(dc=DcConfig(lb="rr")).as_dict()
    assert dc.pop("dc")["routed"] == [plain["offered"]]
    assert dc == plain


def test_dc_off_leaves_result_payload_unchanged():
    assert "dc" not in run().as_dict()
    assert run().dc_stats is None


# ------------------------------------------- end-to-end under checking

def test_replicated_placement_proxies_and_passes_checks():
    check = CheckContext(strict=True)
    result = run(n_servers=2, dc=DcConfig(lb="least", replication=1),
                 check=check)
    assert check.ok and check.stats.checks > 0
    assert result.dc_stats["replication"] == 1
    assert result.dc_stats["proxied"] > 0


def test_autoscale_drain_conserves_requests():
    check = CheckContext(strict=True)
    dc = DcConfig(lb="least", autoscale=True, min_servers=1,
                  autoscale_interval_ns=100_000.0, scale_down_util=0.5)
    result = run(n_servers=3, dc=dc, rps=500.0, duration_s=0.004,
                 check=check)
    stats = result.dc_stats
    assert check.ok
    assert stats["scale_downs"] >= 1
    assert stats["active_at_end"] == [0]   # drained to the floor
    answered = result.completed + result.rejected + result.failed
    assert sum(stats["routed"]) == result.offered == answered


# --------------------------------------------------- fuzz harness axes

def test_harness_dc_trial_runs_clean_and_describe_is_executable():
    trial = Trial(seed=7, duration_s=0.002, trace=False, lb="p2c",
                  replication=1, autoscale=True)
    assert eval(trial.describe()) == trial   # noqa: S307 - own repr
    check = run_trial(trial)
    assert check.ok and check.stats.checks > 0


def test_shrink_resets_dc_axes_without_touching_duration_pin():
    big = Trial(seed=9, n_servers=2, duration_s=0.008, fault_rate=500.0,
                trace=True, lb="least", replication=2, autoscale=True)
    small = shrink(big, fails=lambda t: True)
    assert small.lb == "off"
    assert small.replication == 0 and not small.autoscale
    assert small.duration_s == big.duration_s / 4


# -------------------------------------------------- pooled percentiles

def test_pooled_percentiles_differ_from_averaged_summaries():
    """The satellite regression: merge samples, don't average p99s."""
    skewed, light = LatencyRecorder("s0"), LatencyRecorder("s1")
    for i in range(99):
        skewed.record(float(i), 1.0)
    skewed.record(99.0, 1000.0)
    light.record(0.0, 1.0)
    pooled = pooled_summary([skewed, light])
    everything = LatencyRecorder("all")
    for rec in (skewed, light):
        for t, lat in zip(rec._times, rec._latencies):
            everything.record(t, lat)
    want = everything.summary()
    assert (pooled.p50, pooled.p99, pooled.p999) == \
        (want.p50, want.p99, want.p999)
    averaged = (skewed.summary().p99 + light.summary().p99) / 2
    assert pooled.p99 != averaged


def test_pooled_summary_respects_warmup_and_empty_sentinel():
    rec = LatencyRecorder("s0")
    rec.record(10.0, 5.0)
    assert pooled_summary([rec], after_ns=0.0).count == 1
    assert pooled_summary([rec], after_ns=100.0).is_empty
    assert pooled_summary([]).is_empty


# ------------------------------------------------------------ CLI / UX

def test_cli_parses_dc_flags_and_dc_subcommand():
    from repro.cli import EXPERIMENTS, build_parser

    args = build_parser().parse_args(
        ["simulate", "--system", "umanycore", "--lb", "p2c",
         "--placement", "2", "--autoscale", "--min-servers", "2"])
    assert (args.lb, args.placement) == ("p2c", 2)
    assert args.autoscale and args.min_servers == 2
    args = build_parser().parse_args(["dc", "--system", "umanycore"])
    assert args.func.__name__ == "cmd_dc"
    assert "figD" in EXPERIMENTS
    with pytest.raises(SystemExit):
        build_parser().parse_args(["simulate", "--lb", "magic"])


def test_cli_dc_command_prints_routing_table(capsys):
    from repro.cli import main

    main(["dc", "--system", "umanycore", "--app", "Text", "--rps", "3000",
          "--servers", "2", "--duration", "0.003", "--lb", "least"])
    out = capsys.readouterr().out
    assert "front-end lb" in out.lower() or "lb" in out.lower()
    assert "routed" in out.lower()


def test_figd_experiment_registered_in_run_all():
    from repro.experiments import figD_datacenter, run_all

    assert any(fn is figD_datacenter.main for __, fn in run_all.SECTIONS)
