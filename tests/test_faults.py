"""Unit tests for repro.faults: schedules, injection and resilience."""

import json
from dataclasses import replace

import pytest

from repro.core import HARDWARE_CS, RequestQueue, RequestRecord, \
    SchedulerDomain, Village
from repro.faults import FaultEvent, FaultSchedule, ResilienceConfig, \
    fault_inventory, merge
from repro.net import LNic, NicConfig, TopLevelNic
from repro.sim import Engine
from repro.systems.cluster import ClusterSimulation, simulate
from repro.systems.configs import UMANYCORE
from repro.workloads.deathstar import social_network_app

SMALL = replace(UMANYCORE, n_cores=128, n_clusters=8)


def rec(service="svc", segments=None):
    return RequestRecord(app_name="app", service=service,
                         segments=segments or [1000.0],
                         on_complete=lambda r: None)


# ---------------------------------------------------------- FaultSchedule


def test_empty_schedule_is_falsy():
    sched = FaultSchedule()
    assert not sched and len(sched) == 0
    sched.fail_village(0, 1, 100.0)
    assert sched and len(sched) == 1


def test_builders_record_fail_and_recover_pairs():
    sched = FaultSchedule() \
        .fail_village(0, 1, 2_000.0, recover_at_ns=5_000.0) \
        .degrade_village(0, 2, 1_000.0, factor=3.0, recover_at_ns=4_000.0) \
        .fail_link(1, "a", "b", 3_000.0) \
        .fail_nic(1, 0, "rnic", 500.0)
    events = sched.events
    assert [e.time_ns for e in events] == sorted(e.time_ns for e in events)
    assert events[0].kind == "nic" and events[0].target == (1, 0, "rnic")
    recover = [e for e in events if e.action == "recover"]
    assert [(e.kind, e.time_ns) for e in recover] == [("village", 5_000.0)]
    # degrade "recovery" is a degrade back to factor 1.0
    undegrade = [e for e in events
                 if e.action == "degrade" and e.factor == 1.0]
    assert [e.time_ns for e in undegrade] == [4_000.0]


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(0.0, "disk", "fail")              # unknown kind
    with pytest.raises(ValueError):
        FaultEvent(0.0, "village", "explode")        # unknown action
    with pytest.raises(ValueError):
        FaultEvent(-1.0, "village", "fail")          # negative time
    with pytest.raises(ValueError):
        FaultEvent(0.0, "link", "degrade")           # degrade != village
    with pytest.raises(ValueError):
        FaultEvent(0.0, "village", "degrade", factor=0.0)
    with pytest.raises(ValueError):
        FaultSchedule().fail_nic(0, 0, "tnic", 0.0)  # lnic/rnic only


def test_random_schedule_is_seed_deterministic():
    kw = dict(duration_ns=1e7, villages=[(0, v) for v in range(4)],
              links=[(0, "a", "b")], nics=[(0, 0, "lnic")],
              rate_per_s=2_000.0)
    a = FaultSchedule.random(seed=42, **kw)
    b = FaultSchedule.random(seed=42, **kw)
    c = FaultSchedule.random(seed=43, **kw)
    assert len(a) > 0
    assert json.dumps(a.as_dicts()) == json.dumps(b.as_dicts())
    assert json.dumps(a.as_dicts()) != json.dumps(c.as_dicts())
    # every fault recovers within the run (mttr capped at duration)
    assert all(e.time_ns <= 1e7 for e in a)


def test_random_schedule_empty_inventory_or_zero_rate():
    assert not FaultSchedule.random(seed=1, duration_ns=1e9)
    assert not FaultSchedule.random(seed=1, duration_ns=1e9,
                                    villages=[(0, 0)], rate_per_s=0.0)


def test_merge_unions_events_and_keeps_first_detection():
    a = FaultSchedule(detection_ns=50_000.0).fail_village(0, 0, 1_000.0)
    b = FaultSchedule(detection_ns=999.0).fail_link(0, "u", "v", 2_000.0)
    m = merge([a, b])
    assert len(m) == 2 and m.detection_ns == 50_000.0
    assert [e.kind for e in m] == ["village", "link"]


def test_describe_lists_every_event():
    sched = FaultSchedule().fail_village(0, 3, 1e6, recover_at_ns=2e6)
    text = sched.describe()
    assert "2 fault events" in text and "village" in text


# --------------------------------------------------- engine-local msg ids


def test_engine_msg_id_allocator_is_run_local():
    eng = Engine()
    assert [eng.next_msg_id() for __ in range(3)] == [0, 1, 2]
    assert Engine().next_msg_id() == 0


# --------------------------------------------------- request-queue purge


def test_request_queue_purge_drops_and_bumps_epoch():
    rq = RequestQueue(8)
    a, b = rec(), rec()
    assert rq.enqueue(a) and rq.enqueue(b)
    assert not rq.is_stale(a)
    assert rq.purge() == 2
    assert rq.occupancy == 0
    assert rq.dequeue() is None
    # pre-purge records are stale; post-purge enqueues are not
    assert rq.is_stale(a) and rq.is_stale(b)
    c = rec()
    rq.enqueue(c)
    assert not rq.is_stale(c)
    assert rq.dequeue() is c


# ------------------------------------------------------- NIC health marks


def test_service_map_skips_unhealthy_villages():
    nic = TopLevelNic(Engine())
    nic.register_instance("svc", 3)
    nic.register_instance("svc", 7)
    nic.mark_village_down(3)
    assert not nic.village_healthy(3) and nic.village_healthy(7)
    assert [nic.pick_village("svc") for __ in range(3)] == [7, 7, 7]
    nic.mark_village_down(7)
    with pytest.raises(KeyError):
        nic.pick_village("svc")
    nic.mark_village_up(3)
    assert nic.pick_village("svc") == 3
    assert nic.health_marks == 2


def test_pick_village_exclude_prefers_other_instance():
    nic = TopLevelNic(Engine())
    nic.register_instance("svc", 1)
    nic.register_instance("svc", 2)
    assert all(nic.pick_village("svc", exclude=1) == 2 for __ in range(4))
    # with a single instance, exclude cannot apply
    nic.deregister_instance("svc", 2)
    assert nic.pick_village("svc", exclude=1) == 1


def test_failed_lnic_blackholes_messages():
    eng = Engine()
    nic = LNic(eng, NicConfig())
    done = []
    nic.fail()
    nic.process(512, lambda: done.append(eng.now))
    eng.run()
    assert done == [] and nic.dropped == 1
    nic.recover()
    nic.process(512, lambda: done.append(eng.now))
    eng.run()
    assert len(done) == 1


# ------------------------------------------------------ village failures


class _FixedExecutor:
    """One fixed-length segment per request, no blocking."""

    def __init__(self, segment_ns=100.0):
        self.segment_ns = segment_ns

    def segment_time_ns(self, rec, core):
        return self.segment_ns

    def segment_done(self, rec, village, core):
        village.finish(rec, core)


def make_village(engine, n_cores=2):
    dom = SchedulerDomain(engine, HARDWARE_CS, freq_ghz=2.0)
    return Village(engine, 0, n_cores, dom, _FixedExecutor())


def test_failed_village_blackholes_and_recovers():
    eng = Engine()
    village = make_village(eng)
    village.fail()
    # submit still "succeeds" — the sender cannot tell (detection lag)
    assert village.submit(rec())
    eng.run()
    assert village.completed == 0 and village.blackholed == 1
    village.recover()
    done = []
    village.submit(RequestRecord(app_name="app", service="svc",
                                 segments=[1000.0],
                                 on_complete=lambda r: done.append(eng.now)))
    eng.run()
    assert village.completed == 1 and len(done) == 1


def test_fail_purges_queued_requests():
    eng = Engine()
    village = make_village(eng, n_cores=1)
    for __ in range(4):
        village.submit(rec())
    village.fail()
    eng.run()
    assert village.completed == 0
    assert village.blackholed >= 3          # everything queued was purged


def test_degrade_factor_slows_segments():
    eng = Engine()
    village = make_village(eng)
    done = {}
    village.submit(RequestRecord(app_name="app", service="svc",
                                 segments=[1000.0],
                                 on_complete=lambda r: done.setdefault(
                                     "clean", eng.now)))
    eng.run()
    village.degrade_factor = 4.0
    start = eng.now
    village.submit(RequestRecord(app_name="app", service="svc",
                                 segments=[1000.0],
                                 on_complete=lambda r: done.setdefault(
                                     "slow", eng.now)))
    eng.run()
    assert done["slow"] - start == pytest.approx(4.0 * done["clean"])


def test_failed_core_is_skipped():
    eng = Engine()
    village = make_village(eng, n_cores=2)
    village.cores[0].failed = True
    for __ in range(3):
        village.submit(rec())
    eng.run()
    assert village.completed == 3
    assert village.cores[0].requests_run == 0


# -------------------------------------------------- cluster end-to-end


def _small_sim(**kw):
    return ClusterSimulation(SMALL, social_network_app("Text"),
                             rps_per_server=8_000, n_servers=1,
                             duration_s=0.004, seed=5, **kw)


def test_fault_inventory_enumerates_components():
    sim = _small_sim()
    inv = fault_inventory(sim.servers)
    n_villages = sum(len(s.villages) for s in sim.servers)
    assert len(inv["villages"]) == n_villages
    assert len(inv["nics"]) == 2 * n_villages        # lnic + rnic each
    # links counted once per physical link, all belonging to server 0
    assert inv["links"] and all(t[0] == 0 for t in inv["links"])
    assert all(u < v for (_, u, v) in inv["links"])


def test_village_failure_triggers_timeout_retry_and_health_marks():
    sched = FaultSchedule(detection_ns=50_000.0) \
        .fail_village(0, 1, at_ns=1e6, recover_at_ns=3e6)
    sim = _small_sim(faults=sched,
                     resilience=ResilienceConfig(timeout_ns=500_000.0,
                                                 max_retries=4))
    result = sim.run()
    fs = result.fault_stats
    assert fs["injected"]["injected"] == 2
    assert fs["rpc_timeouts"] > 0
    assert fs["rpc_retries"] > 0
    assert fs["health_marks"] == 1           # one down-mark (up is silent)
    assert result.completed > 0
    assert 0.0 < result.availability <= 1.0


def test_hedging_counts_and_wasted_responses():
    sim = _small_sim(faults=FaultSchedule().degrade_village(
        0, 0, at_ns=0.0, factor=8.0),
        resilience=ResilienceConfig(timeout_ns=5e6, max_retries=1,
                                    hedge_delay_ns=200_000.0))
    result = sim.run()
    fs = result.fault_stats
    assert fs["rpc_hedges"] > 0
    # both attempts eventually answer; the loser is counted as wasted
    assert fs["wasted_responses"] > 0
    assert result.completed > 0


def test_run_result_dict_gains_fault_keys_only_in_fault_mode():
    clean = _small_sim().run().as_dict()
    faulted = _small_sim(
        faults=FaultSchedule().fail_village(0, 2, 1e6)).run().as_dict()
    for key in ("failed", "availability", "goodput_rps", "faults"):
        assert key not in clean
        assert key in faulted
