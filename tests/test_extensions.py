"""Tests for the Section 8 / 4.1 extensions: heterogeneous villages,
snapshot auto-scaling, bursty arrivals, and SRPT at system level."""

import dataclasses

import numpy as np
import pytest

from repro.net.fabric import InterServerFabric, StorageBackend
from repro.sim import Engine
from repro.systems import UMANYCORE, Server, simulate
from repro.systems.configs import heterogeneous_umanycore
from repro.workloads import SOCIAL_NETWORK_APPS
from repro.workloads.arrival import bursty_arrival_times


def build_server(config, app_name="Text", seed=0):
    engine = Engine()
    fabric = InterServerFabric(engine, 1)
    storage = StorageBackend(engine, np.random.default_rng(seed + 1))
    app = SOCIAL_NETWORK_APPS[app_name]
    server = Server(engine, 0, config, {app.name: app},
                    np.random.default_rng(seed), fabric, storage)
    return engine, server, app


# ------------------------------------------------- heterogeneous villages

def test_hetero_config_validation():
    cfg = heterogeneous_umanycore(0.25)
    assert cfg.big_village_fraction == 0.25
    assert cfg.big_core.issue_width > UMANYCORE.core.issue_width
    with pytest.raises(ValueError):
        dataclasses.replace(UMANYCORE, big_village_fraction=0.5)  # no big core
    with pytest.raises(ValueError):
        heterogeneous_umanycore(1.5)


def test_hetero_server_has_big_villages():
    __, server, __a = build_server(heterogeneous_umanycore(0.25))
    assert len(server._big_villages) == 32          # 25% of 128
    big = next(iter(server._big_villages))
    small = next(v for v in range(128) if v not in server._big_villages)
    assert server.village_core_model(big) is server._big_core_model
    assert server.village_core_model(small) is server.core_model


def test_hetero_placement_leaf_services_on_big_villages():
    """Call-free services land on big villages; orchestrators on small."""
    __, server, app = build_server(heterogeneous_umanycore(0.25))
    leaf_services = [n for n, s in app.services.items()
                     if all(c.is_storage for c in s.calls)]
    heavy_services = [n for n in app.services if n not in leaf_services]
    for name in leaf_services:
        assert set(server.placement[name]) <= server._big_villages, name
    for name in heavy_services:
        assert not set(server.placement[name]) & server._big_villages, name


def test_hetero_segments_faster_on_big_villages():
    from repro.core.request import RequestRecord

    __, server, __a = build_server(heterogeneous_umanycore(0.25))
    big = sorted(server._big_villages)[0]
    small = next(v for v in range(128) if v not in server._big_villages)

    def time_on(village):
        rec = RequestRecord("Text", "text", [500_000.0],
                            on_complete=lambda r: None)
        rec.village = village
        return server.segment_time_ns(rec, server.villages[village].cores[0])

    assert time_on(big) < time_on(small)


def test_hetero_system_end_to_end():
    app = SOCIAL_NETWORK_APPS["UrlShort"]
    r = simulate(heterogeneous_umanycore(0.25), app, rps_per_server=3000,
                 n_servers=1, duration_s=0.01, seed=0)
    assert r.completed == r.offered


# ----------------------------------------------------------- auto-scaling

def test_auto_scale_boots_instances_under_pressure():
    """With tiny RQs and a burst, new instances boot from snapshots."""
    cfg = dataclasses.replace(
        UMANYCORE, name="uM-autoscale", auto_scale=True, rq_capacity=2,
        n_cores=64, cores_per_queue=8, n_clusters=8)
    engine, server, app = build_server(cfg, app_name="Text")
    initial = {name: len(v) for name, v in server.placement.items()}
    done = []
    for __ in range(300):
        server.client_request("Text", lambda rec: done.append(rec))
    engine.run()
    assert server.instances_booted > 0
    grown = {name: len(server.placement[name]) for name in initial}
    assert any(grown[n] > initial[n] for n in initial)


def test_no_auto_scale_without_flag():
    cfg = dataclasses.replace(
        UMANYCORE, name="uM-noscale", auto_scale=False, rq_capacity=2,
        n_cores=64, cores_per_queue=8, n_clusters=8)
    engine, server, __ = build_server(cfg, app_name="Text")
    for __i in range(300):
        server.client_request("Text", lambda rec: None)
    engine.run()
    assert server.instances_booted == 0


# --------------------------------------------------------- bursty arrivals

def test_bursty_arrivals_match_mean_rate():
    rng = np.random.default_rng(0)
    times = bursty_arrival_times(50_000, 1.0, rng)
    assert len(times) == pytest.approx(50_000, rel=0.15)
    assert (np.diff(times) >= 0).all()


def test_bursty_arrivals_burstier_than_poisson():
    """Per-window counts have a much higher variance-to-mean ratio."""
    from repro.workloads.arrival import arrival_times

    rng = np.random.default_rng(1)
    window_ns = 5e6

    def dispersion(times):
        counts = np.bincount((times // window_ns).astype(int))
        return counts.var() / counts.mean()

    poisson = arrival_times(50_000, 0.5, rng)
    bursty = bursty_arrival_times(50_000, 0.5, rng)
    assert dispersion(bursty) > 3 * dispersion(poisson)


def test_bursty_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        bursty_arrival_times(0, 1.0, rng)
    with pytest.raises(ValueError):
        bursty_arrival_times(100, 1.0, rng, burst_sigma=-1)


def test_cluster_simulation_bursty_mode():
    app = SOCIAL_NETWORK_APPS["UrlShort"]
    r = simulate(UMANYCORE, app, rps_per_server=3000, n_servers=1,
                 duration_s=0.01, seed=0, arrivals="bursty")
    assert r.completed == r.offered
    with pytest.raises(ValueError):
        simulate(UMANYCORE, app, 1000, arrivals="weibull")


def test_bursty_tail_worse_than_poisson_at_load():
    """Burstiness inflates the tail at the same mean load."""
    app = SOCIAL_NETWORK_APPS["Text"]
    poisson = simulate(UMANYCORE, app, rps_per_server=15_000, n_servers=1,
                       duration_s=0.02, seed=3, arrivals="poisson")
    bursty = simulate(UMANYCORE, app, rps_per_server=15_000, n_servers=1,
                      duration_s=0.02, seed=3, arrivals="bursty")
    assert bursty.p99_ns > poisson.p99_ns * 0.9   # at least comparable


# ------------------------------------------------------------ SRPT config

def test_srpt_system_config_runs():
    cfg = dataclasses.replace(UMANYCORE, name="uM-srpt", rq_policy="srpt")
    app = SOCIAL_NETWORK_APPS["Text"]
    r = simulate(cfg, app, rps_per_server=3000, n_servers=1,
                 duration_s=0.01, seed=0)
    assert r.completed == r.offered
