"""Unit + property tests for the functional cache and TLB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.cache import InsertionPolicy, SetAssociativeCache
from repro.cpu.tlb import Tlb


def make_cache(size=1024, assoc=2, line=64):
    return SetAssociativeCache(size, assoc, line)


def test_first_access_misses_then_hits():
    c = make_cache()
    assert c.access(0) is False
    assert c.access(0) is True
    assert c.access(63) is True          # same line
    assert c.access(64) is False         # next line
    assert c.stats.accesses == 4 and c.stats.hits == 2


def test_lru_eviction_within_set():
    # 1024B/2-way/64B -> 8 sets; addresses 64*8 apart map to the same set.
    c = make_cache()
    stride = 64 * 8
    c.access(0 * stride)
    c.access(1 * stride)
    c.access(0 * stride)        # refresh line 0 -> line 1 is now LRU
    c.access(2 * stride)        # evicts line 1
    assert c.access(0 * stride) is True
    assert c.access(1 * stride) is False


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        SetAssociativeCache(1000, 3, 64)


def test_prefetch_fills_without_counting_access():
    c = make_cache()
    assert c.prefetch(0) is True
    assert c.stats.accesses == 0
    assert c.access(0) is True
    assert c.stats.useful_prefetches == 1
    assert c.prefetch(0) is False  # already present


def test_useful_prefetch_counted_once():
    c = make_cache()
    c.prefetch(0)
    c.access(0)
    c.access(0)
    assert c.stats.useful_prefetches == 1


def test_transient_insertion_policy_evicted_first():
    class Transient128(InsertionPolicy):
        def is_transient(self, line_addr):
            return line_addr == 128 // 64 * 8  # line of addr 128*8... see below

    # Use a direct check instead: mark the line of `victim_addr` transient.
    stride = 64 * 8
    victim_addr = 1 * stride

    class Policy(InsertionPolicy):
        def is_transient(self, line_addr):
            return line_addr == victim_addr // 64

    c = SetAssociativeCache(1024, 2, 64, policy=Policy())
    c.access(0 * stride)          # normal line
    c.access(victim_addr)         # transient -> parked at LRU
    c.access(2 * stride)          # evicts the transient line, not line 0
    assert c.access(0 * stride) is True
    assert c.access(victim_addr) is False


def test_flush_invalidates_but_keeps_stats():
    c = make_cache()
    c.access(0)
    c.flush()
    assert c.access(0) is False
    assert c.stats.accesses == 2


def test_mpki():
    c = make_cache()
    for addr in range(0, 64 * 20, 64):
        c.access(addr)  # 20 cold misses
    assert c.stats.mpki(20_000) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        c.stats.mpki(0)


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_occupancy_never_exceeds_capacity(addresses):
    c = SetAssociativeCache(512, 2, 64)
    for a in addresses:
        c.access(a)
    assert c.occupancy <= 512 // 64
    for s in c._sets:
        assert len(s) <= 2


@given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=300))
@settings(max_examples=50, deadline=None)
def test_hits_plus_misses_equals_accesses(addresses):
    c = SetAssociativeCache(1024, 4, 64)
    for a in addresses:
        c.access(a)
    assert c.stats.hits + c.stats.misses == c.stats.accesses == len(addresses)


@given(st.integers(min_value=0, max_value=1 << 24))
@settings(max_examples=50, deadline=None)
def test_repeated_access_always_hits(addr):
    c = make_cache()
    c.access(addr)
    assert c.access(addr) is True


def test_fully_associative_cache_is_exact_lru():
    c = SetAssociativeCache(4 * 64, 4, 64)  # one set, 4 ways
    for i in range(4):
        c.access(i * 64)
    c.access(0)            # order now 1,2,3,0 (LRU..MRU)
    c.access(4 * 64)       # evicts 1
    assert c.access(64) is False
    # after the two fills above the set is 3,0,4,1 -> accessing 2 misses too
    assert c.contains(0)


def test_tlb_hit_within_page():
    t = Tlb(entries=16, assoc=4)
    assert t.access(0) is False
    assert t.access(100) is True        # same 4K page
    assert t.access(4096) is False      # next page
    assert t.stats.accesses == 3


def test_tlb_capacity_eviction():
    t = Tlb(entries=4, assoc=4)
    for p in range(5):
        t.access(p * 4096)
    assert t.access(0) is False  # evicted (LRU)


def test_tlb_invalid_geometry():
    with pytest.raises(ValueError):
        Tlb(entries=2, assoc=4)
