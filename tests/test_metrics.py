"""Tests for latency recording and QoS/throughput accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    LatencyRecorder,
    ThroughputResult,
    qos_threshold_ns,
    qos_violated,
)


def test_summary_statistics():
    rec = LatencyRecorder("t")
    for i in range(1, 101):
        rec.record(float(i), float(i))
    s = rec.summary()
    assert s.count == 100
    assert s.mean == pytest.approx(50.5)
    assert s.p50 == pytest.approx(50.5)
    assert s.p99 == pytest.approx(99.01)
    assert s.maximum == 100.0
    assert s.tail_to_average == pytest.approx(99.01 / 50.5)


def test_warmup_cutoff_filters_by_completion_time():
    rec = LatencyRecorder()
    rec.record(10.0, 5.0)
    rec.record(100.0, 50.0)
    assert len(rec.latencies(after_ns=50.0)) == 1
    assert rec.summary(after_ns=50.0).mean == pytest.approx(50.0)


def test_empty_recorder_returns_sentinel():
    """Zero post-warm-up samples are a legitimate outcome (hybrid-elided
    windows, autoscaler drains), so summarization degrades to the
    explicit empty sentinel instead of raising."""
    s = LatencyRecorder("e2e").summary()
    assert s.is_empty and s.count == 0
    assert (s.mean, s.p99, s.maximum) == (0.0, 0.0, 0.0)
    assert s.tail_to_average == 0.0


def test_all_samples_before_cutoff_returns_sentinel():
    """The warm-up-cutoff case degrades the same way as a truly empty
    recorder: the sentinel, not an exception."""
    rec = LatencyRecorder("e2e")
    rec.record(10.0, 5.0)
    rec.record(20.0, 6.0)
    assert rec.summary(after_ns=50.0).is_empty
    assert not rec.summary(after_ns=0.0).is_empty


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        LatencyRecorder().record(1.0, -1.0)


@given(st.lists(st.floats(min_value=0.1, max_value=1e9), min_size=1,
                max_size=500))
@settings(max_examples=50, deadline=None)
def test_percentiles_ordered(latencies):
    rec = LatencyRecorder()
    for i, lat in enumerate(latencies):
        rec.record(float(i), lat)
    s = rec.summary()
    assert s.p50 <= s.p99 <= s.p999 <= s.maximum
    assert min(latencies) * 0.999 <= s.mean <= max(latencies) * 1.001


def test_qos_threshold():
    assert qos_threshold_ns(100.0) == 500.0
    with pytest.raises(ValueError):
        qos_threshold_ns(0.0)


def test_qos_violation_detection():
    ok = np.full(1000, 400.0)
    assert not qos_violated(ok, contention_free_avg_ns=100.0)
    bad = np.concatenate([np.full(950, 100.0), np.full(50, 10_000.0)])
    assert qos_violated(bad, contention_free_avg_ns=100.0)
    with pytest.raises(ValueError):
        qos_violated(np.array([]), 100.0)


def test_throughput_normalization():
    um = ThroughputResult("uM", "Text", 150_000, 1.0)
    sc = ThroughputResult("SC", "Text", 10_000, 1.0)
    assert um.normalized_to(sc) == pytest.approx(15.0)
    with pytest.raises(ValueError):
        um.normalized_to(ThroughputResult("x", "y", 0.0, 1.0))
