"""Tests for the CACTI/McPAT-like power & area models (Section 5, 6.8)."""

import pytest

from repro.cpu.core_model import SCALEOUT_CORE, SERVERCLASS_CORE, UMANYCORE_CORE
from repro.power import (
    core_area_mm2,
    core_power_w,
    iso_area_cores,
    iso_power_cores,
    scale_area,
    scale_power,
    sram_area_mm2,
    sram_read_energy_pj,
    system_budget,
)
from repro.power.budget import per_core_power_w
from repro.systems import SCALEOUT, SERVERCLASS, SERVERCLASS_128, UMANYCORE


# ------------------------------------------------------------------ scaling

def test_scaling_tables():
    assert scale_area(100.0, 32, 10) == pytest.approx(14.5)
    assert scale_power(100.0, 32, 10) == pytest.approx(36.0)
    assert scale_area(50.0, 10, 10) == 50.0
    with pytest.raises(ValueError):
        scale_area(1.0, 32, 5)


# -------------------------------------------------------------------- cacti

def test_sram_area_scales_with_size():
    small = sram_area_mm2(64 * 1024, 10)
    big = sram_area_mm2(2 * 1024 * 1024, 10)
    assert big == pytest.approx(32 * small)


def test_sram_read_energy_grows_with_size_and_assoc():
    assert sram_read_energy_pj(2 << 20, 8) > sram_read_energy_pj(64 << 10, 8)
    assert sram_read_energy_pj(64 << 10, 16) > sram_read_energy_pj(64 << 10, 2)
    with pytest.raises(ValueError):
        sram_read_energy_pj(1024, 0)


def test_sram_validation():
    with pytest.raises(ValueError):
        sram_area_mm2(-1)


# -------------------------------------------------------------------- mcpat

def test_server_core_bigger_and_hungrier():
    assert core_area_mm2(SERVERCLASS_CORE) > 5 * core_area_mm2(UMANYCORE_CORE)
    assert core_power_w(SERVERCLASS_CORE) > 15 * core_power_w(UMANYCORE_CORE)


def test_power_monotone_in_activity():
    lo = core_power_w(UMANYCORE_CORE, activity=0.1)
    hi = core_power_w(UMANYCORE_CORE, activity=0.9)
    assert hi > lo > 0
    with pytest.raises(ValueError):
        core_power_w(UMANYCORE_CORE, activity=1.5)


def test_umanycore_and_scaleout_cores_identical_power():
    assert core_power_w(UMANYCORE_CORE) == pytest.approx(
        core_power_w(SCALEOUT_CORE))


# ---------------------------------------------------------- paper endpoints

def test_per_core_power_matches_paper():
    """Section 5: 10.225 W ServerClass, 0.396 W ScaleOut, 0.408 W
    uManycore (core + its cache-hierarchy share); within 10 %."""
    assert per_core_power_w(SERVERCLASS) == pytest.approx(10.225, rel=0.10)
    assert per_core_power_w(SCALEOUT) == pytest.approx(0.396, rel=0.10)
    assert per_core_power_w(UMANYCORE) == pytest.approx(0.408, rel=0.10)


def test_umanycore_area_near_paper():
    """Section 6.8: 547.2 mm2 uManycore vs 176.1 mm2 40-core ServerClass."""
    um = system_budget(UMANYCORE)
    sc = system_budget(SERVERCLASS)
    assert um.area_mm2 == pytest.approx(547.2, rel=0.15)
    assert sc.area_mm2 == pytest.approx(176.1, rel=0.20)
    assert 2.5 < um.area_mm2 / sc.area_mm2 < 3.7     # paper: 3.1x


def test_umanycore_slightly_larger_than_scaleout():
    """Section 6.8: uManycore has ~2.9% more area than ScaleOut."""
    ratio = system_budget(UMANYCORE).area_mm2 / \
        system_budget(SCALEOUT).area_mm2
    assert 1.005 < ratio < 1.06


def test_iso_power_sizing_yields_40_cores():
    assert iso_power_cores(UMANYCORE, SERVERCLASS) == 40


def test_iso_area_sizing_near_128_cores():
    assert 100 <= iso_area_cores(UMANYCORE, SERVERCLASS) <= 136


def test_iso_area_serverclass_is_power_hungry():
    """Section 6.8: the 128-core ServerClass uses ~3.2x more power."""
    ratio = system_budget(SERVERCLASS_128).power_w / \
        system_budget(UMANYCORE).power_w
    assert 2.6 < ratio < 3.6
