"""Tests for the repro.hybrid analytic fast path.

Covers the steady-state detector against scripted (non-)stationary
series, the calibrated analytic models, the byte-identity contracts
(tol=0 and faulted runs replay the detailed run exactly), the
commit/elide path under the strict sanitizer, and the fig18
speculative-bisection equivalence.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.faults import FaultSchedule, ResilienceConfig
from repro.hybrid import (
    EmpiricalDist,
    HybridConfig,
    MGkModel,
    SteadyStateDetector,
    saturation_estimate_rps,
)
from repro.systems.cluster import ClusterSimulation
from repro.systems.configs import UMANYCORE
from repro.workloads.deathstar import social_network_app

CONFIG = replace(UMANYCORE, n_cores=128, n_clusters=8)

#: Aggressive knobs so commits happen inside a few-ms test run.
FAST = HybridConfig(tol=0.5, windows=3, min_samples=5,
                    window_ns=300_000.0, calibration_roots=10)


def _sim(hybrid, duration_s=0.003, rps=16_000.0, seed=7, check=None):
    return ClusterSimulation(CONFIG, social_network_app("Text"),
                             rps_per_server=rps, n_servers=1,
                             duration_s=duration_s, seed=seed,
                             check=check, hybrid=hybrid)


# ------------------------------------------------------------ detector

def test_detector_converges_on_stationary_series():
    det = SteadyStateDetector(tol=0.2, windows=3)
    series = [100.0, 98.0, 103.0, 99.0]
    fired = [det.observe({"rate": v, "service_ns": 50.0 + (i % 2)})
             for i, v in enumerate(series)]
    assert fired == [False, False, True, True]   # latches once converged
    assert det.converged


def test_detector_never_fires_on_monotone_ramp():
    """A slow ramp fits inside a generous band but is still a trend; the
    monotone catch must hold it open until the trend breaks."""
    det = SteadyStateDetector(tol=0.5, windows=4)
    for v in (100.0, 104.0, 108.0, 112.0, 116.0, 120.0):
        assert not det.observe({"rate": v})
    assert det.observe({"rate": 118.0})          # trend broken: converge


def test_detector_tol_zero_never_converges():
    det = SteadyStateDetector(tol=0.0, windows=2)
    for __ in range(20):
        assert not det.observe({"rate": 100.0})


def test_detector_reset_rearms():
    det = SteadyStateDetector(tol=0.3, windows=2)
    det.observe({"rate": 100.0})
    assert det.observe({"rate": 100.0})
    det.reset()
    assert not det.converged and det.windows_seen == 0
    assert not det.observe({"rate": 100.0})      # history forgotten too


def test_detector_two_windows_can_converge():
    """The monotone-ramp catch is meaningless below 3 points (any two
    distinct values are "monotone") and must not block windows=2."""
    det = SteadyStateDetector(tol=0.3, windows=2)
    det.observe({"rate": 100.0})
    assert det.observe({"rate": 101.0})


def test_detector_floor_absorbs_near_zero_series():
    det = SteadyStateDetector(tol=0.2, windows=2, floors={"occ": 1.0})
    det.observe({"occ": 0.01})
    assert det.observe({"occ": 0.12})            # inside the floor band


def test_detector_rejects_single_window():
    with pytest.raises(ValueError):
        SteadyStateDetector(tol=0.2, windows=1)


# ------------------------------------------------------ analytic models

def test_hybrid_config_validation():
    for bad in (dict(tol=-0.1), dict(window_ns=-1.0), dict(windows=1),
                dict(min_samples=0), dict(guard_factor=0.0),
                dict(max_aborts=0), dict(calibration_roots=0)):
        with pytest.raises(ValueError):
            HybridConfig(**bad)


def test_empirical_dist_statistics_and_sampling():
    dist = EmpiricalDist([10.0, 20.0, 30.0, 40.0])
    assert len(dist) == 4
    assert dist.mean == pytest.approx(25.0)
    assert dist.quantile(0.0) == 10.0 and dist.quantile(1.0) == 40.0
    rng = np.random.default_rng(3)
    draws = [dist.sample(rng) for __ in range(200)]
    assert all(10.0 <= d <= 40.0 for d in draws)
    assert np.mean(draws) == pytest.approx(25.0, rel=0.15)
    single = EmpiricalDist([7.0])
    assert single.sample(rng) == 7.0
    with pytest.raises(ValueError):
        EmpiricalDist([])


def test_mgk_model_units_and_saturation():
    m = MGkModel(rate_rps=50_000.0, service_ns=10_000.0, servers=1)
    assert m.utilization == pytest.approx(0.5)
    assert m.saturation_rps == pytest.approx(100_000.0)
    assert 0.0 < m.erlang_c() <= 1.0
    assert m.mean_wait_ns() > 0.0
    hot = MGkModel(rate_rps=200_000.0, service_ns=10_000.0, servers=1)
    assert hot.erlang_c() == 1.0
    assert hot.mean_wait_ns() == float("inf")
    with pytest.raises(ValueError):
        MGkModel(rate_rps=-1.0, service_ns=10_000.0, servers=1)


def test_mgk_deterministic_service_halves_the_mmk_wait():
    mm1 = MGkModel(rate_rps=80_000.0, service_ns=10_000.0, servers=1)
    md1 = MGkModel(rate_rps=80_000.0, service_ns=10_000.0, servers=1,
                   cs2=0.0)
    assert md1.mean_wait_ns() == pytest.approx(mm1.mean_wait_ns() / 2)


def test_saturation_estimate_is_physical():
    est = saturation_estimate_rps(CONFIG, social_network_app("Text"))
    assert 1_000.0 < est < 10_000_000.0


# --------------------------------------------- byte-identity contracts

def test_tol_zero_run_is_byte_identical_to_detailed():
    plain = _sim(None).run().as_dict()
    armed = _sim(HybridConfig(tol=0.0)).run().as_dict()
    stats = armed.pop("hybrid")
    assert stats["state"] == "detecting"
    assert stats["commits"] == 0 and stats["roots_elided"] == 0
    assert armed == plain


def test_faulted_run_never_commits_and_stays_identical():
    """The structural guard keeps fault-injected runs fully detailed
    even under knobs that would otherwise commit almost immediately."""
    def faulted(hybrid):
        sim = _sim(hybrid, duration_s=0.004)
        sim.install_faults(
            FaultSchedule(detection_ns=100_000.0)
            .fail_village(0, 1, at_ns=1e6, recover_at_ns=2e6),
            ResilienceConfig(timeout_ns=600_000.0, max_retries=2))
        return sim.run().as_dict()

    plain = faulted(None)
    armed = faulted(FAST)
    stats = armed.pop("hybrid")
    assert stats["commits"] == 0 and stats["roots_elided"] == 0
    assert armed == plain


# -------------------------------------------------- commit/elide path

def test_commit_elides_roots_under_strict_sanitizer():
    from repro.check import CheckContext

    check = CheckContext(strict=True)
    result = _sim(FAST, duration_s=0.004, check=check).run()
    stats = result.hybrid_stats
    assert stats["state"] == "committed"
    assert stats["commits"] >= 1 and stats["aborts"] == 0
    assert stats["roots_elided"] > 0
    assert stats["events_elided"] > 0
    assert stats["committed_at_ns"] is not None
    assert stats["services_committed"]
    model = stats["models"][stats["services_committed"][0]]
    assert model["samples"] >= FAST.calibration_roots
    assert check.ok


def test_hybrid_run_is_deterministic():
    a = _sim(FAST, duration_s=0.004).run().as_dict()
    b = _sim(FAST, duration_s=0.004).run().as_dict()
    assert a == b


def test_sweep_point_cache_key_varies_with_hybrid():
    from repro.runner import SweepPoint

    app = social_network_app("Text")
    base = SweepPoint(config=CONFIG, app=app, rps=8_000.0, n_servers=1,
                      duration_s=0.002, seed=1)
    armed = replace(base, hybrid=FAST)
    other = replace(base, hybrid=replace(FAST, tol=0.4))
    assert base.key() != armed.key() != other.key()


# ------------------------------------------------- fig18 speculation

def test_fig18_speculative_bisection_matches_serial():
    from repro.experiments.common import Settings
    from repro.experiments.fig18_throughput import max_throughputs

    pairs = [(CONFIG, social_network_app("Text"))]
    settings = Settings(n_servers=1, duration_s=0.002)
    kw = dict(low=2_000.0, high=64_000.0, iterations=3)
    serial = max_throughputs(pairs, settings, speculate=False, **kw)
    spec = max_throughputs(pairs, settings, speculate=True, **kw)
    assert spec == serial
