"""Unit tests for generator-based processes and signals."""

import pytest

from repro.sim import Engine, FifoQueue, Signal, Timeout


def test_timeout_advances_clock():
    eng = Engine()
    log = []

    def proc():
        yield Timeout(3.0)
        log.append(eng.now)
        yield Timeout(2.0)
        log.append(eng.now)

    eng.spawn(proc())
    eng.run()
    assert log == [3.0, 5.0]


def test_signal_passes_value():
    eng = Engine()
    sig = Signal("rpc")
    got = []

    def waiter():
        value = yield sig
        got.append((eng.now, value))

    eng.spawn(waiter())
    eng.schedule(7.0, sig.fire, eng, "response")
    eng.run()
    assert got == [(7.0, "response")]


def test_signal_fired_before_wait_resumes_immediately():
    eng = Engine()
    sig = Signal()
    sig.fire(eng, 42)
    got = []

    def waiter():
        got.append((yield sig))

    eng.spawn(waiter())
    eng.run()
    assert got == [42]


def test_signal_double_fire_rejected():
    eng = Engine()
    sig = Signal()
    sig.fire(eng, 1)
    with pytest.raises(RuntimeError):
        sig.fire(eng, 2)


def test_signal_wakes_multiple_waiters():
    eng = Engine()
    sig = Signal()
    got = []

    def waiter(i):
        value = yield sig
        got.append((i, value))

    for i in range(3):
        eng.spawn(waiter(i))
    eng.schedule(1.0, sig.fire, eng, "go")
    eng.run()
    assert sorted(got) == [(0, "go"), (1, "go"), (2, "go")]


def test_process_done_signal_carries_return_value():
    eng = Engine()

    def child():
        yield Timeout(5.0)
        return "result"

    proc = eng.spawn(child())
    got = []

    def parent():
        got.append((yield proc.done_signal))

    eng.spawn(parent())
    eng.run()
    assert got == ["result"]
    assert proc.finished and proc.result == "result"


def test_process_rejects_non_waitable():
    eng = Engine()

    def bad():
        yield "not a waitable"

    eng.spawn(bad())
    with pytest.raises(TypeError):
        eng.run()


def test_fifo_queue_blocking_get():
    eng = Engine()
    q = FifoQueue(eng, "q")
    got = []

    def consumer():
        while True:
            item = yield q.get()
            got.append((eng.now, item))
            if item == "stop":
                return

    eng.spawn(consumer())
    eng.schedule(2.0, q.put, "a")
    eng.schedule(5.0, q.put, "stop")
    eng.run()
    assert got == [(2.0, "a"), (5.0, "stop")]


def test_fifo_queue_buffers_when_no_getter():
    eng = Engine()
    q = FifoQueue(eng)
    q.put(1)
    q.put(2)
    assert len(q) == 2
    got = []

    def consumer():
        got.append((yield q.get()))
        got.append((yield q.get()))

    eng.spawn(consumer())
    eng.run()
    assert got == [1, 2]
