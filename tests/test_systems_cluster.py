"""Integration tests for the multi-server cluster simulation."""

import dataclasses

import pytest

from repro.systems import SCALEOUT, SERVERCLASS, UMANYCORE, simulate
from repro.systems.cluster import ClusterSimulation
from repro.workloads import SOCIAL_NETWORK_APPS, synthetic_app

APP = SOCIAL_NETWORK_APPS["Text"]


def quick(config, app=APP, rps=3000, servers=1, duration=0.01, seed=0, **kw):
    return simulate(config, app, rps_per_server=rps, n_servers=servers,
                    duration_s=duration, seed=seed, **kw)


def test_all_offered_requests_complete_under_light_load():
    r = quick(UMANYCORE)
    assert r.completed == r.offered
    assert r.rejected == 0
    assert r.summary.count > 0
    assert r.summary.mean > 0


def test_results_are_deterministic_for_a_seed():
    a = quick(UMANYCORE, seed=7)
    b = quick(UMANYCORE, seed=7)
    assert a.summary.mean == b.summary.mean
    assert a.summary.p99 == b.summary.p99
    c = quick(UMANYCORE, seed=8)
    assert c.summary.mean != a.summary.mean


def test_p99_at_least_mean():
    r = quick(SCALEOUT)
    assert r.summary.p99 >= r.summary.p50
    assert r.summary.p999 >= r.summary.p99


def test_umanycore_beats_baselines_under_load():
    """The headline result at high load (small-scale smoke version)."""
    results = {cfg.name: quick(cfg, rps=15000, servers=2, duration=0.025)
               for cfg in (UMANYCORE, SCALEOUT, SERVERCLASS)}
    um = results["uManycore"]
    assert results["ServerClass"].p99_ns > 1.5 * um.p99_ns
    assert results["ScaleOut"].mean_ns > um.mean_ns
    assert results["ServerClass"].mean_ns > um.mean_ns


def test_synthetic_workload_runs():
    app = synthetic_app("bimodal", mean_service_us=30.0, blocking_calls=2)
    r = quick(UMANYCORE, app=app)
    assert r.completed == r.offered


def test_disabling_icn_contention_never_slows_requests():
    base = quick(SCALEOUT, rps=8000)
    nc = quick(dataclasses.replace(SCALEOUT, name="SO-nc",
                                   icn_contention=False), rps=8000)
    assert nc.summary.mean <= base.summary.mean * 1.001


def test_work_stealing_config_runs():
    cfg = dataclasses.replace(SCALEOUT, name="SO-steal", work_steal=True)
    r = quick(cfg)
    assert r.completed == r.offered


def test_multi_server_cluster_runs():
    r = quick(UMANYCORE, servers=3, rps=2000)
    assert r.n_servers == 3
    assert r.completed == r.offered


def test_throughput_property():
    r = quick(UMANYCORE, rps=3000, duration=0.01)
    assert r.throughput_rps == pytest.approx(
        r.completed / (0.01 * r.n_servers))


def test_warmup_excludes_early_samples():
    sim = ClusterSimulation(UMANYCORE, APP, rps_per_server=3000,
                            n_servers=1, duration_s=0.01, seed=0,
                            warmup_fraction=0.5)
    r = sim.run()
    assert r.summary.count < r.completed


def test_invalid_harness_args():
    with pytest.raises(ValueError):
        ClusterSimulation(UMANYCORE, APP, 1000, n_servers=0)
    with pytest.raises(ValueError):
        ClusterSimulation(UMANYCORE, APP, 1000, warmup_fraction=1.0)
