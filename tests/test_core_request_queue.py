"""Tests for the hardware Request Queue (Section 4.3 semantics)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RequestQueue, RequestRecord, RequestStatus


def rec(service="svc", segments=None):
    return RequestRecord(app_name="app", service=service,
                         segments=segments or [1000.0],
                         on_complete=lambda r: None)


def test_enqueue_dequeue_fcfs():
    rq = RequestQueue(8)
    a, b = rec(), rec()
    assert rq.enqueue(a) and rq.enqueue(b)
    assert rq.dequeue() is a
    assert rq.dequeue() is b
    assert rq.dequeue() is None


def test_dequeue_filters_by_service():
    rq = RequestQueue(8)
    a, b = rec("s1"), rec("s2")
    rq.enqueue(a)
    rq.enqueue(b)
    assert rq.dequeue("s2") is b
    assert rq.dequeue("s2") is None
    assert rq.dequeue("s1") is a


def test_dequeue_sets_running_and_skips_blocked():
    rq = RequestQueue(8)
    a, b = rec(), rec()
    rq.enqueue(a)
    rq.enqueue(b)
    got = rq.dequeue()
    assert got.status is RequestStatus.RUNNING
    rq.mark_blocked(got)
    assert rq.dequeue() is b


def test_blocked_then_ready_dequeues_before_later_arrivals():
    """FCFS: a woken entry near the head beats newer READY entries."""
    rq = RequestQueue(8)
    a = rec()
    rq.enqueue(a)
    rq.dequeue()
    rq.mark_blocked(a)
    b = rec()
    rq.enqueue(b)
    rq.mark_ready(a)
    assert rq.dequeue() is a


def test_full_queue_rejects():
    rq = RequestQueue(2)
    assert rq.enqueue(rec()) and rq.enqueue(rec())
    assert rq.is_full
    assert not rq.enqueue(rec())
    assert rq.rejected == 1


def test_complete_at_head_advances_past_finished_run():
    rq = RequestQueue(4)
    a, b, c = rec(), rec(), rec()
    for r in (a, b, c):
        rq.enqueue(r)
    rq.dequeue(), rq.dequeue()
    # Finish b first: not at head, slot stays occupied.
    rq.complete(b)
    assert rq.occupancy == 3
    # Finish a (the head): head advances past a AND the finished b.
    rq.complete(a)
    assert rq.occupancy == 1
    assert rq.entries() == [c]


def test_circular_wraparound():
    rq = RequestQueue(2)
    for __ in range(5):
        r = rec()
        assert rq.enqueue(r)
        assert rq.dequeue() is r
        rq.complete(r)
    assert rq.occupancy == 0
    assert rq.enqueued == 5


def test_has_ready_work_flag():
    rq = RequestQueue(4)
    assert not rq.has_ready()
    a = rec("s1")
    rq.enqueue(a)
    assert rq.has_ready() and rq.has_ready("s1") and not rq.has_ready("s2")
    rq.dequeue()
    assert not rq.has_ready()


def test_mark_ready_requires_blocked():
    rq = RequestQueue(4)
    a = rec()
    rq.enqueue(a)
    with pytest.raises(RuntimeError):
        rq.mark_ready(a)


def test_invalid_capacity():
    with pytest.raises(ValueError):
        RequestQueue(0)


def test_service_dequeue_sees_soft_entries():
    """Service-filtered dequeue must not skip NIC-buffered (soft)
    entries: before the ready-heap scan it only walked slots, so a
    co-located child RPC waiting as a soft entry could starve forever."""
    rq = RequestQueue(8)
    child = rec("child-svc")
    rq.soft_enqueue(child)
    assert rq.has_ready("child-svc")
    assert rq.dequeue("child-svc") is child
    assert child.status is RequestStatus.RUNNING


def test_service_dequeue_fcfs_across_slot_and_soft_entries():
    rq = RequestQueue(8)
    a, b, c = rec("svc"), rec("svc"), rec("other")
    rq.enqueue(a)
    rq.soft_enqueue(b)
    rq.enqueue(c)
    assert rq.dequeue("svc") is a     # slot entry arrived first
    assert rq.dequeue("svc") is b     # then the soft entry
    assert rq.dequeue("svc") is None
    assert rq.dequeue("other") is c


def test_stale_soft_complete_does_not_go_negative():
    """Completing a pre-purge soft entry after the purge reset
    ``soft_entries`` to 0 must not drive the counter negative."""
    rq = RequestQueue(8)
    old = rec()
    rq.soft_enqueue(old)
    rq.dequeue()
    rq.purge()
    assert rq.soft_entries == 0
    fresh = rec()
    rq.soft_enqueue(fresh)
    rq.complete(old)                  # late completion of the purged entry
    assert rq.soft_entries == 1       # fresh entry still accounted
    rq.complete(fresh)
    assert rq.soft_entries == 0


def test_purge_drops_slots_and_soft_entries():
    rq = RequestQueue(8)
    rq.enqueue(rec())
    rq.soft_enqueue(rec())
    assert rq.purge() == 2
    assert rq.occupancy == 0 and rq.soft_entries == 0
    assert not rq.has_ready()


def test_late_wakeup_after_purge_is_ignored():
    """mark_ready for a purged entry must not plant a ghost heap entry
    in the new epoch."""
    rq = RequestQueue(8)
    old = rec()
    rq.enqueue(old)
    rq.dequeue()
    rq.mark_blocked(old)
    rq.purge()
    rq.mark_ready(old)                # stale: silently ignored
    assert not rq.has_ready()
    assert rq.dequeue() is None


def test_late_slot_complete_after_purge_leaves_new_entries_alone():
    rq = RequestQueue(4)
    old = rec()
    rq.enqueue(old)
    rq.dequeue()
    rq.purge()
    fresh = rec()
    rq.enqueue(fresh)
    rq.complete(old)                  # stale: must not advance the head
    assert rq.occupancy == 1
    assert rq.entries() == [fresh]


@given(st.lists(st.sampled_from(["enq", "deq", "fin"]), min_size=1, max_size=200))
@settings(max_examples=60, deadline=None)
def test_rq_invariants_under_random_ops(ops):
    """Occupancy stays within [0, capacity]; dequeues are FCFS by arrival."""
    rq = RequestQueue(8)
    running = []
    order = []
    counter = [0]
    for op in ops:
        if op == "enq":
            r = rec()
            r._seq = counter[0]
            counter[0] += 1
            rq.enqueue(r)
        elif op == "deq":
            r = rq.dequeue()
            if r is not None:
                running.append(r)
                order.append(r._seq)
        elif op == "fin" and running:
            rq.complete(running.pop(0))
        assert 0 <= rq.occupancy <= rq.capacity
    assert order == sorted(order)   # FCFS dequeue order
