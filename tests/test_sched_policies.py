"""Tests for dequeue policies (FCFS/SRPT) and the M/M/c reference."""

import numpy as np
import pytest

from repro.core import HARDWARE_CS, RequestQueue, RequestRecord, \
    SchedulerDomain, Village
from repro.sched import FCFS_POLICY, SRPT_POLICY, erlang_c, \
    mmc_mean_sojourn, mmc_mean_wait
from repro.sched.policies import DeadlinePolicy, POLICY_NAMES, SjfPolicy, \
    get_policy
from repro.sim import Engine


def rec(segments, service="svc"):
    return RequestRecord(app_name="app", service=service,
                         segments=list(segments),
                         on_complete=lambda r: None)


# ----------------------------------------------------------------- policies

def test_get_policy():
    assert get_policy("fcfs") is FCFS_POLICY
    assert get_policy("srpt") is SRPT_POLICY
    with pytest.raises(ValueError):
        get_policy("lifo")


def test_policy_names_registry():
    assert POLICY_NAMES == ("edf", "fcfs", "sjf", "srpt")


def test_stateful_policies_get_fresh_instances():
    """SJF carries measured-service-time state: sharing an instance
    across runs would break same-seed-same-result."""
    a, b = get_policy("sjf"), get_policy("sjf")
    assert a is not b
    a.observe("svc", 500.0)
    r = rec([100.0])
    r._rq_seq = 0
    assert a.key(r) == (500.0, 0)    # a learned the estimate...
    assert b.key(r) == (0.0, 0)      # ...b did not


def test_sjf_ewma_converges_and_orders_by_service():
    p = SjfPolicy(alpha=0.5)
    p.observe("slow", 1000.0)        # first sample seeds the estimate
    assert p._estimate_ns["slow"] == 1000.0
    p.observe("slow", 2000.0)
    assert p._estimate_ns["slow"] == pytest.approx(1500.0)
    p.observe("fast", 10.0)
    slow_r, fast_r = rec([1.0], service="slow"), rec([1.0], service="fast")
    slow_r._rq_seq, fast_r._rq_seq = 0, 1
    # The historically-fast service sorts first despite arriving later.
    assert p.key(fast_r) < p.key(slow_r)


def test_sjf_unseen_service_sorts_first():
    p = SjfPolicy()
    p.observe("seen", 100.0)
    cold, seen = rec([1.0], service="cold"), rec([1.0], service="seen")
    cold._rq_seq, seen._rq_seq = 5, 0
    assert p.key(cold) < p.key(seen)


def test_sjf_in_rq_serves_measured_short_service_first():
    p = SjfPolicy()
    p.observe("long", 9000.0)
    p.observe("short", 10.0)
    rq = RequestQueue(8, policy=p)
    a, b = rec([1.0], service="long"), rec([1.0], service="short")
    rq.enqueue(a)
    rq.enqueue(b)
    assert rq.dequeue() is b


def test_sjf_rejects_bad_alpha():
    with pytest.raises(ValueError):
        SjfPolicy(alpha=0.0)
    with pytest.raises(ValueError):
        SjfPolicy(alpha=1.5)


def test_edf_orders_by_implied_deadline():
    p = DeadlinePolicy(budget_ns=1000.0)
    early, late = rec([1.0]), rec([1.0])
    early.arrival_ns, late.arrival_ns = 100.0, 500.0
    # `late` was admitted to the RQ first (e.g. a retry) but `early`'s
    # deadline comes first.
    late._rq_seq, early._rq_seq = 0, 1
    assert p.key(early) < p.key(late)


def test_edf_rejects_negative_budget():
    with pytest.raises(ValueError):
        DeadlinePolicy(budget_ns=-1.0)


def test_fcfs_serves_in_arrival_order():
    rq = RequestQueue(8, policy=FCFS_POLICY)
    long_req, short_req = rec([9000.0]), rec([10.0])
    rq.enqueue(long_req)
    rq.enqueue(short_req)
    assert rq.dequeue() is long_req


def test_srpt_serves_shortest_first():
    rq = RequestQueue(8, policy=SRPT_POLICY)
    long_req, short_req = rec([9000.0]), rec([10.0])
    rq.enqueue(long_req)
    rq.enqueue(short_req)
    assert rq.dequeue() is short_req
    assert rq.dequeue() is long_req


def test_srpt_uses_remaining_not_total_work():
    rq = RequestQueue(8, policy=SRPT_POLICY)
    # Request A: 3 segments, 2 already executed -> remaining 100.
    a = rec([5000.0, 5000.0, 100.0])
    a.seg_index = 2
    # Request B: 1 segment of 200 remaining.
    b = rec([200.0])
    rq.enqueue(a)
    rq.enqueue(b)
    got = rq.dequeue()
    assert got is a            # 100 remaining < 200 remaining


def test_srpt_rekeys_on_wakeup():
    rq = RequestQueue(8, policy=SRPT_POLICY)
    a = rec([9000.0, 50.0])
    rq.enqueue(a)
    assert rq.dequeue() is a
    rq.mark_blocked(a)
    a.advance_segment()          # 50 remaining now
    b = rec([100.0])
    rq.enqueue(b)
    rq.mark_ready(a)
    assert rq.dequeue() is a     # 50 < 100


def test_srpt_in_village_reduces_short_request_wait():
    """With one core and a long job queued first, SRPT lets the short
    job jump ahead."""

    class FixedExecutor:
        def __init__(self, engine):
            self.engine = engine

        def segment_time_ns(self, r, core):
            return r.current_segment_instructions

        def segment_done(self, r, village, core):
            village.finish(r, core)

    def run(policy):
        eng = Engine()
        dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=2.0)
        village = Village(eng, 0, 1, dom, FixedExecutor(eng),
                          rq_policy=policy)
        finish = {}
        blocker = RequestRecord("app", "svc", [1000.0],
                                on_complete=lambda r: None)
        long_r = RequestRecord("app", "svc", [50_000.0],
                               on_complete=lambda r: finish.setdefault(
                                   "long", eng.now))
        short_r = RequestRecord("app", "svc", [100.0],
                                on_complete=lambda r: finish.setdefault(
                                    "short", eng.now))
        village.submit(blocker)   # occupies the core
        village.submit(long_r)
        village.submit(short_r)
        eng.run()
        return finish

    fcfs = run(FCFS_POLICY)
    srpt = run(SRPT_POLICY)
    assert srpt["short"] < fcfs["short"]
    assert srpt["long"] >= fcfs["long"]


# ----------------------------------------------------------- M/M/c theory

def test_erlang_c_known_values():
    # Single server: Erlang C equals rho.
    assert erlang_c(0.5, 1.0, 1) == pytest.approx(0.5)
    # Overloaded: waits with certainty.
    assert erlang_c(5.0, 1.0, 2) == 1.0
    with pytest.raises(ValueError):
        erlang_c(1.0, 1.0, 0)
    with pytest.raises(ValueError):
        erlang_c(0.0, 1.0, 1)


def test_mm1_wait_formula():
    # M/M/1: W_q = rho / (mu - lambda).
    assert mmc_mean_wait(0.5, 1.0, 1) == pytest.approx(1.0)
    assert mmc_mean_sojourn(0.5, 1.0, 1) == pytest.approx(2.0)
    assert mmc_mean_wait(2.0, 1.0, 1) == float("inf")


def test_village_matches_mmc_theory():
    """A 4-core village with exponential single-segment service must match
    the M/M/4 sojourn-time prediction — validating the dispatch path."""

    class ExpExecutor:
        def __init__(self, engine, rng, mean_ns):
            self.engine = engine
            self.rng = rng
            self.mean_ns = mean_ns

        def segment_time_ns(self, r, core):
            return self.rng.exponential(self.mean_ns)

        def segment_done(self, r, village, core):
            village.finish(r, core)

    eng = Engine()
    rng = np.random.default_rng(11)
    servers = 4
    mean_service = 1000.0                     # ns
    arrival_rate = 0.7 * servers / mean_service  # rho = 0.7
    dom = SchedulerDomain(eng, HARDWARE_CS, freq_ghz=1e9)  # ~zero overhead
    village = Village(eng, 0, servers, dom, ExpExecutor(eng, rng,
                                                        mean_service),
                      rq_capacity=1_000_000)
    sojourns = []
    t = 0.0
    for __ in range(30_000):
        t += rng.exponential(1.0 / arrival_rate)
        r = RequestRecord("app", "svc", [1.0],
                          on_complete=lambda rr, a=t: sojourns.append(
                              eng.now - a))
        eng.schedule_at(t, village.submit, r)
    eng.run()
    expected = mmc_mean_sojourn(arrival_rate, 1.0 / mean_service, servers)
    assert np.mean(sojourns) == pytest.approx(expected, rel=0.06)
