"""Analytic M/M/c queueing formulas.

Used as ground truth in tests: a Village with exponential service times
and Poisson arrivals must match Erlang-C predictions, which validates
the whole dispatch path (RQ, cores, scheduler) against theory.
"""

from __future__ import annotations

import math


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Probability an arrival waits in an M/M/c queue."""
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    a = arrival_rate / service_rate          # offered load (Erlangs)
    rho = a / servers
    if rho >= 1.0:
        return 1.0
    summation = sum(a ** k / math.factorial(k) for k in range(servers))
    top = a ** servers / math.factorial(servers) / (1.0 - rho)
    return top / (summation + top)


def mmc_mean_wait(arrival_rate: float, service_rate: float,
                  servers: int) -> float:
    """Mean time in queue (excluding service) for M/M/c."""
    rho = arrival_rate / (servers * service_rate)
    if rho >= 1.0:
        return float("inf")
    pw = erlang_c(arrival_rate, service_rate, servers)
    return pw / (servers * service_rate - arrival_rate)


def mmc_mean_sojourn(arrival_rate: float, service_rate: float,
                     servers: int) -> float:
    """Mean time in system (queue + service) for M/M/c."""
    return mmc_mean_wait(arrival_rate, service_rate, servers) \
        + 1.0 / service_rate
