"""Inter-village work-stealing policies.

When a village core finds its own RQ empty, its :class:`StealPolicy`
decides which peer (from the village's configured ``steal_from`` list)
to take a READY entry from.  The stolen entry keeps its home RQ — the
owner village's queue records the dequeue, wakeups and completion — so
every conservation ledger still balances at the owner; only execution
migrates, and the thief pays the configured steal latency.

Policies are deterministic: peer-list order (fixed at build time from a
seeded permutation) breaks every tie.
"""

from __future__ import annotations

from typing import Optional


class StealPolicy:
    """Base: pick a victim among ``village.steal_from`` and dequeue."""

    name = "base"

    def steal(self, village, core) -> Optional[object]:
        """Take one READY entry runnable on ``core`` from a peer.

        Returns:
            The dequeued record (still owned by its home RQ), or None
            when no peer has matching ready work.
        """
        raise NotImplementedError


class FirstPeerSteal(StealPolicy):
    """Steal from the first peer (in list order) with ready work —
    the original village behaviour, cheapest to evaluate in hardware."""

    name = "first"

    def steal(self, village, core) -> Optional[object]:
        for other in village.steal_from:
            rec = other.rq.dequeue(core.service)
            if rec is not None:
                return rec
        return None


class MaxLoadSteal(StealPolicy):
    """Steal from the most-loaded peer.

    Peers are ranked by RQ backlog (slot + soft entries); the deepest
    queue is raided first, which levels load instead of repeatedly
    draining whichever peer happens to sit first in the list.  Ties
    keep peer-list order.  A victim whose backlog is all non-matching
    (other services, blocked entries) yields None and the next-deepest
    peer is tried.
    """

    name = "maxload"

    @staticmethod
    def _backlog(village) -> int:
        rq = village.rq
        return rq.occupancy + getattr(rq, "soft_entries", 0)

    def steal(self, village, core) -> Optional[object]:
        peers = village.steal_from
        ranked = sorted(range(len(peers)),
                        key=lambda i: (-self._backlog(peers[i]), i))
        for i in ranked:
            other = peers[i]
            if self._backlog(other) == 0:
                break              # remaining peers are empty too
            rec = other.rq.dequeue(core.service)
            if rec is not None:
                return rec
        return None


#: Shared stateless singletons.
FIRST_STEAL = FirstPeerSteal()
MAXLOAD_STEAL = MaxLoadSteal()

STEAL_POLICIES = {"first": FIRST_STEAL, "maxload": MAXLOAD_STEAL}

#: The registered policy names (the CLI's ``--steal`` choices, plus
#: ``off`` which maps to ``work_steal=False``).
STEAL_NAMES = tuple(sorted(STEAL_POLICIES))


def get_steal_policy(name: str) -> StealPolicy:
    try:
        return STEAL_POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown steal policy {name!r}; "
                         f"known: {sorted(STEAL_POLICIES)}") from None
