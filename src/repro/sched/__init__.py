"""Scheduling policies and queueing-theory references.

The Request Queue hardware serves FCFS (Section 4.3); the paper argues
SRPT would gain little for microservices because same-service requests
have similar durations and blocking calls already interleave work.  Both
policies are implemented so the claim can be tested
(:mod:`repro.sched.policies`), and :mod:`repro.sched.queueing` provides
M/M/c formulas used to validate the simulator against theory.
"""

from repro.sched.policies import FCFS_POLICY, SRPT_POLICY, DequeuePolicy
from repro.sched.queueing import erlang_c, mmc_mean_sojourn, mmc_mean_wait

__all__ = [
    "DequeuePolicy",
    "FCFS_POLICY",
    "SRPT_POLICY",
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_sojourn",
]
