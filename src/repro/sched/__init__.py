"""Scheduling policies and queueing-theory references.

The unified policy layer for the simulator's three dispatch decision
points:

* **NIC -> village** — :mod:`repro.sched.dispatch`: round-robin (the
  Section 4.2 hardware default), random (Figure 3), least-occupancy
  and locality/affinity-aware with load-based spill.
* **intra-village ordering** — :mod:`repro.sched.policies`: FCFS (the
  Section 4.3 hardware), SRPT, SJF from measured service times, and
  deadline-aware (EDF).
* **inter-village work stealing** — :mod:`repro.sched.stealing`:
  first-peer (the original behaviour) and most-loaded-victim.

The Request Queue hardware serves FCFS (Section 4.3); the paper argues
SRPT would gain little for microservices because same-service requests
have similar durations and blocking calls already interleave work.
Every policy is implemented so the claim can be tested (the figS
experiment compares them), and :mod:`repro.sched.queueing` provides
M/M/c formulas used to validate the simulator against theory.
"""

from repro.sched.dispatch import DISPATCH_NAMES, DispatchPolicy, \
    get_dispatch_policy
from repro.sched.policies import FCFS_POLICY, POLICY_NAMES, SRPT_POLICY, \
    DequeuePolicy, get_policy
from repro.sched.queueing import erlang_c, mmc_mean_sojourn, mmc_mean_wait
from repro.sched.stealing import STEAL_NAMES, StealPolicy, get_steal_policy

__all__ = [
    "DequeuePolicy",
    "DispatchPolicy",
    "StealPolicy",
    "FCFS_POLICY",
    "SRPT_POLICY",
    "POLICY_NAMES",
    "DISPATCH_NAMES",
    "STEAL_NAMES",
    "get_policy",
    "get_dispatch_policy",
    "get_steal_policy",
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_sojourn",
]
