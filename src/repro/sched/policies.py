"""Dequeue-ordering policies for the Request Queue.

A policy maps a READY record to a sort key; the RQ serves the smallest
key first.  FCFS keys by arrival sequence (the hardware default of
Section 4.3); SRPT keys by remaining work, tie-broken by arrival.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.request import RequestRecord


class DequeuePolicy:
    """Base: order READY entries by :meth:`key` (ascending)."""

    name = "base"

    def key(self, rec: RequestRecord) -> Tuple:
        raise NotImplementedError


class FcfsPolicy(DequeuePolicy):
    """First-come-first-serve by RQ arrival order."""

    name = "fcfs"

    def key(self, rec: RequestRecord) -> Tuple:
        return (rec._rq_seq,)


class SrptPolicy(DequeuePolicy):
    """Shortest Remaining Processing Time first.

    Remaining work is the sum of the request's unexecuted compute
    segments — what a hardware SRPT RQ could track in the Request
    Context Memory.
    """

    name = "srpt"

    def key(self, rec: RequestRecord) -> Tuple:
        remaining = sum(rec.segments[rec.seg_index:])
        return (remaining, rec._rq_seq)


FCFS_POLICY = FcfsPolicy()
SRPT_POLICY = SrptPolicy()

POLICIES = {"fcfs": FCFS_POLICY, "srpt": SRPT_POLICY}


def get_policy(name: str) -> DequeuePolicy:
    try:
        return POLICIES[name]
    except KeyError:
        raise ValueError(f"unknown dequeue policy {name!r}; "
                         f"known: {sorted(POLICIES)}") from None
