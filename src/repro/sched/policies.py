"""Dequeue-ordering policies for the Request Queue.

A policy maps a READY record to a sort key; the RQ serves the smallest
key first.  FCFS keys by arrival sequence (the hardware default of
Section 4.3); SRPT keys by remaining work, tie-broken by arrival.

Two further variants round out the intra-village decision point of the
policy layer:

* SJF from *measured* service times — the hardware cannot know a
  request's remaining work up front, but it can keep a per-service
  moving average of observed segment durations (a handful of counters
  next to the RQ) and serve the historically-shortest service first.
* Deadline-aware (EDF) — each entry is served in order of its implied
  deadline ``arrival + budget``, which under a uniform budget degrades
  gracefully to arrival order while letting callers prioritise by age.

Determinism contract: every key ends with ``rec._rq_seq``, the queue's
own admission counter, so ties never fall through to object identity or
insertion races — ``tests/test_determinism.py`` pins this for every
registered policy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.request import RequestRecord


class DequeuePolicy:
    """Base: order READY entries by :meth:`key` (ascending)."""

    name = "base"

    def key(self, rec: RequestRecord) -> Tuple:
        raise NotImplementedError


class FcfsPolicy(DequeuePolicy):
    """First-come-first-serve by RQ arrival order."""

    name = "fcfs"

    def key(self, rec: RequestRecord) -> Tuple:
        return (rec._rq_seq,)


class SrptPolicy(DequeuePolicy):
    """Shortest Remaining Processing Time first.

    Remaining work is the sum of the request's unexecuted compute
    segments — what a hardware SRPT RQ could track in the Request
    Context Memory.
    """

    name = "srpt"

    def key(self, rec: RequestRecord) -> Tuple:
        remaining = sum(rec.segments[rec.seg_index:])
        return (remaining, rec._rq_seq)


class SjfPolicy(DequeuePolicy):
    """Shortest Job First from measured service times.

    Keeps an exponentially-weighted moving average of observed segment
    durations per service (fed by :meth:`observe`, called by the
    village on every executed segment) and orders READY entries by
    their service's current estimate.  Services never seen before sort
    first (estimate 0), which makes a cold queue behave like FCFS.

    Stateful: :func:`get_policy` returns a fresh instance per call so
    estimates never leak across runs (which would break the
    same-seed-same-result contract).
    """

    name = "sjf"

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._estimate_ns: Dict[str, float] = {}

    def observe(self, service: str, duration_ns: float) -> None:
        """Fold one measured segment duration into the service's EWMA."""
        prev = self._estimate_ns.get(service)
        if prev is None:
            self._estimate_ns[service] = duration_ns
        else:
            self._estimate_ns[service] = \
                prev + self.alpha * (duration_ns - prev)

    def key(self, rec: RequestRecord) -> Tuple:
        return (self._estimate_ns.get(rec.service, 0.0), rec._rq_seq)


class DeadlinePolicy(DequeuePolicy):
    """Earliest Deadline First over implied deadlines.

    Every entry's deadline is ``arrival_ns + budget_ns``; with one
    shared budget this reduces to arrival-time order (which differs
    from FCFS ``_rq_seq`` order for entries admitted out of arrival
    order, e.g. retried or stolen-and-returned requests).
    """

    name = "edf"

    def __init__(self, budget_ns: float = 1_000_000.0):
        if budget_ns < 0:
            raise ValueError("budget_ns must be >= 0")
        self.budget_ns = budget_ns

    def key(self, rec: RequestRecord) -> Tuple:
        return (rec.arrival_ns + self.budget_ns, rec._rq_seq)


FCFS_POLICY = FcfsPolicy()
SRPT_POLICY = SrptPolicy()

#: Stateless singletons (kept for back-compat with callers comparing by
#: identity); stateful policies only appear in :data:`POLICY_FACTORIES`.
POLICIES = {"fcfs": FCFS_POLICY, "srpt": SRPT_POLICY}

#: name -> zero-arg factory.  Stateless policies return their shared
#: singleton; stateful ones (SJF) build a fresh instance per call.
POLICY_FACTORIES = {
    "fcfs": lambda: FCFS_POLICY,
    "srpt": lambda: SRPT_POLICY,
    "sjf": SjfPolicy,
    "edf": DeadlinePolicy,
}

#: The registered policy names (the CLI's ``--rq-policy`` choices).
POLICY_NAMES = tuple(sorted(POLICY_FACTORIES))


def get_policy(name: str) -> DequeuePolicy:
    try:
        return POLICY_FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown dequeue policy {name!r}; "
                         f"known: {sorted(POLICY_FACTORIES)}") from None
