"""NIC-to-village dispatch policies (the ServiceMap decision point).

The top-level NIC's ServiceMap maps a service to the villages hosting
an instance; a :class:`DispatchPolicy` decides *which* of them receives
the next request.  The hardware default is round-robin (Section 4.2);
the Figure 3 queue study uses uniformly-random assignment.  Two further
policies implement the load- and locality-aware ideas of the related
work (nanoPU / Affinity Tailor): least-occupancy joins the shortest RQ,
and affinity pins a service to its first instance, spilling to the
least-loaded alternative only when that home village backs up.

``choose`` receives the *unfiltered* registered instance list (the
round-robin pointer is keyed on it so health transitions never shift
the rotation for everyone else) plus the pre-filtered healthy/excluded
candidate list, and must return one of the candidates.  Policies are
deterministic: any tie falls back to candidate-list order, which is
registration order.

Occupancy-aware policies read village RQ depth through the NIC's
``occupancy_of`` hook (wired by :class:`repro.systems.server.Server`);
a NIC without the hook cannot run them.
"""

from __future__ import annotations

from typing import Dict, List


class DispatchPolicy:
    """Base: pick one hosting village for an arriving request."""

    name = "base"
    #: Policies that rank candidates by RQ depth need the NIC's
    #: ``occupancy_of`` hook; declared so construction can fail early.
    needs_occupancy = False

    def choose(self, nic, service: str, villages: List[int],
               candidates: List[int]) -> int:
        raise NotImplementedError


class RoundRobinDispatch(DispatchPolicy):
    """The Section 4.2 hardware: one rotation per service.

    The pointer advances one registered instance per dispatch and
    unhealthy/excluded entries are skipped in place, so a village going
    down (or coming back) never shifts which instance the surviving
    rotation hands to everyone else.
    """

    name = "rr"

    def __init__(self):
        self._rr: Dict[str, int] = {}

    def choose(self, nic, service: str, villages: List[int],
               candidates: List[int]) -> int:
        n = len(villages)
        ptr = self._rr.get(service, 0) % n
        village = candidates[0]
        for i in range(n):
            v = villages[(ptr + i) % n]
            if v in candidates:
                village = v
                self._rr[service] = (ptr + i + 1) % n
                break
        return village


class RandomDispatch(DispatchPolicy):
    """Uniformly-random assignment (the Figure 3 queue study)."""

    name = "random"

    def choose(self, nic, service: str, villages: List[int],
               candidates: List[int]) -> int:
        return candidates[int(nic.rng.integers(len(candidates)))]


class LeastOccupancyDispatch(DispatchPolicy):
    """Join the shortest queue: the candidate with the fewest RQ
    entries wins; ties resolve to the earliest-registered instance."""

    name = "least"
    needs_occupancy = True

    def choose(self, nic, service: str, villages: List[int],
               candidates: List[int]) -> int:
        occupancy = nic.occupancy_of
        best = candidates[0]
        best_occ = occupancy(best)
        for v in candidates[1:]:
            occ = occupancy(v)
            if occ < best_occ:
                best, best_occ = v, occ
        return best


class AffinityDispatch(DispatchPolicy):
    """Service-to-village affinity with load-based spill.

    Every service has a *home* village — its first registered instance
    — and keeps landing there (warm caches, resident state) until the
    home RQ holds more than ``spill_margin`` entries above the least
    loaded candidate; then the request spills to that least-loaded
    village instead, exactly the Affinity Tailor trade of locality
    against queueing imbalance.
    """

    name = "affinity"
    needs_occupancy = True

    def __init__(self, spill_margin: int = 4):
        if spill_margin < 0:
            raise ValueError("spill_margin must be >= 0")
        self.spill_margin = spill_margin
        self.spills = 0

    def choose(self, nic, service: str, villages: List[int],
               candidates: List[int]) -> int:
        occupancy = nic.occupancy_of
        least = candidates[0]
        least_occ = occupancy(least)
        for v in candidates[1:]:
            occ = occupancy(v)
            if occ < least_occ:
                least, least_occ = v, occ
        home = villages[0]
        if home not in candidates:
            return least          # home is down/excluded: pure spill
        if occupancy(home) - least_occ > self.spill_margin:
            self.spills += 1
            return least
        return home


#: name -> zero-arg factory; every policy carries (or may grow) per-NIC
#: state, so each NIC gets a fresh instance.
DISPATCH_FACTORIES = {
    "rr": RoundRobinDispatch,
    "random": RandomDispatch,
    "least": LeastOccupancyDispatch,
    "affinity": AffinityDispatch,
}

#: The registered policy names (the CLI's ``--dispatch`` choices).
DISPATCH_NAMES = tuple(sorted(DISPATCH_FACTORIES))


def get_dispatch_policy(name: str) -> DispatchPolicy:
    try:
        return DISPATCH_FACTORIES[name]()
    except KeyError:
        raise ValueError(f"unknown dispatch policy {name!r}; "
                         f"known: {sorted(DISPATCH_FACTORIES)}") from None
