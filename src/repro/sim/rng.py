"""Reproducible named random streams.

Every stochastic component draws from its own named stream so that adding
a new component (or reordering draws in one component) does not perturb
the randomness seen by the others.  Streams are derived from a root seed
plus the stream name, so a simulation is fully determined by its seed.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np


class RngStreams:
    """Factory of named, independent ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            key = zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(np.random.SeedSequence([self.seed, key]))
            self._streams[name] = gen
        return gen

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)
