"""Simulated resources with FIFO queueing.

:class:`Resource` models a server (or ``capacity`` identical servers) that
serves jobs one at a time; contention appears as queueing delay.  It is the
building block for ICN links/routers, DRAM channels, software scheduler
cores and NIC serialization points.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple


class Resource:
    """``capacity`` servers with a shared FIFO queue.

    ``acquire(service_time, done)`` enqueues a job; ``done(start, finish)``
    is called when the job completes service.  Utilization statistics are
    tracked for reporting.
    """

    def __init__(self, engine, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.busy = 0
        self._queue: Deque[Tuple[float, float, Callable]] = deque()
        self.jobs_served = 0
        check = getattr(engine, "check", None)
        if check is not None and check.enabled:
            check.resource_register(self)   # drain-time leak detection
        self.busy_time = 0.0
        self.wait_time_total = 0.0
        self.max_queue_len = 0

    def acquire(self, service_time: float, done: Callable[[float, float], None]) -> None:
        """Request ``service_time`` ns of this resource; FIFO order."""
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        if self.busy < self.capacity:
            # Uncontended fast path: ``_start`` inlined with zero wait
            # (start == arrival, so the wait-total term is exactly 0.0).
            self.busy += 1
            engine = self.engine
            check = engine.check
            if check.enabled:
                check.resource_event(self)
            engine.schedule(service_time, self._finish, engine.now,
                            service_time, done)
        else:
            self._queue.append((self.engine.now, service_time, done))
            if len(self._queue) > self.max_queue_len:
                self.max_queue_len = len(self._queue)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _start(self, arrival: float, service_time: float, done: Callable) -> None:
        self.busy += 1
        start = self.engine.now
        self.wait_time_total += start - arrival
        check = self.engine.check
        if check.enabled:
            check.resource_event(self)
        self.engine.schedule(service_time, self._finish, start, service_time, done)

    def _finish(self, start: float, service_time: float, done: Callable) -> None:
        self.busy -= 1
        self.jobs_served += 1
        self.busy_time += service_time
        check = self.engine.check
        if check.enabled:
            check.resource_event(self)
        done(start, self.engine.now)
        if self._queue and self.busy < self.capacity:
            arrival, svc, cb = self._queue.popleft()
            self._start(arrival, svc, cb)

    def utilization(self, elapsed: Optional[float] = None) -> float:
        """Fraction of server-time spent busy over ``elapsed`` ns."""
        elapsed = elapsed if elapsed is not None else self.engine.now
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)


class FifoQueue:
    """An unbounded FIFO with blocking ``get`` for generator processes.

    ``put(item)`` wakes at most one waiting getter.  Used for simple
    producer/consumer plumbing in tests and examples.
    """

    def __init__(self, engine, name: str = ""):
        self.engine = engine
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Callable[[Any], None]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._getters:
            resume = self._getters.popleft()
            self.engine.schedule(0.0, resume, item)
        else:
            self._items.append(item)

    def get(self):
        """Waitable for processes: ``item = yield queue.get()``."""
        from repro.sim.process import Signal

        sig = Signal(name=f"{self.name}.get")
        if self._items:
            sig.fire(self.engine, self._items.popleft())
        else:
            self._getters.append(lambda item, s=sig: s.fire(self.engine, item))
        return sig
