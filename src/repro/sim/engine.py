"""Event-queue simulation engine.

Two queue backends live behind one ``Engine`` API:

``heapq``
    The classic binary heap of ``(time, sequence, event)`` tuples.

``calendar``
    A calendar (bucket) queue: near-future events hash into per-bucket
    mini-heaps keyed by ``int(time / width)``, far-future events wait in
    an overflow heap until the active window reaches them.  The bucket
    width self-tunes from the observed event density, so both dense RPC
    cascades (nanosecond gaps) and idle stretches (storage waits of many
    microseconds) stay O(1)-ish per event.

Both backends pop events in exactly the same order: entries are compared
as ``(time, sequence)`` tuples everywhere, and the sequence number breaks
same-timestamp ties in scheduling order.  This tie-break is the
determinism contract every simulation above relies on — see
docs/PERFORMANCE.md before touching it.

Backend selection: ``Engine(queue="heapq"|"calendar")``, or the
``REPRO_SIM_QUEUE`` environment variable, falling back to
``DEFAULT_QUEUE``.  Event order (and therefore every simulation output)
is byte-identical across backends; only the constant factor differs.
"""

from __future__ import annotations

import heapq
import os
from typing import Any, Callable, Iterable, Optional

from repro.check.context import NULL_CHECK
from repro.telemetry.tracer import NULL_TRACER

#: Queue backend used when neither the ``Engine(queue=...)`` argument nor
#: the ``REPRO_SIM_QUEUE`` environment variable picks one.
DEFAULT_QUEUE = "heapq"

#: Number of buckets in the calendar queue's active window.  Events
#: beyond ``window start + _CAL_SPAN * width`` wait in the overflow heap.
_CAL_SPAN = 1024

#: Resize triggers: a mini-heap growing past ``_CAL_MAX_BUCKET`` means the
#: width is too coarse; more than ``_CAL_MAX_SCAN_RATIO`` empty-bucket
#: probes per pop means it is too fine.
_CAL_MAX_BUCKET = 48
_CAL_MAX_SCAN_RATIO = 4.0


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (lazy removal from the queue)."""
        self.cancelled = True


class Engine:
    """A discrete-event simulator with a nanosecond clock.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, fired.append, "a")
    >>> _ = eng.schedule(2.0, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    """

    def __new__(cls, queue: Optional[str] = None) -> "Engine":
        # ``Engine(queue="calendar")`` transparently builds the calendar
        # subclass so call sites never branch on the backend.
        if cls is Engine:
            name = queue or os.environ.get("REPRO_SIM_QUEUE") or DEFAULT_QUEUE
            if name == "calendar":
                return super().__new__(CalendarEngine)
            if name != "heapq":
                raise ValueError(f"unknown event-queue backend {name!r}; "
                                 f"pick 'heapq' or 'calendar'")
        return super().__new__(cls)

    def __init__(self, queue: Optional[str] = None) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self.events_processed: int = 0
        #: Estimated events the hybrid fast path avoided simulating
        #: (maintained by :mod:`repro.hybrid`; 0 outside hybrid runs).
        self.events_elided: int = 0
        #: Telemetry hook shared by every component built on this engine.
        #: Defaults to the no-op tracer; sites guard on ``tracer.enabled``
        #: so disabled tracing costs one attribute load per hook.
        self.tracer = NULL_TRACER
        #: Invariant sanitizer hook (:mod:`repro.check`), same pattern:
        #: the default no-op context keeps checking off the hot path.
        self.check = NULL_CHECK
        self._msg_ids: int = 0

    @property
    def queue_backend(self) -> str:
        """Name of the active event-queue backend."""
        return "heapq"

    def next_msg_id(self) -> int:
        """Allocate a run-local message id (deterministic per engine,
        unlike a module-level counter shared across runs in a process)."""
        mid = self._msg_ids
        self._msg_ids += 1
        return mid

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = ScheduledEvent(self.now + delay, fn, args)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (ev.time, seq, ev))
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at an absolute timestamp ``time`` ns."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = ScheduledEvent(time, fn, args)
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, ev))
        return ev

    def schedule_at_batch(self, times: Iterable[float],
                          fn: Callable[..., Any], *args: Any,
                          append_time: bool = False) -> None:
        """Bulk-schedule ``fn(*args)`` at each ascending timestamp.

        ``times`` must be non-decreasing and ``>= now`` (validated once at
        the head, then trusted — callers pass sorted arrival arrays).
        With ``append_time=True`` each callback receives its own firing
        time as an extra trailing argument: ``fn(*args, t)``.

        Events get consecutive sequence numbers in iteration order, so the
        result is byte-identical to a ``schedule_at`` loop; only the
        per-call overhead (bounds check, attribute traffic) is batched
        away.  No handles are returned — batch arrivals are never
        cancelled individually.
        """
        times = list(times)
        if not times:
            return
        if times[0] < self.now:
            raise ValueError(
                f"cannot schedule in the past: {times[0]} < {self.now}")
        seq = self._seq
        heap = self._heap
        push = heapq.heappush
        if append_time:
            for t in times:
                push(heap, (t, seq, ScheduledEvent(t, fn, args + (t,))))
                seq += 1
        else:
            for t in times:
                push(heap, (t, seq, ScheduledEvent(t, fn, args)))
                seq += 1
        self._seq = seq

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when idle."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if entry[2].cancelled:
                heapq.heappop(heap)
                continue
            return entry[0]
        return None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            time, __, ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            if self.check.enabled:
                self.check.clock_advance(self.now, time)
            self.now = time
            self.events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` ns, or ``max_events``.

        The loop is deliberately inlined (no per-event ``peek_time`` +
        ``step`` calls): this is the innermost interpreter loop of every
        simulation, so each saved attribute load or function call counts.
        Semantics are pinned by tests/test_sim_engine.py: cancelled events
        are skipped without consuming the ``max_events`` budget, and a
        second ``run()`` with an earlier horizon never rewinds the clock.
        """
        heap = self._heap
        pop = heapq.heappop
        check = self.check
        check_on = check.enabled
        budget = -1 if max_events is None else max_events
        while heap:
            if budget == 0:
                break
            entry = heap[0]
            ev = entry[2]
            if ev.cancelled:
                pop(heap)
                continue
            t = entry[0]
            if until is not None and t > until:
                # Clamp: a second run() with an earlier horizon must not
                # rewind the clock below times already handed out.
                if until > self.now:
                    if check_on:
                        check.clock_advance(self.now, until)
                    self.now = until
                break
            pop(heap)
            if check_on:
                check.clock_advance(self.now, t)
            self.now = t
            self.events_processed += 1
            ev.fn(*ev.args)
            budget -= 1

    def spawn(self, generator, delay: float = 0.0) -> "Process":
        """Start a generator-based process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        proc = Process(self, generator)
        self.schedule(delay, proc._advance, None)
        return proc


class CalendarEngine(Engine):
    """Engine whose pending-event queue is a self-tuning calendar queue.

    Near-future events (within ``_CAL_SPAN`` buckets of the cursor) hash
    into per-bucket mini-heaps; far-future events wait in an overflow
    heap and migrate into the window when the cursor reaches them.  All
    entries are ``(time, seq, event)`` tuples compared exactly as in the
    heapq backend, so pop order — and every simulation output — is
    byte-identical to it.

    The bucket width retunes from observed behaviour at deterministic,
    event-driven trigger points (never from wall-clock state): a mini-heap
    overflowing means the width is too coarse; too many empty-bucket
    probes per pop means it is too fine.
    """

    def __init__(self, queue: Optional[str] = None) -> None:
        super().__init__(queue)
        self._width = 64.0
        self._inv = 1.0 / self._width
        self._buckets: dict = {}       # bucket key -> mini-heap of entries
        self._far: list = []           # overflow heap beyond the window
        self._cur = 0                  # cursor bucket key
        self._wcount = 0               # live+cancelled entries in window
        self._far_start = _CAL_SPAN * self._width
        self._pops = 0                 # pops since last retune
        self._scans = 0                # empty-bucket probes since last retune

    @property
    def queue_backend(self) -> str:
        """Name of the active event-queue backend."""
        return "calendar"

    # -- queue primitives ------------------------------------------------

    def _push(self, t: float, seq: int, ev: ScheduledEvent) -> None:
        if t >= self._far_start:
            heapq.heappush(self._far, (t, seq, ev))
            return
        k = int(t * self._inv)
        b = self._buckets.get(k)
        if b is None:
            self._buckets[k] = [(t, seq, ev)]
        else:
            heapq.heappush(b, (t, seq, ev))
            if len(b) > _CAL_MAX_BUCKET:
                self._rebuild(self._width * 0.25)
        if k < self._cur:
            # The cursor may sit past this (empty) bucket after a peek
            # that stopped on a later event; step it back so the new
            # earlier event is found.  Cheap: re-scans only empty buckets.
            self._cur = k
        self._wcount += 1

    def _refill(self) -> bool:
        """Move the window to the next populated region.

        Returns False when the whole queue is empty.  Also the retune
        point for idle-heavy runs: refills happen exactly when the window
        runs dry, which is when the width/gap mismatch shows up.
        """
        if self._wcount:
            return True
        far = self._far
        if not far:
            return False
        if self._pops and self._scans > _CAL_MAX_SCAN_RATIO * self._pops:
            # Too sparse: most probes hit empty buckets.  Grow buckets.
            self._retune_width(self._width * 4.0)
        t0 = far[0][0]
        self._cur = int(t0 * self._inv)
        self._far_start = (self._cur + _CAL_SPAN) * self._width
        buckets = self._buckets
        push = heapq.heappush
        far_start = self._far_start
        moved = 0
        while far and far[0][0] < far_start:
            entry = heapq.heappop(far)
            k = int(entry[0] * self._inv)
            b = buckets.get(k)
            if b is None:
                buckets[k] = [entry]
            else:
                push(b, entry)
            moved += 1
        self._wcount = moved
        return True

    def _retune_width(self, width: float) -> None:
        width = min(max(width, 1e-3), 1e12)
        self._width = width
        self._inv = 1.0 / width
        self._pops = 0
        self._scans = 0

    def _rebuild(self, width: float) -> None:
        """Re-bucket the active window under a new width (cold path)."""
        entries = []
        for b in self._buckets.values():
            entries.extend(b)
        self._retune_width(width)
        self._buckets.clear()
        buckets = self._buckets
        inv = self._inv
        push = heapq.heappush
        for entry in entries:
            k = int(entry[0] * inv)
            b = buckets.get(k)
            if b is None:
                buckets[k] = [entry]
            else:
                push(b, entry)
        self._cur = int(self.now * inv)
        # Keep the far boundary where it was: window entries stay within
        # it by construction, and the next refill recomputes it anyway.

    def _peek_entry(self) -> Optional[tuple]:
        """Smallest live entry without removing it (cancelled are dropped)."""
        buckets = self._buckets
        while True:
            if not self._wcount and not self._refill():
                return None
            cur = self._cur
            b = buckets.get(cur)
            while b is None:
                cur += 1
                b = buckets.get(cur)
            self._cur = cur
            entry = b[0]
            if entry[2].cancelled:
                if len(b) == 1:
                    del buckets[cur]
                else:
                    heapq.heappop(b)
                self._wcount -= 1
                continue
            return entry

    def _pop_peeked(self) -> None:
        """Remove the entry just returned by ``_peek_entry``."""
        cur = self._cur
        b = self._buckets[cur]
        if len(b) == 1:
            del self._buckets[cur]
        else:
            heapq.heappop(b)
        self._wcount -= 1

    # -- Engine API ------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        t = self.now + delay
        ev = ScheduledEvent(t, fn, args)
        seq = self._seq
        self._seq = seq + 1
        self._push(t, seq, ev)
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at an absolute timestamp ``time`` ns."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = ScheduledEvent(time, fn, args)
        seq = self._seq
        self._seq = seq + 1
        self._push(time, seq, ev)
        return ev

    def schedule_at_batch(self, times: Iterable[float],
                          fn: Callable[..., Any], *args: Any,
                          append_time: bool = False) -> None:
        """Bulk-schedule ``fn(*args)`` at each ascending timestamp.

        Same contract as :meth:`Engine.schedule_at_batch`.
        """
        times = list(times)
        if not times:
            return
        if times[0] < self.now:
            raise ValueError(
                f"cannot schedule in the past: {times[0]} < {self.now}")
        seq = self._seq
        push = self._push
        if append_time:
            for t in times:
                push(t, seq, ScheduledEvent(t, fn, args + (t,)))
                seq += 1
        else:
            for t in times:
                push(t, seq, ScheduledEvent(t, fn, args))
                seq += 1
        self._seq = seq

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when idle."""
        entry = self._peek_entry()
        return entry[0] if entry is not None else None

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        entry = self._peek_entry()
        if entry is None:
            return False
        self._pop_peeked()
        time = entry[0]
        ev = entry[2]
        if self.check.enabled:
            self.check.clock_advance(self.now, time)
        self.now = time
        self.events_processed += 1
        ev.fn(*ev.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` ns, or ``max_events``.

        Inlined like :meth:`Engine.run`; the common case (next event in a
        nearby bucket) touches one dict probe and one mini-heap pop.
        """
        buckets = self._buckets
        pop = heapq.heappop
        check = self.check
        check_on = check.enabled
        budget = -1 if max_events is None else max_events
        scans = 0
        pops = 0
        while budget != 0:
            if not self._wcount:
                self._pops += pops
                self._scans += scans
                pops = scans = 0
                if not self._refill():
                    break
            cur = self._cur
            b = buckets.get(cur)
            while b is None:
                cur += 1
                scans += 1
                b = buckets.get(cur)
            self._cur = cur
            entry = b[0]
            ev = entry[2]
            if ev.cancelled:
                if len(b) == 1:
                    del buckets[cur]
                else:
                    pop(b)
                self._wcount -= 1
                continue
            t = entry[0]
            if until is not None and t > until:
                # Clamp: a second run() with an earlier horizon must not
                # rewind the clock below times already handed out.
                if until > self.now:
                    if check_on:
                        check.clock_advance(self.now, until)
                    self.now = until
                break
            if len(b) == 1:
                del buckets[cur]
            else:
                pop(b)
            self._wcount -= 1
            pops += 1
            if check_on:
                check.clock_advance(self.now, t)
            self.now = t
            self.events_processed += 1
            ev.fn(*ev.args)
            budget -= 1
        self._pops += pops
        self._scans += scans
