"""Event-heap simulation engine.

The engine keeps a binary heap of ``(time, sequence, event)`` tuples.  The
sequence number breaks ties so that events scheduled at the same timestamp
fire in scheduling order, which keeps simulations deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.check.context import NULL_CHECK
from repro.telemetry.tracer import NULL_TRACER


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (lazy removal from the heap)."""
        self.cancelled = True


class Engine:
    """A discrete-event simulator with a nanosecond clock.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(5.0, fired.append, "a")
    >>> _ = eng.schedule(2.0, fired.append, "b")
    >>> eng.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq: int = 0
        self._running = False
        self.events_processed: int = 0
        #: Estimated events the hybrid fast path avoided simulating
        #: (maintained by :mod:`repro.hybrid`; 0 outside hybrid runs).
        self.events_elided: int = 0
        #: Telemetry hook shared by every component built on this engine.
        #: Defaults to the no-op tracer; sites guard on ``tracer.enabled``
        #: so disabled tracing costs one attribute load per hook.
        self.tracer = NULL_TRACER
        #: Invariant sanitizer hook (:mod:`repro.check`), same pattern:
        #: the default no-op context keeps checking off the hot path.
        self.check = NULL_CHECK
        self._msg_ids: int = 0

    def next_msg_id(self) -> int:
        """Allocate a run-local message id (deterministic per engine,
        unlike a module-level counter shared across runs in a process)."""
        mid = self._msg_ids
        self._msg_ids += 1
        return mid

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` to run ``delay`` ns from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        ev = ScheduledEvent(self.now + delay, fn, args)
        heapq.heappush(self._heap, (ev.time, self._seq, ev))
        self._seq += 1
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> ScheduledEvent:
        """Schedule ``fn(*args)`` at an absolute timestamp ``time`` ns."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        ev = ScheduledEvent(time, fn, args)
        heapq.heappush(self._heap, (ev.time, self._seq, ev))
        self._seq += 1
        return ev

    def peek_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or None when idle."""
        while self._heap:
            time, __, ev = self._heap[0]
            if ev.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def step(self) -> bool:
        """Run the next event.  Returns False when the heap is empty."""
        while self._heap:
            time, __, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if self.check.enabled:
                self.check.clock_advance(self.now, time)
            self.now = time
            self.events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` ns, or ``max_events``."""
        budget = max_events if max_events is not None else float("inf")
        processed = 0
        while processed < budget:
            nxt = self.peek_time()
            if nxt is None:
                break
            if until is not None and nxt > until:
                # Clamp: a second run() with an earlier horizon must not
                # rewind the clock below times already handed out.
                if until > self.now:
                    if self.check.enabled:
                        self.check.clock_advance(self.now, until)
                    self.now = until
                break
            self.step()
            processed += 1

    def spawn(self, generator, delay: float = 0.0) -> "Process":
        """Start a generator-based process (see :mod:`repro.sim.process`)."""
        from repro.sim.process import Process

        proc = Process(self, generator)
        self.schedule(delay, proc._advance, None)
        return proc
