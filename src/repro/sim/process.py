"""Generator-based simulated processes.

A process is a Python generator that yields *waitables*:

* ``Timeout(delay)`` — resume after ``delay`` ns of simulated time.
* ``Signal`` — resume when another process calls :meth:`Signal.fire`;
  the value passed to ``fire`` becomes the result of the ``yield``.

Example::

    def handler(eng, sig):
        yield Timeout(10.0)       # compute for 10 ns
        response = yield sig      # block until the RPC response arrives
        ...

    eng.spawn(handler(eng, sig))
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


class Timeout:
    """Waitable: resume the process after ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay


class Signal:
    """One-shot waitable carrying a value from the firer to the waiters.

    A Signal may be fired before anyone waits on it; waiters arriving after
    the fire resume immediately with the stored value.
    """

    __slots__ = ("fired", "value", "_waiters", "name")

    def __init__(self, name: str = ""):
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []
        self.name = name

    def fire(self, engine, value: Any = None, delay: float = 0.0) -> None:
        """Fire the signal, resuming all current and future waiters."""
        if self.fired:
            raise RuntimeError(f"signal {self.name!r} fired twice")
        if delay > 0:
            engine.schedule(delay, self._fire_now, engine, value)
        else:
            self._fire_now(engine, value)

    def _fire_now(self, engine, value: Any) -> None:
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            engine.schedule(0.0, resume, value)

    def _subscribe(self, engine, resume: Callable[[Any], None]) -> None:
        if self.fired:
            engine.schedule(0.0, resume, self.value)
        else:
            self._waiters.append(resume)


class Process:
    """Drives a generator, translating yielded waitables into engine events."""

    __slots__ = ("engine", "generator", "finished", "result", "_done_signal")

    def __init__(self, engine, generator):
        self.engine = engine
        self.generator = generator
        self.finished = False
        self.result: Any = None
        self._done_signal: Optional[Signal] = None

    @property
    def done_signal(self) -> Signal:
        """A Signal fired (with the process return value) on completion."""
        if self._done_signal is None:
            self._done_signal = Signal()
            if self.finished:
                self._done_signal.fire(self.engine, self.result)
        return self._done_signal

    def _advance(self, send_value: Any) -> None:
        try:
            waitable = self.generator.send(send_value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            if self._done_signal is not None:
                self._done_signal.fire(self.engine, self.result)
            return
        if isinstance(waitable, Timeout):
            self.engine.schedule(waitable.delay, self._advance, None)
        elif isinstance(waitable, Signal):
            waitable._subscribe(self.engine, self._advance)
        else:
            raise TypeError(f"process yielded non-waitable {waitable!r}")
