"""Discrete-event simulation kernel.

Time is measured in nanoseconds (floats).  The kernel is deliberately
small: an event heap (:class:`~repro.sim.engine.Engine`), generator-based
processes (:mod:`repro.sim.process`), FIFO resources with queueing
(:mod:`repro.sim.resource`), and reproducible named random streams
(:mod:`repro.sim.rng`).
"""

from repro.sim.engine import Engine, ScheduledEvent
from repro.sim.process import Process, Signal, Timeout
from repro.sim.resource import FifoQueue, Resource
from repro.sim.rng import RngStreams

__all__ = [
    "Engine",
    "ScheduledEvent",
    "Process",
    "Signal",
    "Timeout",
    "Resource",
    "FifoQueue",
    "RngStreams",
]
