"""Analytic core timing model (cycle-approximate CPI).

The system simulations fold straight-line compute into
``instructions x CPI_eff / f`` using this model; the CPI has a pipeline
term limited by issue width and workload ILP, a control term from branch
mispredictions, and a memory term from L1 misses served by L2/memory with
ROB/MSHR-limited memory-level parallelism (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CoreConfig:
    """Microarchitectural parameters of one core (Table 2)."""

    name: str
    issue_width: int
    rob_entries: int
    lsq_entries: int
    freq_ghz: float
    mispredict_penalty: int = 14
    mshrs: int = 20


# Table 2: uManycore/ScaleOut use simple ARM A15-like cores; ServerClass is
# an IceLake-like server core.
UMANYCORE_CORE = CoreConfig("umanycore", issue_width=4, rob_entries=64,
                            lsq_entries=64, freq_ghz=2.0)
SCALEOUT_CORE = CoreConfig("scaleout", issue_width=4, rob_entries=64,
                           lsq_entries=64, freq_ghz=2.0)
SERVERCLASS_CORE = CoreConfig("serverclass", issue_width=6, rob_entries=352,
                              lsq_entries=256, freq_ghz=3.0,
                              mispredict_penalty=17)


@dataclass(frozen=True)
class SegmentProfile:
    """Workload statistics for a compute segment.

    ``ilp`` is the workload's inherent instruction-level parallelism;
    ``l1_mpki`` L1 data misses per kilo-instruction; ``l2_miss_fraction``
    the fraction of those that also miss L2; ``branch_misp_mpki`` branch
    mispredictions per kilo-instruction.
    """

    ilp: float = 3.0
    l1_mpki: float = 5.0
    l2_miss_fraction: float = 0.2
    branch_misp_mpki: float = 2.0


class CoreModel:
    """Computes effective CPI and segment durations for a core config."""

    def __init__(self, config: CoreConfig):
        self.config = config
        # effective_cpi is a pure function of frozen-dataclass inputs;
        # system code calls it once per executed segment with a handful
        # of distinct (profile, latency) combinations, so memoize.
        self._cpi_cache: dict = {}

    def memory_level_parallelism(self) -> float:
        """Outstanding-miss parallelism sustained by the ROB/MSHRs."""
        c = self.config
        return float(min(c.mshrs, max(1.0, c.rob_entries / 48.0)))

    def effective_cpi(
        self,
        profile: SegmentProfile,
        l2_latency: float = 24.0,
        memory_latency: float = 200.0,
    ) -> float:
        key = (profile, l2_latency, memory_latency)
        cpi = self._cpi_cache.get(key)
        if cpi is not None:
            return cpi
        c = self.config
        pipeline = max(1.0 / c.issue_width, 1.0 / profile.ilp)
        control = profile.branch_misp_mpki / 1000.0 * c.mispredict_penalty
        mlp = self.memory_level_parallelism()
        per_miss = l2_latency + profile.l2_miss_fraction * memory_latency / mlp
        memory = profile.l1_mpki / 1000.0 * per_miss
        cpi = pipeline + control + memory
        self._cpi_cache[key] = cpi
        return cpi

    def segment_time_ns(
        self,
        instructions: float,
        profile: SegmentProfile,
        l2_latency: float = 24.0,
        memory_latency: float = 200.0,
    ) -> float:
        """Nanoseconds to execute ``instructions`` with this profile."""
        if instructions < 0:
            raise ValueError("negative instruction count")
        cpi = self.effective_cpi(profile, l2_latency, memory_latency)
        return instructions * cpi / self.config.freq_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        return cycles / self.config.freq_ghz

    def ns_to_cycles(self, ns: float) -> float:
        return ns * self.config.freq_ghz
