"""Functional set-associative cache with pluggable insertion policy.

Used directly for Figure 9 (hit rates of the Table 2 hierarchy on
microservice handler traces) and as the measurement substrate for the
Figure 1 microarchitectural-optimization studies.  The big system
simulations use the analytic model in :mod:`repro.cpu.analytic` instead,
for speed.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheStats:
    """Access counters; ``prefetch_*`` track prefetched-line usefulness."""

    accesses: int = 0
    hits: int = 0
    prefetches: int = 0
    useful_prefetches: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0

    def mpki(self, instructions: int) -> float:
        """Misses per kilo-instruction given the run's instruction count."""
        if instructions <= 0:
            raise ValueError("instructions must be positive")
        return 1000.0 * self.misses / instructions


class InsertionPolicy:
    """Decides where a newly filled line lands in the LRU stack.

    The default inserts at MRU (classic LRU replacement).  Profile-guided
    policies (e.g. the Ripple-like I-cache policy in
    :mod:`repro.cpu.microarch.replacement`) insert *transient* lines at the
    LRU end so they are evicted first.
    """

    def is_transient(self, line_addr: int) -> bool:
        return False


class SetAssociativeCache:
    """Set-associative cache; tags per set kept in an LRU-ordered dict.

    Addresses are byte addresses.  ``access`` returns True on hit and, on a
    miss, fills the line (allocate-on-miss); ``prefetch`` fills without
    counting an access.
    """

    def __init__(
        self,
        size_bytes: int,
        assoc: int,
        line_size: int = 64,
        policy: Optional[InsertionPolicy] = None,
        name: str = "",
    ):
        if size_bytes % (assoc * line_size) != 0:
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by assoc*line "
                f"({assoc}*{line_size})"
            )
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_size = line_size
        self.n_sets = size_bytes // (assoc * line_size)
        self.name = name
        self.policy = policy or InsertionPolicy()
        self.stats = CacheStats()
        # set index -> OrderedDict[line_addr, was_prefetched]; last = MRU
        self._sets = [OrderedDict() for __ in range(self.n_sets)]

    def _locate(self, addr: int):
        line = addr // self.line_size
        return line, self._sets[line % self.n_sets]

    def access(self, addr: int) -> bool:
        """Demand access; returns hit/miss and fills on miss."""
        line, cset = self._locate(addr)
        self.stats.accesses += 1
        if line in cset:
            if cset[line]:  # first demand hit on a prefetched line
                self.stats.useful_prefetches += 1
                cset[line] = False
            cset.move_to_end(line)
            self.stats.hits += 1
            return True
        self._fill(line, cset, prefetched=False)
        return False

    def prefetch(self, addr: int) -> bool:
        """Fill a line speculatively; returns False if already present."""
        line, cset = self._locate(addr)
        if line in cset:
            return False
        self.stats.prefetches += 1
        self._fill(line, cset, prefetched=True)
        return True

    def contains(self, addr: int) -> bool:
        line, cset = self._locate(addr)
        return line in cset

    def _fill(self, line: int, cset: OrderedDict, prefetched: bool) -> None:
        if len(cset) >= self.assoc:
            cset.popitem(last=False)  # evict LRU
        cset[line] = prefetched
        if self.policy.is_transient(line):
            cset.move_to_end(line, last=False)  # insert at LRU position

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        """Invalidate all lines (keeps stats)."""
        for cset in self._sets:
            cset.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
