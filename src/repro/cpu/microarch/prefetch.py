"""Data prefetchers: none, stride, and a Pythia-like learning prefetcher.

Pythia [Bera et al., MICRO'21] frames prefetching as reinforcement
learning: a program context ("signature") selects a prefetch offset whose
Q-value is updated by rewards for accurate/timely prefetches and penalties
for useless ones.  We model the essential mechanism — per-signature
Q-learning over candidate line offsets with epsilon-greedy selection —
at cache-line granularity.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

LINE = 64


class NoPrefetcher:
    """Baseline: never prefetches."""

    def observe(self, line_addr: int, hit: bool) -> List[int]:
        return []

    def credit(self, line_addr: int) -> None:
        pass


class StridePrefetcher:
    """Classic stream prefetcher: confirm a stride twice, then run ahead."""

    def __init__(self, degree: int = 2):
        self.degree = degree
        self._last: Optional[int] = None
        self._stride: int = 0
        self._confidence: int = 0

    def observe(self, line_addr: int, hit: bool) -> List[int]:
        out: List[int] = []
        if self._last is not None:
            stride = line_addr - self._last
            if stride != 0 and stride == self._stride:
                self._confidence = min(self._confidence + 1, 3)
            else:
                self._stride = stride
                self._confidence = 0 if stride == 0 else 1
            if self._confidence >= 2:
                out = [line_addr + self._stride * (i + 1) for i in range(self.degree)]
        self._last = line_addr
        return out

    def credit(self, line_addr: int) -> None:
        pass


class PythiaPrefetcher:
    """Q-learning prefetcher over (signature, offset) pairs.

    The signature is the last observed line delta (a small program-context
    proxy); actions are candidate offsets; reward is +1 when a prefetched
    line is later demanded, -0.2 when it is issued (cost), driving the
    policy toward offsets that pay off for the observed pattern.
    """

    OFFSETS = (1, 2, 3, 4, 8, 16, -1, 0)   # 0 = do not prefetch

    def __init__(self, rng: Optional[np.random.Generator] = None,
                 epsilon: float = 0.05, alpha: float = 0.15):
        self.rng = rng or np.random.default_rng(0)
        self.epsilon = epsilon
        self.alpha = alpha
        self._q = {}                 # signature -> np.ndarray of Q values
        self._last: Optional[int] = None
        self._pending = {}           # prefetched line -> (signature, action)
        self.issued = 0
        self.rewarded = 0

    def _q_row(self, sig: int) -> np.ndarray:
        row = self._q.get(sig)
        if row is None:
            row = np.zeros(len(self.OFFSETS))
            self._q[sig] = row
        return row

    def observe(self, line_addr: int, hit: bool) -> List[int]:
        out: List[int] = []
        if self._last is not None:
            sig = max(-64, min(64, line_addr - self._last))
            row = self._q_row(sig)
            if self.rng.random() < self.epsilon:
                action = int(self.rng.integers(len(self.OFFSETS)))
            else:
                action = int(np.argmax(row))
            offset = self.OFFSETS[action]
            # Conservative issue policy: outside exploration, only act on
            # offsets with learned positive reward — unlearned signatures
            # stay quiet instead of polluting the cache.
            if offset != 0 and row[action] <= 0.0 \
                    and self.rng.random() >= self.epsilon:
                offset = 0
            if offset != 0:
                target = line_addr + offset
                row[action] += self.alpha * (-0.2 - row[action])  # issue cost
                self._pending[target] = (sig, action)
                self.issued += 1
                out = [target]
        self._last = line_addr
        return out

    def credit(self, line_addr: int) -> None:
        """Reward the action that prefetched a line now demanded."""
        entry = self._pending.pop(line_addr, None)
        if entry is None:
            return
        sig, action = entry
        row = self._q_row(sig)
        row[action] += self.alpha * (1.0 - row[action])
        self.rewarded += 1


def run_data_prefetch(cache, prefetcher, addresses: np.ndarray) -> None:
    """Replay ``addresses`` through ``cache`` with ``prefetcher`` active.

    The prefetcher sees every demand access (line granularity) and may
    inject fills; demand hits on prefetched lines are credited back.
    """
    access = cache.access
    prefetch = cache.prefetch
    observe = prefetcher.observe
    credit = prefetcher.credit
    for addr in addresses:
        addr = int(addr)
        line = addr // LINE
        hit = access(addr)
        if hit:
            credit(line)
        for target_line in observe(line, hit):
            if target_line >= 0:
                prefetch(target_line * LINE)
