"""Instruction prefetchers: none and an I-SPY-like context prefetcher.

I-SPY [Khan et al., MICRO'20] observes that I-cache misses recur under the
same program context; it learns (context -> missing blocks) associations
and injects conditional prefetches when the context recurs.  We model the
core mechanism: the context is a hash of the last few fetched miss blocks;
a table maps contexts to the set of blocks that missed next time the
context was seen.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

LINE = 64


class NoIPrefetcher:
    """Baseline: no instruction prefetching."""

    def observe(self, line_addr: int, hit: bool) -> List[int]:
        return []


class ISpyPrefetcher:
    """Context-driven conditional instruction prefetcher.

    On a miss, the current context (hash of the last ``depth`` miss block
    addresses) learns the missing block; on every fetch, blocks recorded
    for the current context are prefetched (coalesced, bounded degree).
    """

    def __init__(self, depth: int = 4, max_per_context: int = 8,
                 lookahead: int = 4):
        self.depth = depth
        self.max_per_context = max_per_context
        self.lookahead = lookahead
        self._recent = deque(maxlen=depth)
        # Contexts observed at the last few misses; a new miss is credited
        # to all of them so that, on recurrence, the prefetch runs *ahead*
        # of the miss stream instead of arriving with it.
        self._live_contexts = deque(maxlen=lookahead)
        self._table = {}   # context hash -> list of line addrs

    def _context(self) -> int:
        h = 0
        for a in self._recent:
            h = (h * 1000003 + a) & 0xFFFFFFFF
        return h

    def observe(self, line_addr: int, hit: bool) -> List[int]:
        ctx = self._context()
        out = list(self._table.get(ctx, ()))
        if not hit:
            for past_ctx in self._live_contexts:
                targets = self._table.setdefault(past_ctx, [])
                if line_addr not in targets:
                    targets.append(line_addr)
                    if len(targets) > self.max_per_context:
                        targets.pop(0)
            self._recent.append(line_addr)
            self._live_contexts.append(self._context())
        return out


def run_instruction_prefetch(cache, prefetcher, addresses: np.ndarray) -> None:
    """Replay an instruction fetch stream with prefetching enabled."""
    access = cache.access
    fill = cache.prefetch
    observe = prefetcher.observe
    for addr in addresses:
        addr = int(addr)
        line = addr // LINE
        hit = access(addr)
        for target in observe(line, hit):
            fill(target * LINE)
