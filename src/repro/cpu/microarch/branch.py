"""Branch predictors: gshare baseline and a perceptron predictor.

Models the Figure 1 "Branch Predictor" study: Jimenez & Lin's perceptron
predictor [HPCA'01] against a simple gshare.  Perceptrons can learn long
linearly-separable history correlations that saturating-counter tables
cannot, which is exactly what distinguishes monolithic branch behaviour
from the short, biased branches of microservice handlers.
"""

from __future__ import annotations

import numpy as np


class GSharePredictor:
    """Global-history XOR PC indexed table of 2-bit saturating counters."""

    def __init__(self, table_bits: int = 12, history_len: int = 8):
        self.table_bits = table_bits
        self.history_len = history_len
        self._table = np.full(1 << table_bits, 2, dtype=np.int8)  # weakly taken
        self._history = 0
        self._hist_mask = (1 << history_len) - 1

    def _index(self, pc: int) -> int:
        return (pc ^ self._history) & ((1 << self.table_bits) - 1)

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        if taken:
            self._table[idx] = min(3, self._table[idx] + 1)
        else:
            self._table[idx] = max(0, self._table[idx] - 1)
        self._history = ((self._history << 1) | int(taken)) & self._hist_mask


class PerceptronPredictor:
    """Per-PC perceptron over the global history register."""

    def __init__(self, n_perceptrons: int = 512, history_len: int = 24):
        self.history_len = history_len
        self.n = n_perceptrons
        self._w = np.zeros((n_perceptrons, history_len + 1), dtype=np.int32)
        self._hist = np.ones(history_len, dtype=np.int32)  # +-1 encoding
        self.theta = int(1.93 * history_len + 14)           # training threshold

    def _row(self, pc: int) -> int:
        return pc % self.n

    def _output(self, pc: int) -> int:
        w = self._w[self._row(pc)]
        return int(w[0] + (w[1:] * self._hist).sum())

    def predict(self, pc: int) -> bool:
        return self._output(pc) >= 0

    def update(self, pc: int, taken: bool) -> None:
        y = self._output(pc)
        t = 1 if taken else -1
        if (y >= 0) != taken or abs(y) <= self.theta:
            row = self._w[self._row(pc)]
            row[0] += t
            row[1:] += t * self._hist
        self._hist[1:] = self._hist[:-1]
        self._hist[0] = t


def measure_accuracy(predictor, pcs: np.ndarray, taken: np.ndarray,
                     warmup_fraction: float = 0.1) -> float:
    """Fraction of branches predicted correctly after a warm-up prefix.

    Published predictor accuracies are steady-state numbers; the first
    ``warmup_fraction`` of the trace trains the predictor but is excluded
    from the score.
    """
    warmup = int(len(pcs) * warmup_fraction)
    correct = 0
    predict = predictor.predict
    update = predictor.update
    for i, (pc, t) in enumerate(zip(pcs, taken)):
        pc = int(pc)
        t = bool(t)
        if predict(pc) == t and i >= warmup:
            correct += 1
        update(pc, t)
    return correct / max(1, len(pcs) - warmup)
