"""Profile-guided I-cache replacement (Ripple-like) vs LRU.

Ripple [Khan et al., ISCA'21] uses a profiling pass to find instruction
lines whose next reuse is too far away to survive in the cache, and evicts
them eagerly.  We model it as a two-pass scheme: a profiling pass computes
per-line reuse distances; lines whose median reuse distance exceeds the
cache's line capacity are classified *transient* and inserted at the LRU
position (evicted first), protecting the lines that do fit.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Set

import numpy as np

from repro.cpu.cache import InsertionPolicy

LINE = 64


def profile_transient_lines(addresses: np.ndarray, cache_lines: int) -> Set[int]:
    """Profiling pass: lines whose typical reuse distance exceeds capacity.

    Reuse distance is approximated by the number of accesses between
    consecutive touches of the same line (a stack-distance upper bound);
    a line is transient when its median gap exceeds ``cache_lines``
    (scaled: gaps count accesses, and unique-line density converts the
    threshold).
    """
    last_seen = {}
    gaps = defaultdict(list)
    for i, addr in enumerate(addresses):
        line = int(addr) // LINE
        prev = last_seen.get(line)
        if prev is not None:
            gaps[line].append(i - prev)
        last_seen[line] = i
    transient: Set[int] = set()
    # Average distinct-lines-per-access converts an access-count gap into
    # an approximate stack distance.
    density = len(last_seen) / max(1, len(addresses))
    threshold = cache_lines / max(density, 1e-9)
    for line, line_gaps in gaps.items():
        if np.median(line_gaps) > threshold:
            transient.add(line)
    # Lines never reused are transient by definition.
    for line in last_seen:
        if line not in gaps:
            transient.add(line)
    return transient


class RipplePolicy(InsertionPolicy):
    """Insertion policy driven by a profiled transient-line set."""

    def __init__(self, transient_lines: Set[int]):
        self.transient_lines = transient_lines

    def is_transient(self, line_addr: int) -> bool:
        return line_addr in self.transient_lines
