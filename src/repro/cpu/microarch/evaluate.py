"""Measurement harness for the Figure 1 microarch-optimization study.

For each optimization we replay a synthetic trace of a workload through
the relevant structure twice (baseline vs optimized), measure the miss or
misprediction rates, and convert the delta into a speedup with the core
CPI model.  The trace statistics (footprints, locality, branch behaviour)
are what separate monolithic from microservice workloads; the speedup gap
in Figure 1 falls out of those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.core_model import SERVERCLASS_CORE, CoreModel, SegmentProfile
from repro.cpu.microarch.branch import measure_accuracy
from repro.cpu.microarch.iprefetch import run_instruction_prefetch
from repro.cpu.microarch.prefetch import run_data_prefetch
from repro.cpu.microarch.replacement import RipplePolicy, profile_transient_lines
from repro.cpu.traces import TraceProfile, branch_trace, data_address_trace, \
    instruction_address_trace

# Average instructions per data access / per branch, used to convert
# per-access miss rates into per-kilo-instruction rates.
INSTR_PER_DATA_ACCESS = 3.0
# Straight-line microservice handler code is less branch-dense than
# monolithic control-heavy code.
INSTR_PER_BRANCH = {"mono": 8.0, "micro": 12.0}
# One I-cache line feeds ~4 instructions before a taken branch redirects
# the fetch stream.
INSTR_PER_IFETCH = 4.0
MEMORY_LATENCY = 200.0
L2_LATENCY = 20.0


@dataclass
class OptimizationResult:
    """Baseline vs optimized CPI and the derived speedup for one workload."""

    workload: str
    kind: str
    baseline_cpi: float
    optimized_cpi: float

    @property
    def speedup(self) -> float:
        return self.baseline_cpi / self.optimized_cpi


def _core_model() -> CoreModel:
    # The original studies target big OoO server cores.
    return CoreModel(SERVERCLASS_CORE)


def _segment(profile: TraceProfile, l1_mpki: float, l2_miss_fraction: float,
             branch_misp_mpki: float) -> SegmentProfile:
    return SegmentProfile(ilp=profile.ilp, l1_mpki=l1_mpki,
                          l2_miss_fraction=l2_miss_fraction,
                          branch_misp_mpki=branch_misp_mpki)


def _nominal_rates(profile: TraceProfile) -> dict:
    """Trace-independent nominal rates used for the non-varied CPI terms."""
    if profile.kind == "mono":
        return {"l1_mpki": 20.0, "l2_miss_fraction": 0.35, "branch_misp_mpki": 4.0}
    return {"l1_mpki": 8.0, "l2_miss_fraction": 0.10, "branch_misp_mpki": 0.8}


def evaluate_data_prefetcher(profile: TraceProfile, prefetcher_factory,
                             rng: np.random.Generator,
                             n_accesses: int = 120_000) -> OptimizationResult:
    """Data-prefetcher speedup: replay the data stream through an LLC proxy."""
    addrs = data_address_trace(profile, n_accesses, rng)
    nominal = _nominal_rates(profile)
    instructions = n_accesses * INSTR_PER_DATA_ACCESS
    core = _core_model()

    def llc_mpki(prefetcher) -> float:
        cache = SetAssociativeCache(2 * 1024 * 1024, 16, name="LLC")
        # Warm-up replay: services run continuously, so steady-state (not
        # cold-start) miss rates are what matters.  The prefetcher also
        # trains during warm-up.
        run_data_prefetch(cache, prefetcher, addrs)
        cache.reset_stats()
        run_data_prefetch(cache, prefetcher, addrs)
        return cache.stats.mpki(int(instructions))

    base_mpki = llc_mpki(_NO_PREFETCH)
    opt_mpki = llc_mpki(prefetcher_factory())
    # LLC misses pay the memory latency; CPI memory term varies with them.
    mlp = core.memory_level_parallelism()
    def cpi(mpki):
        seg = _segment(profile, nominal["l1_mpki"], nominal["l2_miss_fraction"],
                       nominal["branch_misp_mpki"])
        fixed = core.effective_cpi(seg, L2_LATENCY, 0.0)  # without memory misses
        return fixed + mpki / 1000.0 * MEMORY_LATENCY / mlp
    return OptimizationResult(profile.name, profile.kind, cpi(base_mpki), cpi(opt_mpki))


def evaluate_branch_predictor(profile: TraceProfile, baseline_factory,
                              optimized_factory, rng: np.random.Generator,
                              n_branches: int = 60_000) -> OptimizationResult:
    """Branch-predictor speedup from measured misprediction rates."""
    pcs, taken = branch_trace(profile, n_branches, rng)
    acc_base = measure_accuracy(baseline_factory(), pcs, taken)
    acc_opt = measure_accuracy(optimized_factory(), pcs, taken)
    branches_per_ki = 1000.0 / INSTR_PER_BRANCH[profile.kind]
    nominal = _nominal_rates(profile)
    core = _core_model()

    def cpi(accuracy):
        seg = _segment(profile, nominal["l1_mpki"], nominal["l2_miss_fraction"],
                       branches_per_ki * (1.0 - accuracy))
        return core.effective_cpi(seg, L2_LATENCY, MEMORY_LATENCY)

    return OptimizationResult(profile.name, profile.kind, cpi(acc_base), cpi(acc_opt))


def evaluate_instruction_prefetcher(profile: TraceProfile, prefetcher_factory,
                                    rng: np.random.Generator,
                                    n_accesses: int = 120_000) -> OptimizationResult:
    """I-prefetcher speedup: L1I misses stall the front end for L2 latency."""
    addrs = instruction_address_trace(profile, n_accesses, rng)

    def imiss_mpki(prefetcher) -> float:
        cache = SetAssociativeCache(64 * 1024, 8, name="L1I")
        run_instruction_prefetch(cache, prefetcher, addrs)  # warm-up + train
        cache.reset_stats()
        run_instruction_prefetch(cache, prefetcher, addrs)
        return cache.stats.mpki(int(n_accesses * INSTR_PER_IFETCH))

    return _frontend_result(profile, imiss_mpki(_NO_IPREFETCH),
                            imiss_mpki(prefetcher_factory()))


def evaluate_icache_replacement(profile: TraceProfile, rng: np.random.Generator,
                                n_accesses: int = 120_000) -> OptimizationResult:
    """Ripple-like profile-guided I-cache replacement vs LRU."""
    addrs = instruction_address_trace(profile, n_accesses, rng)
    cache_lines = 64 * 1024 // 64

    def run(cache) -> float:
        for a in addrs:                 # warm-up pass
            cache.access(int(a))
        cache.reset_stats()
        for a in addrs:                 # measured pass
            cache.access(int(a))
        return cache.stats.mpki(int(n_accesses * INSTR_PER_IFETCH))

    lru_mpki = run(SetAssociativeCache(64 * 1024, 8, name="L1I"))
    transient = profile_transient_lines(addrs, cache_lines)
    ripple_mpki = run(SetAssociativeCache(64 * 1024, 8,
                                          policy=RipplePolicy(transient),
                                          name="L1I"))
    return _frontend_result(profile, lru_mpki, ripple_mpki)


def _frontend_result(profile: TraceProfile, base_mpki: float,
                     opt_mpki: float) -> OptimizationResult:
    nominal = _nominal_rates(profile)
    core = _core_model()
    seg = _segment(profile, nominal["l1_mpki"], nominal["l2_miss_fraction"],
                   nominal["branch_misp_mpki"])
    fixed = core.effective_cpi(seg, L2_LATENCY, MEMORY_LATENCY)

    def cpi(mpki):
        return fixed + mpki / 1000.0 * L2_LATENCY  # front-end stall per I-miss

    return OptimizationResult(profile.name, profile.kind, cpi(base_mpki), cpi(opt_mpki))


class _NoPrefetchSingleton:
    def observe(self, line_addr: int, hit: bool):
        return []

    def credit(self, line_addr: int) -> None:
        pass


_NO_PREFETCH = _NoPrefetchSingleton()
_NO_IPREFETCH = _NoPrefetchSingleton()


def geometric_mean_speedup(results) -> float:
    """Geomean speedup across workloads (how Figure 1 aggregates)."""
    speedups = [r.speedup for r in results]
    if not speedups:
        raise ValueError("no results")
    return float(np.exp(np.mean(np.log(speedups))))
