"""Models of the four published microarch optimizations studied in Fig. 1.

Each module implements the optimization and its published baseline:

* :mod:`prefetch` — Pythia-like RL data prefetcher vs no prefetcher.
* :mod:`branch` — perceptron predictor vs gshare.
* :mod:`iprefetch` — I-SPY-like context instruction prefetcher vs none.
* :mod:`replacement` — Ripple-like profile-guided I-cache replacement vs LRU.
* :mod:`evaluate` — measurement harness turning miss/misprediction-rate
  deltas into speedups via the core CPI model.
"""

from repro.cpu.microarch.branch import GSharePredictor, PerceptronPredictor
from repro.cpu.microarch.iprefetch import ISpyPrefetcher, NoIPrefetcher
from repro.cpu.microarch.prefetch import NoPrefetcher, PythiaPrefetcher, StridePrefetcher
from repro.cpu.microarch.replacement import RipplePolicy

__all__ = [
    "NoPrefetcher",
    "StridePrefetcher",
    "PythiaPrefetcher",
    "GSharePredictor",
    "PerceptronPredictor",
    "NoIPrefetcher",
    "ISpyPrefetcher",
    "RipplePolicy",
]
