"""Cache-coherence domain model.

The paper contrasts *monolithic* (package-wide) hardware coherence with
small per-village domains.  At the granularity of the system simulation,
domain size matters in three ways:

1. **Directory distance** — an L2 miss consults the domain's directory.
   In a village the directory is co-located with the shared L2 (a couple
   of cycles); with package-wide coherence the home directory is, on
   average, several ICN hops away.
2. **Migration scope** — a blocked request may resume on any core of its
   domain.  Inside a village the shared L2 keeps its working set warm; a
   cross-village resume under global coherence pulls lines from remote
   caches over the ICN.
3. **Coherence traffic** — global coherence adds directory/invalidation
   messages to the ICN, increasing contention (modelled as extra message
   load by the system simulator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CoherenceConfig:
    """Coherence domain parameters.

    ``domain_cores`` is the number of cores sharing one hardware-coherent
    domain.  ``hop_cycles`` is the per-hop ICN latency used to cost the
    directory round trip.
    """

    domain_cores: int
    total_cores: int
    hop_cycles: float = 5.0
    local_directory_cycles: float = 2.0

    def __post_init__(self):
        if self.domain_cores < 1 or self.domain_cores > self.total_cores:
            raise ValueError("domain_cores must be in [1, total_cores]")


class CoherenceModel:
    """Latency and warmth effects of a coherence-domain size."""

    def __init__(self, config: CoherenceConfig):
        self.config = config

    @property
    def is_global(self) -> bool:
        return self.config.domain_cores >= self.config.total_cores

    def directory_roundtrip_cycles(self) -> float:
        """Average cycles an L2 miss spends reaching the home directory.

        A domain of N cores spans on the order of sqrt(N/8) network stops
        (8-core villages are one stop); the directory round trip crosses
        that distance twice.
        """
        c = self.config
        if c.domain_cores <= 16:
            return c.local_directory_cycles
        stops = math.sqrt(c.domain_cores / 8.0)
        return c.local_directory_cycles + 2.0 * stops * c.hop_cycles

    def resume_warm_fraction(self, same_village: bool) -> float:
        """Fraction of the working set still warm when a request resumes.

        Resuming inside the same village hits the shared L2 (~0.85 warm);
        a cross-village resume with global coherence can still pull lines
        from remote caches but pays for each (~0.3 effective warmth);
        without coherence between the cores the state is cold.
        """
        if same_village:
            return 0.85
        return 0.3 if self.is_global else 0.0

    def coherence_message_factor(self) -> float:
        """Multiplier on ICN message count from coherence traffic.

        Grows slowly with domain size: a package-wide domain roughly
        doubles background traffic relative to village-scale domains.
        """
        c = self.config
        if c.domain_cores <= 16:
            return 1.0
        return 1.0 + min(1.0, math.log2(c.domain_cores / 16.0) / 6.0)
