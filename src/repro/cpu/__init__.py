"""CPU substrate: cores, caches, TLBs, coherence, and microarch models."""

from repro.cpu.cache import CacheStats, SetAssociativeCache
from repro.cpu.core_model import (
    SCALEOUT_CORE,
    SERVERCLASS_CORE,
    UMANYCORE_CORE,
    CoreConfig,
    CoreModel,
    SegmentProfile,
)
from repro.cpu.hierarchy import CacheHierarchy, HierarchyConfig
from repro.cpu.tlb import Tlb

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "Tlb",
    "CacheHierarchy",
    "HierarchyConfig",
    "CoreConfig",
    "CoreModel",
    "SegmentProfile",
    "UMANYCORE_CORE",
    "SCALEOUT_CORE",
    "SERVERCLASS_CORE",
]
