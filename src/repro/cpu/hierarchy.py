"""Functional multi-level cache/TLB hierarchy (Table 2 shapes).

Drives Figure 9: replay synthetic handler traces through the hierarchy and
report per-level hit rates for data and instructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cpu.cache import SetAssociativeCache
from repro.cpu.tlb import Tlb


@dataclass(frozen=True)
class HierarchyConfig:
    """Sizes/latencies of one core's view of the cache hierarchy.

    Latencies are round-trip cycles as given in Table 2 of the paper.
    """

    name: str
    l1_size: int = 64 * 1024
    l1_assoc: int = 8
    l1_latency: int = 2
    l2_size: int = 256 * 1024
    l2_assoc: int = 16
    l2_latency: int = 24
    l3_size: Optional[int] = None       # per-core slice; None = no L3
    l3_assoc: int = 16
    l3_latency: int = 40
    line_size: int = 64
    l1_tlb_entries: int = 128
    l1_tlb_assoc: int = 4
    l1_tlb_latency: int = 2
    l2_tlb_entries: Optional[int] = None
    l2_tlb_assoc: int = 12
    l2_tlb_latency: int = 12
    memory_latency: int = 200           # cycles to DRAM on full miss


# Table 2 instances.
UMANYCORE_HIERARCHY = HierarchyConfig(name="umanycore")
SCALEOUT_HIERARCHY = HierarchyConfig(name="scaleout")
SERVERCLASS_HIERARCHY = HierarchyConfig(
    name="serverclass",
    l2_size=2 * 1024 * 1024,
    l2_latency=16,
    l3_size=2 * 1024 * 1024,
    l3_latency=40,
    l1_tlb_entries=256,
    l2_tlb_entries=2048,
)


class CacheHierarchy:
    """One core's caches+TLBs; separate instruction and data L1s, shared L2+."""

    def __init__(self, config: HierarchyConfig):
        self.config = config
        c = config
        self.l1d = SetAssociativeCache(c.l1_size, c.l1_assoc, c.line_size, name="L1D")
        self.l1i = SetAssociativeCache(c.l1_size, c.l1_assoc, c.line_size, name="L1I")
        self.l2 = SetAssociativeCache(c.l2_size, c.l2_assoc, c.line_size, name="L2")
        self.l3 = (
            SetAssociativeCache(c.l3_size, c.l3_assoc, c.line_size, name="L3")
            if c.l3_size
            else None
        )
        self.dtlb = Tlb(c.l1_tlb_entries, c.l1_tlb_assoc, name="L1DTLB")
        self.itlb = Tlb(c.l1_tlb_entries, c.l1_tlb_assoc, name="L1ITLB")
        self.l2_dtlb = (
            Tlb(c.l2_tlb_entries, c.l2_tlb_assoc, name="L2DTLB")
            if c.l2_tlb_entries
            else None
        )
        self.l2_itlb = (
            Tlb(c.l2_tlb_entries, c.l2_tlb_assoc, name="L2ITLB")
            if c.l2_tlb_entries
            else None
        )

    def _access(self, l1: SetAssociativeCache, tlb_pair, addr: int) -> int:
        """Walk one access through TLBs + cache levels; returns cycles."""
        c = self.config
        cycles = 0
        l1_tlb, l2_tlb = tlb_pair
        cycles += c.l1_tlb_latency
        if not l1_tlb.access(addr):
            if l2_tlb is not None:
                cycles += c.l2_tlb_latency
                if not l2_tlb.access(addr):
                    cycles += c.memory_latency  # page-walk cost
            else:
                cycles += c.memory_latency
        cycles += c.l1_latency
        if l1.access(addr):
            return cycles
        cycles += c.l2_latency
        if self.l2.access(addr):
            return cycles
        if self.l3 is not None:
            cycles += c.l3_latency
            if self.l3.access(addr):
                return cycles
        return cycles + c.memory_latency

    def access_data(self, addr: int) -> int:
        return self._access(self.l1d, (self.dtlb, self.l2_dtlb), addr)

    def access_instr(self, addr: int) -> int:
        return self._access(self.l1i, (self.itlb, self.l2_itlb), addr)

    def hit_rates(self) -> dict:
        """Per-structure hit rates (Figure 9 rows)."""
        rates = {
            "L1D": self.l1d.stats.hit_rate,
            "L1I": self.l1i.stats.hit_rate,
            "L2": self.l2.stats.hit_rate,
            "L1DTLB": self.dtlb.stats.hit_rate,
            "L1ITLB": self.itlb.stats.hit_rate,
        }
        if self.l3 is not None:
            rates["L3"] = self.l3.stats.hit_rate
        if self.l2_dtlb is not None:
            rates["L2DTLB"] = self.l2_dtlb.stats.hit_rate
        if self.l2_itlb is not None:
            rates["L2ITLB"] = self.l2_itlb.stats.hit_rate
        return rates
