"""Synthetic instruction/data/branch trace generators.

The paper drives its Figure 1 and Figure 9 studies with Pin traces of
monolithic applications (MySQL, Cassandra, Kafka, Clang, WordPress) and
microservice applications (SocialNetwork, Router, SetAlgebra).  We have no
Pin or those binaries, so we generate statistical traces whose controlling
parameters — footprint size, access locality, loop structure and branch
behaviour — match the qualitative characterization in Sections 2.2/3.5:
monoliths have multi-MB instruction and multi-10s-of-MB data footprints
with irregular access patterns; microservice handlers have ~0.5 MB data
footprints and small, highly reused instruction footprints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

PAGE = 4096
LINE = 64


@dataclass(frozen=True)
class TraceProfile:
    """Statistical description of a workload's memory/branch behaviour."""

    name: str
    kind: str                        # "mono" | "micro"
    data_footprint_kb: int
    instr_footprint_kb: int
    data_zipf_s: float               # page-popularity skew (higher = hotter)
    run_length_mean: float           # avg sequential lines per data burst
    func_count: int                  # static functions in the hot path
    func_len_lines: int              # I-cache lines per function
    loop_iterations_mean: float      # reuse of a function body
    branch_correlated_frac: float    # branches needing long history
    branch_bias: float               # taken prob. of the biased branches
    ilp: float = 3.0
    line_reuse_mean: float = 3.0     # consecutive accesses per cache line
    static_branches: int = 384       # distinct branch PCs in the hot path


# Monolithic workloads used in the Figure 1 publications.
MONO_PROFILES = [
    TraceProfile("mysql", "mono", data_footprint_kb=65536, instr_footprint_kb=4096,
                 data_zipf_s=0.6, run_length_mean=2.0, func_count=4000,
                 func_len_lines=40, loop_iterations_mean=2.0,
                 branch_correlated_frac=0.07, branch_bias=0.95, ilp=2.4),
    TraceProfile("cassandra", "mono", data_footprint_kb=131072, instr_footprint_kb=6144,
                 data_zipf_s=0.55, run_length_mean=3.0, func_count=6000,
                 func_len_lines=36, loop_iterations_mean=2.0,
                 branch_correlated_frac=0.08, branch_bias=0.94, ilp=2.2),
    TraceProfile("kafka", "mono", data_footprint_kb=98304, instr_footprint_kb=5120,
                 data_zipf_s=0.65, run_length_mean=4.0, func_count=5000,
                 func_len_lines=32, loop_iterations_mean=2.5,
                 branch_correlated_frac=0.06, branch_bias=0.96, ilp=2.6),
    TraceProfile("clang", "mono", data_footprint_kb=262144, instr_footprint_kb=8192,
                 data_zipf_s=0.5, run_length_mean=2.0, func_count=9000,
                 func_len_lines=48, loop_iterations_mean=1.5,
                 branch_correlated_frac=0.08, branch_bias=0.93, ilp=2.0),
    TraceProfile("wordpress", "mono", data_footprint_kb=49152, instr_footprint_kb=3072,
                 data_zipf_s=0.7, run_length_mean=2.5, func_count=3500,
                 func_len_lines=30, loop_iterations_mean=2.0,
                 branch_correlated_frac=0.06, branch_bias=0.95, ilp=2.5),
]

# Microservice workloads of Figure 1 / Section 3.5: ~0.5 MB handler
# footprints, small hot instruction working sets, highly biased branches.
MICRO_PROFILES = [
    TraceProfile("socialnetwork", "micro", data_footprint_kb=512, instr_footprint_kb=128,
                 data_zipf_s=1.5, run_length_mean=6.0, func_count=60,
                 func_len_lines=24, loop_iterations_mean=8.0,
                 branch_correlated_frac=0.01, branch_bias=0.999, ilp=3.0,
                 line_reuse_mean=16.0, static_branches=48),
    TraceProfile("router", "micro", data_footprint_kb=384, instr_footprint_kb=96,
                 data_zipf_s=1.6, run_length_mean=8.0, func_count=40,
                 func_len_lines=20, loop_iterations_mean=10.0,
                 branch_correlated_frac=0.008, branch_bias=0.999, ilp=3.2,
                 line_reuse_mean=20.0, static_branches=32),
    TraceProfile("setalgebra", "micro", data_footprint_kb=640, instr_footprint_kb=112,
                 data_zipf_s=1.4, run_length_mean=10.0, func_count=50,
                 func_len_lines=22, loop_iterations_mean=9.0,
                 branch_correlated_frac=0.012, branch_bias=0.999, ilp=3.4,
                 line_reuse_mean=14.0, static_branches=40),
]


def _bounded_zipf_probs(n: int, s: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-s)
    return weights / weights.sum()


def data_address_trace(profile: TraceProfile, n_accesses: int,
                       rng: np.random.Generator) -> np.ndarray:
    """Byte-address stream of data accesses.

    Pages are drawn from a bounded-Zipf popularity distribution over the
    footprint; each draw produces a short sequential run of cache lines
    (spatial locality), with run length geometric around the profile mean.
    """
    n_pages = max(1, profile.data_footprint_kb * 1024 // PAGE)
    probs = _bounded_zipf_probs(n_pages, profile.data_zipf_s)
    lines_per_page = PAGE // LINE
    addrs = np.empty(n_accesses, dtype=np.int64)
    filled = 0
    per_run = profile.run_length_mean * profile.line_reuse_mean
    while filled < n_accesses:
        batch = max(64, int((n_accesses - filled) / per_run) + 1)
        pages = rng.choice(n_pages, size=batch, p=probs)
        runs = 1 + rng.geometric(1.0 / profile.run_length_mean, size=batch)
        starts = rng.integers(0, lines_per_page, size=batch)
        for page, run, start in zip(pages, runs, starts):
            run = int(min(run, lines_per_page - start))
            base = int(page) * PAGE + int(start) * LINE
            lines = base + np.arange(run) * LINE
            # Temporal locality: several consecutive accesses per line.
            reuses = 1 + rng.geometric(1.0 / profile.line_reuse_mean, size=run)
            seq = np.repeat(lines, reuses)
            take = min(len(seq), n_accesses - filled)
            addrs[filled:filled + take] = seq[:take]
            filled += take
            if filled >= n_accesses:
                break
    return addrs


def instruction_address_trace(profile: TraceProfile, n_accesses: int,
                              rng: np.random.Generator) -> np.ndarray:
    """Byte-address stream of instruction fetches.

    The hot path is a set of functions; execution picks a function
    (Zipf-popular), runs its body sequentially for a geometric number of
    loop iterations, then jumps to another function (call/return flow).
    """
    n_funcs = profile.func_count
    probs = _bounded_zipf_probs(n_funcs, 1.0 if profile.kind == "micro" else 0.6)
    footprint_lines = profile.instr_footprint_kb * 1024 // LINE
    func_len = max(1, min(profile.func_len_lines, footprint_lines // max(1, n_funcs) or 1))
    addrs = np.empty(n_accesses, dtype=np.int64)
    filled = 0
    while filled < n_accesses:
        func = int(rng.choice(n_funcs, p=probs))
        base = (func * profile.func_len_lines) % max(footprint_lines - func_len, 1)
        iters = 1 + int(rng.geometric(1.0 / profile.loop_iterations_mean))
        for __ in range(iters):
            take = min(func_len, n_accesses - filled)
            addrs[filled:filled + take] = (base + np.arange(take)) * LINE
            filled += take
            if filled >= n_accesses:
                break
    return addrs


def branch_trace(profile: TraceProfile, n_branches: int,
                 rng: np.random.Generator,
                 max_lag: int = 20) -> Tuple[np.ndarray, np.ndarray]:
    """(pc, taken) streams.

    Static branches split into *biased* (taken with ``branch_bias``) and
    *history-correlated*: a correlated branch's outcome equals the global
    outcome ``lag`` branches ago, with lag drawn in [4, max_lag].  That is
    linearly separable (a perceptron with history >= max_lag learns it),
    while a 12-bit-history gshare cannot see lags beyond 12 and dilutes
    its counters across history patterns for the rest.  Monoliths have far
    more correlated branches — the source of the perceptron's Figure 1
    edge — while microservice handlers are overwhelmingly biased.
    """
    n_static = profile.static_branches
    is_corr = rng.random(n_static) < profile.branch_correlated_frac
    lags = rng.integers(4, max_lag + 1, size=n_static)
    bias = np.where(rng.random(n_static) < 0.7, profile.branch_bias,
                    1.0 - profile.branch_bias)
    # Branches execute in loop-structured blocks (like basic blocks inside
    # loops), so the global history register sees repetitive patterns —
    # the regularity table-based predictors rely on.
    block_len = 8
    n_blocks = max(1, n_static // block_len)
    # Hot blocks dominate execution (Zipf), so block-to-block transitions
    # recur and the global history register sees familiar patterns.
    block_probs = _bounded_zipf_probs(n_blocks, 1.3 if profile.kind == "micro" else 0.9)
    pcs = np.empty(n_branches, dtype=np.int64)
    filled = 0
    while filled < n_branches:
        slot = int(rng.choice(n_blocks, p=block_probs))
        start = slot * block_len
        iters = 1 + int(rng.geometric(1.0 / max(4.0, profile.loop_iterations_mean)))
        block = np.arange(start, min(start + block_len, n_static))
        seq = np.tile(block, iters)[: n_branches - filled]
        pcs[filled:filled + len(seq)] = seq
        filled += len(seq)
    noise = rng.random(n_branches)
    taken = np.zeros(n_branches, dtype=np.int8)
    history = [1] * (max_lag + 1)   # most recent first
    for i in range(n_branches):
        b = pcs[i]
        if is_corr[b]:
            out = history[lags[b] - 1]
            if noise[i] < 0.05:
                out = 1 - out
        else:
            out = 1 if noise[i] < bias[b] else 0
        taken[i] = out
        history.insert(0, out)
        history.pop()
    return pcs, taken


def handler_trace(profile: TraceProfile, n_accesses: int, rng: np.random.Generator,
                  n_handlers: int = 8, shared_fraction: float = 0.85
                  ) -> Tuple[np.ndarray, np.ndarray]:
    """(data_addrs, instr_addrs) for a sequence of service handlers.

    Successive handlers of the same instance share ``shared_fraction`` of
    their footprint (Section 3.5 / Figure 8); the rest is per-handler
    private state placed in a disjoint region.
    """
    per_handler = n_accesses // n_handlers
    data_parts, instr_parts = [], []
    private_base = profile.data_footprint_kb * 1024 * 2
    for h in range(n_handlers):
        d = data_address_trace(profile, per_handler, rng)
        private = rng.random(per_handler) > shared_fraction
        d[private] += private_base * (h + 1)
        data_parts.append(d)
        instr_parts.append(instruction_address_trace(profile, per_handler, rng))
    return np.concatenate(data_parts), np.concatenate(instr_parts)
