"""Functional TLB model (a set-associative cache over page numbers)."""

from __future__ import annotations

from repro.cpu.cache import CacheStats, SetAssociativeCache


class Tlb:
    """Set-associative TLB; entries map virtual pages, LRU replacement."""

    def __init__(self, entries: int, assoc: int, page_size: int = 4096, name: str = ""):
        if entries < assoc:
            raise ValueError(f"{name}: entries {entries} < assoc {assoc}")
        # Round down to a whole number of sets; Table 2's 2048-entry 12-way
        # L2 TLB becomes 170 sets x 12 ways = 2040 usable entries.
        usable = (entries // assoc) * assoc
        self.entries = usable
        self.page_size = page_size
        # Reuse the cache machinery: one "line" per page, line_size 1 over
        # page numbers.
        self._cache = SetAssociativeCache(
            size_bytes=usable, assoc=assoc, line_size=1, name=name
        )
        self.name = name

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def access(self, addr: int) -> bool:
        """Translate a byte address; returns True on TLB hit."""
        return self._cache.access(addr // self.page_size)

    def reset_stats(self) -> None:
        self._cache.reset_stats()
