"""Property-based checker harness: fuzz the simulator under the sanitizer.

One :class:`Trial` is a reduced-scale cluster simulation drawn from a
seed — system, app, load, arrival process, and optionally a random fault
schedule — executed under a collecting :class:`~repro.check.context.
CheckContext`.  :func:`fuzz` drives a deterministic grid of trials (same
``seed`` → same trials → same outcomes) and returns the failing ones;
:func:`shrink` reduces a failing trial axis by axis (drop faults, halve
the duration, drop to one server, simplify the app…) to the smallest
variant that still reproduces, so a CI failure prints one short repro
line instead of a 2000-event transcript.

The per-trial randomness is consumed *up front* from numpy generators —
no ``random``/``Date.now`` style ambient state — which is what makes a
failure replayable from its trial alone.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.check.context import CheckContext

#: Fuzz axes: kept deliberately small-scale so one trial runs in well
#: under a second and a CI budget of a few dozen trials stays cheap.
CONFIG_NAMES = ("umanycore", "scaleout", "serverclass")
APP_NAMES = ("Text", "User", "HomeT", "exponential",
             "MCompose", "MPage", "HSearch", "HReserve")
LOADS = (4_000.0, 8_000.0, 16_000.0)
#: Arrival-process axis — every named rate profile plus trace replay
#: ("replay" resolves to a small Alibaba-marginal trace per trial).
ARRIVALS = ("poisson", "bursty", "diurnal", "mmpp", "flash", "ramp",
            "replay")
DURATIONS_S = (0.002, 0.004)
FAULT_RATES = (200.0, 1_000.0)
#: Scheduling-policy axes (repro.sched); "off" on the steal axis means
#: work stealing disabled, any other value enables it with that victim
#: policy.
DISPATCHES = ("rr", "least", "affinity")
RQ_POLICIES = ("fcfs", "srpt", "sjf", "edf")
STEALS = ("off", "first", "maxload")
#: Datacenter-tier axes (repro.dc); "off" on the lb axis means no dc
#: tier at all (the classic per-server arrival path).
LBS = ("off", "rr", "random", "p2c", "least", "affinity")
REPLICATIONS = (0, 1, 2)


@dataclass(frozen=True)
class Trial:
    """One fuzz case: a fully-described checked simulation."""

    seed: int
    config: str = "umanycore"
    app: str = "Text"
    rps: float = 8_000.0
    n_servers: int = 1
    duration_s: float = 0.003
    arrivals: str = "poisson"
    fault_rate: float = 0.0        # random failures/s (0 = fault-free)
    trace: bool = True             # also run the span-tree checks
    dispatch: str = "rr"           # NIC->village policy
    rq_policy: str = "fcfs"        # intra-village dequeue order
    steal: str = "off"             # "off" or a steal-victim policy
    core_bypass: bool = False      # nanoPU-style fast path
    lb: str = "off"                # "off" or a front-end LB policy
    replication: int = 0           # service replicas (0 = everywhere)
    autoscale: bool = False        # reactive server autoscaling
    hybrid: bool = False           # arm the analytic fast path

    def describe(self) -> str:
        """One-line repro of this trial — valid ``Trial(...)`` syntax, so
        a failure report can be pasted straight back into Python."""
        parts = [f"seed={self.seed}", f"config={self.config!r}",
                 f"app={self.app!r}", f"rps={self.rps:g}",
                 f"n_servers={self.n_servers}",
                 f"duration_s={self.duration_s:g}",
                 f"arrivals={self.arrivals!r}"]
        if self.fault_rate > 0:
            parts.append(f"fault_rate={self.fault_rate:g}")
        if not self.trace:
            parts.append("trace=False")
        if self.dispatch != "rr":
            parts.append(f"dispatch={self.dispatch!r}")
        if self.rq_policy != "fcfs":
            parts.append(f"rq_policy={self.rq_policy!r}")
        if self.steal != "off":
            parts.append(f"steal={self.steal!r}")
        if self.core_bypass:
            parts.append("core_bypass=True")
        if self.lb != "off":
            parts.append(f"lb={self.lb!r}")
        if self.replication:
            parts.append(f"replication={self.replication}")
        if self.autoscale:
            parts.append("autoscale=True")
        if self.hybrid:
            parts.append("hybrid=True")
        return "Trial(" + ", ".join(parts) + ")"


def _config(name: str):
    """Reduced-scale system config for one trial (construction cost of a
    full 1024-core server dwarfs a 2 ms simulation)."""
    from repro.systems.configs import SCALEOUT, SERVERCLASS, UMANYCORE

    if name == "umanycore":
        return replace(UMANYCORE, n_cores=128, n_clusters=8)
    if name == "scaleout":
        return replace(SCALEOUT, n_cores=128, n_clusters=4,
                       coherence_domain_cores=128)
    if name == "serverclass":
        return SERVERCLASS
    raise KeyError(f"unknown trial config {name!r}")


def _trial_config(trial: Trial):
    """The trial's reduced config with its policy axes folded in."""
    cfg = _config(trial.config)
    overrides = {}
    if trial.dispatch != cfg.dispatch:
        overrides["dispatch"] = trial.dispatch
    if trial.rq_policy != cfg.rq_policy:
        overrides["rq_policy"] = trial.rq_policy
    if trial.steal != "off":
        overrides["work_steal"] = True
        overrides["steal_policy"] = trial.steal
    if trial.core_bypass:
        overrides["core_bypass"] = True
    return replace(cfg, **overrides) if overrides else cfg


def _app(name: str):
    from repro.workloads.deathstar import DEATHSTAR_APPS
    from repro.workloads.synthetic import synthetic_app

    if name in DEATHSTAR_APPS:
        return DEATHSTAR_APPS[name]
    return synthetic_app(name)


def run_trial(trial: Trial) -> CheckContext:
    """Execute one trial under a collecting sanitizer.

    Returns:
        The trial's :class:`CheckContext`; ``.ok`` is False when any
        invariant was violated.
    """
    from repro.systems.cluster import ClusterSimulation
    from repro.telemetry import Tracer

    arrivals = trial.arrivals
    if arrivals == "replay":
        from repro.workloads.replay import sample_alibaba_trace

        # Aggregate trace sized to the trial: cluster-wide mean rate,
        # deterministic in the trial seed.
        arrivals = sample_alibaba_trace(
            trial.duration_s, trial.rps * trial.n_servers,
            seed=trial.seed, window_s=trial.duration_s / 8)
    check = CheckContext(strict=False)
    tracer = Tracer() if trial.trace else None
    dc = None
    if trial.lb != "off":
        from repro.dc import DcConfig

        dc = DcConfig(lb=trial.lb, replication=trial.replication,
                      autoscale=trial.autoscale,
                      autoscale_interval_ns=200_000.0)
    hybrid = None
    if trial.hybrid:
        from repro.hybrid import HybridConfig

        # Aggressive knobs so commits actually happen inside a 2-4 ms
        # trial: the point is to exercise the elided event paths and
        # their conservation ledgers, not to be a good estimator.
        hybrid = HybridConfig(tol=0.5, windows=3, min_samples=5,
                              window_ns=300_000.0, calibration_roots=10)
    sim = ClusterSimulation(
        _trial_config(trial), _app(trial.app), rps_per_server=trial.rps,
        n_servers=trial.n_servers, duration_s=trial.duration_s,
        seed=trial.seed, arrivals=arrivals, tracer=tracer,
        check=check, dc=dc, hybrid=hybrid)
    if trial.fault_rate > 0:
        from repro.faults import FaultSchedule, fault_inventory

        inventory = fault_inventory(sim.servers)
        sim.install_faults(FaultSchedule.random(
            seed=trial.seed, duration_ns=trial.duration_s * 1e9,
            rate_per_s=trial.fault_rate, detection_ns=50_000.0,
            **inventory))
    sim.run()
    return check


def draw_trial(rng: np.random.Generator,
               fault_fraction: float = 0.5) -> Trial:
    """Draw one random trial from the fuzz axes."""
    return Trial(
        seed=int(rng.integers(1, 2**31)),
        config=str(rng.choice(CONFIG_NAMES)),
        app=str(rng.choice(APP_NAMES)),
        rps=float(rng.choice(LOADS)),
        n_servers=int(rng.choice((1, 2))),
        duration_s=float(rng.choice(DURATIONS_S)),
        arrivals=str(rng.choice(ARRIVALS)),
        fault_rate=float(rng.choice(FAULT_RATES))
        if float(rng.random()) < fault_fraction else 0.0,
        trace=bool(rng.random() < 0.5),
        dispatch=str(rng.choice(DISPATCHES)),
        rq_policy=str(rng.choice(RQ_POLICIES)),
        steal=str(rng.choice(STEALS)),
        core_bypass=bool(rng.random() < 0.25),
        lb=str(rng.choice(LBS)),
        replication=int(rng.choice(REPLICATIONS)),
        autoscale=bool(rng.random() < 0.25),
        hybrid=bool(rng.random() < 0.25))


ProgressFn = Callable[[int, Trial, CheckContext], None]


def fuzz(trials: int = 20, seed: int = 0, fault_fraction: float = 0.5,
         progress: Optional[ProgressFn] = None
         ) -> List[Tuple[Trial, CheckContext]]:
    """Run a deterministic grid of random trials through the sanitizer.

    Args:
        trials: How many trials to draw and run.
        seed: Seed of the trial-drawing generator — the whole grid (and
            every outcome) is a pure function of it.
        fault_fraction: Fraction of trials that carry a random fault
            schedule.
        progress: Optional ``(index, trial, check)`` callback after each
            trial.

    Returns:
        ``(trial, check)`` for every failing trial (empty = all clean).
    """
    rng = np.random.default_rng(seed)
    failures: List[Tuple[Trial, CheckContext]] = []
    for i in range(trials):
        trial = draw_trial(rng, fault_fraction)
        check = run_trial(trial)
        if progress is not None:
            progress(i, trial, check)
        if not check.ok:
            failures.append((trial, check))
    return failures


def shrink(trial: Trial,
           fails: Optional[Callable[[Trial], bool]] = None) -> Trial:
    """Reduce a failing trial to a smaller one that still fails.

    Tries one axis at a time, in order of how much each simplifies the
    repro: drop the fault schedule, reset the policy and dc axes,
    disarm the hybrid fast path, drop tracing, halve the duration
    (twice), go to one server, swap in the simplest app, fall back to
    Poisson arrivals, and lower the load.  An axis change is kept only
    when the reduced trial still fails.

    Args:
        trial: A trial for which ``fails(trial)`` is True.
        fails: Failure predicate; defaults to re-running the trial and
            checking the sanitizer (injectable for unit tests).

    Returns:
        The smallest failing variant found (possibly ``trial`` itself).
    """
    if fails is None:
        def fails(t: Trial) -> bool:
            return not run_trial(t).ok

    stages = [
        lambda t: replace(t, fault_rate=0.0),
        lambda t: replace(t, dispatch="rr", rq_policy="fcfs",
                          steal="off", core_bypass=False),
        lambda t: replace(t, lb="off", replication=0, autoscale=False),
        lambda t: replace(t, hybrid=False),
        lambda t: replace(t, trace=False),
        lambda t: replace(t, duration_s=t.duration_s / 2),
        lambda t: replace(t, duration_s=t.duration_s / 2),
        lambda t: replace(t, n_servers=1),
        lambda t: replace(t, app="Text"),
        lambda t: replace(t, arrivals="poisson"),
        lambda t: replace(t, rps=min(t.rps, LOADS[0])),
    ]
    current = trial
    for stage in stages:
        candidate = stage(current)
        if candidate != current and fails(candidate):
            current = candidate
    return current
