"""Span-tree well-formedness checks over a telemetry trace.

The tracer (:mod:`repro.telemetry.tracer`) links every nested RPC's
request span to its parent via ``parent_span_id`` and to its root via
``root_index``.  A well-formed trace satisfies, per request span:

* the parent link resolves to a request that exists in the trace;
* the child starts no earlier than its parent (the RPC is issued from
  inside the parent's lifetime);
* with strict nesting (fault-free runs) the child also *ends* inside
  the parent — a response cannot reach the caller after the caller
  answered.  Hedged/retried RPCs violate this by design (wasted
  responses land after the winner), so faulted runs relax it;
* no span of any category has a negative duration.

Used by :meth:`repro.check.context.CheckContext.finalize` and directly
unit-testable against hand-built tracers.
"""

from __future__ import annotations

from typing import List

from repro.check.context import Violation


def check_span_tree(tracer, require_closed: bool = True,
                    strict_nesting: bool = True) -> List[Violation]:
    """Validate one tracer's request tree and span set.

    Args:
        tracer: A :class:`repro.telemetry.Tracer` (must be enabled).
        require_closed: Every request span must have ended — true at
            drain in fault-free runs; faulted runs legitimately strand
            blackholed requests open.
        strict_nesting: Children must end inside their parents (off for
            faulted runs, where late wasted responses outlive parents).

    Returns:
        The violations found (empty for a well-formed trace).
    """
    violations: List[Violation] = []
    infos = tracer.requests
    by_span = {info.span_id: info for info in infos}
    for i, info in enumerate(infos):
        if not 0 <= info.root_index < len(infos):
            violations.append(Violation(
                "span-tree", f"request #{i} has out-of-range root index "
                f"{info.root_index}", where="telemetry"))
        if info.end_ns is None:
            if require_closed:
                violations.append(Violation(
                    "span-tree", f"request #{i} ({info.service}) never "
                    f"closed", where="telemetry", time_ns=info.start_ns))
            continue
        if info.end_ns < info.start_ns:
            violations.append(Violation(
                "span-tree", f"request #{i} ({info.service}) has negative "
                f"duration ({info.start_ns} -> {info.end_ns})",
                where="telemetry", time_ns=info.start_ns))
        if info.parent_span_id is None:
            continue
        parent = by_span.get(info.parent_span_id)
        if parent is None:
            violations.append(Violation(
                "span-tree", f"request #{i} ({info.service}) links to "
                f"unknown parent span {info.parent_span_id}",
                where="telemetry", time_ns=info.start_ns))
            continue
        if info.start_ns < parent.start_ns:
            violations.append(Violation(
                "span-tree", f"request #{i} ({info.service}) starts "
                f"before its parent ({info.start_ns} < "
                f"{parent.start_ns})", where="telemetry",
                time_ns=info.start_ns))
        if strict_nesting and parent.end_ns is not None \
                and info.end_ns > parent.end_ns:
            violations.append(Violation(
                "span-tree", f"request #{i} ({info.service}) outlives "
                f"its parent ({info.end_ns} > {parent.end_ns})",
                where="telemetry", time_ns=info.start_ns))
    for span in tracer.spans:
        if span.end_ns < span.start_ns:
            violations.append(Violation(
                "span-tree", f"span {span.span_id} "
                f"({span.category}/{span.name}) has negative duration",
                where="telemetry", time_ns=span.start_ns))
    return violations
