"""repro.check: opt-in invariant sanitizer for the whole simulation stack.

The hook API mirrors the telemetry tracer's zero-overhead pattern: every
engine carries a :data:`NULL_CHECK` whose hooks are no-ops, and
instrumentation sites guard with ``if check.enabled:`` so disabled
checking costs one attribute load + branch.  A live
:class:`CheckContext` validates per-event invariants (clock
monotonicity, RQ structure, resource bounds) and balances conservation
ledgers at drain (requests, ICN messages, resource leaks, span trees).

Entry points: pass ``check=CheckContext()`` to
:class:`repro.systems.cluster.ClusterSimulation` / ``simulate``, use the
``--check`` CLI flags, or run the randomized harness via
``repro validate`` (:mod:`repro.check.harness` — imported lazily here
because it reaches back into the cluster layer).
"""

from repro.check.context import (
    NULL_CHECK,
    CheckContext,
    CheckError,
    NullCheckContext,
    Violation,
)
from repro.check.spans import check_span_tree

__all__ = [
    "NULL_CHECK",
    "CheckContext",
    "CheckError",
    "NullCheckContext",
    "Violation",
    "check_span_tree",
]
