"""The invariant sanitizer: a race/leak-sanitizer analogue for the sim.

Two implementations share one interface, mirroring the telemetry
tracer's zero-overhead pattern:

* :class:`NullCheckContext` — the default on every
  :class:`~repro.sim.engine.Engine`.  Every hook is a no-op and
  ``enabled`` is False, so instrumentation sites guard with
  ``if check.enabled:`` and pay one attribute load + branch when
  checking is off.
* :class:`CheckContext` — the live sanitizer.  Hooks validate local
  invariants as events happen (clock monotonicity, RQ structure,
  resource occupancy bounds) and feed conservation ledgers that
  :meth:`CheckContext.finalize` balances at drain time (request
  conservation per service and per queue, resource leaks, ICN message
  conservation, span-tree well-formedness).

The sanitizer never mutates simulation state and draws no random
numbers, so a checked run is byte-identical to an unchecked one —
``tests/test_check.py`` pins that contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


class CheckError(AssertionError):
    """Raised when a strict :class:`CheckContext` found violations."""


@dataclass(frozen=True)
class Violation:
    """One invariant violation, stamped with where/when it was seen."""

    category: str          # e.g. "rq-structure", "conservation", "clock"
    message: str
    where: str = ""        # component name (queue, resource, ...)
    time_ns: Optional[float] = None

    def __str__(self) -> str:
        at = f" @ {self.time_ns:.0f}ns" if self.time_ns is not None else ""
        site = f" [{self.where}]" if self.where else ""
        return f"{self.category}{site}{at}: {self.message}"


class NullCheckContext:
    """Disabled sanitizer: every hook is a no-op.

    Also serves as the interface definition — :class:`CheckContext`
    overrides every method.
    """

    enabled: bool = False

    # --- engine
    def clock_advance(self, old_ns: float, new_ns: float) -> None:
        """The engine clock is about to move from ``old_ns`` to ``new_ns``."""

    # --- request queue
    def rq_admit(self, rq, rec, soft: bool = False) -> None:
        """An entry was admitted (slot or NIC-buffered soft entry)."""

    def rq_dequeue(self, rq, rec) -> None:
        """A READY entry was atomically dequeued for execution."""

    def rq_wakeup(self, rq, rec) -> None:
        """A blocked entry went back to READY."""

    def rq_complete(self, rq, rec, stale: bool = False) -> None:
        """An entry finished (``stale`` = it predates the last purge)."""

    def rq_purge(self, rq) -> None:
        """The queue is about to be wiped (village failure)."""

    # --- scheduling policies
    def rq_steal(self, village, rec) -> None:
        """``village`` stole a READY entry from a peer's queue."""

    def core_bypass(self, village, rec) -> None:
        """An arrival skipped the scheduler onto an idle core."""

    # --- NICs / ServiceMap
    def nic_dispatch(self, nic, service: str, village: int) -> None:
        """The ServiceMap picked ``village`` for ``service``."""

    def nic_reject(self, nic) -> None:
        """The top-level NIC overflow buffer rejected a request."""

    def nic_drop(self, nic) -> None:
        """A failed village NIC blackholed a message."""

    # --- on-package network
    def icn_send(self, net) -> None:
        """A routed message entered the ICN (multi-hop sends only)."""

    def icn_deliver(self, net) -> None:
        """A routed message reached its destination."""

    def icn_drop(self, net, in_flight: bool) -> None:
        """A message blackholed (``in_flight`` = after entering the ICN)."""

    # --- resources
    def resource_register(self, res) -> None:
        """A FIFO resource was created (for drain-time leak checks)."""

    def resource_event(self, res) -> None:
        """A resource started or finished a job."""

    # --- RPC / requests
    def message_created(self, msg) -> None:
        """An RPC :class:`~repro.net.rpc.Message` was allocated."""

    def request_created(self, rec) -> None:
        """A request record (root or child RPC) was created."""

    def ext_rejected(self, rec) -> None:
        """An external request was rejected (error response sent)."""

    # --- cluster roots
    def root_offered(self, n: int = 1) -> None:
        """``n`` client arrivals were scheduled (bulk increment: the
        arrival paths schedule whole vectorized batches at once)."""

    def root_done(self, kind: str) -> None:
        """A root request was answered (completed/rejected/failed)."""

    # --- datacenter tier (repro.dc)
    def lb_route(self, lb, server_id: int, active: bool) -> None:
        """The front-end LB routed one root request to ``server_id``."""

    def lb_scale(self, lb, action: str, server_id: int) -> None:
        """The autoscaler activated ("add") or drained a server."""

    # --- faults / compute
    def fault_applied(self, event, now_ns: float) -> None:
        """The injector applied a fault event."""

    def compute_segment(self, village, rec, duration_ns: float) -> None:
        """A compute segment was scheduled for ``duration_ns``."""

    # --- hybrid fast path (repro.hybrid)
    def hybrid_commit(self, service: str) -> None:
        """The controller committed ``service`` to analytic mode."""

    def hybrid_abort(self, reason: str) -> None:
        """The controller aborted back to detailed simulation."""

    def hybrid_elide_root(self) -> None:
        """A root request completed analytically (no per-event sim)."""

    def hybrid_elide_call(self, service: str) -> None:
        """A downstream RPC was answered analytically."""

    # --- lifecycle
    def finalize(self, sim=None, drained: bool = True) -> List[Violation]:
        """Run the drain-time balance checks; returns violations."""
        return []


#: Shared default instance; safe because NullCheckContext is stateless.
NULL_CHECK = NullCheckContext()


@dataclass
class _RqLedger:
    """Per-queue conservation counters (one per RequestQueue seen)."""

    rq: object
    admits: int = 0
    soft_admits: int = 0
    completes: int = 0
    stale_completes: int = 0
    purged: int = 0
    ops: int = 0


@dataclass
class _NetLedger:
    """Per-network ICN message conservation counters."""

    net: object
    sends: int = 0
    delivers: int = 0
    inflight_drops: int = 0
    noroute_drops: int = 0


@dataclass
class _ServiceLedger:
    """Per-service request conservation counters."""

    created: int = 0
    admits: int = 0
    completes: int = 0
    rejected: int = 0


@dataclass
class CheckStats:
    """How much checking happened (for ``repro validate`` reporting)."""

    checks: int = 0
    structural_scans: int = 0

    def as_dict(self) -> dict:
        return {"checks": self.checks,
                "structural_scans": self.structural_scans}


class CheckContext(NullCheckContext):
    """The live sanitizer for one simulation run.

    Args:
        strict: When True (default) :meth:`raise_if_violations` is
            expected to be called by the harness at drain — the
            cluster does this automatically.
        fail_fast: Raise :class:`CheckError` at the *first* violation
            instead of collecting (handy when debugging under pdb).
        sample_every: Run the O(occupancy) structural RQ scan every
            N-th queue operation per queue (cheap O(1) bounds checks
            run on every operation regardless).
    """

    enabled = True

    def __init__(self, strict: bool = True, fail_fast: bool = False,
                 sample_every: int = 256):
        self.strict = strict
        self.fail_fast = fail_fast
        self.sample_every = max(1, int(sample_every))
        self.violations: List[Violation] = []
        self.stats = CheckStats()
        self._last_now: float = float("-inf")
        self._rqs: Dict[int, _RqLedger] = {}
        self._nets: Dict[int, _NetLedger] = {}
        self._resources: List[object] = []
        self._services: Dict[str, _ServiceLedger] = {}
        self._roots_offered = 0
        self._roots_done: Dict[str, int] = {}
        self._faults_applied = 0
        self._msg_count = 0
        self._last_msg_id = -1
        self._nic_rejects = 0
        self._steals_seen = 0
        self._bypasses_seen = 0
        self._lb_routed: Dict[int, int] = {}
        self._lb_scales = 0
        self._hybrid_commits = 0
        self._hybrid_aborts = 0
        self._hybrid_roots_elided = 0
        self._hybrid_calls_elided = 0
        self._finalized = False

    # ------------------------------------------------------------ reporting

    def violation(self, category: str, message: str, where: str = "",
                  time_ns: Optional[float] = None) -> None:
        """Record one violation (raises immediately under ``fail_fast``)."""
        v = Violation(category, message, where, time_ns)
        self.violations.append(v)
        if self.fail_fast:
            raise CheckError(str(v))

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_violations(self) -> None:
        """Raise :class:`CheckError` listing every recorded violation."""
        if self.violations:
            lines = "\n".join(f"  - {v}" for v in self.violations)
            raise CheckError(
                f"{len(self.violations)} invariant violation(s) "
                f"after {self.stats.checks} checks:\n{lines}")

    def report(self) -> str:
        """One-line human summary of the run's checking."""
        if self.violations:
            return (f"FAIL: {len(self.violations)} violation(s) in "
                    f"{self.stats.checks} checks")
        return (f"ok: {self.stats.checks} checks, "
                f"{self.stats.structural_scans} structural scans, "
                f"0 violations")

    # --------------------------------------------------------------- engine

    def clock_advance(self, old_ns: float, new_ns: float) -> None:
        self.stats.checks += 1
        if new_ns < old_ns:
            self.violation(
                "clock", f"engine clock moved backwards: {old_ns} -> "
                f"{new_ns}", where="engine", time_ns=old_ns)
        self._last_now = max(self._last_now, new_ns)

    # -------------------------------------------------------- request queue

    def _ledger(self, rq) -> _RqLedger:
        led = self._rqs.get(id(rq))
        if led is None:
            led = self._rqs[id(rq)] = _RqLedger(rq)
        return led

    def _service(self, name: str) -> _ServiceLedger:
        led = self._services.get(name)
        if led is None:
            led = self._services[name] = _ServiceLedger()
        return led

    def _rq_now(self, rq) -> Optional[float]:
        clock = getattr(rq, "clock", None)
        return clock.now if clock is not None else None

    def _rq_cheap(self, rq, led: _RqLedger) -> None:
        """O(1) bounds checks run on every queue operation."""
        self.stats.checks += 1
        if not 0 <= rq.occupancy <= rq.capacity:
            self.violation(
                "rq-structure",
                f"occupancy {rq.occupancy} outside [0, {rq.capacity}]",
                where=rq.name, time_ns=self._rq_now(rq))
        if rq.soft_entries < 0:
            self.violation(
                "rq-structure", f"soft_entries negative "
                f"({rq.soft_entries})", where=rq.name,
                time_ns=self._rq_now(rq))
        led.ops += 1
        if led.ops % self.sample_every == 0:
            self._rq_structural(rq, full=rq.capacity <= 4096)

    def _rq_structural(self, rq, full: bool = True) -> None:
        """O(occupancy + heap) structural scan of one queue.

        ``full`` additionally walks the whole slot array (entries
        outside the live window must be None) — skipped on every
        sampled scan for DRAM-sized software queues.
        """
        from repro.core.request import RequestStatus

        self.stats.structural_scans += 1
        now = self._rq_now(rq)
        window = set()
        live = 0
        for offset in range(rq._size):
            idx = (rq._head + offset) % rq.capacity
            window.add(idx)
            entry = rq._slots[idx]
            if entry is None:
                self.violation(
                    "rq-structure", f"hole in live window at slot {idx}",
                    where=rq.name, time_ns=now)
                continue
            live += 1
            if not isinstance(entry.status, RequestStatus):
                self.violation(
                    "rq-structure", f"slot {idx} has invalid status "
                    f"{entry.status!r}", where=rq.name, time_ns=now)
        if live != rq._size:
            self.violation(
                "rq-structure", f"window holds {live} entries but "
                f"_size is {rq._size}", where=rq.name, time_ns=now)
        if full:
            for idx, entry in enumerate(rq._slots):
                if entry is not None and idx not in window:
                    self.violation(
                        "rq-structure",
                        f"slot {idx} occupied outside the live window "
                        f"(req {entry.req_id})", where=rq.name, time_ns=now)
        # Every READY slot entry must be reachable through the ready
        # heap, and every READY heap entry must point at a live slot
        # or soft entry of the current epoch (no ghosts).
        heap_ids = {id(r) for __, __id, r in rq._ready_heap}
        for offset in range(rq._size):
            entry = rq._slots[(rq._head + offset) % rq.capacity]
            if entry is not None and entry.status is RequestStatus.READY \
                    and id(entry) not in heap_ids:
                self.violation(
                    "rq-structure", f"READY entry {entry.req_id} missing "
                    f"from the ready heap", where=rq.name, time_ns=now)
        slot_ids = {id(e) for e in rq._slots if e is not None}
        for __, __id, entry in rq._ready_heap:
            if entry.status is not RequestStatus.READY:
                continue          # lazily-invalidated entry, fine
            if getattr(entry, "_rq_epoch", rq.epoch) != rq.epoch:
                self.violation(
                    "rq-structure", f"stale-epoch entry {entry.req_id} "
                    f"in the ready heap", where=rq.name, time_ns=now)
            elif not getattr(entry, "_rq_soft", False) \
                    and id(entry) not in slot_ids:
                self.violation(
                    "rq-structure", f"ghost READY heap entry "
                    f"{entry.req_id} holds no slot", where=rq.name,
                    time_ns=now)

    def rq_admit(self, rq, rec, soft: bool = False) -> None:
        led = self._ledger(rq)
        led.admits += 1
        if soft:
            led.soft_admits += 1
        self._service(rec.service).admits += 1
        self._rq_cheap(rq, led)

    def rq_dequeue(self, rq, rec) -> None:
        from repro.core.request import RequestStatus

        led = self._ledger(rq)
        self.stats.checks += 1
        if rec.status is not RequestStatus.RUNNING:
            self.violation(
                "rq-dispatch", f"dequeued entry {rec.req_id} not RUNNING "
                f"({rec.status})", where=rq.name, time_ns=self._rq_now(rq))
        if getattr(rec, "_rq_epoch", rq.epoch) != rq.epoch:
            self.violation(
                "rq-dispatch", f"dequeued stale-epoch entry {rec.req_id}",
                where=rq.name, time_ns=self._rq_now(rq))
        self._rq_cheap(rq, led)

    def rq_wakeup(self, rq, rec) -> None:
        self._rq_cheap(rq, self._ledger(rq))

    def rq_complete(self, rq, rec, stale: bool = False) -> None:
        led = self._ledger(rq)
        if stale:
            led.stale_completes += 1
        else:
            led.completes += 1
            self._service(rec.service).completes += 1
        self._rq_cheap(rq, led)

    def rq_purge(self, rq) -> None:
        """Called *before* the wipe: count the live entries being lost."""
        from repro.core.request import RequestStatus

        led = self._ledger(rq)
        dropped = rq.soft_entries
        for offset in range(rq._size):
            entry = rq._slots[(rq._head + offset) % rq.capacity]
            if entry is not None \
                    and entry.status is not RequestStatus.FINISHED:
                dropped += 1
        led.purged += dropped
        self._rq_cheap(rq, led)

    # -------------------------------------------------- scheduling policies

    def rq_steal(self, village, rec) -> None:
        self.stats.checks += 1
        self._steals_seen += 1
        from repro.core.request import RequestStatus

        if rec.status is not RequestStatus.RUNNING:
            self.violation(
                "steal", f"stolen entry {rec.req_id} not RUNNING "
                f"({rec.status})", where=village.name,
                time_ns=village.engine.now)
        if rec.village == village.village_id:
            self.violation(
                "steal", f"entry {rec.req_id} 'stolen' from its own "
                f"village", where=village.name, time_ns=village.engine.now)

    def core_bypass(self, village, rec) -> None:
        self.stats.checks += 1
        self._bypasses_seen += 1
        from repro.core.request import RequestStatus

        if rec.status is not RequestStatus.RUNNING:
            self.violation(
                "bypass", f"bypassed entry {rec.req_id} not RUNNING "
                f"({rec.status})", where=village.name,
                time_ns=village.engine.now)
        if rec.village != village.village_id:
            self.violation(
                "bypass", f"entry {rec.req_id} bypassed onto a foreign "
                f"village", where=village.name, time_ns=village.engine.now)

    # ----------------------------------------------------------------- NICs

    def nic_dispatch(self, nic, service: str, village: int) -> None:
        self.stats.checks += 1
        registered = nic._service_map.get(service, [])
        if village not in registered:
            self.violation(
                "servicemap", f"dispatched {service!r} to unregistered "
                f"village {village}", where=nic.name)
        if village in nic._down:
            self.violation(
                "servicemap", f"dispatched {service!r} to village "
                f"{village} marked down", where=nic.name)

    def nic_reject(self, nic) -> None:
        self.stats.checks += 1
        self._nic_rejects += 1
        if len(nic._buffer) > nic.buffer_capacity:
            self.violation(
                "nic-buffer", f"overflow buffer holds {len(nic._buffer)} "
                f"> capacity {nic.buffer_capacity}", where=nic.name)

    def nic_drop(self, nic) -> None:
        self.stats.checks += 1
        if not nic.failed:
            self.violation(
                "nic-drop", "healthy NIC dropped a message",
                where=nic.name)

    # ------------------------------------------------------------------ ICN

    def _net(self, net) -> _NetLedger:
        led = self._nets.get(id(net))
        if led is None:
            led = self._nets[id(net)] = _NetLedger(net)
        return led

    def icn_send(self, net) -> None:
        self.stats.checks += 1
        self._net(net).sends += 1

    def icn_deliver(self, net) -> None:
        self.stats.checks += 1
        self._net(net).delivers += 1

    def icn_drop(self, net, in_flight: bool) -> None:
        self.stats.checks += 1
        led = self._net(net)
        if in_flight:
            led.inflight_drops += 1
        else:
            led.noroute_drops += 1

    # ------------------------------------------------------------ resources

    def resource_register(self, res) -> None:
        self._resources.append(res)

    def resource_event(self, res) -> None:
        self.stats.checks += 1
        if not 0 <= res.busy <= res.capacity:
            self.violation(
                "resource", f"busy {res.busy} outside [0, {res.capacity}]",
                where=res.name, time_ns=res.engine.now)

    # --------------------------------------------------------------- RPC

    def message_created(self, msg) -> None:
        self.stats.checks += 1
        self._msg_count += 1
        if msg.size_bytes <= 0:
            self.violation("rpc", f"message {msg.msg_id} has non-positive "
                           f"size {msg.size_bytes}")
        if msg.msg_id is not None:
            if msg.msg_id <= self._last_msg_id:
                self.violation(
                    "rpc", f"message id {msg.msg_id} not monotonically "
                    f"increasing (last {self._last_msg_id})")
            self._last_msg_id = msg.msg_id

    def request_created(self, rec) -> None:
        self.stats.checks += 1
        self._service(rec.service).created += 1
        if rec.depth < 0 or not rec.segments:
            self.violation(
                "request", f"request {rec.req_id} malformed "
                f"(depth={rec.depth}, {len(rec.segments)} segments)")

    def ext_rejected(self, rec) -> None:
        self.stats.checks += 1
        self._service(rec.service).rejected += 1

    # ---------------------------------------------------------- root ledger

    def root_offered(self, n: int = 1) -> None:
        self._roots_offered += n

    def root_done(self, kind: str) -> None:
        self.stats.checks += 1
        self._roots_done[kind] = self._roots_done.get(kind, 0) + 1

    # ------------------------------------------------------- datacenter tier

    def lb_route(self, lb, server_id: int, active: bool) -> None:
        self.stats.checks += 1
        self._lb_routed[server_id] = self._lb_routed.get(server_id, 0) + 1
        if not active:
            self.violation(
                "lb-route", f"root routed to drained server {server_id}",
                where="lb")
        if not 0 <= server_id < lb.n_servers:
            self.violation(
                "lb-route", f"routed to out-of-range server {server_id}",
                where="lb")

    def lb_scale(self, lb, action: str, server_id: int) -> None:
        self.stats.checks += 1
        self._lb_scales += 1
        if action not in ("add", "drain"):
            self.violation(
                "lb-scale", f"unknown scale action {action!r}", where="lb")
        if not lb.active_ids:
            self.violation(
                "lb-scale", "scaling emptied the active server set",
                where="lb")

    # ------------------------------------------------------ hybrid fast path

    def hybrid_commit(self, service: str) -> None:
        self.stats.checks += 1
        self._hybrid_commits += 1

    def hybrid_abort(self, reason: str) -> None:
        self.stats.checks += 1
        self._hybrid_aborts += 1

    def hybrid_elide_root(self) -> None:
        self.stats.checks += 1
        self._hybrid_roots_elided += 1

    def hybrid_elide_call(self, service: str) -> None:
        self.stats.checks += 1
        self._hybrid_calls_elided += 1

    # --------------------------------------------------------------- faults

    def fault_applied(self, event, now_ns: float) -> None:
        self.stats.checks += 1
        self._faults_applied += 1
        if now_ns != event.time_ns:
            self.violation(
                "faults", f"{event.kind}/{event.action} applied at "
                f"{now_ns} but scheduled for {event.time_ns}",
                time_ns=now_ns)

    # -------------------------------------------------------------- compute

    def compute_segment(self, village, rec, duration_ns: float) -> None:
        self.stats.checks += 1
        if duration_ns < 0:
            self.violation(
                "compute", f"negative segment duration {duration_ns} "
                f"for request {rec.req_id}", where=village.name,
                time_ns=village.engine.now)

    # ------------------------------------------------------------- finalize

    def finalize(self, sim=None, drained: bool = True) -> List[Violation]:
        """Balance every ledger after the engine drained.

        Args:
            sim: The :class:`~repro.systems.cluster.ClusterSimulation`
                (enables the cross-layer root/service/span checks); the
                queue/resource/network ledgers balance without it.
            drained: False when the run was truncated (``max_events``)
                — drain-only balance checks are skipped then.

        Returns:
            The full violation list (also kept on ``self.violations``).
        """
        if self._finalized:
            return self.violations
        self._finalized = True
        from repro.core.request import RequestStatus

        purged_anywhere = False
        for led in self._rqs.values():
            rq = led.rq
            self._rq_structural(rq, full=True)
            purged_anywhere = purged_anywhere or led.purged > 0
            if not drained:
                continue
            live = rq.soft_entries
            for offset in range(rq._size):
                entry = rq._slots[(rq._head + offset) % rq.capacity]
                if entry is not None \
                        and entry.status is not RequestStatus.FINISHED:
                    live += 1
            balance = led.completes + led.purged + live
            if led.admits != balance:
                self.violation(
                    "conservation",
                    f"request ledger unbalanced: {led.admits} admitted != "
                    f"{led.completes} completed + {led.purged} purged + "
                    f"{live} live", where=rq.name)

        if drained:
            for res in self._resources:
                self.stats.checks += 1
                if res.busy != 0:
                    self.violation(
                        "resource-leak", f"{res.busy} job(s) never "
                        f"released at drain", where=res.name)
                if res.queue_length != 0:
                    self.violation(
                        "resource-leak", f"{res.queue_length} job(s) "
                        f"still queued at drain", where=res.name)
            for net_led in self._nets.values():
                self.stats.checks += 1
                if net_led.sends != net_led.delivers \
                        + net_led.inflight_drops:
                    self.violation(
                        "conservation",
                        f"ICN messages unbalanced: {net_led.sends} sent "
                        f"!= {net_led.delivers} delivered + "
                        f"{net_led.inflight_drops} dropped in flight",
                        where="icn")

        if sim is not None:
            self._finalize_sim(sim, drained, purged_anywhere)
        return self.violations

    def _finalize_sim(self, sim, drained: bool,
                      purged_anywhere: bool) -> None:
        """Cross-layer checks that need the assembled cluster."""
        faulted = getattr(sim, "faults", None) is not None
        if drained:
            completed = len(sim.recorder)
            answered = completed + sim.rejected + sim.failed
            self.stats.checks += 1
            if sim.offered != answered:
                self.violation(
                    "conservation",
                    f"root requests unbalanced: {sim.offered} offered != "
                    f"{completed} completed + {sim.rejected} rejected + "
                    f"{sim.failed} failed", where="cluster")
            if self._roots_offered != sim.offered:
                self.violation(
                    "conservation",
                    f"arrival hook count {self._roots_offered} != "
                    f"cluster offered counter {sim.offered}",
                    where="cluster")
            hook_done = sum(self._roots_done.values())
            if hook_done != answered:
                self.violation(
                    "conservation",
                    f"root completion hooks {hook_done} != cluster "
                    f"answered counters {answered}", where="cluster")
            for server in sim.servers:
                self.stats.checks += 1
                if server.top_nic.buffered != 0:
                    self.violation(
                        "conservation", f"{server.top_nic.buffered} "
                        f"request(s) stranded in the NIC overflow buffer",
                        where=server.top_nic.name)
        lb = getattr(sim, "lb", None)
        if lb is not None and drained:
            # LB conservation ledger: every arrival was routed exactly
            # once, the hook counts agree with the LB's own counters,
            # each server answered precisely what was routed to it (so
            # no request is lost across an autoscale drain), and no
            # root is still outstanding after the engine drained.
            self.stats.checks += 1
            hook_routed = sum(self._lb_routed.values())
            if hook_routed != sim.offered:
                self.violation(
                    "conservation", f"lb route hooks {hook_routed} != "
                    f"cluster offered counter {sim.offered}", where="lb")
            for sid in range(lb.n_servers):
                self.stats.checks += 1
                if self._lb_routed.get(sid, 0) != lb.routed[sid]:
                    self.violation(
                        "conservation",
                        f"server {sid}: lb routed counter "
                        f"{lb.routed[sid]} != route hooks seen "
                        f"{self._lb_routed.get(sid, 0)}", where="lb")
                answered = sim.server_answered[sid]
                if lb.routed[sid] != answered:
                    self.violation(
                        "conservation",
                        f"server {sid}: {lb.routed[sid]} roots routed != "
                        f"{answered} answered (request lost across a "
                        f"drain?)", where="lb")
                if lb.outstanding[sid] != 0:
                    self.violation(
                        "conservation",
                        f"server {sid}: {lb.outstanding[sid]} root(s) "
                        f"still outstanding at drain", where="lb")
            scaler = getattr(sim, "autoscaler", None)
            if scaler is not None:
                self.stats.checks += 1
                if len(scaler.events) != self._lb_scales:
                    self.violation(
                        "conservation",
                        f"autoscaler logged {len(scaler.events)} events "
                        f"but the checker saw {self._lb_scales}",
                        where="lb")
        hybrid = getattr(sim, "hybrid", None)
        if hybrid is not None:
            # Hybrid fast-path ledger: the controller's own counters and
            # the hook counts must agree, an elided completion exists for
            # every elided root (they feed the same recorder/root_done
            # paths, so the root ledger above already balances), and a
            # committed run under faults/autoscaling is forbidden.
            self.stats.checks += 1
            if hybrid.commits != self._hybrid_commits:
                self.violation(
                    "hybrid", f"controller committed {hybrid.commits} "
                    f"service(s) but the checker saw "
                    f"{self._hybrid_commits}", where="hybrid")
            if hybrid.aborts != self._hybrid_aborts:
                self.violation(
                    "hybrid", f"controller aborted {hybrid.aborts} "
                    f"time(s) but the checker saw {self._hybrid_aborts}",
                    where="hybrid")
            if hybrid.roots_elided != self._hybrid_roots_elided:
                self.violation(
                    "hybrid", f"controller elided {hybrid.roots_elided} "
                    f"root(s) but the checker saw "
                    f"{self._hybrid_roots_elided}", where="hybrid")
            if hybrid.calls_elided != self._hybrid_calls_elided:
                self.violation(
                    "hybrid", f"controller elided {hybrid.calls_elided} "
                    f"call(s) but the checker saw "
                    f"{self._hybrid_calls_elided}", where="hybrid")
            if hybrid.committed and (getattr(sim, "injector", None)
                                     is not None
                                     or getattr(sim, "autoscaler", None)
                                     is not None):
                self.violation(
                    "hybrid", "services still committed in a faulted/"
                    "autoscaled run (structural guard failed)",
                    where="hybrid")
        injector = getattr(sim, "injector", None)
        if injector is not None:
            self.stats.checks += 1
            if injector.injected != self._faults_applied:
                self.violation(
                    "faults", f"injector applied {injector.injected} "
                    f"events but the checker saw {self._faults_applied}")
        # Policy counters are increment-only: the village counters must
        # match the hook counts exactly, faulted or not.
        steals = sum(v.steals for s in sim.servers for v in s.villages)
        bypasses = sum(v.bypasses for s in sim.servers for v in s.villages)
        self.stats.checks += 2
        if steals != self._steals_seen:
            self.violation(
                "conservation", f"village steal counters {steals} != "
                f"steal hooks seen {self._steals_seen}", where="cluster")
        if bypasses != self._bypasses_seen:
            self.violation(
                "conservation", f"village bypass counters {bypasses} != "
                f"bypass hooks seen {self._bypasses_seen}", where="cluster")
        if drained and not faulted and not purged_anywhere:
            self._finalize_fault_free(sim)
        tracer = getattr(sim, "tracer", None)
        if tracer is not None and getattr(tracer, "enabled", False):
            from repro.check.spans import check_span_tree

            # Faulted runs legitimately strand blackholed roots open.
            for v in check_span_tree(tracer,
                                     require_closed=drained and not faulted,
                                     strict_nesting=not faulted):
                self.violation(v.category, v.message, v.where, v.time_ns)

    def _finalize_fault_free(self, sim) -> None:
        """Stricter balances that only hold without fault injection."""
        for name, led in sorted(self._services.items()):
            self.stats.checks += 1
            if led.created != led.admits + led.rejected:
                self.violation(
                    "conservation",
                    f"service {name!r}: {led.created} created != "
                    f"{led.admits} admitted + {led.rejected} rejected")
            if led.admits != led.completes:
                self.violation(
                    "conservation",
                    f"service {name!r}: {led.admits} admitted != "
                    f"{led.completes} completed at drain")
        total_completes = sum(led.completes for led in self._rqs.values())
        village_completed = sum(v.completed for s in sim.servers
                                for v in s.villages)
        self.stats.checks += 1
        if total_completes != village_completed:
            self.violation(
                "conservation",
                f"RQ complete count {total_completes} != village "
                f"completed counters {village_completed}")
        for server in sim.servers:
            for village in server.villages:
                for core in village.cores:
                    self.stats.checks += 1
                    if core.busy:
                        self.violation(
                            "core-leak", f"core {core.core_id} still "
                            f"busy at drain", where=village.name)
