"""Command-line interface.

Examples::

    python -m repro simulate --system umanycore --app Text --rps 15000
    python -m repro simulate --system umanycore --json
    python -m repro trace --system umanycore --app Text --rps 15000 \
        --out trace.json
    python -m repro faults --system umanycore --fail-village 3
    python -m repro sweep --systems umanycore,scaleout --apps Text \
        --loads 5000,10000,15000 --jobs 4
    python -m repro experiment fig14
    python -m repro experiment all --jobs 8
    python -m repro simulate --system umanycore --check
    python -m repro validate --trials 25 --seed 0
    python -m repro list

See docs/CLI.md for the full reference of every subcommand.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.systems.configs import SCALEOUT, SERVERCLASS, SERVERCLASS_128, \
    UMANYCORE
from repro.workloads.arrival import ARRIVAL_NAMES
from repro.workloads.deathstar import DEATHSTAR_APPS
from repro.workloads.synthetic import SYNTHETIC_DISTRIBUTIONS, synthetic_app

SYSTEMS = {
    "umanycore": UMANYCORE,
    "scaleout": SCALEOUT,
    "serverclass": SERVERCLASS,
    "serverclass128": SERVERCLASS_128,
}

EXPERIMENTS = [
    "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "figD", "figF", "figH", "figS", "figW", "sec68", "power", "all",
]


def _resolve_app(name: str):
    if name in DEATHSTAR_APPS:
        return DEATHSTAR_APPS[name]
    if name in SYNTHETIC_DISTRIBUTIONS:
        return synthetic_app(name)
    raise SystemExit(f"unknown app {name!r}; pick one of "
                     f"{sorted(DEATHSTAR_APPS)} or "
                     f"{list(SYNTHETIC_DISTRIBUTIONS)}")


def _resolve_arrivals(args):
    """Arrival process from the flags: ``--trace-in`` (a CSV/JSON path,
    or ``sample`` for the bundled Alibaba-marginal trace) wins over the
    named ``--arrivals`` profile."""
    trace_in = getattr(args, "trace_in", None)
    if trace_in:
        from repro.workloads.replay import resolve_trace

        try:
            return resolve_trace(trace_in)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"--trace-in: {exc}")
    return args.arrivals


def _fault_setup(args, sim):
    """Translate the fault CLI flags into (schedule, resilience)."""
    from repro.faults import FaultSchedule, ResilienceConfig, \
        fault_inventory, merge

    at_ns = args.fault_at_ms * 1e6
    rec_ns = args.recover_at_ms * 1e6 \
        if args.recover_at_ms is not None else None
    servers = range(sim.n_servers) if args.fault_server < 0 \
        else [args.fault_server]
    sched = FaultSchedule(detection_ns=args.detection_us * 1e3)
    for v in args.fail_village:
        for s in servers:
            sched.fail_village(s, v, at_ns, rec_ns)
    for spec in args.fail_link:
        try:
            u, v = (part.strip() for part in spec.split(","))
        except ValueError:
            raise SystemExit(f"--fail-link wants U,V node names, got {spec!r}")
        for s in servers:
            sched.fail_link(s, u, v, at_ns, rec_ns)
    for spec in args.fail_nic:
        try:
            v, which = spec.split(":")
        except ValueError:
            raise SystemExit(f"--fail-nic wants V:lnic|rnic, got {spec!r}")
        for s in servers:
            sched.fail_nic(s, int(v), which, at_ns, rec_ns)
    for spec in args.degrade_village:
        try:
            v, factor = spec.split(":")
        except ValueError:
            raise SystemExit(
                f"--degrade-village wants V:FACTOR, got {spec!r}")
        for s in servers:
            sched.degrade_village(s, int(v), at_ns, float(factor), rec_ns)
    if args.fault_rate > 0:
        inv = fault_inventory(sim.servers)
        sched = merge([sched, FaultSchedule.random(
            seed=args.seed, duration_ns=args.duration * 1e9,
            rate_per_s=args.fault_rate,
            detection_ns=args.detection_us * 1e3, **inv)])
    resilience = None
    if sched or args.hedge_us > 0 or args.timeout_us is not None:
        resilience = ResilienceConfig(
            timeout_ns=(args.timeout_us or 2_000.0) * 1e3,
            max_retries=args.retries,
            hedge_delay_ns=args.hedge_us * 1e3)
    return sched, resilience


def _dc_setup(args):
    """Translate the dc CLI flags into a DcConfig (None = dc tier off).

    The tier only switches on when at least one dc flag was given (or
    the command forces it via ``dc_default``), so plain runs keep the
    classic per-server arrival path byte-for-byte.
    """
    lb = getattr(args, "lb", None)
    placement = getattr(args, "placement", None)
    autoscale = getattr(args, "autoscale", False)
    if lb is None and placement is None and not autoscale \
            and not getattr(args, "dc_default", False):
        return None
    from repro.dc import DcConfig

    return DcConfig(lb=lb or "rr",
                    lb_latency_ns=getattr(args, "lb_latency_us", 0.0) * 1e3,
                    replication=placement or 0,
                    autoscale=autoscale,
                    min_servers=getattr(args, "min_servers", 1))


def _hybrid_setup(args):
    """Translate the hybrid CLI flags into a HybridConfig (None = off).

    The fast path only arms when ``--hybrid`` was given, so plain runs
    keep the fully detailed event path byte-for-byte.
    """
    if not getattr(args, "hybrid", False):
        return None
    from repro.hybrid import HybridConfig

    return HybridConfig(tol=args.hybrid_tol)


def _policy_overrides(args) -> dict:
    """Translate the scheduling flags into SystemConfig field overrides.

    Flags left at their defaults contribute nothing, so a run without
    them uses the configs untouched (byte-identical to before the
    policy layer existed)."""
    kw = {}
    if getattr(args, "dispatch", None) is not None:
        kw["dispatch"] = args.dispatch
    if getattr(args, "rq_policy", None) is not None:
        kw["rq_policy"] = args.rq_policy
    steal = getattr(args, "steal", None)
    if steal is not None:
        kw["work_steal"] = steal != "off"
        if steal != "off":
            kw["steal_policy"] = steal
    if getattr(args, "core_bypass", False):
        kw["core_bypass"] = True
    return kw


def _apply_policy_overrides(config, args):
    from dataclasses import replace

    kw = _policy_overrides(args)
    return replace(config, **kw) if kw else config


def _run_simulation(args, tracer=None, metrics_interval_ns=None):
    from repro.systems.cluster import ClusterSimulation

    config = _apply_policy_overrides(SYSTEMS[args.system], args)
    app = _resolve_app(args.app)
    check = None
    if getattr(args, "check", False):
        from repro.check import CheckContext

        check = CheckContext(strict=True)
    sim = ClusterSimulation(config, app, rps_per_server=args.rps,
                            n_servers=args.servers, duration_s=args.duration,
                            seed=args.seed, arrivals=_resolve_arrivals(args),
                            tracer=tracer,
                            metrics_interval_ns=metrics_interval_ns,
                            check=check, dc=_dc_setup(args),
                            hybrid=_hybrid_setup(args))
    schedule, resilience = _fault_setup(args, sim)
    if schedule or resilience is not None:
        sim.install_faults(schedule, resilience)
        if getattr(args, "describe_faults", False) and not args.json:
            print(schedule.describe())
    result = sim.run()
    if check is not None:
        print(f"check      : {check.stats.checks} invariant checks, "
              f"{len(check.violations)} violations", file=sys.stderr)
    return result


def _print_summary(result, json_mode: bool) -> None:
    if json_mode:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        return
    s = result.summary
    print(f"system     : {result.system}")
    print(f"app        : {result.app}")
    print(f"load       : {result.rps_per_server:.0f} RPS/server x "
          f"{result.n_servers} servers")
    print(f"completed  : {result.completed} (rejected {result.rejected})")
    print(f"mean       : {s.mean / 1e3:.1f} us")
    print(f"P50 / P99  : {s.p50 / 1e3:.1f} / {s.p99 / 1e3:.1f} us")
    print(f"tail/avg   : {s.tail_to_average:.2f}")
    if result.fault_stats is not None:
        fs = result.fault_stats
        print(f"failed     : {result.failed} "
              f"(availability {result.availability:.4f}, "
              f"goodput {result.goodput_rps:.0f} RPS)")
        print(f"resilience : {int(fs['rpc_timeouts'])} timeouts, "
              f"{int(fs['rpc_retries'])} retries, "
              f"{int(fs['rpc_hedges'])} hedges, "
              f"{int(fs['blackholed'])} blackholed, "
              f"{int(fs['icn_dropped'])}/{int(fs['nic_dropped'])} "
              f"icn/nic drops")
    if result.hybrid_stats is not None:
        hs = result.hybrid_stats
        committed = ", ".join(hs["services_committed"]) or "-"
        at = (f" @{hs['committed_at_ns'] / 1e6:.1f} ms"
              if hs["committed_at_ns"] is not None else "")
        print(f"hybrid     : state={hs['state']}{at}, "
              f"committed=[{committed}], "
              f"{hs['roots_elided']} roots / {hs['calls_elided']} calls "
              f"elided (~{hs['events_elided']} events), "
              f"{hs['aborts']} aborts")
    if result.dc_stats is not None:
        dcs = result.dc_stats
        extra = ""
        if dcs.get("scale_events") is not None:
            extra = (f", {dcs['scale_ups']} scale-ups / "
                     f"{dcs['scale_downs']} scale-downs")
        print(f"dc         : lb={dcs['lb']} routed={dcs['routed']}, "
              f"{dcs['proxied']} proxied RPCs{extra}")
        print(f"pooled p99 : {dcs['pooled']['p99'] / 1e3:.1f} us over "
              f"{dcs['pooled']['count']} pooled samples")
    bd = result.breakdown()
    if bd is not None:
        from repro.telemetry import format_breakdown

        print(format_breakdown(bd))


def cmd_simulate(args) -> None:
    """Run one cluster simulation and print its summary."""
    tracer = None
    if args.trace_out:
        from repro.telemetry import Tracer

        tracer = Tracer()
    result = _run_simulation(args, tracer=tracer)
    if args.trace_out:
        from repro.telemetry import write_chrome_trace

        n_events = write_chrome_trace(tracer, args.trace_out)
        if not args.json:
            print(f"trace      : {args.trace_out} ({n_events} spans)")
    _print_summary(result, args.json)


def cmd_trace(args) -> None:
    """One traced run: Chrome trace export + span-derived breakdown."""
    from repro.telemetry import Tracer, write_chrome_trace, write_spans_csv

    tracer = Tracer()
    interval = args.metrics_interval_us * 1000.0 \
        if args.metrics_interval_us > 0 else None
    result = _run_simulation(args, tracer=tracer,
                             metrics_interval_ns=interval)
    n_events = write_chrome_trace(tracer, args.out)
    if args.csv_out:
        write_spans_csv(tracer, args.csv_out)
    if args.json:
        _print_summary(result, True)
        return
    print(f"wrote {args.out}: {n_events} spans, "
          f"{len(tracer.requests)} requests "
          f"(open in https://ui.perfetto.dev)")
    if args.csv_out:
        print(f"wrote {args.csv_out}")
    _print_summary(result, False)


def cmd_profile(args) -> None:
    """Profile one simulation under cProfile and print the hot functions.

    The simulated run is the one ``repro simulate`` would do (same
    seeds, same event order — cProfile only adds interpreter overhead,
    it never perturbs virtual time).  Prints a table of the hottest
    functions sorted by ``--sort``; ``--out`` additionally dumps the
    raw pstats data for offline digging (``python -m pstats FILE`` or
    snakeviz).  docs/PERFORMANCE.md walks through reading the output.
    """
    import cProfile
    import pstats

    prof = cProfile.Profile()
    prof.enable()
    result = _run_simulation(args)
    prof.disable()
    if args.out:
        prof.dump_stats(args.out)
    # With --json keep stdout machine-readable: table goes to stderr.
    stream = sys.stderr if args.json else sys.stdout
    stats = pstats.Stats(prof, stream=stream)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        print(f"profile    : wrote {args.out}", file=stream)
    _print_summary(result, args.json)


def cmd_faults(args) -> None:
    """Fault-injection run + resilience report.

    With no explicit targets this draws a random schedule over the whole
    component inventory at ``--fault-rate`` failures/s.
    """
    result = _run_simulation(args)
    _print_summary(result, args.json)
    if args.json or result.fault_stats is None:
        return
    inj = result.fault_stats.get("injected")
    if inj:
        kinds = ", ".join(f"{k}={v}"
                          for k, v in sorted(inj["by_kind"].items()))
        print(f"injected   : {inj['injected']}/{inj['scheduled']} events"
              + (f" ({kinds})" if kinds else ""))


def cmd_dc(args) -> None:
    """Datacenter-tier run: front-end LB + placement + autoscaling.

    Always runs with the dc tier on (``--lb`` defaults to rr) and
    reports the per-server routing/latency table, cross-server RPC
    proxying, and any autoscale events.
    """
    from repro.experiments.common import format_table

    args.dc_default = True
    result = _run_simulation(args)
    _print_summary(result, args.json)
    if args.json:
        return
    dcs = result.dc_stats
    rows = []
    for entry in dcs["per_server"]:
        rows.append([
            entry["server"], entry["routed"], entry["answered"],
            entry["completed"],
            f"{entry['p50_ns'] / 1e3:.1f}" if "p50_ns" in entry else "-",
            f"{entry['p99_ns'] / 1e3:.1f}" if "p99_ns" in entry else "-",
        ])
    print("\nper-server routing (lb=" + dcs["lb"]
          + (f", replication={dcs['replication']}" if dcs["replication"]
             else "") + "):")
    print(format_table(
        ["server", "routed", "answered", "completed", "p50 us", "p99 us"],
        rows))
    if dcs.get("spills") is not None:
        print(f"affinity spills: {dcs['spills']}")
    for ev in dcs.get("scale_events", []):
        print(f"  t={ev['time_ns'] / 1e6:7.2f} ms  {ev['action']:5s} "
              f"server {ev['server']} (mean util "
              f"{ev['mean_util']:.2f})")


def cmd_sweep(args) -> None:
    """Run a custom (systems x apps x loads x seeds) grid.

    Points run through :mod:`repro.runner`: ``--jobs N`` fans them over
    worker processes, completed points land in the on-disk result cache
    (unless ``--no-cache``), and per-point progress goes to stderr so
    stdout stays a clean table (or JSON with ``--json``).
    """
    from repro.experiments.common import format_table
    from repro.runner import ResultCache, SweepSpec, run_points

    spec = SweepSpec(
        configs=tuple(_apply_policy_overrides(SYSTEMS[s.strip()], args)
                      for s in args.systems.split(",")),
        apps=tuple(_resolve_app(a.strip()) for a in args.apps.split(",")),
        loads=tuple(float(x) for x in args.loads.split(",")),
        seeds=tuple(int(x) for x in args.seeds.split(",")),
        n_servers=args.servers, duration_s=args.duration,
        arrivals=_resolve_arrivals(args), dc=_dc_setup(args),
        hybrid=_hybrid_setup(args))
    points = spec.points()
    cache = None if args.no_cache or args.check else ResultCache()
    width = len(str(len(points)))

    def progress(event: dict) -> None:
        source = (f"worker {event['worker']}, {event['seconds']:.1f}s"
                  if event["source"] == "run" else event["source"])
        print(f"  [{event['index'] + 1:>{width}}/{event['total']}] "
              f"{event['label']:36s} ({source})",
              file=sys.stderr, flush=True)

    results = run_points(points, jobs=args.jobs, cache=cache,
                         progress=progress, memo=False, check=args.check)
    if args.json:
        print(json.dumps([r.as_dict() for r in results], indent=2,
                         sort_keys=True))
    else:
        rows = [[p.config.name, p.app.name, f"{p.rps:g}", p.seed,
                 f"{r.mean_ns / 1e3:.1f}", f"{r.p99_ns / 1e3:.1f}",
                 f"{r.summary.p999 / 1e3:.1f}",
                 f"{r.summary.tail_to_average:.2f}",
                 r.completed, r.rejected]
                for p, r in zip(points, results)]
        print(format_table(
            ["system", "app", "rps", "seed", "mean us", "p99 us",
             "p999 us", "tail/avg", "completed", "rejected"], rows))
    if cache is not None:
        s = cache.stats()
        print(f"cache: {s['hits']} hits, {s['misses']} misses "
              f"({s['dir']})", file=sys.stderr)


def cmd_experiment(args) -> None:
    """Regenerate one paper figure (or, with ``all``, every table)."""
    import importlib

    mapping = {
        "fig01": "fig01_microarch", "fig02": "fig02_rps_cdf",
        "fig03": "fig03_queues", "fig04": "fig04_cpu_util",
        "fig05": "fig05_rpc_count", "fig06": "fig06_context_switch",
        "fig07": "fig07_icn_contention", "fig08": "fig08_footprint",
        "fig09": "fig09_hit_rates", "fig14": "fig14_tail_latency",
        "fig15": "fig15_breakdown", "fig16": "fig16_avg_latency",
        "fig17": "fig17_tail_to_avg", "fig18": "fig18_throughput",
        "fig19": "fig19_sensitivity", "fig20": "fig20_synthetic",
        "figD": "figD_datacenter", "figF": "figF_faults",
        "figH": "figH_hybrid", "figS": "figS_policies",
        "figW": "figW_scenarios",
        "sec68": "sec68_iso_area", "power": "power_area",
        "all": "run_all",
    }
    overrides = _policy_overrides(args)
    if overrides:
        from repro.experiments.common import set_policy_overrides

        set_policy_overrides(**overrides)
    hybrid = _hybrid_setup(args)
    if hybrid is not None:
        from repro.experiments.common import set_hybrid_override

        set_hybrid_override(hybrid)
    module = importlib.import_module(f"repro.experiments.{mapping[args.id]}")
    if args.id == "all":
        module.main(jobs=args.jobs, use_cache=not args.no_cache,
                    check=args.check, quick=args.quick)
        return
    kwargs = {}
    if args.quick:
        import inspect

        if "settings" not in inspect.signature(module.main).parameters:
            raise SystemExit(f"--quick is not supported by {args.id}")
        from repro.experiments.common import Settings

        kwargs["settings"] = Settings(n_servers=1, duration_s=0.02)
    from repro.runner import ResultCache, executing

    cache = None if args.no_cache or args.check else ResultCache()
    with executing(jobs=args.jobs, cache=cache, check=args.check):
        module.main(**kwargs)


def cmd_validate(args) -> None:
    """Property-based invariant validation (see :mod:`repro.check`).

    Draws ``--trials`` randomized simulations (system, app, load,
    arrival process, optional random fault schedule — all from
    ``--seed``), runs each under the sanitizer, and shrinks any failing
    trial to a minimal reproducible configuration.  Exits 1 if any
    trial violates an invariant.
    """
    from repro.check.harness import fuzz, shrink

    total = args.trials

    def progress(i: int, trial, check) -> None:
        status = "ok" if check.ok else f"{len(check.violations)} VIOLATIONS"
        print(f"  [{i + 1:>3}/{total}] {trial.describe():72s} {status}",
              file=sys.stderr, flush=True)

    failures = fuzz(trials=args.trials, seed=args.seed,
                    fault_fraction=args.fault_fraction, progress=progress)
    if not failures:
        print(f"validate: {args.trials} trials, 0 violations "
              f"(seed {args.seed})")
        return
    print(f"validate: {len(failures)}/{args.trials} trials FAILED "
          f"(seed {args.seed})")
    for trial, check in failures:
        print(f"\ntrial {trial.describe()}:")
        for v in check.violations[:20]:
            print(f"  {v}")
        if len(check.violations) > 20:
            print(f"  ... and {len(check.violations) - 20} more")
        if not args.no_shrink:
            small = shrink(trial)
            print(f"  shrunk to: {small.describe()}")
            print("  reproduce: run_trial(<that trial>) in "
                  "repro.check.harness")
    raise SystemExit(1)


def cmd_list(args) -> None:
    """List the available systems, apps and experiments."""
    print("systems:")
    for key, cfg in SYSTEMS.items():
        print(f"  {key:15s} {cfg.n_cores} cores, {cfg.topology}, "
              f"{cfg.cs.name} scheduling")
    print("\napps:")
    for name, app in DEATHSTAR_APPS.items():
        print(f"  {name:10s} root={app.root}, "
              f"{app.mean_rpc_count():.0f} RPCs/request")
    print(f"  + synthetic: {', '.join(SYNTHETIC_DISTRIBUTIONS)}")
    print("\narrival processes (repro.workloads.arrival):")
    print(f"  --arrivals : {', '.join(ARRIVAL_NAMES)}")
    print("  --trace-in FILE|sample  (CSV/JSON trace replay)")
    from repro.sched import DISPATCH_NAMES, POLICY_NAMES, STEAL_NAMES

    print("\nscheduling policies (repro.sched):")
    print(f"  --dispatch : {', '.join(DISPATCH_NAMES)}")
    print(f"  --rq-policy: {', '.join(POLICY_NAMES)}")
    print(f"  --steal    : off, {', '.join(STEAL_NAMES)}")
    print("  --core-bypass")
    from repro.dc import LB_NAMES

    print("\ndatacenter tier (repro.dc):")
    print(f"  --lb       : {', '.join(LB_NAMES)}")
    print("  --placement K / --autoscale / --min-servers N")
    print("\nhybrid fast path (repro.hybrid):")
    print("  --hybrid / --hybrid-tol T  (0 = byte-identical to detailed)")
    print("\nexperiments:", ", ".join(EXPERIMENTS))


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro`` argument parser (all subcommands)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="uManycore reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_args(p) -> None:
        p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
        p.add_argument("--app", default="Text")
        p.add_argument("--rps", type=float, default=15_000)
        p.add_argument("--servers", type=int, default=2)
        p.add_argument("--duration", type=float, default=0.03,
                       help="simulated seconds")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--arrivals", choices=ARRIVAL_NAMES,
                       default="poisson",
                       help="arrival process (rate profile; default "
                            "poisson)")
        p.add_argument("--trace-in", dest="trace_in", metavar="FILE",
                       default=None,
                       help="replay arrivals from a CSV/JSON trace "
                            "('sample' = the bundled Alibaba-marginal "
                            "trace); overrides --arrivals")
        p.add_argument("--json", action="store_true",
                       help="print the run summary as JSON")
        p.add_argument("--check", action="store_true",
                       help="run under the invariant sanitizer "
                            "(repro.check); any violation aborts the run")

    def add_policy_args(p) -> None:
        from repro.sched import DISPATCH_NAMES, POLICY_NAMES, STEAL_NAMES

        g = p.add_argument_group(
            "scheduling", "pluggable policy layer (repro.sched); the "
                          "defaults reproduce the paper's hardware")
        g.add_argument("--dispatch", choices=DISPATCH_NAMES, default=None,
                       help="NIC-to-village dispatch policy (default rr)")
        g.add_argument("--rq-policy", dest="rq_policy",
                       choices=POLICY_NAMES, default=None,
                       help="intra-village dequeue order (default fcfs)")
        g.add_argument("--steal", choices=("off",) + STEAL_NAMES,
                       default=None,
                       help="inter-village work stealing: off or a "
                            "victim-selection policy (default off)")
        g.add_argument("--core-bypass", action="store_true",
                       help="nanoPU-style fast path: arrivals land "
                            "straight on an idle core when possible")

    def add_dc_args(p) -> None:
        from repro.dc import LB_NAMES

        g = p.add_argument_group(
            "datacenter", "front-end LB / placement / autoscaling "
                          "(repro.dc); any of these switches the dc "
                          "tier on")
        g.add_argument("--lb", choices=LB_NAMES, default=None,
                       help="front-end load-balancing policy "
                            "(default rr once the tier is on)")
        g.add_argument("--lb-latency-us", dest="lb_latency_us",
                       type=float, default=0.0,
                       help="one-way LB-to-server routing latency")
        g.add_argument("--placement", type=int, default=None, metavar="K",
                       help="replicate each non-root service on K "
                            "servers (leaf RPCs proxy cross-server; "
                            "0 = every service everywhere)")
        g.add_argument("--autoscale", action="store_true",
                       help="reactive utilization-driven server "
                            "add/drain")
        g.add_argument("--min-servers", dest="min_servers", type=int,
                       default=1, metavar="N",
                       help="autoscale floor (default 1)")

    def add_hybrid_args(p) -> None:
        g = p.add_argument_group(
            "hybrid", "analytic steady-state fast path (repro.hybrid); "
                      "detailed simulation until convergence, then "
                      "calibrated empirical models answer completions, "
                      "guarded by drift/fault predicates")
        g.add_argument("--hybrid", action="store_true",
                       help="arm the fast path (off = fully detailed)")
        g.add_argument("--hybrid-tol", dest="hybrid_tol", type=float,
                       default=0.2, metavar="T",
                       help="steady-state tolerance (relative; 0 never "
                            "converges, i.e. byte-identical to "
                            "detailed; default 0.2)")

    def add_fault_args(p, default_rate: float = 0.0) -> None:
        g = p.add_argument_group(
            "faults", "deterministic fault injection (repro.faults); any "
                      "of these arms the timeout/retry resilience layer")
        g.add_argument("--fail-village", type=int, action="append",
                       default=[], metavar="V",
                       help="fail village V (repeatable)")
        g.add_argument("--fail-link", action="append", default=[],
                       metavar="U,V",
                       help="fail the ICN link between nodes U and V, "
                            "e.g. 'leaf0:0,spine0:0' (repeatable)")
        g.add_argument("--fail-nic", action="append", default=[],
                       metavar="V:lnic|rnic",
                       help="fail village V's local or remote NIC")
        g.add_argument("--degrade-village", action="append", default=[],
                       metavar="V:FACTOR",
                       help="gray failure: run village V FACTORx slower")
        g.add_argument("--fault-at-ms", type=float, default=0.0,
                       help="when the explicit faults strike (sim ms)")
        g.add_argument("--recover-at-ms", type=float, default=None,
                       help="when they recover (default: never)")
        g.add_argument("--fault-server", type=int, default=-1,
                       metavar="S",
                       help="server the explicit faults hit (-1 = all)")
        g.add_argument("--fault-rate", type=float, default=default_rate,
                       help="also draw a random schedule at this many "
                            "failures/s over the whole inventory "
                            f"(0 disables; default {default_rate:g})")
        g.add_argument("--detection-us", type=float, default=100.0,
                       help="ServiceMap health-check detection lag")
        g.add_argument("--timeout-us", type=float, default=None,
                       help="per-attempt RPC timeout (default 2000)")
        g.add_argument("--retries", type=int, default=3,
                       help="max RPC retries after the first attempt")
        g.add_argument("--hedge-us", type=float, default=0.0,
                       help="send a hedged duplicate RPC after this "
                            "delay (0 disables hedging)")

    sim = sub.add_parser("simulate", help="run one cluster simulation")
    add_run_args(sim)
    add_policy_args(sim)
    add_dc_args(sim)
    add_hybrid_args(sim)
    add_fault_args(sim)
    sim.add_argument("--trace-out", metavar="FILE", default=None,
                     help="also trace the run and write a Chrome "
                          "trace-event file")
    sim.set_defaults(func=cmd_simulate)

    tr = sub.add_parser(
        "trace", help="run one traced simulation and export the spans")
    add_run_args(tr)
    add_policy_args(tr)
    add_dc_args(tr)
    add_hybrid_args(tr)
    add_fault_args(tr)
    tr.add_argument("--out", required=True, metavar="FILE",
                    help="Chrome trace-event JSON output path "
                         "(Perfetto / chrome://tracing)")
    tr.add_argument("--csv-out", metavar="FILE", default=None,
                    help="also dump the flat span table as CSV")
    tr.add_argument("--metrics-interval-us", type=float, default=10.0,
                    help="gauge sampling period in simulated us "
                         "(0 disables sampling)")
    tr.set_defaults(func=cmd_trace)

    prf = sub.add_parser(
        "profile",
        help="profile one simulation under cProfile (hot-function table)")
    add_run_args(prf)
    add_policy_args(prf)
    add_dc_args(prf)
    add_hybrid_args(prf)
    add_fault_args(prf)
    prf.add_argument("--top", type=int, default=25, metavar="N",
                     help="rows of the hot-function table (default 25)")
    prf.add_argument("--sort", choices=("tottime", "cumtime", "calls"),
                     default="tottime",
                     help="stat to rank functions by (default tottime: "
                          "self time, the optimization signal)")
    prf.add_argument("--out", metavar="FILE", default=None,
                     help="also dump raw pstats data for offline "
                          "analysis (python -m pstats FILE)")
    prf.set_defaults(func=cmd_profile)

    flt = sub.add_parser(
        "faults", help="run a fault-injection experiment and report "
                       "availability, goodput and resilience counters")
    add_run_args(flt)
    add_policy_args(flt)
    add_dc_args(flt)
    add_hybrid_args(flt)
    add_fault_args(flt, default_rate=200.0)
    flt.add_argument("--quiet-schedule", dest="describe_faults",
                     action="store_false", default=True,
                     help="suppress the fault-schedule listing")
    flt.set_defaults(func=cmd_faults)

    swp = sub.add_parser(
        "sweep", help="run a custom simulation grid, in parallel and "
                      "cached (repro.runner)")
    swp.add_argument("--systems", default="umanycore,scaleout,serverclass",
                     help="comma-separated system list "
                          f"(from {', '.join(sorted(SYSTEMS))})")
    swp.add_argument("--apps", default="Text",
                     help="comma-separated app list (SocialNetwork "
                          "request types or synthetic distributions)")
    swp.add_argument("--loads", default="5000,10000,15000",
                     help="comma-separated RPS-per-server levels")
    swp.add_argument("--seeds", default="1",
                     help="comma-separated seeds (one run per seed)")
    swp.add_argument("--servers", type=int, default=2)
    swp.add_argument("--duration", type=float, default=0.03,
                     help="simulated seconds per point")
    swp.add_argument("--arrivals", choices=ARRIVAL_NAMES,
                     default="poisson",
                     help="arrival process (rate profile; default "
                          "poisson)")
    swp.add_argument("--trace-in", dest="trace_in", metavar="FILE",
                     default=None,
                     help="replay arrivals from a CSV/JSON trace "
                          "('sample' = the bundled Alibaba-marginal "
                          "trace); overrides --arrivals")
    swp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes (default 1; results are "
                          "identical for any N)")
    swp.add_argument("--no-cache", action="store_true",
                     help="skip the on-disk result cache")
    swp.add_argument("--check", action="store_true",
                     help="run every point under the invariant sanitizer "
                          "(implies --no-cache; violations abort)")
    swp.add_argument("--json", action="store_true",
                     help="print the results as a JSON array")
    add_policy_args(swp)
    add_dc_args(swp)
    add_hybrid_args(swp)
    swp.set_defaults(func=cmd_sweep)

    dcp = sub.add_parser(
        "dc", help="datacenter-tier run: front-end LB, service "
                   "placement and autoscaling over the cluster "
                   "(repro.dc)")
    add_run_args(dcp)
    add_policy_args(dcp)
    add_dc_args(dcp)
    add_hybrid_args(dcp)
    add_fault_args(dcp)
    dcp.set_defaults(func=cmd_dc)

    exp = sub.add_parser(
        "experiment",
        help="regenerate a paper figure table ('all' runs every one)")
    exp.add_argument("id", choices=EXPERIMENTS)
    exp.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for the figure's sweeps "
                          "(default 1; tables are identical for any N)")
    exp.add_argument("--no-cache", action="store_true",
                     help="skip the on-disk result cache")
    exp.add_argument("--check", action="store_true",
                     help="run every simulation point under the "
                          "invariant sanitizer (implies --no-cache)")
    exp.add_argument("--quick", action="store_true",
                     help="reduced scales — smoke-test the figure "
                          "('all' and the settings-aware figures)")
    add_policy_args(exp)
    add_hybrid_args(exp)
    exp.set_defaults(func=cmd_experiment)

    val = sub.add_parser(
        "validate",
        help="property-based invariant validation (repro.check): fuzz "
             "randomized workload/fault/seed trials and shrink any "
             "failure to a minimal reproducible one")
    val.add_argument("--trials", type=int, default=25, metavar="N",
                     help="number of randomized trials (default 25)")
    val.add_argument("--seed", type=int, default=0,
                     help="master seed of the trial generator; the same "
                          "seed always draws the same trials")
    val.add_argument("--fault-fraction", type=float, default=0.5,
                     help="fraction of trials that inject a random "
                          "fault schedule (default 0.5)")
    val.add_argument("--no-shrink", action="store_true",
                     help="report failures without minimizing them")
    val.set_defaults(func=cmd_validate)

    lst = sub.add_parser("list", help="list systems, apps, experiments")
    lst.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> None:
    """CLI entry point: parse ``argv`` and dispatch."""
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
