"""Command-line interface.

Examples::

    python -m repro simulate --system umanycore --app Text --rps 15000
    python -m repro simulate --system umanycore --json
    python -m repro trace --system umanycore --app Text --rps 15000 \
        --out trace.json
    python -m repro experiment fig14
    python -m repro list
"""

from __future__ import annotations

import argparse
import json
from typing import List, Optional

from repro.systems.configs import SCALEOUT, SERVERCLASS, SERVERCLASS_128, \
    UMANYCORE
from repro.workloads.deathstar import SOCIAL_NETWORK_APPS
from repro.workloads.synthetic import SYNTHETIC_DISTRIBUTIONS, synthetic_app

SYSTEMS = {
    "umanycore": UMANYCORE,
    "scaleout": SCALEOUT,
    "serverclass": SERVERCLASS,
    "serverclass128": SERVERCLASS_128,
}

EXPERIMENTS = [
    "fig01", "fig02", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
    "fig09", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
    "sec68", "power", "all",
]


def _resolve_app(name: str):
    if name in SOCIAL_NETWORK_APPS:
        return SOCIAL_NETWORK_APPS[name]
    if name in SYNTHETIC_DISTRIBUTIONS:
        return synthetic_app(name)
    raise SystemExit(f"unknown app {name!r}; pick one of "
                     f"{sorted(SOCIAL_NETWORK_APPS)} or "
                     f"{list(SYNTHETIC_DISTRIBUTIONS)}")


def _run_simulation(args, tracer=None, metrics_interval_ns=None):
    from repro.systems.cluster import simulate

    config = SYSTEMS[args.system]
    app = _resolve_app(args.app)
    return simulate(config, app, rps_per_server=args.rps,
                    n_servers=args.servers, duration_s=args.duration,
                    seed=args.seed, arrivals=args.arrivals, tracer=tracer,
                    metrics_interval_ns=metrics_interval_ns)


def _print_summary(result, json_mode: bool) -> None:
    if json_mode:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        return
    s = result.summary
    print(f"system     : {result.system}")
    print(f"app        : {result.app}")
    print(f"load       : {result.rps_per_server:.0f} RPS/server x "
          f"{result.n_servers} servers")
    print(f"completed  : {result.completed} (rejected {result.rejected})")
    print(f"mean       : {s.mean / 1e3:.1f} us")
    print(f"P50 / P99  : {s.p50 / 1e3:.1f} / {s.p99 / 1e3:.1f} us")
    print(f"tail/avg   : {s.tail_to_average:.2f}")
    bd = result.breakdown()
    if bd is not None:
        from repro.telemetry import format_breakdown

        print(format_breakdown(bd))


def cmd_simulate(args) -> None:
    tracer = None
    if args.trace_out:
        from repro.telemetry import Tracer

        tracer = Tracer()
    result = _run_simulation(args, tracer=tracer)
    if args.trace_out:
        from repro.telemetry import write_chrome_trace

        n_events = write_chrome_trace(tracer, args.trace_out)
        if not args.json:
            print(f"trace      : {args.trace_out} ({n_events} spans)")
    _print_summary(result, args.json)


def cmd_trace(args) -> None:
    """One traced run: Chrome trace export + span-derived breakdown."""
    from repro.telemetry import Tracer, write_chrome_trace, write_spans_csv

    tracer = Tracer()
    interval = args.metrics_interval_us * 1000.0 \
        if args.metrics_interval_us > 0 else None
    result = _run_simulation(args, tracer=tracer,
                             metrics_interval_ns=interval)
    n_events = write_chrome_trace(tracer, args.out)
    if args.csv_out:
        write_spans_csv(tracer, args.csv_out)
    if args.json:
        _print_summary(result, True)
        return
    print(f"wrote {args.out}: {n_events} spans, "
          f"{len(tracer.requests)} requests "
          f"(open in https://ui.perfetto.dev)")
    if args.csv_out:
        print(f"wrote {args.csv_out}")
    _print_summary(result, False)


def cmd_experiment(args) -> None:
    import importlib

    mapping = {
        "fig01": "fig01_microarch", "fig02": "fig02_rps_cdf",
        "fig03": "fig03_queues", "fig04": "fig04_cpu_util",
        "fig05": "fig05_rpc_count", "fig06": "fig06_context_switch",
        "fig07": "fig07_icn_contention", "fig08": "fig08_footprint",
        "fig09": "fig09_hit_rates", "fig14": "fig14_tail_latency",
        "fig15": "fig15_breakdown", "fig16": "fig16_avg_latency",
        "fig17": "fig17_tail_to_avg", "fig18": "fig18_throughput",
        "fig19": "fig19_sensitivity", "fig20": "fig20_synthetic",
        "sec68": "sec68_iso_area", "power": "power_area",
        "all": "run_all",
    }
    module = importlib.import_module(f"repro.experiments.{mapping[args.id]}")
    module.main()


def cmd_list(args) -> None:
    print("systems:")
    for key, cfg in SYSTEMS.items():
        print(f"  {key:15s} {cfg.n_cores} cores, {cfg.topology}, "
              f"{cfg.cs.name} scheduling")
    print("\napps:")
    for name, app in SOCIAL_NETWORK_APPS.items():
        print(f"  {name:10s} root={app.root}, "
              f"{app.mean_rpc_count():.0f} RPCs/request")
    print(f"  + synthetic: {', '.join(SYNTHETIC_DISTRIBUTIONS)}")
    print("\nexperiments:", ", ".join(EXPERIMENTS))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="uManycore reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_args(p) -> None:
        p.add_argument("--system", choices=sorted(SYSTEMS), required=True)
        p.add_argument("--app", default="Text")
        p.add_argument("--rps", type=float, default=15_000)
        p.add_argument("--servers", type=int, default=2)
        p.add_argument("--duration", type=float, default=0.03,
                       help="simulated seconds")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--arrivals", choices=("poisson", "bursty"),
                       default="poisson")
        p.add_argument("--json", action="store_true",
                       help="print the run summary as JSON")

    sim = sub.add_parser("simulate", help="run one cluster simulation")
    add_run_args(sim)
    sim.add_argument("--trace-out", metavar="FILE", default=None,
                     help="also trace the run and write a Chrome "
                          "trace-event file")
    sim.set_defaults(func=cmd_simulate)

    tr = sub.add_parser(
        "trace", help="run one traced simulation and export the spans")
    add_run_args(tr)
    tr.add_argument("--out", required=True, metavar="FILE",
                    help="Chrome trace-event JSON output path "
                         "(Perfetto / chrome://tracing)")
    tr.add_argument("--csv-out", metavar="FILE", default=None,
                    help="also dump the flat span table as CSV")
    tr.add_argument("--metrics-interval-us", type=float, default=10.0,
                    help="gauge sampling period in simulated us "
                         "(0 disables sampling)")
    tr.set_defaults(func=cmd_trace)

    exp = sub.add_parser("experiment", help="regenerate a paper figure")
    exp.add_argument("id", choices=EXPERIMENTS)
    exp.set_defaults(func=cmd_experiment)

    lst = sub.add_parser("list", help="list systems, apps, experiments")
    lst.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> None:
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
