"""Content-addressed on-disk cache of simulation results.

Entries are small JSON documents under ``<root>/<key[:2]>/<key>.json``
where the key is :meth:`repro.runner.point.SweepPoint.key` — a hash of
the point's full configuration *and* the simulator source — so a cache
can never serve a stale result across a code change, and two sweeps
sharing points (e.g. an interrupted run resumed with ``--resume``)
share the work.

Robustness rules:

* writes are atomic (temp file + ``os.replace``), so an interrupted
  sweep never leaves a half-written entry;
* a corrupted or schema-incompatible entry is *evicted* on read (the
  file is deleted and the lookup reported as a miss), so a damaged
  cache heals itself instead of poisoning tables.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.metrics.latency import LatencySummary
from repro.systems.cluster import RunResult

#: Bump when the entry layout changes; mismatched entries are evicted.
SCHEMA = 4

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Resolve the cache directory.

    Returns:
        ``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro-sweeps``.
    """
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro-sweeps").expanduser()


def result_to_dict(result: RunResult) -> dict:
    """Serialize a :class:`RunResult` into a cache entry document.

    Args:
        result: An *untraced* run result (``tracer``/``metrics`` unset);
            observers record in-process object graphs that do not
            belong in a content-addressed store.

    Returns:
        A JSON-serializable dict capturing every persisted field.

    Raises:
        ValueError: If the result carries a tracer or metrics registry.
    """
    if result.tracer is not None or result.metrics is not None:
        raise ValueError("traced/metered results are not cacheable")
    return {
        "schema": SCHEMA,
        "system": result.system,
        "app": result.app,
        "rps_per_server": result.rps_per_server,
        "n_servers": result.n_servers,
        "duration_s": result.duration_s,
        "summary": result.summary.as_dict(),
        "completed": result.completed,
        "rejected": result.rejected,
        "offered": result.offered,
        "warmup_ns": result.warmup_ns,
        "failed": result.failed,
        "fault_stats": result.fault_stats,
        "sched_stats": result.sched_stats,
        "dc_stats": result.dc_stats,
        "hybrid_stats": result.hybrid_stats,
    }


def result_from_dict(doc: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from a cache entry document.

    Args:
        doc: A dict produced by :func:`result_to_dict`.

    Returns:
        An equivalent ``RunResult`` (``tracer``/``metrics`` are None).

    Raises:
        KeyError: If the document misses a required field.
        ValueError: If the document's schema version is unsupported.
    """
    if doc["schema"] != SCHEMA:
        raise ValueError(f"unsupported cache schema {doc['schema']!r}")
    s = doc["summary"]
    summary = LatencySummary(count=s["count"], mean=s["mean"], p50=s["p50"],
                             p99=s["p99"], p999=s["p999"], maximum=s["max"])
    return RunResult(
        system=doc["system"], app=doc["app"],
        rps_per_server=doc["rps_per_server"], n_servers=doc["n_servers"],
        duration_s=doc["duration_s"], summary=summary,
        completed=doc["completed"], rejected=doc["rejected"],
        offered=doc["offered"], warmup_ns=doc["warmup_ns"],
        failed=doc["failed"], fault_stats=doc["fault_stats"],
        sched_stats=doc["sched_stats"], dc_stats=doc["dc_stats"],
        hybrid_stats=doc["hybrid_stats"])


class ResultCache:
    """On-disk result store addressed by sweep-point content keys."""

    def __init__(self, root: Optional[os.PathLike] = None):
        """Open (and lazily create) a cache directory.

        Args:
            root: Cache directory; defaults to :func:`default_cache_dir`.
        """
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.evicted = 0

    def _path(self, key: str) -> Path:
        """Entry file for a key (two-level fan-out keeps dirs small)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunResult]:
        """Look a point up.

        Args:
            key: A :meth:`SweepPoint.key` digest.

        Returns:
            The cached :class:`RunResult`, or None on a miss.  A
            corrupted or incompatible entry is deleted and counted in
            :attr:`evicted` (the lookup still reports a miss).
        """
        path = self._path(key)
        try:
            doc = json.loads(path.read_text())
            result = result_from_dict(doc)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            path.unlink(missing_ok=True)
            self.evicted += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunResult) -> bool:
        """Store a result (atomically).

        Args:
            key: The point's content key.
            result: The run result; traced/metered results are skipped.

        Returns:
            True if the entry was written, False if it was skipped.
        """
        try:
            doc = result_to_dict(result)
        except ValueError:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        if not self.root.exists():
            return 0
        return sum(1 for __ in self.root.glob("*/*.json"))

    def stats(self) -> dict:
        """Hit/miss/eviction counters for this cache handle."""
        return {"hits": self.hits, "misses": self.misses,
                "evicted": self.evicted, "dir": str(self.root)}
