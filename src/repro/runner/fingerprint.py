"""Content-addressed keys for simulation points.

A sweep point is a pure function of its inputs — system config, app
spec, load, scale knobs, seed, arrival process, fault schedule and
resilience policy — plus the simulator code itself.  This module turns
each of those into a canonical JSON document and hashes it, so two
points collide exactly when they would produce byte-identical
:class:`~repro.systems.cluster.RunResult` values.

The code version folds the source text of every module in the ``repro``
package into the key: editing the simulator silently invalidates every
cached result, which is what makes an on-disk cache safe to keep
between working sessions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Optional

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of the ``repro`` package's source text.

    Returns:
        A 16-hex-digit digest over the contents of every ``*.py`` file
        under the installed ``repro`` package, in sorted relative-path
        order.  Memoized per process (the sources are read once).
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def fingerprint(obj: Any) -> Any:
    """Reduce a config object to a canonical JSON-serializable form.

    Args:
        obj: A (possibly nested) dataclass instance — ``SystemConfig``,
            ``AppSpec``, ``ResilienceConfig`` — a ``FaultSchedule``, or
            any plain JSON-serializable value.

    Returns:
        Plain dicts/lists/scalars with deterministic content; dict keys
        are sorted at serialization time by :func:`canonical_json`.
    """
    # FaultSchedule is duck-typed to avoid importing repro.faults here.
    if hasattr(obj, "as_dicts") and hasattr(obj, "detection_ns"):
        return {"detection_ns": obj.detection_ns, "events": obj.as_dicts()}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: fingerprint(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): fingerprint(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [fingerprint(v) for v in obj]
    return obj


def canonical_json(doc: Any) -> str:
    """Serialize a fingerprint deterministically (sorted keys, no spaces)."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def digest(doc: Any) -> str:
    """SHA-256 hex digest of a fingerprint document.

    Args:
        doc: Output of :func:`fingerprint` (or any JSON-serializable
            value).

    Returns:
        64-char hex string; equal documents always hash equal.
    """
    return hashlib.sha256(canonical_json(doc).encode()).hexdigest()
