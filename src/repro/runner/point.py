"""Sweep descriptions: one simulation point and grids of them.

A :class:`SweepPoint` is the unit of work of the execution layer: one
independent cluster simulation, fully described by value (everything it
carries pickles cleanly into a spawn-started worker).  A
:class:`SweepSpec` expands a (systems x apps x loads x seeds) grid into
an ordered point list; the order is part of the contract — result
tables built from a spec are identical however the points are executed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.runner.fingerprint import code_version, digest, fingerprint
from repro.systems.configs import SystemConfig
from repro.workloads.spec import AppSpec


@dataclass(frozen=True)
class SweepPoint:
    """One independent cluster simulation, described by value.

    Mirrors the signature of :func:`repro.systems.cluster.simulate`
    minus the in-process observers (tracer, metrics) — points must stay
    cacheable and process-portable, and observers are neither.
    """

    config: SystemConfig
    app: AppSpec
    rps: float
    n_servers: int = 2
    duration_s: float = 0.03
    seed: int = 1
    warmup_fraction: float = 0.25
    #: Arrival process: a registry name, a RateProfile instance, or a
    #: TraceReplay (all fingerprint by value into the cache key).
    arrivals: object = "poisson"
    faults: Optional[object] = None         # FaultSchedule or None
    resilience: Optional[object] = None     # ResilienceConfig or None
    dc: Optional[object] = None             # repro.dc.DcConfig or None
    hybrid: Optional[object] = None         # repro.hybrid.HybridConfig
    #: Run under the invariant sanitizer (repro.check).  Deliberately
    #: NOT part of :meth:`key`: checks observe the simulation without
    #: perturbing it, so the result is the same either way — but check
    #: runs bypass the cache entirely (see ``run_points``) because a
    #: cache hit would skip the verification the caller asked for.
    check: bool = False

    @property
    def label(self) -> str:
        """Human-readable point name for progress lines and logs."""
        return (f"{self.config.name}/{self.app.name}"
                f"@{self.rps:g} seed{self.seed}")

    def key(self) -> str:
        """Content-addressed cache key of this point.

        Returns:
            SHA-256 hex digest over the canonical fingerprint of every
            input plus :func:`~repro.runner.fingerprint.code_version`,
            so editing any simulator source invalidates the key.
        """
        return digest({
            "code": code_version(),
            "config": fingerprint(self.config),
            "app": fingerprint(self.app),
            "rps": self.rps,
            "n_servers": self.n_servers,
            "duration_s": self.duration_s,
            "seed": self.seed,
            "warmup_fraction": self.warmup_fraction,
            "arrivals": fingerprint(self.arrivals),
            "faults": fingerprint(self.faults),
            "resilience": fingerprint(self.resilience),
            "dc": fingerprint(self.dc),
            "hybrid": fingerprint(self.hybrid),
        })

    def run(self):
        """Execute the simulation for this point.

        Returns:
            The :class:`~repro.systems.cluster.RunResult` of one
            untraced :func:`~repro.systems.cluster.simulate` call.
            With ``check`` set, the run executes under a strict
            :class:`repro.check.CheckContext` and raises
            :class:`repro.check.CheckError` on any violation.
        """
        from repro.systems.cluster import simulate

        checker = None
        if self.check:
            from repro.check import CheckContext

            checker = CheckContext(strict=True)
        return simulate(self.config, self.app, rps_per_server=self.rps,
                        n_servers=self.n_servers,
                        duration_s=self.duration_s, seed=self.seed,
                        warmup_fraction=self.warmup_fraction,
                        arrivals=self.arrivals, faults=self.faults,
                        resilience=self.resilience, check=checker,
                        dc=self.dc, hybrid=self.hybrid)


@dataclass(frozen=True)
class SweepSpec:
    """A grid of independent simulation points.

    The expansion order is load-major — ``for seed: for rps: for app:
    for config:`` — matching the classic
    :func:`repro.experiments.common.run_matrix` loop, so tables built
    by zipping :meth:`points` against results reproduce the serial
    harness byte-for-byte.
    """

    configs: Tuple[SystemConfig, ...]
    apps: Tuple[AppSpec, ...]
    loads: Tuple[float, ...]
    seeds: Tuple[int, ...] = (1,)
    n_servers: int = 2
    duration_s: float = 0.03
    warmup_fraction: float = 0.25
    arrivals: object = "poisson"
    dc: Optional[object] = None             # repro.dc.DcConfig or None
    hybrid: Optional[object] = None         # repro.hybrid.HybridConfig

    def __post_init__(self):
        """Reject grids with an empty axis."""
        if not (self.configs and self.apps and self.loads and self.seeds):
            raise ValueError("SweepSpec needs at least one config, app, "
                             "load and seed")

    def __len__(self) -> int:
        """Number of grid cells."""
        return (len(self.configs) * len(self.apps) * len(self.loads)
                * len(self.seeds))

    def points(self) -> List[SweepPoint]:
        """Expand the grid.

        Returns:
            The points in deterministic seed/load/app/config-major
            order (one entry per grid cell).
        """
        return [
            SweepPoint(config=config, app=app, rps=float(rps),
                       n_servers=self.n_servers,
                       duration_s=self.duration_s, seed=seed,
                       warmup_fraction=self.warmup_fraction,
                       arrivals=self.arrivals, dc=self.dc,
                       hybrid=self.hybrid)
            for seed in self.seeds
            for rps in self.loads
            for app in self.apps
            for config in self.configs
        ]
