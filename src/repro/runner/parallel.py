"""Spawn-safe parallel execution of sweep points.

The runner fans independent :class:`~repro.runner.point.SweepPoint`
simulations out over a ``multiprocessing`` pool.  Three properties make
it drop-in for the figure harnesses:

* **Deterministic ordering** — results come back positionally, in the
  order the points were submitted, whatever order workers finish in, so
  a table built from a parallel sweep is byte-identical to a serial one.
* **Spawn safety** — the pool always uses the ``spawn`` start method
  (the strictest one): workers re-import the package and receive each
  point by pickle, so the runner behaves identically on Linux, macOS
  and Windows and never depends on forked globals.
* **Cache integration** — with a :class:`~repro.runner.cache.
  ResultCache` attached, hits are served before the pool spins up and
  fresh results are written back by the parent, so an interrupted sweep
  resumes from what it already computed.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, List, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.point import SweepPoint
from repro.systems.cluster import RunResult

#: Progress event callback: receives dicts with ``index``, ``total``,
#: ``label``, ``source`` ("cache" | "run"), ``worker`` and ``seconds``.
ProgressFn = Callable[[dict], None]


def _run_indexed(item):
    """Pool task: run one (index, point) pair.

    Returns:
        ``(index, RunResult, worker_name, wall_seconds)`` — the index
        lets the parent restore submission order; the worker name feeds
        live per-worker progress displays.
    """
    index, point = item
    t0 = time.perf_counter()
    result = point.run()
    return (index, result, multiprocessing.current_process().name,
            time.perf_counter() - t0)


class ParallelRunner:
    """Executes batches of sweep points, optionally in parallel/cached."""

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 progress: Optional[ProgressFn] = None):
        """Configure an execution strategy.

        Args:
            jobs: Worker process count; ``<= 1`` runs in-process (no
                pool, no pickling) which is also the fallback for
                single-point batches.
            cache: Optional on-disk result cache consulted before and
                updated after execution.
            progress: Optional callback invoked once per completed
                point (cache hits included).
        """
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.progress = progress

    def _emit(self, index: int, total: int, point: SweepPoint, source: str,
              worker: str, seconds: float) -> None:
        if self.progress is not None:
            self.progress({"index": index, "total": total,
                           "label": point.label, "source": source,
                           "worker": worker, "seconds": seconds})

    def run(self, points: Sequence[SweepPoint]) -> List[RunResult]:
        """Execute every point and return results in submission order.

        Args:
            points: Independent simulation points; order defines the
                order of the returned list.

        Returns:
            One :class:`RunResult` per point, positionally aligned with
            ``points`` regardless of completion order or cache state.
        """
        points = list(points)
        total = len(points)
        results: List[Optional[RunResult]] = [None] * total
        pending: List[tuple] = []
        for i, point in enumerate(points):
            cached = (self.cache.get(point.key())
                      if self.cache is not None else None)
            if cached is not None:
                results[i] = cached
                self._emit(i, total, point, "cache", "-", 0.0)
            else:
                pending.append((i, point))

        if len(pending) <= 1 or self.jobs <= 1:
            for i, point in pending:
                t0 = time.perf_counter()
                results[i] = point.run()
                self._finish(i, total, point, results[i], "serial",
                             time.perf_counter() - t0)
            return results  # type: ignore[return-value]

        ctx = multiprocessing.get_context("spawn")
        workers = min(self.jobs, len(pending))
        with ctx.Pool(processes=workers) as pool:
            for index, result, worker, seconds in pool.imap_unordered(
                    _run_indexed, pending, chunksize=1):
                results[index] = result
                self._finish(index, total, points[index], result, worker,
                             seconds)
        return results  # type: ignore[return-value]

    def _finish(self, index: int, total: int, point: SweepPoint,
                result: RunResult, worker: str, seconds: float) -> None:
        if self.cache is not None:
            self.cache.put(point.key(), result)
        self._emit(index, total, point, "run", worker, seconds)
