"""Parallel, cached experiment execution.

Every paper figure is a grid of *independent* cluster simulations —
(system x workload x load x seed) points whose results feed one table.
This package is the execution layer for those grids:

* :class:`SweepPoint` / :class:`SweepSpec` describe the work by value;
* :class:`ParallelRunner` fans points out over spawn-safe
  ``multiprocessing`` workers with deterministic result ordering;
* :class:`ResultCache` content-addresses results on disk (config +
  workload + fault schedule + seed + code version), making re-runs and
  resumed sweeps near-instant;
* :func:`run_points` + :func:`configure` let entry points switch the
  whole experiment stack to parallel/cached execution without touching
  figure code.

The determinism contract: for a fixed point list, the returned results
— and therefore every table formatted from them — are identical for
any ``jobs`` count and any cache state.
"""

from repro.runner.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    default_cache_dir,
    result_from_dict,
    result_to_dict,
)
from repro.runner.context import (
    ExecutionContext,
    clear_memo,
    configure,
    executing,
    execution,
    run_points,
)
from repro.runner.fingerprint import code_version, digest, fingerprint
from repro.runner.parallel import ParallelRunner
from repro.runner.point import SweepPoint, SweepSpec

__all__ = [
    "CACHE_DIR_ENV",
    "ExecutionContext",
    "ParallelRunner",
    "ResultCache",
    "SweepPoint",
    "SweepSpec",
    "clear_memo",
    "code_version",
    "configure",
    "default_cache_dir",
    "digest",
    "executing",
    "execution",
    "fingerprint",
    "result_from_dict",
    "result_to_dict",
    "run_points",
]
