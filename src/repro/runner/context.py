"""Process-wide execution context and the ``run_points`` front door.

The figure harnesses all funnel their simulations through
:func:`run_points`.  By default it behaves exactly like the historical
serial loop (jobs=1, no disk cache, per-process memoization); entry
points that want parallelism or caching — ``run_all --jobs 8``,
``repro sweep``, ``repro experiment --jobs`` — call :func:`configure`
once and every harness downstream inherits the setting without
signature changes.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.parallel import ParallelRunner, ProgressFn
from repro.runner.point import SweepPoint
from repro.systems.cluster import RunResult

_UNSET = object()


@dataclass
class ExecutionContext:
    """How sweep points are executed process-wide.

    Attributes:
        jobs: Worker process count for :func:`run_points` (1 = serial).
        cache: Shared on-disk result cache, or None to disable.
        check: Run every point under the strict invariant sanitizer
            (:mod:`repro.check`); implies no caching or memoization so
            each point is actually verified.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    check: bool = False


_context = ExecutionContext()

#: Per-process result memo keyed by point content key.  This preserves
#: the historical behaviour where figures sharing a matrix (14/16/17)
#: simulate each cell once per process even with the disk cache off.
_memo: Dict[str, RunResult] = {}


def execution() -> ExecutionContext:
    """Return the active process-wide execution context."""
    return _context


def configure(jobs: Optional[int] = None, cache=_UNSET,
              check: Optional[bool] = None) -> ExecutionContext:
    """Update the process-wide execution context.

    Args:
        jobs: New worker count, or None to leave unchanged.
        cache: New :class:`ResultCache` (or None to disable caching);
            omit to leave unchanged.
        check: Enable/disable the invariant sanitizer for every point,
            or None to leave unchanged.

    Returns:
        The updated context.
    """
    if jobs is not None:
        _context.jobs = max(1, int(jobs))
    if cache is not _UNSET:
        _context.cache = cache
    if check is not None:
        _context.check = bool(check)
    return _context


@contextmanager
def executing(jobs: Optional[int] = None, cache=_UNSET,
              check: Optional[bool] = None):
    """Temporarily override the execution context (tests, one-off runs).

    Args:
        jobs: Worker count for the scope, or None to keep the current.
        cache: Cache for the scope; omit to keep the current.
        check: Sanitizer setting for the scope; None keeps the current.

    Yields:
        The active :class:`ExecutionContext` inside the scope.
    """
    saved = (_context.jobs, _context.cache, _context.check)
    try:
        yield configure(jobs=jobs, cache=cache, check=check)
    finally:
        _context.jobs, _context.cache, _context.check = saved


def clear_memo() -> None:
    """Drop the per-process result memo (tests and long sessions)."""
    _memo.clear()


def run_points(points: Sequence[SweepPoint],
               jobs: Optional[int] = None,
               cache=_UNSET,
               progress: Optional[ProgressFn] = None,
               memo: bool = True,
               check: Optional[bool] = None) -> List[RunResult]:
    """Execute sweep points under the active (or overridden) context.

    Args:
        points: Independent simulation points, in result order.
        jobs: Override the context's worker count for this call.
        cache: Override the context's cache for this call (None
            disables); omit to inherit.
        progress: Optional per-completion callback (see
            :class:`~repro.runner.parallel.ParallelRunner`).
        memo: Serve and populate the per-process memo (disable to force
            re-execution, e.g. in cache tests).
        check: Run every point under the strict invariant sanitizer;
            None inherits the context setting.  Check runs bypass both
            the disk cache and the memo — serving a stored result would
            skip exactly the verification that was requested.

    Returns:
        One :class:`RunResult` per point, positionally aligned with
        ``points`` regardless of jobs, cache state or completion order.
    """
    from dataclasses import replace

    points = list(points)
    ctx = execution()
    use_jobs = ctx.jobs if jobs is None else max(1, int(jobs))
    use_cache = ctx.cache if cache is _UNSET else cache
    use_check = ctx.check if check is None else bool(check)
    if use_check:
        points = [p if p.check else replace(p, check=True) for p in points]
        use_cache = None
        memo = False

    keys = [p.key() for p in points]
    results: List[Optional[RunResult]] = [None] * len(points)
    pending, pending_keys = [], []
    for i, (point, key) in enumerate(zip(points, keys)):
        if memo and key in _memo:
            results[i] = _memo[key]
            if progress is not None:
                progress({"index": i, "total": len(points),
                          "label": point.label, "source": "memo",
                          "worker": "-", "seconds": 0.0})
        else:
            pending.append(point)
            pending_keys.append((i, key))

    if pending:
        _wrapped = None
        if progress is not None:
            index_map = [i for i, __ in pending_keys]

            def _wrapped(ev, _map=index_map, _total=len(points)):
                progress({**ev, "index": _map[ev["index"]], "total": _total})

        runner = ParallelRunner(jobs=use_jobs, cache=use_cache,
                                progress=_wrapped)
        for (i, key), result in zip(pending_keys, runner.run(pending)):
            results[i] = result
            if memo:
                _memo[key] = result
    return results  # type: ignore[return-value]
