"""Trace replay: drive arrivals from recorded timestamps.

The Alibaba characterization (PAPER.md Section 3) is built from
production traces; when the raw per-request timestamps *are* available
(exported from a real deployment, or from a previous simulation via
:func:`save_trace`), :class:`TraceReplay` feeds them straight into
``ClusterSimulation`` in place of a synthetic arrival process.

File formats (both round-trip through :func:`save_trace` /
:func:`load_trace`):

* **CSV** — one arrival per line, nanoseconds since trace start; an
  optional non-numeric header line (``arrival_ns``) is skipped;
* **JSON** — either a bare list of times or ``{"times_ns": [...]}``.

A bundled sample trace (``data/alibaba_sample.csv``) is generated from
the :class:`~repro.workloads.alibaba.AlibabaTraceGenerator` per-server
load marginals (lognormal window rates matching Figure 2), so the
``--trace-in`` CLI path is exercisable without external data.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.workloads.alibaba import AlibabaTraceGenerator
from repro.workloads.arrival import arrival_times


@dataclass(frozen=True)
class TraceReplay:
    """Arrival generator that replays a fixed schedule of times.

    ``times_ns`` are nanoseconds relative to the trace start.  The
    adapter duck-types :class:`~repro.workloads.arrival.RateProfile`:
    ``generate`` ignores the nominal rate and RNG entirely (replay is
    deterministic by construction) and returns the recorded times that
    fall inside the simulated horizon, offset by ``start_ns``.

    The aggregate trace describes *cluster-wide* arrivals; without a
    front-end LB the per-server arrival path deals round-robin slices
    (``times[i::n_servers]``), mirroring how an L4 balancer would have
    spread the recorded stream.
    """

    times_ns: Tuple[float, ...] = ()
    kind: str = "replay"

    #: Marks the adapter for ``ClusterSimulation``'s per-server
    #: partitioning (synthetic profiles draw per-server streams
    #: instead).
    is_replay = True

    def __post_init__(self):
        arr = np.asarray(self.times_ns, dtype=float)
        if len(arr) and (np.diff(arr) < 0).any():
            raise ValueError("trace times must be non-decreasing")
        if len(arr) and arr[0] < 0:
            raise ValueError("trace times must be >= 0")

    def generate(self, rate_per_s: float, duration_s: float,
                 rng: Optional[np.random.Generator] = None,
                 start_ns: float = 0.0) -> np.ndarray:
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        t = np.asarray(self.times_ns, dtype=float)
        return start_ns + t[t < duration_s * 1e9]

    def count_cv(self, span_s: float) -> Optional[float]:
        return None     # arbitrary recorded load: guard stays sharp

    def span_s(self) -> float:
        """Trace length in seconds (time of the last arrival)."""
        return (max(self.times_ns) * 1e-9) if self.times_ns else 0.0


# ------------------------------------------------------------------ files


def save_trace(path: str, times_ns: Sequence[float]) -> None:
    """Write a trace to ``path`` (format chosen by extension)."""
    path = os.fspath(path)
    times = [float(t) for t in times_ns]
    if path.endswith(".json"):
        with open(path, "w") as fh:
            json.dump({"times_ns": times}, fh)
    else:
        with open(path, "w") as fh:
            fh.write("arrival_ns\n")
            for t in times:
                fh.write(f"{t!r}\n")


def load_trace(path: str) -> TraceReplay:
    """Read a CSV/JSON trace file into a :class:`TraceReplay`."""
    path = os.fspath(path)
    if not os.path.exists(path):
        raise FileNotFoundError(f"trace file not found: {path}")
    if path.endswith(".json"):
        with open(path) as fh:
            payload = json.load(fh)
        if isinstance(payload, dict):
            if "times_ns" not in payload:
                raise ValueError(
                    f"JSON trace {path} must be a list or have a "
                    f"'times_ns' key")
            payload = payload["times_ns"]
        times = [float(t) for t in payload]
    else:
        times = []
        with open(path) as fh:
            for line in fh:
                cell = line.split(",")[0].strip()
                if not cell:
                    continue
                try:
                    times.append(float(cell))
                except ValueError:
                    continue        # header / comment line
    return TraceReplay(times_ns=tuple(times))


# ----------------------------------------------------------- sample trace

#: Bundled Alibaba-marginal sample trace (see :func:`sample_alibaba_trace`).
SAMPLE_TRACE = os.path.join(os.path.dirname(__file__), "data",
                            "alibaba_sample.csv")


def sample_alibaba_trace(duration_s: float = 0.02,
                         mean_rps: float = 2000.0,
                         seed: int = 42,
                         window_s: float = 0.0025) -> TraceReplay:
    """Synthesize a replayable trace from the Alibaba load marginals.

    Window rates follow the Figure 2 per-server load lognormal
    (sigma 0.75), rescaled so the *mean* offered rate is ``mean_rps``;
    arrivals are Poisson within each window.  Deterministic in
    ``seed`` — the bundled ``data/alibaba_sample.csv`` is exactly
    ``sample_alibaba_trace()`` with the defaults.
    """
    if duration_s <= 0 or mean_rps <= 0:
        raise ValueError("duration and rate must be positive")
    rng = np.random.default_rng(seed)
    gen = AlibabaTraceGenerator(rng)
    n_windows = math.ceil(duration_s / window_s)
    rates = gen.server_rps(n_windows)
    # lognormal(mu, sigma) mean is exp(mu + sigma^2/2); rescale to mean_rps.
    rates *= mean_rps / math.exp(gen.RPS_MU + gen.RPS_SIGMA ** 2 / 2.0)
    out = []
    for i, rate in enumerate(rates):
        left = i * window_s
        window = min(window_s, duration_s - left)
        if window <= 0:
            break
        if rate > 0:
            out.append(arrival_times(float(rate), window, rng,
                                     start_ns=left * 1e9))
    times = np.concatenate(out) if out else np.empty(0)
    return TraceReplay(times_ns=tuple(float(t) for t in times))


def resolve_trace(trace: Union[str, TraceReplay, None]) -> Optional[TraceReplay]:
    """CLI helper: ``"sample"`` -> bundled trace, path -> file, None -> None."""
    if trace is None or isinstance(trace, TraceReplay):
        return trace
    if trace == "sample":
        if os.path.exists(SAMPLE_TRACE):
            return load_trace(SAMPLE_TRACE)
        return sample_alibaba_trace()
    return load_trace(trace)
