"""Open-loop arrival processes: stationary Poisson plus rate profiles.

The paper's tail-at-scale story is driven by *load dynamics*: diurnal
curves, bursty Markov-modulated phases, and flash crowds (Section 3 /
the Alibaba characterization).  This module layers a deterministic
:class:`RateProfile` abstraction over the classic Poisson generator:

* ``poisson`` — :class:`ConstantProfile`, the stationary process every
  figure uses (kept byte-identical to the pre-profile generator);
* ``bursty`` — :class:`BurstyProfile`, the doubly-stochastic
  (lognormal-modulated) process of Figure 2;
* ``diurnal`` — :class:`DiurnalProfile`, a sinusoidal day/night curve
  compressed into the simulated horizon;
* ``mmpp`` — :class:`MmppProfile`, a Markov-modulated Poisson process
  alternating baseline and burst phases with exponential dwell times;
* ``flash`` — :class:`FlashCrowdProfile`, a ramp/hold/decay load spike;
* ``ramp`` — :class:`PiecewiseProfile`, a piecewise-linear composite.

**RNG draw-order discipline** (the docs/PERFORMANCE.md determinism
contract): every profile consumes its stream in a fixed, documented
order — (1) the profile's own state draws, if any (MMPP phase dwells);
(2) the homogeneous candidate gaps at the peak rate, drawn in bulk via
:func:`arrival_times` (including its top-up loop); (3) one bulk uniform
per candidate for the thinning accept test.  Identical seeds therefore
yield byte-identical schedules on every code path that preserves this
order (the LB-aggregate and per-server arrival paths both do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple, Union

import numpy as np


class PoissonArrivals:
    """Iterator of absolute arrival times (ns) with exponential gaps."""

    def __init__(self, rate_per_s: float, rng: np.random.Generator,
                 start_ns: float = 0.0):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.mean_gap_ns = 1e9 / rate_per_s
        self.rng = rng
        self._now = start_ns

    def __iter__(self) -> Iterator[float]:
        return self

    def __next__(self) -> float:
        self._now += self.rng.exponential(self.mean_gap_ns)
        return self._now


def arrival_times(rate_per_s: float, duration_s: float,
                  rng: np.random.Generator, start_ns: float = 0.0) -> np.ndarray:
    """All Poisson arrivals (ns) within ``duration_s`` seconds."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    horizon = start_ns + duration_s * 1e9
    # Draw in bulk with a safety margin, then trim.
    expected = rate_per_s * duration_s
    n = int(expected + 6 * np.sqrt(expected + 10) + 10)
    gaps = rng.exponential(1e9 / rate_per_s, size=n)
    times = start_ns + np.cumsum(gaps)
    while times[-1] < horizon:
        extra = rng.exponential(1e9 / rate_per_s, size=max(16, n // 4))
        times = np.concatenate([times, times[-1] + np.cumsum(extra)])
    return times[times < horizon]


def bursty_arrival_times(mean_rate_per_s: float, duration_s: float,
                         rng: np.random.Generator,
                         burst_sigma: float = 0.75,
                         window_s: float = 0.005,
                         start_ns: float = 0.0) -> np.ndarray:
    """Bursty arrivals: a doubly-stochastic (modulated) Poisson process.

    The rate of each ``window_s`` window is drawn from a lognormal whose
    sigma matches the per-server load burstiness the paper measures in
    the Alibaba traces (Figure 2: median ~500 RPS but 5%% of seconds
    above 3x the median); arrivals are Poisson within the window.

    Window boundaries are computed by *index* (``i * window_s``), never
    by accumulating a float sum — a ``t += window`` accumulator drifts
    off the grid over long horizons (at 10 s / 5 ms windows the 2000th
    boundary lands ~1e-13 s off, and every window after it inherits the
    error), which broke long-horizon reproducibility against any
    independently computed boundary.
    """
    if duration_s <= 0 or mean_rate_per_s <= 0:
        raise ValueError("duration and rate must be positive")
    if burst_sigma < 0:
        raise ValueError("burst_sigma must be >= 0")
    # lognormal(mu, sigma) mean is exp(mu + sigma^2/2): keep the mean at
    # mean_rate_per_s.
    mu = np.log(mean_rate_per_s) - burst_sigma ** 2 / 2.0
    n_windows = math.ceil(duration_s / window_s)
    out = []
    for i in range(n_windows):
        left = i * window_s
        window = min(window_s, duration_s - left)
        if window <= 0:
            break
        rate = float(rng.lognormal(mu, burst_sigma))
        if rate > 0:
            arrivals = arrival_times(rate, window, rng,
                                     start_ns=start_ns + left * 1e9)
            out.append(arrivals)
    return np.concatenate(out) if out else np.empty(0)


# --------------------------------------------------------------- profiles


def _thin(rate_per_s: float, duration_s: float, rng: np.random.Generator,
          start_ns: float, peak: float, multiplier_of) -> np.ndarray:
    """Inhomogeneous-Poisson arrivals by thinning.

    Draws homogeneous candidates at ``rate_per_s * peak`` (one bulk
    :func:`arrival_times` call), then accepts each candidate at time
    ``t`` with probability ``multiplier_of(t) / peak`` using a single
    bulk uniform draw.  ``multiplier_of`` takes a float array of
    *profile-relative* seconds and returns the rate multiplier at each.
    """
    if peak <= 0:
        return np.empty(0)
    candidates = arrival_times(rate_per_s * peak, duration_s, rng,
                               start_ns=start_ns)
    if len(candidates) == 0:
        return candidates
    t_s = (candidates - start_ns) * 1e-9
    accept = rng.random(len(candidates)) * peak <= multiplier_of(t_s)
    return candidates[accept]


@dataclass(frozen=True)
class RateProfile:
    """Deterministic description of how offered load varies over a run.

    A profile is a *multiplier* over the nominal rate: ``simulate(...,
    rps_per_server=R, arrivals=profile)`` offers an instantaneous rate
    of ``R * multiplier_at(t)`` requests/s.  Stationary profiles keep
    the time-averaged multiplier at 1.0 so the mean offered load always
    equals the nominal RPS, whatever the shape.

    Profiles are frozen dataclasses: hashable, picklable into sweep
    workers, and fingerprintable into the result-cache key (a
    :class:`~repro.runner.point.SweepPoint` may carry one directly).
    """

    #: Registry name (a dataclass field so two profile types with the
    #: same numeric fields can never fingerprint identically).
    kind: str = "constant"

    # -- shape -----------------------------------------------------------
    def multiplier_at(self, t_s: np.ndarray) -> np.ndarray:
        """Rate multiplier at each profile-relative time (seconds)."""
        return np.ones_like(np.asarray(t_s, dtype=float))

    def peak_multiplier(self, duration_s: float) -> float:
        """Upper bound of :meth:`multiplier_at` over ``[0, duration_s]``
        (the thinning envelope)."""
        return 1.0

    # -- generation ------------------------------------------------------
    def generate(self, rate_per_s: float, duration_s: float,
                 rng: np.random.Generator,
                 start_ns: float = 0.0) -> np.ndarray:
        """Arrival times (ns) in ``[start_ns, start_ns + duration_s)``.

        Every returned time is strictly below the horizon; the RNG draw
        order follows the module contract (state draws, candidate gaps,
        accept uniforms).
        """
        return _thin(rate_per_s, duration_s, rng, start_ns,
                     self.peak_multiplier(duration_s), self.multiplier_at)

    # -- guard support ---------------------------------------------------
    def count_cv(self, span_s: float) -> Optional[float]:
        """Relative std of the arrival *count* over a ``span_s`` window
        under this profile, excluding Poisson counting noise.

        The hybrid drift guard widens its band by this much so that a
        profile's *inherent* window-to-window variability (bursty in
        the mean) is never mistaken for load drift.  Returns 0.0 for
        profiles whose windowed rate is constant, and None for
        non-stationary profiles — there the guard must stay sharp, so a
        diurnal ramp or flash crowd aborts the fast path as intended.
        """
        return 0.0


@dataclass(frozen=True)
class ConstantProfile(RateProfile):
    """Stationary Poisson arrivals — the paper's default process.

    ``generate`` delegates to :func:`arrival_times` verbatim (same
    draws, same trim), so ``arrivals="poisson"`` stays byte-identical
    to the pre-profile simulator.
    """

    kind: str = "poisson"

    def generate(self, rate_per_s: float, duration_s: float,
                 rng: np.random.Generator,
                 start_ns: float = 0.0) -> np.ndarray:
        return arrival_times(rate_per_s, duration_s, rng, start_ns=start_ns)


@dataclass(frozen=True)
class BurstyProfile(RateProfile):
    """Lognormal-modulated Poisson bursts (Figure 2 burstiness).

    ``generate`` delegates to :func:`bursty_arrival_times` so the
    classic ``arrivals="bursty"`` path keeps its draw order.  The
    process is stationary in the mean — :meth:`count_cv` reports its
    inherent window variability so the hybrid guard can tell bursts
    from genuine drift.
    """

    kind: str = "bursty"

    burst_sigma: float = 0.75
    window_s: float = 0.005

    def __post_init__(self):
        if self.burst_sigma < 0:
            raise ValueError("burst_sigma must be >= 0")
        if self.window_s <= 0:
            raise ValueError("window_s must be positive")

    def generate(self, rate_per_s: float, duration_s: float,
                 rng: np.random.Generator,
                 start_ns: float = 0.0) -> np.ndarray:
        return bursty_arrival_times(rate_per_s, duration_s, rng,
                                    burst_sigma=self.burst_sigma,
                                    window_s=self.window_s,
                                    start_ns=start_ns)

    def count_cv(self, span_s: float) -> Optional[float]:
        # Lognormal rate cv per modulation window, averaged down by the
        # number of (independent) windows the span covers.
        cv = math.sqrt(math.expm1(self.burst_sigma ** 2))
        return cv / math.sqrt(max(1.0, span_s / self.window_s))


@dataclass(frozen=True)
class DiurnalProfile(RateProfile):
    """Sinusoidal day/night curve compressed into the simulated horizon.

    ``multiplier(t) = 1 + amplitude * sin(2 pi (t / period + phase))``
    — mean 1.0 over whole periods, peak ``1 + amplitude``.  The default
    period is a fraction of typical run lengths so short simulations
    still see both the ramp-up and the ramp-down.
    """

    kind: str = "diurnal"

    amplitude: float = 0.6
    period_s: float = 0.02
    phase: float = 0.0

    def __post_init__(self):
        if not 0 <= self.amplitude <= 1:
            raise ValueError("amplitude must be in [0, 1]")
        if self.period_s <= 0:
            raise ValueError("period_s must be positive")

    def multiplier_at(self, t_s: np.ndarray) -> np.ndarray:
        t_s = np.asarray(t_s, dtype=float)
        return 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * (t_s / self.period_s + self.phase))

    def peak_multiplier(self, duration_s: float) -> float:
        return 1.0 + self.amplitude

    def count_cv(self, span_s: float) -> Optional[float]:
        return None     # non-stationary: the guard must stay sharp


@dataclass(frozen=True)
class MmppProfile(RateProfile):
    """Markov-modulated Poisson process: baseline/burst phase cycling.

    Phases alternate cyclically; each visit to phase ``i`` dwells an
    exponential time with mean ``mean_dwell_s[i]`` before moving on
    (the classic interrupted-Poisson shape for two phases).  The
    multipliers are normalized by the dwell-weighted mean so the
    process stays stationary at the nominal rate.

    Draw order per :meth:`generate` call: one exponential per phase
    visit (the dwell schedule, drawn first), then the thinning draws.
    """

    kind: str = "mmpp"

    multipliers: Tuple[float, ...] = (0.4, 3.4)
    mean_dwell_s: Tuple[float, ...] = (0.004, 0.001)

    def __post_init__(self):
        if len(self.multipliers) < 2 \
                or len(self.multipliers) != len(self.mean_dwell_s):
            raise ValueError("need >= 2 phases with one mean dwell each")
        if any(m < 0 for m in self.multipliers) \
                or all(m == 0 for m in self.multipliers):
            raise ValueError("phase multipliers must be >= 0, not all 0")
        if any(d <= 0 for d in self.mean_dwell_s):
            raise ValueError("mean dwells must be positive")

    def _normalized(self) -> Tuple[float, ...]:
        """Multipliers scaled to a dwell-weighted mean of exactly 1."""
        total = sum(self.mean_dwell_s)
        mean = sum(m * d for m, d in
                   zip(self.multipliers, self.mean_dwell_s)) / total
        return tuple(m / mean for m in self.multipliers)

    def peak_multiplier(self, duration_s: float) -> float:
        return max(self._normalized())

    def generate(self, rate_per_s: float, duration_s: float,
                 rng: np.random.Generator,
                 start_ns: float = 0.0) -> np.ndarray:
        mults = self._normalized()
        n_phases = len(mults)
        # (1) dwell schedule: phase boundary times + that phase's rate.
        bounds, rates = [0.0], []
        t, phase = 0.0, 0
        while t < duration_s:
            t += float(rng.exponential(self.mean_dwell_s[phase]))
            rates.append(mults[phase])
            bounds.append(t)
            phase = (phase + 1) % n_phases
        bounds_arr = np.asarray(bounds[1:])      # right edges
        rates_arr = np.asarray(rates)

        def multiplier_of(t_s: np.ndarray) -> np.ndarray:
            idx = np.searchsorted(bounds_arr, t_s, side="right")
            return rates_arr[np.minimum(idx, len(rates_arr) - 1)]

        # (2)+(3) candidate gaps at the peak rate, then accept draws.
        return _thin(rate_per_s, duration_s, rng, start_ns,
                     max(mults), multiplier_of)

    def count_cv(self, span_s: float) -> Optional[float]:
        mults = self._normalized()
        total = sum(self.mean_dwell_s)
        probs = [d / total for d in self.mean_dwell_s]
        mean = sum(p * m for p, m in zip(probs, mults))       # == 1.0
        var = sum(p * m * m for p, m in zip(probs, mults)) - mean ** 2
        cv = math.sqrt(max(0.0, var)) / mean
        return cv / math.sqrt(max(1.0, span_s / total))


@dataclass(frozen=True)
class FlashCrowdProfile(RateProfile):
    """A flash crowd: baseline, linear ramp to a spike, hold, decay.

    Times are fractions of the run so the same profile shape works at
    any duration: the ramp starts at ``at`` and reaches ``magnitude``
    over ``ramp``; the spike holds for ``hold`` and decays linearly
    back to baseline over ``decay``.
    """

    kind: str = "flash"

    at: float = 0.40
    ramp: float = 0.06
    hold: float = 0.22
    decay: float = 0.12
    magnitude: float = 3.0

    def __post_init__(self):
        if not 0 <= self.at < 1:
            raise ValueError("at must be in [0, 1)")
        if min(self.ramp, self.hold, self.decay) < 0:
            raise ValueError("ramp/hold/decay must be >= 0")
        if self.at + self.ramp + self.hold + self.decay > 1.0 + 1e-9:
            raise ValueError("flash phases must fit inside the run")
        if self.magnitude < 1:
            raise ValueError("magnitude must be >= 1")

    def _multiplier_frac(self, f: np.ndarray) -> np.ndarray:
        up0, up1 = self.at, self.at + self.ramp
        dn0 = up1 + self.hold
        dn1 = dn0 + self.decay
        m = np.ones_like(f)
        extra = self.magnitude - 1.0
        if self.ramp > 0:
            rising = (f >= up0) & (f < up1)
            m[rising] += extra * (f[rising] - up0) / self.ramp
        holding = (f >= up1) & (f < dn0)
        m[holding] = self.magnitude
        if self.decay > 0:
            falling = (f >= dn0) & (f < dn1)
            m[falling] = 1.0 + extra * (dn1 - f[falling]) / self.decay
        return m

    def multiplier_at(self, t_s: np.ndarray) -> np.ndarray:
        # Callers outside generate() should divide by the duration
        # themselves; generate() passes profile-relative seconds and a
        # closure scales them (see below).
        raise TypeError("FlashCrowdProfile is fraction-based; "
                        "use generate() or _multiplier_frac()")

    def peak_multiplier(self, duration_s: float) -> float:
        return self.magnitude

    def generate(self, rate_per_s: float, duration_s: float,
                 rng: np.random.Generator,
                 start_ns: float = 0.0) -> np.ndarray:
        return _thin(rate_per_s, duration_s, rng, start_ns, self.magnitude,
                     lambda t_s: self._multiplier_frac(t_s / duration_s))

    def count_cv(self, span_s: float) -> Optional[float]:
        return None     # a flash crowd *is* drift: guard stays sharp

    # -- figW helpers ----------------------------------------------------
    def ramp_span(self, duration_s: float) -> Tuple[float, float]:
        """(start_s, end_s) of the up-ramp at a concrete duration."""
        return (self.at * duration_s, (self.at + self.ramp) * duration_s)


@dataclass(frozen=True)
class PiecewiseProfile(RateProfile):
    """Piecewise-linear composite: multiplier knots at run fractions.

    ``points`` maps run fraction (0..1) to a rate multiplier; the
    profile linearly interpolates between knots and holds the edge
    values outside them.  The default is a steady 0.5 -> 1.5 ramp.
    """

    kind: str = "ramp"

    points: Tuple[Tuple[float, float], ...] = ((0.0, 0.5), (1.0, 1.5))

    def __post_init__(self):
        if len(self.points) < 2:
            raise ValueError("need at least two (fraction, multiplier) "
                             "knots")
        fracs = [f for f, __ in self.points]
        if fracs != sorted(fracs):
            raise ValueError("knot fractions must be non-decreasing")
        if any(m < 0 for __, m in self.points):
            raise ValueError("multipliers must be >= 0")
        if max(m for __, m in self.points) <= 0:
            raise ValueError("at least one multiplier must be positive")

    def peak_multiplier(self, duration_s: float) -> float:
        return max(m for __, m in self.points)

    def generate(self, rate_per_s: float, duration_s: float,
                 rng: np.random.Generator,
                 start_ns: float = 0.0) -> np.ndarray:
        fracs = np.asarray([f for f, __ in self.points])
        mults = np.asarray([m for __, m in self.points])
        return _thin(rate_per_s, duration_s, rng, start_ns,
                     self.peak_multiplier(duration_s),
                     lambda t_s: np.interp(t_s / duration_s, fracs, mults))

    def count_cv(self, span_s: float) -> Optional[float]:
        return None     # generally non-stationary


# --------------------------------------------------------------- registry

#: Named default profiles (the CLI ``--arrivals`` choices).
PROFILES: Dict[str, RateProfile] = {
    "poisson": ConstantProfile(),
    "bursty": BurstyProfile(),
    "diurnal": DiurnalProfile(),
    "mmpp": MmppProfile(),
    "flash": FlashCrowdProfile(),
    "ramp": PiecewiseProfile(),
}

#: Stable name order for CLI choices and docs.
ARRIVAL_NAMES: Tuple[str, ...] = tuple(PROFILES)


def get_profile(arrivals: Union[str, RateProfile, object]) -> object:
    """Resolve an ``arrivals`` argument to a generator object.

    Accepts a registry name, a :class:`RateProfile` instance, or any
    duck-typed generator exposing ``generate(rate, duration_s, rng,
    start_ns)`` (the trace-replay adapter qualifies).
    """
    if isinstance(arrivals, str):
        try:
            return PROFILES[arrivals]
        except KeyError:
            raise ValueError(
                f"unknown arrival process {arrivals!r}; known: "
                f"{list(ARRIVAL_NAMES)} (or pass a RateProfile / "
                f"TraceReplay instance)") from None
    if hasattr(arrivals, "generate"):
        return arrivals
    raise ValueError(f"unknown arrival process {arrivals!r}")
