"""Open-loop arrival processes (the paper uses Poisson inter-arrivals)."""

from __future__ import annotations

from typing import Iterator

import numpy as np


class PoissonArrivals:
    """Iterator of absolute arrival times (ns) with exponential gaps."""

    def __init__(self, rate_per_s: float, rng: np.random.Generator,
                 start_ns: float = 0.0):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.mean_gap_ns = 1e9 / rate_per_s
        self.rng = rng
        self._now = start_ns

    def __iter__(self) -> Iterator[float]:
        return self

    def __next__(self) -> float:
        self._now += self.rng.exponential(self.mean_gap_ns)
        return self._now


def arrival_times(rate_per_s: float, duration_s: float,
                  rng: np.random.Generator, start_ns: float = 0.0) -> np.ndarray:
    """All Poisson arrivals (ns) within ``duration_s`` seconds."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    horizon = start_ns + duration_s * 1e9
    # Draw in bulk with a safety margin, then trim.
    expected = rate_per_s * duration_s
    n = int(expected + 6 * np.sqrt(expected + 10) + 10)
    gaps = rng.exponential(1e9 / rate_per_s, size=n)
    times = start_ns + np.cumsum(gaps)
    while times[-1] < horizon:
        extra = rng.exponential(1e9 / rate_per_s, size=max(16, n // 4))
        times = np.concatenate([times, times[-1] + np.cumsum(extra)])
    return times[times < horizon]


def bursty_arrival_times(mean_rate_per_s: float, duration_s: float,
                         rng: np.random.Generator,
                         burst_sigma: float = 0.75,
                         window_s: float = 0.005) -> np.ndarray:
    """Bursty arrivals: a doubly-stochastic (modulated) Poisson process.

    The rate of each ``window_s`` window is drawn from a lognormal whose
    sigma matches the per-server load burstiness the paper measures in
    the Alibaba traces (Figure 2: median ~500 RPS but 5%% of seconds
    above 3x the median); arrivals are Poisson within the window.
    """
    if duration_s <= 0 or mean_rate_per_s <= 0:
        raise ValueError("duration and rate must be positive")
    if burst_sigma < 0:
        raise ValueError("burst_sigma must be >= 0")
    # lognormal(mu, sigma) mean is exp(mu + sigma^2/2): keep the mean at
    # mean_rate_per_s.
    mu = np.log(mean_rate_per_s) - burst_sigma ** 2 / 2.0
    out = []
    t = 0.0
    while t < duration_s:
        window = min(window_s, duration_s - t)
        rate = float(rng.lognormal(mu, burst_sigma))
        if rate > 0:
            arrivals = arrival_times(rate, window, rng, start_ns=t * 1e9)
            out.append(arrivals)
        t += window
    return np.concatenate(out) if out else np.empty(0)
