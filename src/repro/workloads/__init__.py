"""Workload generators: service graphs, arrivals, and trace statistics."""

from repro.workloads.alibaba import AlibabaTraceGenerator
from repro.workloads.arrival import (ARRIVAL_NAMES, PROFILES, BurstyProfile,
                                     ConstantProfile, DiurnalProfile,
                                     FlashCrowdProfile, MmppProfile,
                                     PiecewiseProfile, PoissonArrivals,
                                     RateProfile, arrival_times,
                                     bursty_arrival_times, get_profile)
from repro.workloads.deathstar import (DEATHSTAR_APPS, SOCIAL_NETWORK_APPS,
                                       deathstar_app, social_network_app)
from repro.workloads.replay import (TraceReplay, load_trace, resolve_trace,
                                    sample_alibaba_trace, save_trace)
from repro.workloads.spec import STORAGE, AppSpec, CallSpec, ServiceSpec
from repro.workloads.synthetic import SYNTHETIC_DISTRIBUTIONS, synthetic_app

__all__ = [
    "ServiceSpec",
    "CallSpec",
    "AppSpec",
    "STORAGE",
    "PoissonArrivals",
    "arrival_times",
    "bursty_arrival_times",
    "RateProfile",
    "ConstantProfile",
    "BurstyProfile",
    "DiurnalProfile",
    "MmppProfile",
    "FlashCrowdProfile",
    "PiecewiseProfile",
    "PROFILES",
    "ARRIVAL_NAMES",
    "get_profile",
    "TraceReplay",
    "load_trace",
    "save_trace",
    "sample_alibaba_trace",
    "resolve_trace",
    "SOCIAL_NETWORK_APPS",
    "social_network_app",
    "DEATHSTAR_APPS",
    "deathstar_app",
    "synthetic_app",
    "SYNTHETIC_DISTRIBUTIONS",
    "AlibabaTraceGenerator",
]
