"""Workload generators: service graphs, arrivals, and trace statistics."""

from repro.workloads.alibaba import AlibabaTraceGenerator
from repro.workloads.arrival import PoissonArrivals, arrival_times
from repro.workloads.deathstar import SOCIAL_NETWORK_APPS, social_network_app
from repro.workloads.spec import STORAGE, AppSpec, CallSpec, ServiceSpec
from repro.workloads.synthetic import SYNTHETIC_DISTRIBUTIONS, synthetic_app

__all__ = [
    "ServiceSpec",
    "CallSpec",
    "AppSpec",
    "STORAGE",
    "PoissonArrivals",
    "arrival_times",
    "SOCIAL_NETWORK_APPS",
    "social_network_app",
    "synthetic_app",
    "SYNTHETIC_DISTRIBUTIONS",
    "AlibabaTraceGenerator",
]
