"""Service-graph intermediate representation.

An application is a tree of services: a request to a service executes
compute segments separated by *blocking calls* — synchronous RPCs to
downstream services or remote-storage accesses (Section 2.1).  A service
with N calls has N+1 compute segments.  Per-request segment lengths are
sampled (lognormal around the spec mean), which produces the service-time
variability the schedulers must absorb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.cpu.core_model import SegmentProfile

#: Sentinel call target: a remote storage access rather than another service.
STORAGE = "__storage__"

#: Default memory/branch behaviour of a microservice handler segment.
MICRO_SEGMENT_PROFILE = SegmentProfile(ilp=3.0, l1_mpki=4.0,
                                       l2_miss_fraction=0.10,
                                       branch_misp_mpki=1.0)


@dataclass(frozen=True)
class CallSpec:
    """One synchronous blocking call issued between compute segments."""

    target: str            # service name, or STORAGE

    @property
    def is_storage(self) -> bool:
        return self.target == STORAGE


@dataclass(frozen=True)
class ServiceSpec:
    """Static description of one microservice."""

    name: str
    segment_instructions: float            # mean instructions per segment
    calls: Tuple[CallSpec, ...] = ()
    segment_cv: float = 1.0                # lognormal coeff. of variation
    profile: SegmentProfile = MICRO_SEGMENT_PROFILE
    parallelism: int = 1                   # worker threads per instance

    def __post_init__(self):
        if self.segment_instructions <= 0:
            raise ValueError(f"{self.name}: segment_instructions must be > 0")
        if self.segment_cv < 0:
            raise ValueError(f"{self.name}: segment_cv must be >= 0")

    @property
    def n_segments(self) -> int:
        return len(self.calls) + 1

    def sample_segments(self, rng: np.random.Generator) -> List[float]:
        """Per-request instruction counts for each compute segment."""
        mean = self.segment_instructions
        if self.segment_cv == 0:
            return [mean] * self.n_segments
        sigma2 = math.log(1.0 + self.segment_cv ** 2)
        mu = math.log(mean) - sigma2 / 2.0
        return list(rng.lognormal(mu, math.sqrt(sigma2), size=self.n_segments))


@dataclass(frozen=True)
class AppSpec:
    """An application: a root service plus every reachable service."""

    name: str
    root: str
    services: Dict[str, ServiceSpec] = field(default_factory=dict)

    def __post_init__(self):
        if self.root not in self.services:
            raise ValueError(f"{self.name}: root {self.root!r} not in services")
        for spec in self.services.values():
            for call in spec.calls:
                if not call.is_storage and call.target not in self.services:
                    raise ValueError(
                        f"{self.name}: {spec.name} calls unknown service "
                        f"{call.target!r}")
        self._check_acyclic()

    def _check_acyclic(self):
        state: Dict[str, int] = {}

        def visit(name: str):
            if state.get(name) == 1:
                raise ValueError(f"{self.name}: call cycle through {name!r}")
            if state.get(name) == 2:
                return
            state[name] = 1
            for call in self.services[name].calls:
                if not call.is_storage:
                    visit(call.target)
            state[name] = 2

        visit(self.root)

    def service(self, name: str) -> ServiceSpec:
        return self.services[name]

    def mean_rpc_count(self) -> float:
        """Expected downstream RPCs triggered by one root request."""

        def count(name: str) -> float:
            total = 0.0
            for call in self.services[name].calls:
                total += 1.0
                if not call.is_storage:
                    total += count(call.target)
            return total

        return count(self.root)

    def mean_instructions(self) -> float:
        """Expected total instructions executed per root request."""

        def count(name: str) -> float:
            spec = self.services[name]
            total = spec.segment_instructions * spec.n_segments
            for call in spec.calls:
                if not call.is_storage:
                    total += count(call.target)
            return total

        return count(self.root)
