"""uSuite-style synthetic workloads (Section 5, Figure 20).

"Like prior work [Shinjuku], we also use synthetic benchmarks with three
service time distributions (exponential, lognormal, and bimodal) and 2-6
blocking calls during the execution."

A synthetic app is a single service whose total compute is drawn from the
chosen distribution and split across the segments between blocking
storage calls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
import numpy as np

from repro.workloads.spec import STORAGE, AppSpec, CallSpec, ServiceSpec

#: The three distributions of Figure 20.
SYNTHETIC_DISTRIBUTIONS = ("exponential", "lognormal", "bimodal")


@dataclass(frozen=True)
class SyntheticServiceSpec(ServiceSpec):
    """ServiceSpec whose per-request compute follows a named distribution.

    ``segment_instructions`` is the mean *total* instructions per request
    divided by the number of segments; sampling replaces the lognormal
    segment model with the requested distribution of the total.
    """

    distribution: str = "exponential"
    bimodal_ratio: float = 10.0        # slow mode is 10x the fast mode
    bimodal_slow_frac: float = 0.1     # 10% of requests are slow

    def sample_segments(self, rng: np.random.Generator):
        n = self.n_segments
        mean_total = self.segment_instructions * n
        if self.distribution == "exponential":
            total = rng.exponential(mean_total)
        elif self.distribution == "lognormal":
            sigma2 = math.log(1.0 + 1.0)       # CV = 1
            mu = math.log(mean_total) - sigma2 / 2.0
            total = rng.lognormal(mu, math.sqrt(sigma2))
        elif self.distribution == "bimodal":
            # mean = f*r*x + (1-f)*x  =>  x = mean / (1 + f*(r-1))
            fast = mean_total / (1.0 + self.bimodal_slow_frac
                                 * (self.bimodal_ratio - 1.0))
            slow = fast * self.bimodal_ratio
            total = slow if rng.random() < self.bimodal_slow_frac else fast
        else:
            raise ValueError(f"unknown distribution {self.distribution!r}")
        total = max(total, 1000.0)
        return [total / n] * n


def synthetic_app(distribution: str, mean_service_us: float = 50.0,
                  blocking_calls: int = 4, freq_ghz: float = 2.0,
                  cpi: float = 0.5) -> AppSpec:
    """Build a single-service synthetic app.

    ``mean_service_us`` is the mean total compute time per request on a
    reference core (``freq_ghz``/``cpi`` convert it to instructions);
    ``blocking_calls`` in [2, 6] per the paper.
    """
    if distribution not in SYNTHETIC_DISTRIBUTIONS:
        raise ValueError(f"unknown distribution {distribution!r}")
    if not 2 <= blocking_calls <= 6:
        raise ValueError("the paper uses 2-6 blocking calls")
    total_instr = mean_service_us * 1000.0 * freq_ghz / cpi
    n_segments = blocking_calls + 1
    spec = SyntheticServiceSpec(
        name=f"synthetic-{distribution}",
        segment_instructions=total_instr / n_segments,
        calls=tuple(CallSpec(STORAGE) for __ in range(blocking_calls)),
        distribution=distribution,
    )
    return AppSpec(name=f"Syn-{distribution}", root=spec.name,
                   services={spec.name: spec})
