"""Statistical model of the Alibaba production traces (Figures 2, 4, 5).

The paper characterizes requests across 10,000 servers; we have no access
to the raw traces, so this module generates samples whose marginals match
every number the paper reports:

* per-server load (Fig 2): median ~500 RPS, ~20% of seconds >= 1000 RPS,
  ~5% >= 1500 RPS  -> lognormal(ln 500, 0.75);
* CPU utilization per request (Fig 4): median ~14%, 99% below 60%
  -> lognormal(ln 0.14, 0.626) clipped to [0, 1];
* RPC invocations per request (Fig 5): median ~4.2, ~5% >= 16
  -> lognormal(ln 4.2, 0.813) rounded;
* request duration (Sec 3.3): 36.7% of invocations < 1 ms, geometric
  mean of the rest 2.8 ms -> lognormal(0.374, 1.101) in ms (solved from
  the two constraints; see the derivation in the docstring of
  :meth:`AlibabaTraceGenerator.request_duration_ms`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np


@dataclass
class AlibabaTraceGenerator:
    """Samples per-request / per-server statistics matching the paper."""

    rng: np.random.Generator

    # Lognormal parameters solved from the paper's reported quantiles.
    RPS_MU = float(np.log(500.0))
    RPS_SIGMA = 0.75
    UTIL_MU = float(np.log(0.14))
    UTIL_SIGMA = 0.626
    RPC_MU = float(np.log(4.2))
    RPC_SIGMA = 0.813
    DUR_MU = 0.374      # ln(ms)
    DUR_SIGMA = 1.101

    def server_rps(self, n: int) -> np.ndarray:
        """Per-second request rates seen by a server (Figure 2)."""
        return self.rng.lognormal(self.RPS_MU, self.RPS_SIGMA, size=n)

    def cpu_utilization(self, n: int) -> np.ndarray:
        """Per-request CPU utilization in [0, 1] (Figure 4)."""
        return np.clip(self.rng.lognormal(self.UTIL_MU, self.UTIL_SIGMA,
                                          size=n), 0.0, 1.0)

    def rpc_count(self, n: int) -> np.ndarray:
        """Downstream RPC invocations per request (Figure 5)."""
        return np.maximum(0, np.round(
            self.rng.lognormal(self.RPC_MU, self.RPC_SIGMA, size=n))
        ).astype(np.int64)

    def request_duration_ms(self, n: int) -> np.ndarray:
        """Request durations in ms (Section 3.3).

        Constraints: P(X < 1 ms) = 0.367 and geomean(X | X >= 1 ms) =
        2.8 ms.  For ln X ~ N(mu, sigma):
        P = Phi((0 - mu)/sigma) = 0.367  ->  mu = 0.34 sigma;
        E[ln X | ln X > 0] = mu + sigma * phi(a)/(1 - Phi(a)) with
        a = -0.34, hazard 0.5948 -> 0.34 sigma + 0.5948 sigma = ln 2.8
        -> sigma = 1.101, mu = 0.374.
        """
        return self.rng.lognormal(self.DUR_MU, self.DUR_SIGMA, size=n)

    def summary(self, n: int = 200_000) -> Dict[str, float]:
        """Headline statistics (the numbers quoted in the paper text)."""
        rps = self.server_rps(n)
        util = self.cpu_utilization(n)
        rpcs = self.rpc_count(n)
        dur = self.request_duration_ms(n)
        return {
            "rps_median": float(np.median(rps)),
            "rps_frac_ge_1000": float((rps >= 1000).mean()),
            "rps_frac_ge_1500": float((rps >= 1500).mean()),
            "util_median": float(np.median(util)),
            "util_p99": float(np.percentile(util, 99)),
            "rpc_median": float(np.median(rpcs)),
            "rpc_frac_ge_16": float((rpcs >= 16).mean()),
            "dur_frac_lt_1ms": float((dur < 1.0).mean()),
            "dur_geomean_ge_1ms": float(np.exp(np.mean(np.log(dur[dur >= 1.0])))),
        }


def cdf(values: np.ndarray, grid: np.ndarray) -> np.ndarray:
    """Empirical CDF of ``values`` evaluated on ``grid`` (for the figures)."""
    values = np.sort(values)
    return np.searchsorted(values, grid, side="right") / len(values)
