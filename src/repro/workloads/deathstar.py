"""DeathStarBench service graphs: SocialNetwork, Media, Hotel.

The paper evaluates the 8 SocialNetwork request types of DeathStarBench
(Figure 14): Text, SGraph, User, PstStr, UsrMnt, HomeT, CPost, UrlShort.
We model each as an :class:`~repro.workloads.spec.AppSpec` rooted at the
corresponding service, over a shared pool of services whose fanout and
compute are calibrated to the paper's characterization: the average
request executes ~120 us of compute and performs ~3.1 RPC invocations
(Section 3.3), with CPost the heaviest orchestration and UrlShort the
lightest (Figures 14/19).

Two further DeathStarBench applications (per *The Architectural
Implications of Cloud Microservices*) widen the scenario pool:

* **Media Service** — review composition (MCompose: a 6-way unique-id /
  movie-id / text / rating / user / review-storage orchestration) and
  page reads (MPage: movie info + plot + cast + reviews);
* **Hotel Reservation** — front-end search (HSearch: geo + rates behind
  a search aggregator, plus profiles), booking (HReserve), and
  recommendations (HRecommend).

Each application keeps its own service pool (no cross-app calls);
:data:`DEATHSTAR_APPS` is the combined label -> :class:`AppSpec`
registry the CLI ``--app`` flag resolves against.
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import STORAGE, AppSpec, CallSpec, ServiceSpec

K = 1000.0


def _storage(n: int = 1):
    return tuple(CallSpec(STORAGE) for __ in range(n))


#: Shared service pool (SocialNetwork microservices).
SERVICES: Dict[str, ServiceSpec] = {
    spec.name: spec
    for spec in [
        ServiceSpec("urlshorten", segment_instructions=225 * K,
                    calls=_storage(1)),
        ServiceSpec("usermention", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("userservice", segment_instructions=175 * K,
                    calls=_storage(1)),
        ServiceSpec("poststorage", segment_instructions=175 * K,
                    calls=_storage(1)),
        ServiceSpec("socialgraph", segment_instructions=150 * K,
                    calls=_storage(2)),
        ServiceSpec("text", segment_instructions=150 * K,
                    calls=(CallSpec("urlshorten"), CallSpec("usermention"))),
        ServiceSpec("hometimeline", segment_instructions=125 * K,
                    calls=(CallSpec("socialgraph"), CallSpec("poststorage"),
                           CallSpec(STORAGE))),
        ServiceSpec("composepost", segment_instructions=150 * K,
                    calls=(CallSpec("text"), CallSpec("userservice"),
                           CallSpec("poststorage"), CallSpec(STORAGE))),
    ]
}

#: Figure label -> root service of that request type.
APP_ROOTS: Dict[str, str] = {
    "Text": "text",
    "SGraph": "socialgraph",
    "User": "userservice",
    "PstStr": "poststorage",
    "UsrMnt": "usermention",
    "HomeT": "hometimeline",
    "CPost": "composepost",
    "UrlShort": "urlshorten",
}


#: Media Service pool (review composition + page reads).
MEDIA_SERVICES: Dict[str, ServiceSpec] = {
    spec.name: spec
    for spec in [
        ServiceSpec("uniqueid", segment_instructions=100 * K),
        ServiceSpec("movieid", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("mediatext", segment_instructions=150 * K),
        ServiceSpec("rating", segment_instructions=125 * K,
                    calls=_storage(1)),
        ServiceSpec("mediauser", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("reviewstorage", segment_instructions=175 * K,
                    calls=_storage(1)),
        ServiceSpec("movieinfo", segment_instructions=175 * K,
                    calls=_storage(1)),
        ServiceSpec("plot", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("castinfo", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("composereview", segment_instructions=175 * K,
                    calls=(CallSpec("uniqueid"), CallSpec("movieid"),
                           CallSpec("mediatext"), CallSpec("rating"),
                           CallSpec("mediauser"),
                           CallSpec("reviewstorage"))),
        ServiceSpec("readpage", segment_instructions=150 * K,
                    calls=(CallSpec("movieinfo"), CallSpec("plot"),
                           CallSpec("castinfo"),
                           CallSpec("reviewstorage"))),
    ]
}

#: Hotel Reservation pool (search front-end, booking, recommendations).
HOTEL_SERVICES: Dict[str, ServiceSpec] = {
    spec.name: spec
    for spec in [
        ServiceSpec("geo", segment_instructions=125 * K,
                    calls=_storage(1)),
        ServiceSpec("hotelrate", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("hotelprofile", segment_instructions=175 * K,
                    calls=_storage(2)),
        ServiceSpec("hoteluser", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("reservation", segment_instructions=175 * K,
                    calls=_storage(2)),
        ServiceSpec("hotelsearch", segment_instructions=150 * K,
                    calls=(CallSpec("geo"), CallSpec("hotelrate"))),
        ServiceSpec("hotelfrontend", segment_instructions=125 * K,
                    calls=(CallSpec("hotelsearch"),
                           CallSpec("hotelprofile"))),
        ServiceSpec("bookhotel", segment_instructions=150 * K,
                    calls=(CallSpec("hoteluser"), CallSpec("reservation"),
                           CallSpec("hotelrate"))),
        ServiceSpec("recommend", segment_instructions=150 * K,
                    calls=(CallSpec("hotelprofile"), CallSpec(STORAGE))),
    ]
}

#: Media Service request types (label -> root service).
MEDIA_APP_ROOTS: Dict[str, str] = {
    "MCompose": "composereview",
    "MPage": "readpage",
    "MInfo": "movieinfo",
}

#: Hotel Reservation request types (label -> root service).
HOTEL_APP_ROOTS: Dict[str, str] = {
    "HSearch": "hotelfrontend",
    "HReserve": "bookhotel",
    "HRecommend": "recommend",
}

#: label -> (service pool, root) across the three applications.
_ALL_ROOTS: Dict[str, tuple] = {}
for __label, __root in APP_ROOTS.items():
    _ALL_ROOTS[__label] = (SERVICES, __root)
for __label, __root in MEDIA_APP_ROOTS.items():
    _ALL_ROOTS[__label] = (MEDIA_SERVICES, __root)
for __label, __root in HOTEL_APP_ROOTS.items():
    _ALL_ROOTS[__label] = (HOTEL_SERVICES, __root)
del __label, __root


def _reachable(root: str,
               pool: Dict[str, ServiceSpec] = None) -> Dict[str, ServiceSpec]:
    pool = SERVICES if pool is None else pool
    out: Dict[str, ServiceSpec] = {}

    def visit(name: str):
        if name in out:
            return
        spec = pool[name]
        out[name] = spec
        for call in spec.calls:
            if not call.is_storage:
                visit(call.target)

    visit(root)
    return out


def deathstar_app(label: str, compute_scale: float = 1.0,
                  segment_cv: float = None) -> AppSpec:
    """Build the AppSpec for any DeathStarBench request type by label.

    Spans all three applications (SocialNetwork, Media Service, Hotel
    Reservation); see :data:`_ALL_ROOTS` for the label set.

    ``compute_scale`` multiplies every service's per-segment instruction
    count; the characterization experiments (Figures 3, 6, 7) use heavier
    requests to reach the utilizations the paper reports at 50K RPS.
    ``segment_cv`` overrides the per-segment variability (e.g. the
    queue-granularity study uses a tight 0.3 so queueing effects are not
    masked by intrinsic service-time spread).
    """
    if label not in _ALL_ROOTS:
        raise KeyError(f"unknown DeathStarBench app {label!r}; "
                       f"expected one of {sorted(_ALL_ROOTS)}")
    if compute_scale <= 0:
        raise ValueError("compute_scale must be positive")
    pool, root = _ALL_ROOTS[label]
    services = _reachable(root, pool)
    if compute_scale != 1.0 or segment_cv is not None:
        from dataclasses import replace
        overrides = {}
        if segment_cv is not None:
            overrides["segment_cv"] = segment_cv
        services = {
            name: replace(spec, segment_instructions=
                          spec.segment_instructions * compute_scale,
                          **overrides)
            for name, spec in services.items()}
    return AppSpec(name=label, root=root, services=services)


def social_network_app(label: str, compute_scale: float = 1.0,
                       segment_cv: float = None) -> AppSpec:
    """Build the AppSpec for one of the 8 SocialNetwork request types."""
    if label not in APP_ROOTS:
        raise KeyError(f"unknown SocialNetwork app {label!r}; "
                       f"expected one of {sorted(APP_ROOTS)}")
    return deathstar_app(label, compute_scale=compute_scale,
                         segment_cv=segment_cv)


#: All 8 SocialNetwork request types, in the paper's figure order.
SOCIAL_NETWORK_APPS: Dict[str, AppSpec] = {
    label: social_network_app(label) for label in APP_ROOTS
}

#: Every DeathStarBench request type across the three applications.
DEATHSTAR_APPS: Dict[str, AppSpec] = {
    label: deathstar_app(label) for label in _ALL_ROOTS
}
