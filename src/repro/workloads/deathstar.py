"""DeathStarBench SocialNetwork service graphs.

The paper evaluates the 8 SocialNetwork request types of DeathStarBench
(Figure 14): Text, SGraph, User, PstStr, UsrMnt, HomeT, CPost, UrlShort.
We model each as an :class:`~repro.workloads.spec.AppSpec` rooted at the
corresponding service, over a shared pool of services whose fanout and
compute are calibrated to the paper's characterization: the average
request executes ~120 us of compute and performs ~3.1 RPC invocations
(Section 3.3), with CPost the heaviest orchestration and UrlShort the
lightest (Figures 14/19).
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.spec import STORAGE, AppSpec, CallSpec, ServiceSpec

K = 1000.0


def _storage(n: int = 1):
    return tuple(CallSpec(STORAGE) for __ in range(n))


#: Shared service pool (SocialNetwork microservices).
SERVICES: Dict[str, ServiceSpec] = {
    spec.name: spec
    for spec in [
        ServiceSpec("urlshorten", segment_instructions=225 * K,
                    calls=_storage(1)),
        ServiceSpec("usermention", segment_instructions=150 * K,
                    calls=_storage(1)),
        ServiceSpec("userservice", segment_instructions=175 * K,
                    calls=_storage(1)),
        ServiceSpec("poststorage", segment_instructions=175 * K,
                    calls=_storage(1)),
        ServiceSpec("socialgraph", segment_instructions=150 * K,
                    calls=_storage(2)),
        ServiceSpec("text", segment_instructions=150 * K,
                    calls=(CallSpec("urlshorten"), CallSpec("usermention"))),
        ServiceSpec("hometimeline", segment_instructions=125 * K,
                    calls=(CallSpec("socialgraph"), CallSpec("poststorage"),
                           CallSpec(STORAGE))),
        ServiceSpec("composepost", segment_instructions=150 * K,
                    calls=(CallSpec("text"), CallSpec("userservice"),
                           CallSpec("poststorage"), CallSpec(STORAGE))),
    ]
}

#: Figure label -> root service of that request type.
APP_ROOTS: Dict[str, str] = {
    "Text": "text",
    "SGraph": "socialgraph",
    "User": "userservice",
    "PstStr": "poststorage",
    "UsrMnt": "usermention",
    "HomeT": "hometimeline",
    "CPost": "composepost",
    "UrlShort": "urlshorten",
}


def _reachable(root: str) -> Dict[str, ServiceSpec]:
    out: Dict[str, ServiceSpec] = {}

    def visit(name: str):
        if name in out:
            return
        spec = SERVICES[name]
        out[name] = spec
        for call in spec.calls:
            if not call.is_storage:
                visit(call.target)

    visit(root)
    return out


def social_network_app(label: str, compute_scale: float = 1.0,
                       segment_cv: float = None) -> AppSpec:
    """Build the AppSpec for one of the 8 request types by figure label.

    ``compute_scale`` multiplies every service's per-segment instruction
    count; the characterization experiments (Figures 3, 6, 7) use heavier
    requests to reach the utilizations the paper reports at 50K RPS.
    ``segment_cv`` overrides the per-segment variability (e.g. the
    queue-granularity study uses a tight 0.3 so queueing effects are not
    masked by intrinsic service-time spread).
    """
    if label not in APP_ROOTS:
        raise KeyError(f"unknown SocialNetwork app {label!r}; "
                       f"expected one of {sorted(APP_ROOTS)}")
    if compute_scale <= 0:
        raise ValueError("compute_scale must be positive")
    root = APP_ROOTS[label]
    services = _reachable(root)
    if compute_scale != 1.0 or segment_cv is not None:
        from dataclasses import replace
        overrides = {}
        if segment_cv is not None:
            overrides["segment_cv"] = segment_cv
        services = {
            name: replace(spec, segment_instructions=
                          spec.segment_instructions * compute_scale,
                          **overrides)
            for name, spec in services.items()}
    return AppSpec(name=label, root=root, services=services)


#: All 8 request types, in the paper's figure order.
SOCIAL_NETWORK_APPS: Dict[str, AppSpec] = {
    label: social_network_app(label) for label in APP_ROOTS
}
