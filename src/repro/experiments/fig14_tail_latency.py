"""Figure 14: end-to-end tail (P99) latency, 3 systems x 8 apps x 3 loads.

Paper: uManycore cuts tail latency vs ServerClass by 6.3x / 8.3x / 16.7x
at 5K / 10K / 15K RPS, and vs ScaleOut by 5.4x / 6.5x / 7.4x.
"""

from __future__ import annotations

from repro.experiments.common import APP_ORDER, PAPER_LOADS, Settings, \
    format_table
from repro.experiments.latency_matrix import reduction_vs, run


def main(settings: Settings = Settings(), progress: bool = True) -> None:
    """Print this figure's tables to stdout."""
    matrix = run(settings=settings, progress=progress)
    paper_sc = {5000: 6.3, 10000: 8.3, 15000: 16.7}
    paper_so = {5000: 5.4, 10000: 6.5, 15000: 7.4}
    for load in PAPER_LOADS:
        rows = []
        for app in APP_ORDER:
            sc = matrix[("ServerClass", app, load)].p99_ns
            so = matrix[("ScaleOut", app, load)].p99_ns
            um = matrix[("uManycore", app, load)].p99_ns
            rows.append([app, f"{sc/1e6:.2f}", f"{so/sc:.3f}",
                         f"{um/sc:.3f}"])
        print(f"\nFigure 14 — load {load//1000}K RPS "
              f"(ServerClass ms; others normalized to ServerClass)")
        print(format_table(["app", "ServerClass(ms)", "ScaleOut",
                            "uManycore"], rows))
        sc_x = reduction_vs(matrix, "p99_ns", "ServerClass", load)
        so_x = reduction_vs(matrix, "p99_ns", "ScaleOut", load)
        print(f"tail reduction: vs ServerClass {sc_x:.1f}x "
              f"(paper {paper_sc[load]}x); vs ScaleOut {so_x:.1f}x "
              f"(paper {paper_so[load]}x)")


if __name__ == "__main__":
    main()
