"""Shared harness for the end-to-end latency matrix (Figures 14, 16, 17).

One matrix of runs — 3 systems x 8 SocialNetwork request types x 3 load
levels — feeds the tail-latency figure (14), the average-latency figure
(16) and the tail-to-average figure (17).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.common import APP_ORDER, PAPER_LOADS, Settings, \
    geomean, run_matrix
from repro.systems.cluster import RunResult
from repro.systems.configs import SCALEOUT, SERVERCLASS, UMANYCORE
from repro.workloads.deathstar import social_network_app

SYSTEMS = (UMANYCORE, SCALEOUT, SERVERCLASS)


def run(loads: Sequence[int] = PAPER_LOADS,
        apps: Sequence[str] = tuple(APP_ORDER),
        settings: Settings = Settings(),
        progress: bool = False) -> Dict[Tuple[str, str, float], RunResult]:
    """Run the shared 3-systems x apps x loads latency matrix."""
    app_specs = [social_network_app(name) for name in apps]
    return run_matrix(SYSTEMS, app_specs, loads, settings, progress=progress)


def reduction_vs(matrix, metric: str, baseline: str, load: int,
                 apps: Sequence[str] = tuple(APP_ORDER)) -> float:
    """Geomean of baseline/uManycore for ``metric`` at one load."""
    ratios = []
    for app in apps:
        um = getattr(matrix[("uManycore", app, load)], metric)
        base = getattr(matrix[(baseline, app, load)], metric)
        ratios.append(base / um)
    return geomean(ratios)
