"""Figure 2: CDF of Requests per Second received by a server.

Paper: median ~500 RPS; 20 % of the time >= 1000 RPS; 5 % >= 1500 RPS.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.ascii_plot import sparkline
from repro.experiments.common import format_table
from repro.workloads.alibaba import AlibabaTraceGenerator, cdf


def run(n: int = 200_000, seed: int = 7) -> Dict[str, np.ndarray]:
    """Compute this figure's data grid (see the module docstring)."""
    gen = AlibabaTraceGenerator(np.random.default_rng(seed))
    rps = gen.server_rps(n)
    grid = np.arange(0, 2001, 250, dtype=float)
    return {"grid": grid, "cdf": cdf(rps, grid), "samples": rps}


def main() -> None:
    """Print this figure's tables to stdout."""
    r = run()
    rows = [[f"{int(g)}", f"{c:.3f}"] for g, c in zip(r["grid"], r["cdf"])]
    print("Figure 2: CDF of per-server load (RPS)")
    print(format_table(["RPS", "CDF"], rows))
    print("cdf:", sparkline(r["cdf"], lo=0.0, hi=1.0))
    samples = r["samples"]
    print(f"\nmedian = {np.median(samples):.0f} RPS (paper ~500)")
    print(f"P(load >= 1000) = {(samples >= 1000).mean():.3f} (paper ~0.20)")
    print(f"P(load >= 1500) = {(samples >= 1500).mean():.3f} (paper ~0.05)")


if __name__ == "__main__":
    main()
