"""Figure 18: maximum throughput without QoS violations.

Paper setup: QoS is violated when a request takes more than 5x the
contention-free average; the figure reports the highest load each system
sustains.  Paper result: uManycore reaches 13.9-17.1x (avg 15.5x) the
ServerClass throughput and 4.3x ScaleOut's, with absolute uManycore
throughput of 150-254 KRPS per server across the apps.

We binary-search the per-server load: a run passes when its P99 stays
under 5x the contention-free average (measured at a very light load) and
nothing is rejected.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import Settings, format_table, geomean, \
    point_for
from repro.hybrid import saturation_estimate_rps
from repro.metrics.throughput import qos_threshold_ns
from repro.runner import SweepPoint, execution, run_points
from repro.systems.configs import SCALEOUT, SERVERCLASS, UMANYCORE
from repro.workloads.deathstar import social_network_app

SYSTEMS = (UMANYCORE, SCALEOUT, SERVERCLASS)
DEFAULT_APPS = ("Text", "SGraph", "CPost", "UrlShort")


def _passes(result, threshold_ns: float) -> bool:
    return result.p99_ns <= threshold_ns and result.rejected == 0


def max_throughputs(pairs: Sequence[Tuple], settings: Settings,
                    low: float = 1000.0, high: float = 300_000.0,
                    iterations: int = 8,
                    speculate: bool = None) -> List[float]:
    """Lockstep binary search over many (config, app) pairs at once.

    Every round batches the probe loads of *all* still-active pairs
    into one :func:`~repro.runner.run_points` call, so the search
    parallelises across pairs while each pair runs the exact sequence
    of simulations the serial per-pair search would — the returned
    loads are independent of the jobs count.

    With ``speculate`` (the default whenever the execution context has
    more than one worker), each round *also* batches the probe the
    next bisection level would issue if the current one lands the way
    the analytic M/G/k saturation estimate predicts
    (:func:`repro.hybrid.saturation_estimate_rps`: pass below the
    estimated saturating load, fail above).  A correct prediction
    consumes two levels per round; a wrong one wastes the speculative
    point.  Probes are deterministic simulations keyed only by their
    load, so the accepted bracket sequence — and the returned loads —
    are byte-identical with speculation on, off, or partially wrong.

    Args:
        pairs: (config, app) pairs to search, in result order.
        settings: Scale knobs for the probe runs.
        low: Load that must pass for the search to proceed; returned
            as-is for pairs that fail it.
        high: Upper bracket of the search (never probed directly).
        iterations: Bisection levels; the bracket shrinks 2^-it.
        speculate: Batch analytic-predicted next-level probes; None
            resolves to ``execution().jobs > 1`` (serial runs keep
            the classic one-probe-per-round schedule exactly).

    Returns:
        The largest QoS-compliant per-server load found for each pair,
        positionally aligned with ``pairs``.
    """
    if speculate is None:
        speculate = execution().jobs > 1
    # Round 0: contention-free calibration sets each pair's threshold.
    thresholds = [
        qos_threshold_ns(r.mean_ns) for r in run_points(
            [SweepPoint(config=config, app=app, rps=200.0, n_servers=1,
                        duration_s=min(0.05, settings.duration_s * 2),
                        seed=settings.seed, warmup_fraction=0.1)
             for config, app in pairs])]
    # Round 1: pairs that fail at `low` drop out and just return it.
    lows = [low] * len(pairs)
    highs = [high] * len(pairs)
    first = run_points([point_for(config, app, low, settings)
                        for config, app in pairs])
    saturation = [saturation_estimate_rps(config, app)
                  for config, app in pairs] if speculate else None
    remaining = {i: iterations for i, r in enumerate(first)
                 if _passes(r, thresholds[i])}
    # Bisection rounds: one batched probe per round for every live
    # pair (plus its predicted next-level probe when speculating).
    while remaining:
        plan, batch = [], []
        for i in sorted(remaining):
            config, app = pairs[i]
            mid = (lows[i] + highs[i]) / 2.0
            batch.append(point_for(config, app, mid, settings))
            spec = None
            if speculate and remaining[i] > 1:
                spec = ((mid + highs[i]) / 2.0 if mid <= saturation[i]
                        else (lows[i] + mid) / 2.0)
                batch.append(point_for(config, app, spec, settings))
            plan.append((i, mid, spec))
        results = iter(run_points(batch))
        for i, mid, spec in plan:
            r = next(results)
            spec_r = next(results) if spec is not None else None
            if _passes(r, thresholds[i]):
                lows[i] = mid
            else:
                highs[i] = mid
            remaining[i] -= 1
            if spec_r is not None and remaining[i] > 0 \
                    and spec == (lows[i] + highs[i]) / 2.0:
                # Prediction was right: the speculative result IS the
                # next level's probe — consume it for free.
                if _passes(spec_r, thresholds[i]):
                    lows[i] = spec
                else:
                    highs[i] = spec
                remaining[i] -= 1
            if remaining[i] <= 0:
                del remaining[i]
    return lows


def max_throughput(config, app, settings: Settings,
                   low: float = 1000.0, high: float = 300_000.0,
                   iterations: int = 8) -> float:
    """Binary search for the largest QoS-compliant per-server load."""
    return max_throughputs([(config, app)], settings, low=low, high=high,
                           iterations=iterations)[0]


def run(apps: Sequence[str] = DEFAULT_APPS,
        settings: Settings = Settings(n_servers=1, duration_s=0.02)
        ) -> Dict[Tuple[str, str], float]:
    """Max QoS-compliant throughput per (system, app) pair."""
    pairs = [(config, social_network_app(app_name))
             for app_name in apps for config in SYSTEMS]
    loads = max_throughputs(pairs, settings)
    return {(config.name, app.name): load
            for (config, app), load in zip(pairs, loads)}


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    apps = sorted({app for __, app in results})
    rows = []
    for app in apps:
        um = results[("uManycore", app)]
        rows.append([app, f"{um/1000:.0f}K",
                     f"{um/results[('ScaleOut', app)]:.1f}x",
                     f"{um/results[('ServerClass', app)]:.1f}x"])
    print("Figure 18: max QoS-compliant throughput per server")
    print(format_table(["app", "uManycore", "vs ScaleOut",
                        "vs ServerClass"], rows))
    sc = geomean([results[("uManycore", a)] / results[("ServerClass", a)]
                  for a in apps])
    so = geomean([results[("uManycore", a)] / results[("ScaleOut", a)]
                  for a in apps])
    print(f"\naverage: {sc:.1f}x over ServerClass (paper 15.5x), "
          f"{so:.1f}x over ScaleOut (paper 4.3x)")


if __name__ == "__main__":
    main()
