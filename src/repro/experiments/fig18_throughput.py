"""Figure 18: maximum throughput without QoS violations.

Paper setup: QoS is violated when a request takes more than 5x the
contention-free average; the figure reports the highest load each system
sustains.  Paper result: uManycore reaches 13.9-17.1x (avg 15.5x) the
ServerClass throughput and 4.3x ScaleOut's, with absolute uManycore
throughput of 150-254 KRPS per server across the apps.

We binary-search the per-server load: a run passes when its P99 stays
under 5x the contention-free average (measured at a very light load) and
nothing is rejected.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.common import Settings, format_table, geomean, \
    point_for
from repro.metrics.throughput import qos_threshold_ns
from repro.runner import SweepPoint, run_points
from repro.systems.configs import SCALEOUT, SERVERCLASS, UMANYCORE
from repro.workloads.deathstar import social_network_app

SYSTEMS = (UMANYCORE, SCALEOUT, SERVERCLASS)
DEFAULT_APPS = ("Text", "SGraph", "CPost", "UrlShort")


def _passes(result, threshold_ns: float) -> bool:
    return result.p99_ns <= threshold_ns and result.rejected == 0


def max_throughputs(pairs: Sequence[Tuple], settings: Settings,
                    low: float = 1000.0, high: float = 300_000.0,
                    iterations: int = 8) -> List[float]:
    """Lockstep binary search over many (config, app) pairs at once.

    Every round batches the probe loads of *all* still-active pairs
    into one :func:`~repro.runner.run_points` call, so the search
    parallelises across pairs while each pair runs the exact sequence
    of simulations the serial per-pair search would — the returned
    loads are independent of the jobs count.

    Args:
        pairs: (config, app) pairs to search, in result order.
        settings: Scale knobs for the probe runs.
        low: Load that must pass for the search to proceed; returned
            as-is for pairs that fail it.
        high: Upper bracket of the search (never probed directly).
        iterations: Bisection rounds; the bracket shrinks 2^-it.

    Returns:
        The largest QoS-compliant per-server load found for each pair,
        positionally aligned with ``pairs``.
    """
    # Round 0: contention-free calibration sets each pair's threshold.
    thresholds = [
        qos_threshold_ns(r.mean_ns) for r in run_points(
            [SweepPoint(config=config, app=app, rps=200.0, n_servers=1,
                        duration_s=min(0.05, settings.duration_s * 2),
                        seed=settings.seed, warmup_fraction=0.1)
             for config, app in pairs])]
    # Round 1: pairs that fail at `low` drop out and just return it.
    lows = [low] * len(pairs)
    highs = [high] * len(pairs)
    first = run_points([point_for(config, app, low, settings)
                        for config, app in pairs])
    active = [i for i, r in enumerate(first)
              if _passes(r, thresholds[i])]
    # Bisection rounds: one batched probe per round for every live pair.
    for __ in range(iterations):
        if not active:
            break
        mids = [(lows[i] + highs[i]) / 2.0 for i in active]
        probes = run_points(
            [point_for(pairs[i][0], pairs[i][1], mid, settings)
             for i, mid in zip(active, mids)])
        for i, mid, r in zip(active, mids, probes):
            if _passes(r, thresholds[i]):
                lows[i] = mid
            else:
                highs[i] = mid
    return lows


def max_throughput(config, app, settings: Settings,
                   low: float = 1000.0, high: float = 300_000.0,
                   iterations: int = 8) -> float:
    """Binary search for the largest QoS-compliant per-server load."""
    return max_throughputs([(config, app)], settings, low=low, high=high,
                           iterations=iterations)[0]


def run(apps: Sequence[str] = DEFAULT_APPS,
        settings: Settings = Settings(n_servers=1, duration_s=0.02)
        ) -> Dict[Tuple[str, str], float]:
    """Max QoS-compliant throughput per (system, app) pair."""
    pairs = [(config, social_network_app(app_name))
             for app_name in apps for config in SYSTEMS]
    loads = max_throughputs(pairs, settings)
    return {(config.name, app.name): load
            for (config, app), load in zip(pairs, loads)}


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    apps = sorted({app for __, app in results})
    rows = []
    for app in apps:
        um = results[("uManycore", app)]
        rows.append([app, f"{um/1000:.0f}K",
                     f"{um/results[('ScaleOut', app)]:.1f}x",
                     f"{um/results[('ServerClass', app)]:.1f}x"])
    print("Figure 18: max QoS-compliant throughput per server")
    print(format_table(["app", "uManycore", "vs ScaleOut",
                        "vs ServerClass"], rows))
    sc = geomean([results[("uManycore", a)] / results[("ServerClass", a)]
                  for a in apps])
    so = geomean([results[("uManycore", a)] / results[("ScaleOut", a)]
                  for a in apps])
    print(f"\naverage: {sc:.1f}x over ServerClass (paper 15.5x), "
          f"{so:.1f}x over ScaleOut (paper 4.3x)")


if __name__ == "__main__":
    main()
