"""Figure 18: maximum throughput without QoS violations.

Paper setup: QoS is violated when a request takes more than 5x the
contention-free average; the figure reports the highest load each system
sustains.  Paper result: uManycore reaches 13.9-17.1x (avg 15.5x) the
ServerClass throughput and 4.3x ScaleOut's, with absolute uManycore
throughput of 150-254 KRPS per server across the apps.

We binary-search the per-server load: a run passes when its P99 stays
under 5x the contention-free average (measured at a very light load) and
nothing is rejected.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.experiments.common import Settings, format_table, geomean
from repro.metrics.throughput import qos_threshold_ns
from repro.systems.cluster import simulate
from repro.systems.configs import SCALEOUT, SERVERCLASS, UMANYCORE
from repro.workloads.deathstar import social_network_app

SYSTEMS = (UMANYCORE, SCALEOUT, SERVERCLASS)
DEFAULT_APPS = ("Text", "SGraph", "CPost", "UrlShort")


def _passes(config, app, rps: float, threshold_ns: float,
            settings: Settings) -> bool:
    r = simulate(config, app, rps_per_server=rps,
                 n_servers=settings.n_servers,
                 duration_s=settings.duration_s, seed=settings.seed,
                 warmup_fraction=settings.warmup_fraction)
    return r.p99_ns <= threshold_ns and r.rejected == 0


def max_throughput(config, app, settings: Settings,
                   low: float = 1000.0, high: float = 300_000.0,
                   iterations: int = 8) -> float:
    """Binary search for the largest QoS-compliant per-server load."""
    calib = simulate(config, app, rps_per_server=200.0,
                     n_servers=1, duration_s=min(0.05, settings.duration_s * 2),
                     seed=settings.seed, warmup_fraction=0.1)
    threshold = qos_threshold_ns(calib.mean_ns)
    if not _passes(config, app, low, threshold, settings):
        return low
    for __ in range(iterations):
        mid = (low + high) / 2.0
        if _passes(config, app, mid, threshold, settings):
            low = mid
        else:
            high = mid
    return low


def run(apps: Sequence[str] = DEFAULT_APPS,
        settings: Settings = Settings(n_servers=1, duration_s=0.02)
        ) -> Dict[Tuple[str, str], float]:
    out: Dict[Tuple[str, str], float] = {}
    for app_name in apps:
        app = social_network_app(app_name)
        for config in SYSTEMS:
            out[(config.name, app_name)] = max_throughput(
                config, app, settings)
    return out


def main() -> None:
    results = run()
    apps = sorted({app for __, app in results})
    rows = []
    for app in apps:
        um = results[("uManycore", app)]
        rows.append([app, f"{um/1000:.0f}K",
                     f"{um/results[('ScaleOut', app)]:.1f}x",
                     f"{um/results[('ServerClass', app)]:.1f}x"])
    print("Figure 18: max QoS-compliant throughput per server")
    print(format_table(["app", "uManycore", "vs ScaleOut",
                        "vs ServerClass"], rows))
    sc = geomean([results[("uManycore", a)] / results[("ServerClass", a)]
                  for a in apps])
    so = geomean([results[("uManycore", a)] / results[("ScaleOut", a)]
                  for a in apps])
    print(f"\naverage: {sc:.1f}x over ServerClass (paper 15.5x), "
          f"{so:.1f}x over ScaleOut (paper 4.3x)")


if __name__ == "__main__":
    main()
