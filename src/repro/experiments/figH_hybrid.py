"""Figure H (extension): the analytic steady-state fast path.

Not a paper figure — the question here is about the *simulator*, not
the CPU: how much wall clock does :mod:`repro.hybrid` save, and what
does its answer cost in accuracy?  For each Fig. 14 load level the same
seeds run twice over the reduced-scale μManycore rack: fully detailed,
and with the hybrid fast path armed (detailed warm-up, steady-state
detection, tail calibration, then analytic completions under a
drift/fault guard).

Accuracy is scored on *pooled* raw latencies across the seeds —
tail quantiles do not compose, and single-run p99 estimates at this
mass carry ~10% sampling noise that would drown the signal — and
speedup on summed wall clock.  The points run in-process (never
through the result cache): a cached result has no honest wall clock.

The headline row is the mid load (10K RPS/server): the fast path must
report >=3x speedup with a pooled-p99 error <=5% there.  At the low
load commits come late (fewer roots per window -> longer calibration)
and the speedup is modest; near saturation the elided fraction — and
the payoff — is largest.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional, Tuple

from repro.experiments.common import PAPER_LOADS, Settings, format_table
from repro.hybrid import HybridConfig
from repro.runner import execution
from repro.systems.cluster import ClusterSimulation
from repro.systems.configs import UMANYCORE
from repro.workloads.deathstar import social_network_app

#: Reduced-scale server (matches Figures D/F/S; saturates near ~20K
#: RPS for the Text app on one server).
BASE = replace(UMANYCORE, n_cores=128, n_clusters=8)

APP = "Text"

#: Full-scale settings: long enough past commit (~0.2 s at the mid
#: load) that elision dominates the run, with calibration mass sized
#: for a stable p99 (~2000 roots -> ~2-3% quantile noise pooled over
#: the seeds).
DURATION_S = 0.75
SEEDS: Tuple[int, ...] = (1, 2, 3)
CALIBRATION_ROOTS = 2000

QUICK_DURATION_S = 0.12
QUICK_SEEDS: Tuple[int, ...] = (1,)
QUICK_CALIBRATION_ROOTS = 300

WARMUP_FRACTION = 0.25


def _run_once(rps: float, seed: int, duration_s: float,
              hybrid: Optional[HybridConfig]):
    """One in-process run; returns (sim, wall_seconds)."""
    check = None
    if execution().check:
        from repro.check import CheckContext

        check = CheckContext(strict=True)
    sim = ClusterSimulation(BASE, social_network_app(APP),
                            rps_per_server=rps, n_servers=1,
                            duration_s=duration_s, seed=seed,
                            warmup_fraction=WARMUP_FRACTION,
                            check=check, hybrid=hybrid)
    t0 = time.perf_counter()
    sim.run()
    return sim, time.perf_counter() - t0


def run_load(rps: float, duration_s: float, seeds: Tuple[int, ...],
             calibration_roots: int) -> dict:
    """Detailed-vs-hybrid comparison of one load level, pooled over
    ``seeds``; all latency figures in ns, wall clock in seconds."""
    import numpy as np

    hybrid_cfg = HybridConfig(calibration_roots=calibration_roots)
    warmup_ns = WARMUP_FRACTION * duration_s * 1e9
    det_lat, hyb_lat = [], []
    wall_det = wall_hyb = 0.0
    elided = calls = aborts = 0
    committed_ms = []
    events_det = events_hyb = 0
    for seed in seeds:
        sim_d, w_d = _run_once(rps, seed, duration_s, None)
        sim_h, w_h = _run_once(rps, seed, duration_s, hybrid_cfg)
        wall_det += w_d
        wall_hyb += w_h
        det_lat.append(sim_d.recorder.latencies(warmup_ns))
        hyb_lat.append(sim_h.recorder.latencies(warmup_ns))
        events_det += sim_d.engine.events_processed
        events_hyb += sim_h.engine.events_processed
        hs = sim_h.hybrid.stats()
        elided += hs["roots_elided"]
        calls += hs["calls_elided"]
        aborts += hs["aborts"]
        if hs["committed_at_ns"] is not None:
            committed_ms.append(hs["committed_at_ns"] / 1e6)
    det = np.concatenate(det_lat)
    hyb = np.concatenate(hyb_lat)
    out = {"rps": rps, "samples": len(det),
           "wall_det_s": wall_det, "wall_hyb_s": wall_hyb,
           "speedup": wall_det / wall_hyb if wall_hyb > 0 else 0.0,
           "events_det": events_det, "events_hyb": events_hyb,
           "roots_elided": elided, "calls_elided": calls,
           "aborts": aborts,
           "committed_ms": (sum(committed_ms) / len(committed_ms)
                            if committed_ms else None)}
    for stat, q in (("p50", 50), ("p99", 99)):
        d = float(np.percentile(det, q))
        h = float(np.percentile(hyb, q))
        out[f"det_{stat}"] = d
        out[f"hyb_{stat}"] = h
        out[f"{stat}_err"] = abs(h - d) / d if d > 0 else 0.0
    return out


def main(settings: Optional[Settings] = None) -> None:
    """Print this figure's tables to stdout."""
    quick = settings is not None and settings.n_servers == 1
    duration = QUICK_DURATION_S if quick else DURATION_S
    seeds = QUICK_SEEDS if quick else SEEDS
    cal = QUICK_CALIBRATION_ROOTS if quick else CALIBRATION_ROOTS
    rows_acc, rows_speed = [], []
    for rps in PAPER_LOADS:
        r = run_load(float(rps), duration, seeds, cal)
        rows_acc.append([
            f"{rps:g}", r["samples"],
            f"{r['det_p50'] / 1e3:.1f}", f"{r['hyb_p50'] / 1e3:.1f}",
            f"{r['p50_err']:.1%}",
            f"{r['det_p99'] / 1e3:.1f}", f"{r['hyb_p99'] / 1e3:.1f}",
            f"{r['p99_err']:.1%}"])
        commit = (f"{r['committed_ms']:.0f}"
                  if r["committed_ms"] is not None else "-")
        rows_speed.append([
            f"{rps:g}", f"{r['wall_det_s']:.2f}", f"{r['wall_hyb_s']:.2f}",
            f"{r['speedup']:.2f}x",
            f"{r['events_det'] / max(1, r['events_hyb']):.2f}x",
            commit, r["roots_elided"], r["calls_elided"], r["aborts"]])

    scale = "quick" if quick else "full"
    print(f"Figure H: hybrid fast path vs detailed simulation "
          f"({APP}, 1 server, {duration:g} s, "
          f"seeds {','.join(str(s) for s in seeds)}, {scale} scale)\n")
    print("Accuracy (latencies pooled across seeds, post-warm-up):\n")
    print(format_table(
        ["rps/server", "samples", "det p50 us", "hyb p50 us", "p50 err",
         "det p99 us", "hyb p99 us", "p99 err"], rows_acc))
    print("\nSpeedup (summed wall clock; events = detailed/hybrid "
          "processed-event ratio):\n")
    print(format_table(
        ["rps/server", "det s", "hyb s", "speedup", "events",
         "commit ms", "roots elided", "calls elided", "aborts"],
        rows_speed))
    print("\nThe fast path pays for itself once the run outlives "
          "detection + calibration: commits land at a load-independent "
          "sample count, so higher loads commit earlier and elide "
          "more.  Accuracy is bounded by calibration mass, not by "
          "elision: the frozen empirical tail carries the calibration "
          "window's quantile noise into every elided sample.")


if __name__ == "__main__":
    main()
