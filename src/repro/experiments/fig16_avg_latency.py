"""Figure 16: end-to-end average latency, 3 systems x 8 apps x 3 loads.

Paper: uManycore cuts average latency vs ServerClass by 2.3x / 3.2x /
5.6x at 5K / 10K / 15K RPS, and vs ScaleOut by 2.1x / 2.5x / 3.2x —
smaller than the tail reductions, since the design targets the tail.
"""

from __future__ import annotations

from repro.experiments.common import APP_ORDER, PAPER_LOADS, Settings, \
    format_table
from repro.experiments.latency_matrix import reduction_vs, run


def main(settings: Settings = Settings(), progress: bool = True) -> None:
    """Print this figure's tables to stdout."""
    matrix = run(settings=settings, progress=progress)
    paper_sc = {5000: 2.3, 10000: 3.2, 15000: 5.6}
    paper_so = {5000: 2.1, 10000: 2.5, 15000: 3.2}
    for load in PAPER_LOADS:
        rows = []
        for app in APP_ORDER:
            sc = matrix[("ServerClass", app, load)].mean_ns
            so = matrix[("ScaleOut", app, load)].mean_ns
            um = matrix[("uManycore", app, load)].mean_ns
            rows.append([app, f"{sc/1e6:.2f}", f"{so/sc:.3f}",
                         f"{um/sc:.3f}"])
        print(f"\nFigure 16 — load {load//1000}K RPS "
              f"(ServerClass ms; others normalized to ServerClass)")
        print(format_table(["app", "ServerClass(ms)", "ScaleOut",
                            "uManycore"], rows))
        sc_x = reduction_vs(matrix, "mean_ns", "ServerClass", load)
        so_x = reduction_vs(matrix, "mean_ns", "ScaleOut", load)
        print(f"average reduction: vs ServerClass {sc_x:.1f}x "
              f"(paper {paper_sc[load]}x); vs ScaleOut {so_x:.1f}x "
              f"(paper {paper_so[load]}x)")


if __name__ == "__main__":
    main()
