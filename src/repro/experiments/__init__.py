"""Experiment runners: one module per paper figure/table.

Every module exposes ``run(...)`` returning structured results and a
``main()`` that prints the paper-style table; each is runnable as
``python -m repro.experiments.<module>``.  ``run_all`` regenerates every
experiment and writes EXPERIMENTS.md-style output.
"""
