"""Figure 7: impact of on-package ICN contention on tail latency.

Paper setup: DeathStarBench on the 1024-core ScaleOut (32-core clusters)
with a 2D-mesh or fat-tree ICN at 5 cycles/hop, loads 1K/5K/10K/50K RPS;
each bar normalized to the same environment without ICN contention.

Paper result: contention inflates the tail up to 14.7x (mesh) and 7.5x
(fat-tree) at 50K RPS — the motivation for the leaf-spine design.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.core.context_switch import HARDWARE_CS
from repro.experiments.common import Settings, format_table, point_for
from repro.runner import run_points
from repro.systems.configs import SCALEOUT
from repro.workloads.deathstar import social_network_app

LOADS = (1000, 5000, 10000, 50000)
TOPOLOGIES = ("mesh", "fattree")


def _config(topology: str, contention: bool):
    # Neutral (hardware) scheduling isolates the ICN effect.  The 2D mesh
    # spans the whole die with per-tile links, which are narrower than
    # the aggregated NH-to-NH trunks of the tree fabrics.
    link_bw = 5.0 if topology == "mesh" else 14.0
    return replace(SCALEOUT, name=f"ScaleOut-{topology}"
                   f"{'' if contention else '-nc'}",
                   topology=topology, cs=HARDWARE_CS, hw_queues=True,
                   rq_capacity=100_000, link_bytes_per_ns=link_bw,
                   sw_rpc_core_ns=0.0, preempt_quantum_ns=0.0,
                   preempt_op_cycles=0.0, icn_contention=contention)


def run(loads: Tuple[int, ...] = LOADS,
        compute_scale: float = 4.0,
        settings: Settings = Settings(n_servers=1, duration_s=0.04)
        ) -> Dict[Tuple[str, int], float]:
    """Normalized tail (contention / no-contention) per (topology, load)."""
    app = social_network_app("Text", compute_scale=compute_scale)
    cells = [(topology, rps, contention)
             for topology in TOPOLOGIES for rps in loads
             for contention in (True, False)]
    results = run_points(
        [point_for(_config(topology, contention), app, rps, settings)
         for topology, rps, contention in cells])
    tails = {cell: r.p99_ns for cell, r in zip(cells, results)}
    return {(topology, rps): (tails[(topology, rps, True)]
                              / tails[(topology, rps, False)])
            for topology in TOPOLOGIES for rps in loads}


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    rows = []
    for rps in LOADS:
        rows.append([f"{rps//1000}K",
                     f"{results[('mesh', rps)]:.2f}",
                     f"{results[('fattree', rps)]:.2f}"])
    print("Figure 7: tail latency normalized to no-ICN-contention")
    print(format_table(["load (RPS)", "2D mesh", "fat tree"], rows))
    print("\npaper at 50K RPS: mesh 14.7x, fat-tree 7.5x; "
          "mesh worse than fat-tree at every load")


if __name__ == "__main__":
    main()
