"""Figure F (extension): tail latency and goodput under link failures.

Not a paper figure — the paper claims the hierarchical leaf-spine's
"many redundant equal-cost paths" (Section 4.2) as a robustness
property but never measures it.  This experiment does: the same
uManycore server is built with its native leaf-spine ICN, a fat-tree,
and a 2D mesh, and k leaf-adjacent links are failed mid-run (no
recovery) under a timeout/retry resilience policy.

Expected shape:

* **leaf-spine** — ECMP re-picks a surviving equal-cost path; p99 and
  goodput are essentially flat in k (failures are invisible).
* **fat-tree** — the fabric is a tree, so each failed link partitions
  the leaves below it; traffic into the partition blackholes until the
  RPC timeout fires and the retry lands on another instance.
* **2D mesh** — XY dimension-order routers have no fallback; every
  route crossing a dead link blackholes even though the grid remains
  connected, with the same timeout-inflated tail.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.experiments.common import Settings, format_table, point_for
from repro.faults import FaultSchedule, ResilienceConfig
from repro.icn import FatTree, HierarchicalLeafSpine, Mesh2D, Topology
from repro.runner import run_points
from repro.systems.cluster import ClusterSimulation, RunResult
from repro.systems.configs import UMANYCORE
from repro.workloads.deathstar import social_network_app

#: Reduced-scale server (the full 1024-core build takes minutes/point).
BASE = replace(UMANYCORE, n_cores=128, n_clusters=8)
VARIANTS = (
    BASE,
    replace(BASE, name="uManycore-fattree", topology="fattree"),
    replace(BASE, name="uManycore-mesh", topology="mesh"),
)

FAILED_LINKS = (0, 1, 2, 4)
LOAD_RPS = 20_000            # mid load for the reduced-scale server

#: Timeout sits ~2x above the healthy p99 so retries never fire in
#: fault-free runs (no retry storms), with a short capped backoff.
RESILIENCE = ResilienceConfig(timeout_ns=2_500_000.0, max_retries=3,
                              backoff_base_ns=100_000.0,
                              backoff_cap_ns=800_000.0)


def pick_links(topo: Topology, k: int) -> List[Tuple[str, str]]:
    """k leaf-adjacent fabric links, the comparable severity class:
    each topology loses k first-hop links next to traffic sources."""
    if isinstance(topo, HierarchicalLeafSpine):
        return [(topo.leaf_name(i % topo.n_pods,
                                (i // topo.n_pods) % topo.leaves_per_pod),
                 topo.spine_name(i % topo.n_pods, 0))
                for i in range(k)]
    if isinstance(topo, FatTree):
        return [(topo.switch(0, i % topo.n_leaves),
                 topo.switch(1, (i % topo.n_leaves) // 2))
                for i in range(k)]
    if isinstance(topo, Mesh2D):
        per_row = topo.cols - 1     # horizontal links per row
        return [(topo.tile(i % per_row, i // per_row),
                 topo.tile(i % per_row + 1, i // per_row))
                for i in range(k)]
    raise TypeError(f"no link picker for {type(topo).__name__}")


def run(failed_links: Tuple[int, ...] = FAILED_LINKS,
        rps: float = LOAD_RPS,
        settings: Settings = Settings(n_servers=2, duration_s=0.01, seed=3)
        ) -> Dict[Tuple[str, int], RunResult]:
    """One run per (topology variant, k failed links).

    Links fail at 30% of the run (past warm-up) and stay down, on every
    server.  k=0 is the clean baseline (no injector, no resilience) —
    byte-identical to the pre-fault simulator.
    """
    app = social_network_app("Text")
    points, cells = [], []
    for cfg in VARIANTS:
        # A throwaway (never-run) build of the server exposes the
        # topology's node names, from which the fault targets are picked.
        topo = ClusterSimulation(
            cfg, app, rps, n_servers=1, duration_s=settings.duration_s,
            seed=settings.seed).servers[0].topology
        for k in failed_links:
            faults = resilience = None
            if k:
                fail_at = 0.3 * settings.duration_s * 1e9
                sched = FaultSchedule()
                for (u, v) in pick_links(topo, k):
                    for sid in range(settings.n_servers):
                        sched.fail_link(sid, u, v, at_ns=fail_at)
                faults, resilience = sched, RESILIENCE
            cells.append((cfg.name, k))
            points.append(point_for(cfg, app, rps, settings,
                                    faults=faults, resilience=resilience))
    return dict(zip(cells, run_points(points)))


def _bar(ratio: float, scale: float = 2.0, width: int = 32) -> str:
    n = min(width, max(1, int(round(ratio * scale))))
    return "#" * n


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    print("Figure F: p99 and goodput vs failed leaf-adjacent links\n")
    rows = []
    base_p99: Dict[str, float] = {}
    for cfg in VARIANTS:
        for k in FAILED_LINKS:
            r = results[(cfg.name, k)]
            if k == 0:
                base_p99[cfg.name] = r.p99_ns
            fs = r.fault_stats or {}
            rows.append([
                cfg.name, k,
                f"{r.p99_ns / 1e3:.0f}",
                f"{r.p99_ns / base_p99[cfg.name]:.2f}x",
                f"{r.goodput_rps:.0f}",
                f"{r.availability:.3f}",
                r.failed,
                int(fs.get("rpc_retries", 0)),
                int(fs.get("icn_dropped", 0)),
            ])
    print(format_table(
        ["system", "k", "p99 (us)", "p99 ratio", "goodput RPS",
         "avail", "failed", "retries", "dropped"], rows))
    print("\np99 degradation (ratio to k=0):")
    for cfg in VARIANTS:
        curve = "  ".join(
            f"k={k}:{results[(cfg.name, k)].p99_ns / base_p99[cfg.name]:5.2f}"
            for k in FAILED_LINKS)
        worst = results[(cfg.name, FAILED_LINKS[-1])].p99_ns \
            / base_p99[cfg.name]
        print(f"  {cfg.name:20s} {curve}  {_bar(worst)}")
    print("\nECMP redundancy keeps the leaf-spine flat; the fat-tree "
          "partitions and the XY mesh blackholes, so both pay the "
          "timeout+retry tail.")


if __name__ == "__main__":
    main()
