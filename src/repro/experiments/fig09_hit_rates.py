"""Figure 9: L1/L2 TLB and cache hit rates for microservice handlers.

Paper: on the Table 2 hierarchy, handler working sets fit in the L1
structures — L1 TLB and L1 cache hit rates above 95 % for both data and
instructions; L2 structures see lower rates because the L1s filter the
high-locality accesses.

We replay synthetic handler traces (Section 3.5 statistics) through the
functional cache/TLB hierarchy, measuring steady state (warm-up replay
excluded from the counters).  The L2-TLB/L2-cache rows use the
ServerClass hierarchy (the manycore hierarchy is single-level by design).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cpu.hierarchy import SERVERCLASS_HIERARCHY, CacheHierarchy
from repro.cpu.traces import MICRO_PROFILES, handler_trace
from repro.experiments.common import format_table


def run(n_accesses: int = 120_000, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Hit rates per structure, averaged over the micro workloads."""
    data_rates: Dict[str, list] = {}
    instr_rates: Dict[str, list] = {}
    for profile in MICRO_PROFILES:
        rng = np.random.default_rng(seed)
        h = CacheHierarchy(SERVERCLASS_HIERARCHY)
        d_addrs, i_addrs = handler_trace(profile, n_accesses, rng)
        for pass_idx in range(2):           # warm-up, then measured pass
            if pass_idx == 1:
                for c in (h.l1d, h.l1i, h.l2, h.l3, h.dtlb, h.itlb,
                          h.l2_dtlb, h.l2_itlb):
                    if c is not None:
                        c.reset_stats()
            for d, i in zip(d_addrs, i_addrs):
                h.access_data(int(d))
                h.access_instr(int(i))
        rates = h.hit_rates()
        for key, bucket in (("L1DTLB", data_rates), ("L2DTLB", data_rates),
                            ("L1D", data_rates), ("L2", data_rates)):
            bucket.setdefault(key, []).append(rates[key])
        for key, bucket in (("L1ITLB", instr_rates), ("L2ITLB", instr_rates),
                            ("L1I", instr_rates)):
            bucket.setdefault(key, []).append(rates[key])
    out = {
        "data": {
            "L1TLB": float(np.mean(data_rates["L1DTLB"])),
            "L1Cache": float(np.mean(data_rates["L1D"])),
            "L2TLB": float(np.mean(data_rates["L2DTLB"])),
            "L2Cache": float(np.mean(data_rates["L2"])),
        },
        "instructions": {
            "L1TLB": float(np.mean(instr_rates["L1ITLB"])),
            "L1Cache": float(np.mean(instr_rates["L1I"])),
            "L2TLB": float(np.mean(instr_rates["L2ITLB"])),
            # The unified L2 cache hit rate is shared with data.
            "L2Cache": float(np.mean(data_rates["L2"])),
        },
    }
    return out


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    headers = ["kind", "L1TLB", "L1Cache", "L2TLB", "L2Cache"]
    rows = [[kind] + [f"{results[kind][k]:.3f}" for k in headers[1:]]
            for kind in ("data", "instructions")]
    print("Figure 9: TLB and cache hit rates on handler traces")
    print(format_table(headers, rows))
    print("\npaper: L1 TLB and L1 cache above 0.95; L2 lower (L1-filtered)")


if __name__ == "__main__":
    main()
