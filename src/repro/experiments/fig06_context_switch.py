"""Figure 6: impact of context-switch cost on tail latency.

Paper setup: SocialNetwork on the 1024-core ScaleOut, Poisson arrivals at
5K/10K/50K RPS, sweeping the per-switch overhead from 0 to 8192 cycles
(Linux ~5K; Shenango/Shinjuku/ZygOS ~2K; the hardware target 128-256).

Paper result: normalized to zero-cost switching, Linux-class overheads
degrade the tail 26-38x at 50K RPS and software schedulers 13-23x, while
128-256-cycle switches barely register.  The blow-up comes from the
switch work funnelling through the centralized scheduler core.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Tuple

from repro.core.context_switch import ContextSwitchConfig
from repro.experiments.common import Settings, format_table, point_for
from repro.runner import run_points
from repro.systems.configs import SCALEOUT
from repro.workloads.deathstar import social_network_app

CS_CYCLES = (0, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)
LOADS = (5000, 10000, 50000)


def _config(cs_cycles: int):
    cs = ContextSwitchConfig(f"cs{cs_cycles}", save_cycles=cs_cycles / 2,
                             restore_cycles=cs_cycles / 2,
                             scheduler_op_cycles=0.0, centralized=True)
    # Software schedulers also switch at every preemption quantum (timer
    # ticks), so the per-switch cost is paid ~tens of times per request —
    # that multiplier, funnelled through the centralized scheduler core,
    # is what blows the tail up at high load.
    return replace(SCALEOUT, name=f"ScaleOut-cs{cs_cycles}", cs=cs,
                   sw_rpc_core_ns=0.0,
                   preempt_quantum_ns=10_000.0 if cs_cycles else 0.0,
                   preempt_op_cycles=cs_cycles / 2)


def run(loads: Tuple[int, ...] = LOADS,
        cs_cycles: Tuple[int, ...] = CS_CYCLES,
        settings: Settings = Settings(n_servers=1, duration_s=0.05)
        ) -> Dict[Tuple[int, int], float]:
    """P99 (ns) per (cs_cycles, load)."""
    app = social_network_app("Text")
    cells = [(cycles, rps) for rps in loads for cycles in cs_cycles]
    results = run_points([point_for(_config(cycles), app, rps, settings)
                          for cycles, rps in cells])
    return {cell: r.p99_ns for cell, r in zip(cells, results)}


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    rows = []
    for cycles in CS_CYCLES:
        row = [str(cycles)]
        for rps in LOADS:
            norm = results[(cycles, rps)] / results[(0, rps)]
            row.append(f"{norm:.2f}")
        rows.append(row)
    print("Figure 6: tail latency normalized to zero-cost context switch")
    print(format_table(["CS cycles"] + [f"{r//1000}K RPS" for r in LOADS],
                       rows))
    print("\npaper: Linux (~5K cycles) degrades 26-38x at 50K RPS; "
          "software schedulers (~2K) 13-23x; 128-256 cycles ~1x")


if __name__ == "__main__":
    main()
