"""Section 6.8: comparison to an iso-area ServerClass CPU.

Paper: scaling ServerClass to 128 cores (same area as uManycore) makes it
match or slightly beat ScaleOut, but its tail is still 7.3x higher than
uManycore's on average across loads and apps — and it burns 3.2x more
power.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import PAPER_LOADS, Settings, format_table, \
    geomean, point_for
from repro.power import system_budget
from repro.runner import run_points
from repro.systems.configs import SERVERCLASS_128, UMANYCORE
from repro.workloads.deathstar import social_network_app

DEFAULT_APPS = ("Text", "SGraph", "CPost", "UrlShort")


def run(apps=DEFAULT_APPS, loads=PAPER_LOADS,
        settings: Settings = Settings()) -> Dict[Tuple[str, str, int], float]:
    """P99 (ns) per (system, app, load) for the iso-area pair."""
    cells = [(config, app_name, rps)
             for app_name in apps for rps in loads
             for config in (UMANYCORE, SERVERCLASS_128)]
    results = run_points(
        [point_for(config, social_network_app(app_name), rps, settings)
         for config, app_name, rps in cells])
    return {(config.name, app_name, rps): r.p99_ns
            for (config, app_name, rps), r in zip(cells, results)}


def main(settings: Settings = Settings()) -> None:
    """Print this figure's tables to stdout."""
    results = run(settings=settings)
    apps = sorted({a for __, a, __l in results})
    rows, ratios = [], []
    for app in apps:
        for rps in PAPER_LOADS:
            ratio = results[("ServerClass-128", app, rps)] / \
                results[("uManycore", app, rps)]
            ratios.append(ratio)
            rows.append([app, f"{rps//1000}K", f"{ratio:.2f}"])
    print("Section 6.8: iso-area ServerClass (128 cores) tail vs uManycore")
    print(format_table(["app", "load", "SC128/uM tail"], rows))
    print(f"\naverage: {geomean(ratios):.1f}x (paper 7.3x)")
    power_ratio = system_budget(SERVERCLASS_128).power_w / \
        system_budget(UMANYCORE).power_w
    print(f"power: ServerClass-128 uses {power_ratio:.1f}x the uManycore "
          f"power (paper 3.2x)")


if __name__ == "__main__":
    main()
