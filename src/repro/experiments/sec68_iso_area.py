"""Section 6.8: comparison to an iso-area ServerClass CPU.

Paper: scaling ServerClass to 128 cores (same area as uManycore) makes it
match or slightly beat ScaleOut, but its tail is still 7.3x higher than
uManycore's on average across loads and apps — and it burns 3.2x more
power.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import PAPER_LOADS, Settings, format_table, \
    geomean
from repro.power import system_budget
from repro.systems.cluster import simulate
from repro.systems.configs import SERVERCLASS_128, UMANYCORE
from repro.workloads.deathstar import social_network_app

DEFAULT_APPS = ("Text", "SGraph", "CPost", "UrlShort")


def run(apps=DEFAULT_APPS, loads=PAPER_LOADS,
        settings: Settings = Settings()) -> Dict[Tuple[str, str, int], float]:
    out: Dict[Tuple[str, str, int], float] = {}
    for app_name in apps:
        app = social_network_app(app_name)
        for rps in loads:
            for config in (UMANYCORE, SERVERCLASS_128):
                r = simulate(config, app, rps_per_server=rps,
                             n_servers=settings.n_servers,
                             duration_s=settings.duration_s,
                             seed=settings.seed,
                             warmup_fraction=settings.warmup_fraction)
                out[(config.name, app_name, rps)] = r.p99_ns
    return out


def main(settings: Settings = Settings()) -> None:
    results = run(settings=settings)
    apps = sorted({a for __, a, __l in results})
    rows, ratios = [], []
    for app in apps:
        for rps in PAPER_LOADS:
            ratio = results[("ServerClass-128", app, rps)] / \
                results[("uManycore", app, rps)]
            ratios.append(ratio)
            rows.append([app, f"{rps//1000}K", f"{ratio:.2f}"])
    print("Section 6.8: iso-area ServerClass (128 cores) tail vs uManycore")
    print(format_table(["app", "load", "SC128/uM tail"], rows))
    print(f"\naverage: {geomean(ratios):.1f}x (paper 7.3x)")
    power_ratio = system_budget(SERVERCLASS_128).power_w / \
        system_budget(UMANYCORE).power_w
    print(f"power: ServerClass-128 uses {power_ratio:.1f}x the uManycore "
          f"power (paper 3.2x)")


if __name__ == "__main__":
    main()
