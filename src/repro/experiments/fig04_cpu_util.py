"""Figure 4: CDF of CPU utilization per request.

Paper: median ~14 %; 99 % of requests below 60 %.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.ascii_plot import sparkline
from repro.experiments.common import format_table
from repro.workloads.alibaba import AlibabaTraceGenerator, cdf


def run(n: int = 200_000, seed: int = 7) -> Dict[str, np.ndarray]:
    """Compute this figure's data grid (see the module docstring)."""
    gen = AlibabaTraceGenerator(np.random.default_rng(seed))
    util = gen.cpu_utilization(n)
    grid = np.arange(0.0, 0.71, 0.1)
    return {"grid": grid, "cdf": cdf(util, grid), "samples": util}


def main() -> None:
    """Print this figure's tables to stdout."""
    r = run()
    rows = [[f"{g:.1f}", f"{c:.3f}"] for g, c in zip(r["grid"], r["cdf"])]
    print("Figure 4: CDF of per-request CPU utilization")
    print(format_table(["utilization", "CDF"], rows))
    print("cdf:", sparkline(r["cdf"], lo=0.0, hi=1.0))
    s = r["samples"]
    print(f"\nmedian = {np.median(s):.3f} (paper ~0.14)")
    print(f"P99 = {np.percentile(s, 99):.3f} (paper < 0.60)")


if __name__ == "__main__":
    main()
