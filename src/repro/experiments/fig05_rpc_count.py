"""Figure 5: CDF of RPC invocations per request.

Paper: median ~4.2 RPCs; ~5 % of requests invoke 16 or more.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.ascii_plot import sparkline
from repro.experiments.common import format_table
from repro.workloads.alibaba import AlibabaTraceGenerator, cdf


def run(n: int = 200_000, seed: int = 7) -> Dict[str, np.ndarray]:
    """Compute this figure's data grid (see the module docstring)."""
    gen = AlibabaTraceGenerator(np.random.default_rng(seed))
    rpcs = gen.rpc_count(n).astype(float)
    grid = np.arange(0, 41, 5, dtype=float)
    return {"grid": grid, "cdf": cdf(rpcs, grid), "samples": rpcs}


def main() -> None:
    """Print this figure's tables to stdout."""
    r = run()
    rows = [[f"{int(g)}", f"{c:.3f}"] for g, c in zip(r["grid"], r["cdf"])]
    print("Figure 5: CDF of RPC invocations per request")
    print(format_table(["#RPCs", "CDF"], rows))
    print("cdf:", sparkline(r["cdf"], lo=0.0, hi=1.0))
    s = r["samples"]
    print(f"\nmedian = {np.median(s):.1f} (paper ~4.2)")
    print(f"P(rpcs >= 16) = {(s >= 16).mean():.3f} (paper ~0.05)")


if __name__ == "__main__":
    main()
