"""Figure D (extension): the datacenter tier — LB policy vs tail.

Not a paper figure — μManycore's evaluation stops at one rack driven by
independent per-server Poisson processes, but "tail at scale" is a
*cluster* property: a real front end routes every request, placement
decides which servers can answer which RPCs, and autoscalers resize the
serving set.  This experiment drives multi-server μManycore racks
through the :mod:`repro.dc` tier and measures what the paper's
single-server story leaves out:

* **p99 vs cluster size x LB policy** (fault-free): with homogeneous
  servers every stateless policy is close; the spread is the cost of
  routing skew alone.
* **the straggler column**: one server's villages degraded mid-run
  (the classic gray failure).  Load-blind round-robin keeps feeding the
  slow server 1/N of all roots; least-outstanding and power-of-two see
  its outstanding count grow and route around it — the Tail-at-Scale
  result that load-aware routing beats static spreading exactly when
  servers stop being identical.
* **an autoscale drain**: a lightly-loaded cluster scales down to its
  floor; the :mod:`repro.check` LB conservation ledger proves no
  request is lost across the drains.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.dc import DcConfig
from repro.experiments.common import Settings, format_table, point_for
from repro.experiments.figF_faults import RESILIENCE
from repro.faults import FaultSchedule
from repro.runner import run_points
from repro.systems.cluster import RunResult
from repro.systems.configs import UMANYCORE
from repro.workloads.deathstar import social_network_app

#: Reduced-scale server (matches Figures F/S; saturates near ~90K RPS).
BASE = replace(UMANYCORE, n_cores=128, n_clusters=8)

POLICIES = ("rr", "random", "p2c", "least", "affinity")
#: The straggler comparison the extension exists for: load-blind vs
#: load-aware routing around a gray-failed server.
STRAGGLER_POLICIES = ("rr", "p2c", "least")

SIZES = (2, 4, 8)
QUICK_SIZES = (1, 2)
LOAD_RPS = 40_000            # per server; ~45% of saturation
STRAGGLER_RPS = 40_000
STRAGGLER_SERVERS = 4
QUICK_STRAGGLER_SERVERS = 2
STRAGGLER_FACTOR = 10.0      # gray failure: server 0 runs 10x slower
STRAGGLER_AT = 0.25          # strike right at the warm-up boundary

AUTOSCALE_DC = DcConfig(lb="least", autoscale=True, min_servers=1,
                        autoscale_interval_ns=200_000.0,
                        scale_down_util=0.20)
AUTOSCALE_RPS = 2_000        # light load: the cluster should shrink


def _dc_point(settings: Settings, rps: float, n: int, dc: DcConfig,
              **overrides):
    """One dc-mode point at an explicit cluster size (``point_for``
    already consumes ``settings.n_servers``, so override after)."""
    app = social_network_app("Text")
    return replace(point_for(BASE, app, rps, settings, **overrides),
                   n_servers=n, dc=dc)


def straggler_schedule(duration_s: float) -> FaultSchedule:
    """Degrade every village of server 0 by ``STRAGGLER_FACTOR`` at
    ``STRAGGLER_AT`` of the run (the warm-up boundary, no recovery)."""
    sched = FaultSchedule()
    at_ns = STRAGGLER_AT * duration_s * 1e9
    for v in range(BASE.n_queues):
        sched.degrade_village(0, v, at_ns, STRAGGLER_FACTOR)
    return sched


def run(settings: Settings, sizes: Tuple[int, ...],
        straggler_servers: int
        ) -> Dict[Tuple[str, str, int], RunResult]:
    """One run per table cell, keyed ``(table, policy, n_servers)``."""
    points, cells = [], []
    for lb in POLICIES:
        for n in sizes:
            cells.append(("size", lb, n))
            points.append(_dc_point(settings, LOAD_RPS, n, DcConfig(lb=lb)))
    sched = straggler_schedule(settings.duration_s)
    for lb in STRAGGLER_POLICIES:
        cells.append(("straggler", lb, straggler_servers))
        points.append(_dc_point(settings, STRAGGLER_RPS, straggler_servers,
                                DcConfig(lb=lb), faults=sched,
                                resilience=RESILIENCE))
    cells.append(("autoscale", AUTOSCALE_DC.lb, straggler_servers))
    points.append(_dc_point(settings, AUTOSCALE_RPS, straggler_servers,
                            AUTOSCALE_DC))
    return dict(zip(cells, run_points(points)))


def _size_rows(results, sizes):
    rows = []
    for lb in POLICIES:
        for n in sizes:
            r = results[("size", lb, n)]
            dc = r.dc_stats
            pooled = dc["pooled"]
            rows.append([lb, n, f"{LOAD_RPS:g}",
                         f"{pooled['p50'] / 1e3:.1f}",
                         f"{pooled['p99'] / 1e3:.1f}",
                         f"{pooled['p999'] / 1e3:.1f}",
                         r.completed,
                         max(dc["routed"]) - min(dc["routed"])])
    return rows


def _straggler_rows(results, n):
    rows = []
    for lb in STRAGGLER_POLICIES:
        r = results[("straggler", lb, n)]
        dc = r.dc_stats
        slow = dc["routed"][0]
        rows.append([lb,
                     f"{dc['pooled']['p50'] / 1e3:.1f}",
                     f"{dc['pooled']['p99'] / 1e3:.1f}",
                     f"{r.p99_ns / 1e3:.1f}",
                     r.completed, r.failed,
                     slow, sum(dc["routed"]) - slow,
                     f"{r.availability:.3f}"])
    return rows


def main(settings: Optional[Settings] = None) -> None:
    """Print this figure's tables to stdout."""
    quick = settings is not None and settings.n_servers == 1
    if settings is None:
        settings = Settings(n_servers=2, duration_s=0.01, seed=3)
    else:
        # Bound the per-point cost when riding along in run_all.
        settings = replace(settings,
                           duration_s=min(settings.duration_s, 0.01))
    sizes = QUICK_SIZES if quick else SIZES
    n_straggler = QUICK_STRAGGLER_SERVERS if quick else STRAGGLER_SERVERS
    results = run(settings, sizes, n_straggler)

    print("Figure D: pooled tail vs cluster size x LB policy "
          f"(fault-free, {LOAD_RPS:g} RPS/server)\n")
    print(format_table(
        ["lb", "servers", "rps/server", "p50 us", "p99 us", "p999 us",
         "completed", "route skew"], _size_rows(results, sizes)))

    print(f"\nFigure D: one straggler server (server 0 degraded "
          f"{STRAGGLER_FACTOR:g}x at {STRAGGLER_AT:.0%} of the run), "
          f"{n_straggler} servers @ {STRAGGLER_RPS:g} RPS/server\n")
    print(format_table(
        ["lb", "p50 us", "p99 us", "p99 all us", "completed", "failed",
         "to straggler", "to healthy", "avail"],
        _straggler_rows(results, n_straggler)))
    rr = results[("straggler", "rr", n_straggler)]
    for lb in STRAGGLER_POLICIES[1:]:
        r = results[("straggler", lb, n_straggler)]
        print(f"  {lb:5s} p99 = {r.p99_ns / rr.p99_ns:5.2f}x rr "
              f"(routed {r.dc_stats['routed'][0]} to the straggler "
              f"vs rr's {rr.dc_stats['routed'][0]})")

    a = results[("autoscale", AUTOSCALE_DC.lb, n_straggler)]
    dc = a.dc_stats
    print(f"\nFigure D: autoscale drain ({n_straggler} servers @ "
          f"{AUTOSCALE_RPS:g} RPS/server, floor "
          f"{AUTOSCALE_DC.min_servers})\n")
    print(f"  scale downs: {dc['scale_downs']}, scale ups: "
          f"{dc['scale_ups']}, active at end: {dc['active_at_end']}")
    print(f"  routed: {dc['routed']}  "
          f"(offered {a.offered} = answered "
          f"{a.completed + a.rejected + a.failed}; nothing lost "
          f"across drains)")
    print("\nLoad-aware routing (least/p2c) beats static round-robin "
          "exactly when a server goes gray: the straggler's outstanding "
          "count rises and new roots route around it, while rr keeps "
          "feeding it 1/N of all traffic into a growing queue.")


if __name__ == "__main__":
    main()
