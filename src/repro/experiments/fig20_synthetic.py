"""Figure 20: tail latency with synthetic service-time distributions.

Paper setup: exponential, lognormal, bimodal service times with blocking
calls (Shinjuku-style synthetic benchmarks) at 5K/10K/15K RPS.

Paper result: the DeathStarBench trends hold — uManycore cuts the tail by
9.1x over ServerClass and 7.2x over ScaleOut on average, growing with
load.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import PAPER_LOADS, Settings, format_table, \
    geomean, point_for
from repro.runner import run_points
from repro.systems.configs import SCALEOUT, SERVERCLASS, UMANYCORE
from repro.workloads.synthetic import SYNTHETIC_DISTRIBUTIONS, synthetic_app

SYSTEMS = (UMANYCORE, SCALEOUT, SERVERCLASS)


def run(loads=PAPER_LOADS, settings: Settings = Settings()
        ) -> Dict[Tuple[str, str, int], float]:
    """P99 (ns) per (system, distribution, load)."""
    cells = [(config, dist, rps)
             for dist in SYNTHETIC_DISTRIBUTIONS
             for rps in loads for config in SYSTEMS]
    results = run_points(
        [point_for(config,
                   synthetic_app(dist, mean_service_us=120.0,
                                 blocking_calls=4),
                   rps, settings)
         for config, dist, rps in cells])
    return {(config.name, dist, rps): r.p99_ns
            for (config, dist, rps), r in zip(cells, results)}


def main(settings: Settings = Settings()) -> None:
    """Print this figure's tables to stdout."""
    results = run(settings=settings)
    rows = []
    ratios_sc, ratios_so = [], []
    for dist in SYNTHETIC_DISTRIBUTIONS:
        for rps in PAPER_LOADS:
            sc = results[("ServerClass", dist, rps)]
            so = results[("ScaleOut", dist, rps)]
            um = results[("uManycore", dist, rps)]
            ratios_sc.append(sc / um)
            ratios_so.append(so / um)
            rows.append([f"{dist[:3].capitalize()}{rps//1000}K",
                         f"{sc/1e3:.0f}", f"{so/sc:.3f}", f"{um/sc:.3f}"])
    print("Figure 20: synthetic-workload tail latency "
          "(ServerClass us; others normalized to ServerClass)")
    print(format_table(["workload", "ServerClass(us)", "ScaleOut",
                        "uManycore"], rows))
    print(f"\naverage tail reduction: {geomean(ratios_sc):.1f}x vs "
          f"ServerClass (paper 9.1x); {geomean(ratios_so):.1f}x vs "
          f"ScaleOut (paper 7.2x)")


if __name__ == "__main__":
    main()
