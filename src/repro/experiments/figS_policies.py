"""Figure S (extension): the scheduling-policy comparison.

Not a paper figure — Section 4.3 argues the hardware's FCFS + ServiceMap
round-robin is sufficient for microservices ("requests of the same
service have similar durations"), but never measures the alternatives.
This experiment does, using the pluggable :mod:`repro.sched` layer: a
reduced uManycore runs the same workload under every combination of the
three decision points — NIC dispatch (round-robin vs least-occupancy vs
affinity), intra-village ordering (FCFS vs SRPT vs measured-service-time
SJF) and inter-village stealing — across load levels, both fault-free
and under the Figure F leaf-adjacent link-failure schedule.

A second table ablates the nanoPU-style core bypass on a *software*
scheduled (ScaleOut-class) build: on uManycore the scheduler op is free
hardware, so skipping it cannot pay; where dispatch costs real scheduler
time, landing an arrival straight on an idle core removes that cost from
every low-load request.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from repro.experiments.common import Settings, format_table, point_for
from repro.experiments.figF_faults import RESILIENCE, pick_links
from repro.faults import FaultSchedule
from repro.runner import run_points
from repro.systems.cluster import ClusterSimulation, RunResult
from repro.systems.configs import SCALEOUT, UMANYCORE
from repro.workloads.deathstar import social_network_app

#: Reduced-scale server (matches Figure F's build).
BASE = replace(UMANYCORE, n_cores=128, n_clusters=8)

#: label -> SystemConfig field overrides, one table row group each.
COMBOS: Tuple[Tuple[str, dict], ...] = (
    ("rr+fcfs", {}),                                  # the paper hardware
    ("least+fcfs", {"dispatch": "least"}),
    ("affinity+fcfs", {"dispatch": "affinity"}),
    ("rr+srpt", {"rq_policy": "srpt"}),
    ("rr+sjf", {"rq_policy": "sjf"}),
    ("rr+steal", {"work_steal": True, "steal_policy": "maxload"}),
)

#: The reduced 128-core build saturates near ~90K RPS/server; the grid
#: spans light load (policies indistinguishable — queues are empty),
#: ~2/3 of saturation, and the knee where ordering/stealing matter.
LOADS = (30_000, 60_000, 75_000)
FAILED_LINKS = 2          # the Figure F mid-severity point

#: Software-scheduled build for the core-bypass ablation.
SCALEOUT_BASE = replace(SCALEOUT, name="ScaleOut-128", n_cores=128,
                        n_clusters=4, coherence_domain_cores=128)
BYPASS_LOADS = (4_000, 8_000)


def _combo_config(label: str, overrides: dict):
    return replace(BASE, name=f"uManycore-{label}", **overrides)


def run(settings: Settings,
        loads: Tuple[float, ...] = LOADS
        ) -> Dict[Tuple[str, bool, float], RunResult]:
    """One run per (policy combo, faulted?, load).

    The faulted runs reuse the Figure F severity class: ``FAILED_LINKS``
    leaf-adjacent ICN links fail at 30% of the run (past warm-up, no
    recovery) on every server, under the Figure F resilience policy.
    """
    app = social_network_app("Text")
    # All combos share BASE's topology; one throwaway build exposes the
    # node names the fault schedule targets.
    topo = ClusterSimulation(
        BASE, app, loads[0], n_servers=1, duration_s=settings.duration_s,
        seed=settings.seed).servers[0].topology
    fail_at = 0.3 * settings.duration_s * 1e9
    sched = FaultSchedule()
    for (u, v) in pick_links(topo, FAILED_LINKS):
        for sid in range(settings.n_servers):
            sched.fail_link(sid, u, v, at_ns=fail_at)
    points, cells = [], []
    for label, overrides in COMBOS:
        cfg = _combo_config(label, overrides)
        for faulted in (False, True):
            for rps in loads:
                cells.append((label, faulted, rps))
                points.append(point_for(
                    cfg, app, rps, settings,
                    faults=sched if faulted else None,
                    resilience=RESILIENCE if faulted else None))
    return dict(zip(cells, run_points(points)))


def run_bypass(settings: Settings,
               loads: Tuple[float, ...] = BYPASS_LOADS
               ) -> Dict[Tuple[bool, float], RunResult]:
    """Core-bypass on/off on the software-scheduled build."""
    app = social_network_app("Text")
    points, cells = [], []
    for bypass in (False, True):
        cfg = SCALEOUT_BASE if not bypass else replace(
            SCALEOUT_BASE, name="ScaleOut-128-bypass", core_bypass=True)
        for rps in loads:
            cells.append((bypass, rps))
            points.append(point_for(cfg, app, rps, settings))
    return dict(zip(cells, run_points(points)))


def _rows(results, loads, faulted: bool):
    rows = []
    for label, __ in COMBOS:
        for rps in loads:
            r = results[(label, faulted, rps)]
            ss = r.sched_stats or {}
            row = [label, f"{rps:g}",
                   f"{r.summary.p50 / 1e3:.1f}",
                   f"{r.p99_ns / 1e3:.1f}",
                   f"{r.summary.p999 / 1e3:.1f}",
                   r.completed,
                   int(ss.get("steals", 0)),
                   int(ss.get("spills", 0))]
            if faulted:
                row.append(f"{r.availability:.3f}")
            rows.append(row)
    return rows


def main(settings: Optional[Settings] = None,
         loads: Tuple[float, ...] = LOADS) -> None:
    """Print this figure's tables to stdout."""
    if settings is None:
        settings = Settings(n_servers=2, duration_s=0.01, seed=3)
    else:
        # Bound the per-point cost when riding along in run_all: the
        # combo grid is 6x wider than a normal figure's.
        settings = replace(settings,
                           duration_s=min(settings.duration_s, 0.01))
    results = run(settings, loads)
    headers = ["policy", "rps", "p50 us", "p99 us", "p999 us",
               "completed", "steals", "spills"]
    print("Figure S: scheduling policies vs load (fault-free)\n")
    print(format_table(headers, _rows(results, loads, faulted=False)))
    print(f"\nFigure S: same grid under {FAILED_LINKS} failed "
          f"leaf-adjacent links (Figure F schedule)\n")
    print(format_table(headers + ["avail"],
                       _rows(results, loads, faulted=True)))
    top = loads[-1]
    base_p99 = results[("rr+fcfs", False, top)].p99_ns
    print(f"\np99 at {top:g} RPS vs rr+fcfs "
          f"({base_p99 / 1e3:.1f} us):")
    for label, __ in COMBOS[1:]:
        p99 = results[(label, False, top)].p99_ns
        print(f"  {label:14s} {p99 / 1e3:8.1f} us  "
              f"({p99 / base_p99:5.2f}x)")

    bypass = run_bypass(settings)
    print("\nFigure S: core bypass on the software-scheduled build "
          f"({SCALEOUT_BASE.name})\n")
    rows = []
    for on in (False, True):
        for rps in BYPASS_LOADS:
            r = bypass[(on, rps)]
            ss = r.sched_stats or {}
            rows.append(["bypass" if on else "queued", f"{rps:g}",
                         f"{r.summary.p50 / 1e3:.1f}",
                         f"{r.p99_ns / 1e3:.1f}",
                         f"{r.summary.p999 / 1e3:.1f}",
                         r.completed, int(ss.get("bypasses", 0))])
    print(format_table(["mode", "rps", "p50 us", "p99 us", "p999 us",
                        "completed", "bypasses"], rows))
    print("\nWork stealing flattens the high-load tail; slot-occupancy "
          "dispatch (least/affinity) misfires because RQ slots count "
          "blocked-on-RPC entries, a poor proxy for CPU backlog; the "
          "bypass only pays where the scheduler op costs real time.")


if __name__ == "__main__":
    main()
