"""Run every experiment and print all paper-figure tables.

``python -m repro.experiments.run_all [--quick]``

``--quick`` uses reduced scales (useful for smoke-testing the harness);
the default takes tens of minutes and produces the numbers recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    fig01_microarch,
    fig02_rps_cdf,
    fig03_queues,
    fig04_cpu_util,
    fig05_rpc_count,
    fig06_context_switch,
    fig07_icn_contention,
    fig08_footprint,
    fig09_hit_rates,
    fig14_tail_latency,
    fig15_breakdown,
    fig16_avg_latency,
    fig17_tail_to_avg,
    fig18_throughput,
    fig19_sensitivity,
    fig20_synthetic,
    power_area,
    sec68_iso_area,
)
from repro.experiments.common import Settings

SECTIONS = [
    ("Figure 1", fig01_microarch.main),
    ("Figure 2", fig02_rps_cdf.main),
    ("Figure 3", fig03_queues.main),
    ("Figure 4", fig04_cpu_util.main),
    ("Figure 5", fig05_rpc_count.main),
    ("Figure 6", fig06_context_switch.main),
    ("Figure 7", fig07_icn_contention.main),
    ("Figure 8", fig08_footprint.main),
    ("Figure 9", fig09_hit_rates.main),
    ("Figures 14/16/17", None),  # share one matrix; run via wrappers below
    ("Figure 15", fig15_breakdown.main),
    ("Figure 18", fig18_throughput.main),
    ("Figure 19", fig19_sensitivity.main),
    ("Figure 20", fig20_synthetic.main),
    ("Section 6.8", sec68_iso_area.main),
    ("Power & area", power_area.main),
]


def main(quick: bool = False) -> None:
    settings = Settings(n_servers=1, duration_s=0.02) if quick else Settings()
    start = time.time()
    for title, runner in SECTIONS:
        print(f"\n{'=' * 72}\n{title}\n{'=' * 72}", flush=True)
        t0 = time.time()
        if runner is None:
            fig14_tail_latency.main(settings=settings, progress=False)
            fig16_avg_latency.main(settings=settings, progress=False)
            fig17_tail_to_avg.main(settings=settings, progress=False)
        elif runner in (fig15_breakdown.main, fig19_sensitivity.main,
                        fig20_synthetic.main, sec68_iso_area.main):
            runner(settings=settings)
        else:
            runner()
        print(f"[{title} done in {time.time() - t0:.0f}s]", flush=True)
    print(f"\ntotal: {time.time() - start:.0f}s")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
