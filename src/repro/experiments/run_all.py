"""Run every experiment and print all paper-figure tables.

``python -m repro.experiments.run_all [--quick] [--jobs N] [--no-cache]
[--resume] [--check]``

``--quick`` uses reduced scales (useful for smoke-testing the harness);
the default takes tens of minutes and produces the numbers recorded in
EXPERIMENTS.md.  ``--jobs N`` fans the independent simulation points of
each figure over N worker processes; the printed tables are identical
for any jobs count.  Results are cached on disk (see
:mod:`repro.runner`) keyed by configuration *and* code version, so a
re-run after an interrupt — or a second full run — only simulates what
changed; ``--no-cache`` forces everything to recompute and ``--resume``
additionally skips whole sections that a previous run with the same
settings already printed.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    fig01_microarch,
    fig02_rps_cdf,
    fig03_queues,
    fig04_cpu_util,
    fig05_rpc_count,
    fig06_context_switch,
    fig07_icn_contention,
    fig08_footprint,
    fig09_hit_rates,
    fig14_tail_latency,
    fig15_breakdown,
    fig16_avg_latency,
    fig17_tail_to_avg,
    fig18_throughput,
    fig19_sensitivity,
    fig20_synthetic,
    figD_datacenter,
    figH_hybrid,
    figS_policies,
    figW_scenarios,
    power_area,
    sec68_iso_area,
)
from repro.experiments.common import Settings, set_hybrid_override
from repro.runner import ResultCache, code_version, digest, executing, \
    fingerprint

SECTIONS = [
    ("Figure 1", fig01_microarch.main),
    ("Figure 2", fig02_rps_cdf.main),
    ("Figure 3", fig03_queues.main),
    ("Figure 4", fig04_cpu_util.main),
    ("Figure 5", fig05_rpc_count.main),
    ("Figure 6", fig06_context_switch.main),
    ("Figure 7", fig07_icn_contention.main),
    ("Figure 8", fig08_footprint.main),
    ("Figure 9", fig09_hit_rates.main),
    ("Figures 14/16/17", None),  # share one matrix; run via wrappers below
    ("Figure 15", fig15_breakdown.main),
    ("Figure 18", fig18_throughput.main),
    ("Figure 19", fig19_sensitivity.main),
    ("Figure 20", fig20_synthetic.main),
    ("Section 6.8", sec68_iso_area.main),
    ("Power & area", power_area.main),
    # Appended last so earlier sections' output stays a stable prefix.
    ("Figure S (policies)", figS_policies.main),
    ("Figure D (datacenter)", figD_datacenter.main),
    ("Figure H (hybrid)", figH_hybrid.main),
    ("Figure W (scenarios)", figW_scenarios.main),
]


def _section_marker(cache: ResultCache, title: str,
                    settings: Settings):
    """Path of the done-marker for one section under these settings."""
    key = digest({"code": code_version(), "settings": fingerprint(settings),
                  "title": title})
    return cache.root / "sections" / f"{key}.done"


def _run_section(title, runner, settings) -> None:
    if runner is None:
        fig14_tail_latency.main(settings=settings, progress=False)
        fig16_avg_latency.main(settings=settings, progress=False)
        fig17_tail_to_avg.main(settings=settings, progress=False)
    elif runner in (fig15_breakdown.main, fig19_sensitivity.main,
                    fig20_synthetic.main, sec68_iso_area.main,
                    figS_policies.main, figD_datacenter.main,
                    figH_hybrid.main, figW_scenarios.main):
        runner(settings=settings)
    else:
        runner()


def main(quick: bool = False, jobs: int = 1, use_cache: bool = True,
         resume: bool = False, check: bool = False) -> None:
    """Print every figure table.

    Args:
        quick: Use reduced scales (the ``--quick`` smoke configuration).
        jobs: Worker processes for the simulation sweeps (1 = serial).
        use_cache: Consult/populate the on-disk result cache.
        resume: Skip sections a previous same-settings run completed
            (their tables are *not* reprinted); requires the cache.
        check: Run every simulation point under the strict invariant
            sanitizer (:mod:`repro.check`); forces the cache off so
            every point actually executes and is verified.
    """
    if check:
        use_cache = False
        resume = False
    if resume and not use_cache:
        raise SystemExit("--resume requires the result cache "
                         "(drop --no-cache)")
    settings = Settings(n_servers=1, duration_s=0.02) if quick else Settings()
    cache = ResultCache() if use_cache else None
    start = time.time()
    with executing(jobs=jobs, cache=cache, check=check):
        for title, runner in SECTIONS:
            marker = _section_marker(cache, title, settings) if cache else None
            if resume and marker is not None and marker.exists():
                print(f"\n[{title} skipped: done in a previous run "
                      f"(--resume)]", flush=True)
                continue
            print(f"\n{'=' * 72}\n{title}\n{'=' * 72}", flush=True)
            t0 = time.time()
            _run_section(title, runner, settings)
            print(f"[{title} done in {time.time() - t0:.0f}s]", flush=True)
            if marker is not None:
                marker.parent.mkdir(parents=True, exist_ok=True)
                marker.touch()
    print(f"\ntotal: {time.time() - start:.0f}s")
    if cache is not None:
        s = cache.stats()
        print(f"cache: {s['hits']} hits, {s['misses']} misses "
              f"({s['dir']})")


def parse_args(argv=None) -> argparse.Namespace:
    """Build and run the ``run_all`` argument parser."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="regenerate every paper-figure table")
    ap.add_argument("--quick", action="store_true",
                    help="reduced scales (smoke-test the harness)")
    ap.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="simulation worker processes (default 1)")
    ap.add_argument("--no-cache", action="store_true",
                    help="recompute everything; skip the on-disk "
                         "result cache")
    ap.add_argument("--resume", action="store_true",
                    help="skip sections completed by a previous run "
                         "with the same settings and code")
    ap.add_argument("--check", action="store_true",
                    help="run every simulation point under the "
                         "invariant sanitizer (implies --no-cache; "
                         "any violation aborts)")
    ap.add_argument("--hybrid", action="store_true",
                    help="arm the repro.hybrid fast path on every "
                         "sweep point (results are approximate; "
                         "Figure H quantifies the error)")
    ap.add_argument("--hybrid-tol", dest="hybrid_tol", type=float,
                    default=0.2, metavar="T",
                    help="steady-state tolerance for --hybrid "
                         "(default 0.2)")
    return ap.parse_args(argv)


if __name__ == "__main__":
    _args = parse_args()
    if _args.hybrid:
        from repro.hybrid import HybridConfig

        set_hybrid_override(HybridConfig(tol=_args.hybrid_tol))
    main(quick=_args.quick, jobs=_args.jobs,
         use_cache=not _args.no_cache, resume=_args.resume,
         check=_args.check)
