"""Shared experiment harness: run settings, matrices, formatting."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.runner import SweepPoint, run_points
from repro.systems.cluster import RunResult
from repro.systems.configs import SystemConfig
from repro.workloads.spec import AppSpec

#: Figure-order list of the 8 SocialNetwork request types.
APP_ORDER = ["Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT",
             "CPost", "UrlShort"]

#: The three load levels of Section 5 (RPS per server).
PAPER_LOADS = (5000, 10000, 15000)

#: Scheduling-policy config overrides folded into every point built by
#: :func:`point_for` (the ``repro experiment --dispatch/...`` flags).
#: Empty by default, so figure tables stay byte-identical.
_POLICY_OVERRIDES: Dict[str, object] = {}


def set_policy_overrides(**overrides) -> None:
    """Install :class:`SystemConfig` field overrides (``dispatch``,
    ``rq_policy``, ``work_steal``, ``steal_policy``, ``core_bypass``)
    applied to every subsequently built point; call with no arguments
    to clear them."""
    _POLICY_OVERRIDES.clear()
    _POLICY_OVERRIDES.update(overrides)


#: Hybrid fast-path config folded into every point built by
#: :func:`point_for` (the ``repro experiment --hybrid`` flag); None by
#: default so figure tables stay byte-identical.
_HYBRID_OVERRIDE: List[object] = [None]


def set_hybrid_override(hybrid) -> None:
    """Install a :class:`repro.hybrid.HybridConfig` applied to every
    subsequently built point; pass None to clear it."""
    _HYBRID_OVERRIDE[0] = hybrid


@dataclass(frozen=True)
class Settings:
    """Simulation scale knobs shared by the latency experiments.

    The paper simulates 10-server machines; the default here is smaller so
    a full figure regenerates in minutes on a laptop.  Pass
    ``Settings(n_servers=10, duration_s=0.05)`` for a paper-scale run.
    """

    n_servers: int = 2
    duration_s: float = 0.03
    seed: int = 1
    warmup_fraction: float = 0.25


def point_for(config: SystemConfig, app: AppSpec, rps: float,
              settings: Settings, **overrides) -> SweepPoint:
    """Describe one (system, app, load) cell as an executable point.

    Args:
        config: System configuration to simulate.
        app: Workload (request-type) specification.
        rps: Offered load, requests per second per server.
        settings: Scale knobs mapped onto the point's simulation fields.
        **overrides: Extra :class:`SweepPoint` fields (``faults``,
            ``resilience``, ``arrivals``, ...).

    Returns:
        A :class:`~repro.runner.point.SweepPoint` ready for
        :func:`~repro.runner.run_points`.
    """
    if _POLICY_OVERRIDES:
        config = replace(config, **_POLICY_OVERRIDES)
    if _HYBRID_OVERRIDE[0] is not None and "hybrid" not in overrides:
        overrides["hybrid"] = _HYBRID_OVERRIDE[0]
    return SweepPoint(config=config, app=app, rps=float(rps),
                      n_servers=settings.n_servers,
                      duration_s=settings.duration_s, seed=settings.seed,
                      warmup_fraction=settings.warmup_fraction, **overrides)


def run_point(config: SystemConfig, app: AppSpec, rps: float,
              settings: Settings) -> RunResult:
    """One (system, app, load) cell, memoized within the process."""
    return run_points([point_for(config, app, rps, settings)])[0]


def run_matrix(configs: Sequence[SystemConfig], apps: Sequence[AppSpec],
               loads: Sequence[float], settings: Settings,
               progress: bool = False
               ) -> Dict[Tuple[str, str, float], RunResult]:
    """Cross product of systems x apps x loads.

    The whole grid is submitted to :func:`~repro.runner.run_points` as
    one batch, so ``run_all --jobs N`` parallelises it transparently;
    the returned table is identical for any jobs count or cache state.
    """
    cells = [(config, app, rps)
             for rps in loads for app in apps for config in configs]
    if progress:
        for config, app, rps in cells:
            print(f"  running {config.name} / {app.name} @ {rps} RPS",
                  flush=True)
    results = run_points([point_for(config, app, rps, settings)
                          for config, app, rps in cells])
    return {(config.name, app.name, rps): result
            for (config, app, rps), result in zip(cells, results)}


def format_table(headers: List[str], rows: Iterable[Sequence]) -> str:
    """Fixed-width text table.  Tolerates an empty row list and rows
    shorter than the header (missing cells render blank)."""
    rows = [[str(c) for c in row] for row in rows]
    rows = [row + [""] * (len(headers) - len(row)) for row in rows]
    widths = [max([len(h)] + [len(r[i]) for r in rows])
              for i, h in enumerate(headers)]
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    arr = np.asarray(list(values), dtype=float)
    if len(arr) == 0 or (arr <= 0).any():
        raise ValueError("geomean needs positive values")
    return float(np.exp(np.log(arr).mean()))
