"""Figure 17: tail-to-average latency ratio per application.

Paper: averaged across loads, uManycore's P99/mean ratio is 2.7x lower
than ServerClass's and 2.3x lower than ScaleOut's (absolute ServerClass
ratios 3.1-7.7, average 4.6) — latency becomes predictable.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import APP_ORDER, PAPER_LOADS, Settings, \
    format_table, geomean
from repro.experiments.latency_matrix import run


def main(settings: Settings = Settings(), progress: bool = True) -> None:
    """Print this figure's tables to stdout."""
    matrix = run(settings=settings, progress=progress)
    rows = []
    ratios = {"uManycore": [], "ScaleOut": [], "ServerClass": []}
    for app in APP_ORDER:
        per_system = {}
        for system in ratios:
            vals = [matrix[(system, app, load)].summary.tail_to_average
                    for load in PAPER_LOADS]
            per_system[system] = float(np.mean(vals))
            ratios[system].append(per_system[system])
        rows.append([app, f"{per_system['ServerClass']:.2f}",
                     f"{per_system['ScaleOut']:.2f}",
                     f"{per_system['uManycore']:.2f}"])
    print("Figure 17: tail-to-average ratio (absolute), avg across loads")
    print(format_table(["app", "ServerClass", "ScaleOut", "uManycore"],
                       rows))
    sc = geomean(ratios["ServerClass"]) / geomean(ratios["uManycore"])
    so = geomean(ratios["ScaleOut"]) / geomean(ratios["uManycore"])
    print(f"\nuManycore ratio lower than ServerClass by {sc:.1f}x "
          f"(paper 2.7x), than ScaleOut by {so:.1f}x (paper 2.3x)")


if __name__ == "__main__":
    main()
