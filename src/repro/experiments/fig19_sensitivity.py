"""Figure 19: sensitivity to the uManycore topology configuration.

Paper setup: four (cores/village, villages/cluster, clusters) shapes at
15K RPS, normalized to the default 8x4x32.

Paper result: all within 15 % of each other; services with no downstream
calls (UrlShort) slightly prefer big villages (32x1x32); call-heavy
services (HomeT, SGraph) prefer many small villages; the default has the
lowest overall tail.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.common import APP_ORDER, Settings, format_table, \
    point_for
from repro.runner import run_points
from repro.systems.configs import umanycore_variant
from repro.workloads.deathstar import social_network_app

SHAPES = ((8, 4, 32), (32, 1, 32), (32, 2, 16), (32, 4, 8))


def run(rps: float = 15_000, apps=tuple(APP_ORDER),
        settings: Settings = Settings()) -> Dict[Tuple[Tuple, str], float]:
    """P99 (ns) per (topology shape, app) at one load."""
    cells = [(shape, app_name) for app_name in apps for shape in SHAPES]
    results = run_points(
        [point_for(umanycore_variant(*shape), social_network_app(app_name),
                   rps, settings)
         for shape, app_name in cells])
    return {cell: r.p99_ns for cell, r in zip(cells, results)}


def main(settings: Settings = Settings()) -> None:
    """Print this figure's tables to stdout."""
    results = run(settings=settings)
    headers = ["app"] + ["x".join(map(str, s)) for s in SHAPES]
    rows = []
    for app in APP_ORDER:
        base = results[(SHAPES[0], app)]
        rows.append([app] + [f"{results[(s, app)] / base:.2f}"
                             for s in SHAPES])
    print("Figure 19: tail latency of topology variants "
          "(normalized to 8x4x32), 15K RPS")
    print(format_table(headers, rows))
    print("\npaper: all within ~15%; default best overall")


if __name__ == "__main__":
    main()
