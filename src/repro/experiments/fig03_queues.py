"""Figure 3: response time vs number of queues in a 1K-core manycore.

Paper setup: DeathStarBench on the 1024-core ScaleOut at 50K RPS
(Poisson), queues from one-per-core (1024) down to one shared queue;
requests assigned to queues randomly; optional work stealing.

Paper result: a U-curve — tail is 4.1x worse with 1024 queues (load
imbalance) and 4.5x worse with 1 queue (synchronization) than with 32
queues; work stealing rescues the many-queues end but adds overhead when
queues are already wide; the average moves much less than the tail.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Tuple

from repro.core.context_switch import ContextSwitchConfig
from repro.experiments.common import Settings, format_table, point_for
from repro.runner import run_points
from repro.systems.configs import SCALEOUT
from repro.workloads.deathstar import social_network_app

QUEUE_COUNTS = (1024, 512, 256, 128, 64, 32, 16, 8, 4, 2, 1)

def _queue_lock(cores_per_queue: int) -> ContextSwitchConfig:
    """Per-queue software lock: enqueue/dequeue serialize per queue.

    With a single queue, 1024 cores contend on it (the paper's
    "synchronization overheads"): beyond the base CAS cost, contention
    storms (retry bursts, cache-line ping-pong) hit a fraction of
    operations that grows with the number of cores sharing the lock.
    With one queue per core the lock is idle but load imbalance
    dominates.
    """
    return ContextSwitchConfig(
        f"rq-lock-{cores_per_queue}", save_cycles=64, restore_cycles=64,
        scheduler_op_cycles=3000, centralized=True,
        jitter_prob=8e-6 * cores_per_queue, jitter_ns=400_000.0)


def _config(n_queues: int, work_steal: bool):
    cores_per_queue = 1024 // n_queues
    return replace(
        SCALEOUT, name=f"q{n_queues}{'+steal' if work_steal else ''}",
        cores_per_queue=cores_per_queue, cs=_queue_lock(cores_per_queue),
        per_queue_scheduler=True, coherence_domain_cores=1024,
        sw_rpc_core_ns=0.0, preempt_quantum_ns=0.0, preempt_op_cycles=0.0,
        dispatch="random",              # requests assigned to queues randomly
        state_bytes_per_invocation=64 * 1024,   # isolate queueing from ICN
        work_steal=work_steal)


def run(rps: float = 50_000, compute_scale: float = 15.0,
        queue_counts: Tuple[int, ...] = QUEUE_COUNTS,
        settings: Settings = Settings(n_servers=1, duration_s=0.05)
        ) -> Dict[Tuple[int, bool], Dict[str, float]]:
    """Average and P99 response time per (queue count, stealing)."""
    app = social_network_app("Text", compute_scale=compute_scale,
                             segment_cv=0.3)
    cells = [(n_queues, steal)
             for steal in (False, True) for n_queues in queue_counts]
    results = run_points([point_for(_config(n_queues, steal), app, rps,
                                    settings)
                          for n_queues, steal in cells])
    return {cell: {"mean_us": r.mean_ns / 1e3, "p99_us": r.p99_ns / 1e3}
            for cell, r in zip(cells, results)}


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    rows: List[List[str]] = []
    for n_queues in QUEUE_COUNTS:
        base = results[(n_queues, False)]
        steal = results[(n_queues, True)]
        rows.append([str(n_queues),
                     f"{base['mean_us']:.0f}", f"{base['p99_us']:.0f}",
                     f"{steal['mean_us']:.0f}", f"{steal['p99_us']:.0f}"])
    print("Figure 3: response time (us) vs number of queues, 50K RPS")
    print(format_table(
        ["queues", "avg", "tail", "avg+steal", "tail+steal"], rows))
    best = min(QUEUE_COUNTS,
               key=lambda q: results[(q, False)]["p99_us"])
    many = results[(1024, False)]["p99_us"] / results[(best, False)]["p99_us"]
    one = results[(1, False)]["p99_us"] / results[(best, False)]["p99_us"]
    print(f"\nbest queue count (no stealing): {best} (paper: 32)")
    print(f"tail at 1024 queues vs best: {many:.1f}x (paper: 4.1x)")
    print(f"tail at 1 queue vs best: {one:.1f}x (paper: 4.5x)")


if __name__ == "__main__":
    main()
