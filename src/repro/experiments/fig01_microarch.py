"""Figure 1: microarch optimizations help monoliths, not microservices.

Paper: D-prefetcher +19 % mono / +2 % micro; perceptron BP +14 % / +1 %;
I-prefetcher +16 % / ~0 %; I-cache replacement +2 % / ~0 % (geomean
speedups over the respective baselines).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.cpu.microarch.branch import GSharePredictor, PerceptronPredictor
from repro.cpu.microarch.evaluate import (
    evaluate_branch_predictor,
    evaluate_data_prefetcher,
    evaluate_icache_replacement,
    evaluate_instruction_prefetcher,
    geometric_mean_speedup,
)
from repro.cpu.microarch.iprefetch import ISpyPrefetcher
from repro.cpu.microarch.prefetch import PythiaPrefetcher
from repro.cpu.traces import MICRO_PROFILES, MONO_PROFILES
from repro.experiments.common import format_table


def run(n_accesses: int = 120_000, n_branches: int = 60_000,
        seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Geomean speedup per optimization for mono and micro workloads."""
    out: Dict[str, Dict[str, float]] = {}
    evaluators = {
        "D-Prefetcher": lambda p, rng: evaluate_data_prefetcher(
            p, PythiaPrefetcher, rng, n_accesses=n_accesses),
        "Branch Predictor": lambda p, rng: evaluate_branch_predictor(
            p, GSharePredictor, PerceptronPredictor, rng,
            n_branches=n_branches),
        "I-Prefetcher": lambda p, rng: evaluate_instruction_prefetcher(
            p, ISpyPrefetcher, rng, n_accesses=n_accesses),
        "I-Cache Replace": lambda p, rng: evaluate_icache_replacement(
            p, rng, n_accesses=n_accesses),
    }
    for name, evaluate in evaluators.items():
        rng = np.random.default_rng(seed)
        mono = [evaluate(p, rng) for p in MONO_PROFILES]
        micro = [evaluate(p, rng) for p in MICRO_PROFILES]
        out[name] = {
            "mono": geometric_mean_speedup(mono),
            "micro": geometric_mean_speedup(micro),
        }
    return out


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    paper = {"D-Prefetcher": (1.19, 1.02), "Branch Predictor": (1.14, 1.01),
             "I-Prefetcher": (1.16, 1.00), "I-Cache Replace": (1.02, 1.00)}
    rows = []
    for name, r in results.items():
        p_mono, p_micro = paper[name]
        rows.append([name, f"{r['mono']:.3f}", f"{p_mono:.2f}",
                     f"{r['micro']:.3f}", f"{p_micro:.2f}"])
    print("Figure 1: optimization speedups (geomean), measured vs paper")
    print(format_table(
        ["optimization", "mono", "paper", "micro", "paper"], rows))


if __name__ == "__main__":
    main()
