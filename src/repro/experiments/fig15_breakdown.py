"""Figure 15: cumulative contribution of the four uManycore techniques.

Paper setup: start from ScaleOut at 15K RPS and apply, in order, villages,
the leaf-spine ICN, hardware scheduling, and hardware context switching;
report tail-latency reduction vs ScaleOut after each step.

Paper result (average): 1.1x, 2.3x, 3.9x, 7.4x cumulative.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.ascii_plot import bar_chart
from repro.experiments.common import APP_ORDER, Settings, format_table, \
    geomean
from repro.systems.cluster import simulate
from repro.systems.configs import SCALEOUT, ablation_ladder
from repro.workloads.deathstar import social_network_app

PAPER = {"+Villages": 1.1, "+Leaf-spine": 2.3, "+HW Scheduling": 3.9,
         "+HW Context Switch": 7.4}


def run(rps: float = 15_000, apps=tuple(APP_ORDER),
        settings: Settings = Settings()) -> Dict[Tuple[str, str], float]:
    """P99 (ns) per (step name, app); step 'ScaleOut' is the baseline."""
    out: Dict[Tuple[str, str], float] = {}
    steps = [SCALEOUT] + ablation_ladder()
    for app_name in apps:
        app = social_network_app(app_name)
        for cfg in steps:
            r = simulate(cfg, app, rps_per_server=rps,
                         n_servers=settings.n_servers,
                         duration_s=settings.duration_s, seed=settings.seed,
                         warmup_fraction=settings.warmup_fraction)
            out[(cfg.name, app_name)] = r.p99_ns
    return out


def main(settings: Settings = Settings()) -> None:
    results = run(settings=settings)
    step_names = [cfg.name for cfg in ablation_ladder()]
    rows = []
    for app in APP_ORDER:
        base = results[("ScaleOut", app)]
        rows.append([app] + [f"{base / results[(s, app)]:.2f}"
                             for s in step_names])
    print("Figure 15: cumulative tail-latency reduction vs ScaleOut, "
          "15K RPS")
    print(format_table(["app"] + step_names, rows))
    reductions = []
    for step in step_names:
        avg = geomean([results[("ScaleOut", app)] / results[(step, app)]
                       for app in APP_ORDER])
        reductions.append(avg)
        print(f"{step}: {avg:.2f}x (paper {PAPER[step]}x)")
    print()
    print(bar_chart(step_names, reductions,
                    title="cumulative tail reduction (x)"))


if __name__ == "__main__":
    main()
