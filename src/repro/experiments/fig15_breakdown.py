"""Figure 15: cumulative contribution of the four uManycore techniques.

Paper setup: start from ScaleOut at 15K RPS and apply, in order, villages,
the leaf-spine ICN, hardware scheduling, and hardware context switching;
report tail-latency reduction vs ScaleOut after each step.

Paper result (average): 1.1x, 2.3x, 3.9x, 7.4x cumulative.

The *where-the-time-goes* half of the figure is derived from telemetry:
each step is re-run with a :class:`~repro.telemetry.Tracer` and the
per-category decomposition (RQ wait / compute / ICN / context switch /
storage ...) comes from the span stream via
:func:`repro.telemetry.aggregate_breakdown` — per-request category times
sum to the end-to-end latency exactly, so the table is consistent with
the latency summary by construction.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.experiments.ascii_plot import bar_chart
from repro.experiments.common import APP_ORDER, Settings, format_table, \
    geomean, point_for
from repro.runner import run_points
from repro.systems.cluster import simulate
from repro.systems.configs import SCALEOUT, ablation_ladder
from repro.telemetry import BREAKDOWN_CATEGORIES, Tracer, \
    aggregate_breakdown
from repro.workloads.deathstar import social_network_app

PAPER = {"+Villages": 1.1, "+Leaf-spine": 2.3, "+HW Scheduling": 3.9,
         "+HW Context Switch": 7.4}


def run(rps: float = 15_000, apps=tuple(APP_ORDER),
        settings: Settings = Settings()) -> Dict[Tuple[str, str], float]:
    """P99 (ns) per (step name, app); step 'ScaleOut' is the baseline."""
    steps = [SCALEOUT] + ablation_ladder()
    cells = [(cfg, social_network_app(app_name), app_name)
             for app_name in apps for cfg in steps]
    results = run_points([point_for(cfg, app, rps, settings)
                          for cfg, app, __ in cells])
    return {(cfg.name, app_name): r.p99_ns
            for (cfg, __, app_name), r in zip(cells, results)}


def span_breakdown(rps: float = 15_000, app_name: str = "Text",
                   settings: Settings = Settings()
                   ) -> Dict[str, Dict[str, object]]:
    """Span-derived latency decomposition per ablation step.

    One traced run per step; returns ``step name -> aggregate breakdown``
    (see :func:`repro.telemetry.aggregate_breakdown`).
    """
    app = social_network_app(app_name)
    out: Dict[str, Dict[str, object]] = {}
    for cfg in [SCALEOUT] + ablation_ladder():
        tracer = Tracer()
        result = simulate(cfg, app, rps_per_server=rps,
                          n_servers=settings.n_servers,
                          duration_s=settings.duration_s, seed=settings.seed,
                          warmup_fraction=settings.warmup_fraction,
                          tracer=tracer)
        out[cfg.name] = aggregate_breakdown(tracer,
                                            after_ns=result.warmup_ns)
    return out


def main(settings: Settings = Settings()) -> None:
    """Print this figure's tables to stdout."""
    results = run(settings=settings)
    step_names = [cfg.name for cfg in ablation_ladder()]
    rows = []
    for app in APP_ORDER:
        base = results[("ScaleOut", app)]
        rows.append([app] + [f"{base / results[(s, app)]:.2f}"
                             for s in step_names])
    print("Figure 15: cumulative tail-latency reduction vs ScaleOut, "
          "15K RPS")
    print(format_table(["app"] + step_names, rows))
    reductions = []
    for step in step_names:
        avg = geomean([results[("ScaleOut", app)] / results[(step, app)]
                       for app in APP_ORDER])
        reductions.append(avg)
        print(f"{step}: {avg:.2f}x (paper {PAPER[step]}x)")
    print()
    print(bar_chart(step_names, reductions,
                    title="cumulative tail reduction (x)"))
    print()
    print("Where the time goes (Text, % of mean latency, from spans):")
    breakdowns = span_breakdown(settings=settings)
    cats = [c for c in BREAKDOWN_CATEGORIES]
    bd_rows = []
    for step, agg in breakdowns.items():
        if agg is None:
            bd_rows.append([step] + ["-"] * (len(cats) + 1))
            continue
        bd_rows.append(
            [step]
            + [f"{100.0 * agg['fraction'][c]:.1f}" for c in cats]
            + [f"{agg['wall_mean_ns'] / 1e3:.0f}"])
    print(format_table(["step"] + cats + ["mean us"], bd_rows))


if __name__ == "__main__":
    main()
