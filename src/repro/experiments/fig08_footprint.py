"""Figure 8: handler-handler and handler-init footprint sharing.

Paper: 78-99 % of a handler's pages/cache-lines (data and instructions)
are common with another handler of the same instance, and with the
instance's initialization footprint.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.experiments.common import format_table
from repro.mem.footprint import FootprintModel, sharing

BARS = ("d-Page", "d-Line", "i-Page", "i-Line")


def run(n_handlers: int = 20, seed: int = 0) -> Dict[str, Dict[str, float]]:
    """Mean common fraction per bar, for both comparisons."""
    model = FootprintModel(np.random.default_rng(seed))
    init = model.init_footprint()
    handlers = [model.handler_footprint() for __ in range(n_handlers)]
    hh = [sharing(handlers[i], handlers[i + 1])
          for i in range(n_handlers - 1)]
    hi = [sharing(h, init) for h in handlers]

    def mean_bars(reports):
        return {bar: float(np.mean([r.as_dict()[bar] for r in reports]))
                for bar in BARS}

    return {"Handler-Handler": mean_bars(hh), "Handler-Init": mean_bars(hi)}


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    rows = [[group] + [f"{results[group][bar]:.3f}" for bar in BARS]
            for group in results]
    print("Figure 8: common fraction of a handler's memory footprint")
    print(format_table(["comparison"] + list(BARS), rows))
    print("\npaper: 78-99% common across all eight bars")


if __name__ == "__main__":
    main()
