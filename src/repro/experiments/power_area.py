"""Section 5 / 6.8 power & area numbers.

Paper: per core + cache share: 10.225 W ServerClass, 0.396 W ScaleOut,
0.408 W uManycore; areas 547.2 mm2 (uManycore) vs 176.1 mm2 (40-core
ServerClass); uManycore 2.9 % larger than ScaleOut; iso-power ServerClass
= 40 cores, iso-area = 128 cores at 3.2x the power.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import format_table
from repro.power import iso_area_cores, iso_power_cores, system_budget
from repro.power.budget import per_core_power_w
from repro.systems.configs import SCALEOUT, SERVERCLASS, SERVERCLASS_128, \
    UMANYCORE


def run() -> Dict[str, Dict[str, float]]:
    """Compute per-system power and area budgets."""
    out = {}
    for cfg in (UMANYCORE, SCALEOUT, SERVERCLASS, SERVERCLASS_128):
        b = system_budget(cfg)
        out[cfg.name] = {
            "area_mm2": b.area_mm2,
            "power_w": b.power_w,
            "per_core_w": per_core_power_w(cfg),
        }
    out["iso"] = {
        "iso_power_cores": iso_power_cores(UMANYCORE, SERVERCLASS),
        "iso_area_cores": iso_area_cores(UMANYCORE, SERVERCLASS),
    }
    return out


def main() -> None:
    """Print this figure's tables to stdout."""
    results = run()
    paper_per_core = {"uManycore": 0.408, "ScaleOut": 0.396,
                      "ServerClass": 10.225, "ServerClass-128": 10.225}
    rows = []
    for name in ("uManycore", "ScaleOut", "ServerClass", "ServerClass-128"):
        r = results[name]
        rows.append([name, f"{r['area_mm2']:.1f}", f"{r['power_w']:.1f}",
                     f"{r['per_core_w']:.3f}",
                     f"{paper_per_core[name]:.3f}"])
    print("Power & area budgets (10 nm)")
    print(format_table(["system", "area mm2", "power W", "W/core",
                        "paper W/core"], rows))
    um, so = results["uManycore"], results["ScaleOut"]
    print(f"\nuManycore/ScaleOut area: {um['area_mm2']/so['area_mm2']:.3f} "
          f"(paper 1.029)")
    print(f"iso-power ServerClass cores: {results['iso']['iso_power_cores']} "
          f"(paper 40)")
    print(f"iso-area ServerClass cores: {results['iso']['iso_area_cores']} "
          f"(paper 128)")


if __name__ == "__main__":
    main()
