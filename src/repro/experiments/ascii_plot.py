"""Terminal bar charts and sparklines for experiment output.

The runners print paper-figure data as tables; these helpers add a quick
visual so shapes (U-curves, CDFs, breakdowns) are visible at a glance
without a plotting stack.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

_SPARK = "▁▂▃▄▅▆▇█"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, title: str = "",
              fmt: str = "{:.2f}") -> str:
    """Horizontal bar chart scaled to the maximum value."""
    labels = [str(label) for label in labels]
    values = [float(v) for v in values]
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        raise ValueError("nothing to plot")
    if min(values) < 0:
        raise ValueError("bar_chart expects non-negative values")
    peak = max(values) or 1.0
    label_w = max(len(lbl) for lbl in labels)
    lines: List[str] = [title] if title else []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak))
        lines.append(f"{label.rjust(label_w)} |{'#' * filled:<{width}}| "
                     f"{fmt.format(value)}")
    return "\n".join(lines)


def sparkline(values: Iterable[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """One-line unicode sparkline of a series."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("nothing to plot")
    lo = min(values) if lo is None else lo
    hi = max(values) if hi is None else hi
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_SPARK) - 1))
        out.append(_SPARK[max(0, min(len(_SPARK) - 1, idx))])
    return "".join(out)
