"""Figure W (extension): tail latency under non-stationary load.

Not a paper figure — the paper's tail-at-scale story is driven by load
*dynamics* (diurnal curves, bursts, flash crowds; Section 3), and this
experiment is where the arrival-profile layer earns its keep:

* **Part 1 — scenario grid**: p99 for one request type per
  DeathStarBench application (SocialNetwork Text, Media MCompose,
  Hotel HSearch) under every named arrival profile at the same mean
  load.  Stationary shapes (poisson/bursty/mmpp) differ only through
  burstiness; non-stationary ones (diurnal/flash/ramp) pay for their
  peaks.  Cached sweep points — re-runs are free.

* **Part 2 — flash crowd**: p99 *through* a flash crowd (windowed over
  the run) on a 4-server cluster, {static, autoscale} x {detailed,
  hybrid}.  The autoscaler must react to the spike (drained baseline
  servers re-activate: scale-ups > 0) and the hybrid fast path must
  never stay committed through the ramp — its profile-aware drift
  guard keeps stationary-burst tolerance without losing the ramp abort
  (an autoscaling cluster is structurally unsafe, so the hybrid cell
  there never commits at all).  In-process runs (figH pattern): the
  hybrid/autoscale introspection has no cacheable form.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.dc import DcConfig
from repro.experiments.common import Settings, format_table
from repro.hybrid import HybridConfig
from repro.runner import execution, run_points
from repro.systems.cluster import ClusterSimulation
from repro.systems.configs import UMANYCORE
from repro.workloads.arrival import ARRIVAL_NAMES, FlashCrowdProfile
from repro.workloads.deathstar import deathstar_app

#: Reduced-scale server (matches Figures D/F/H/S).
BASE = replace(UMANYCORE, n_cores=128, n_clusters=8)

#: One request type per DeathStarBench application.
SCENARIO_APPS = ("Text", "MCompose", "HSearch")
SCENARIO_RPS = 5000.0

#: Flash-crowd cell: low baseline (so the autoscaler drains first),
#: then a 5x spike — the drained servers must come back.
FLASH = FlashCrowdProfile(at=0.45, ramp=0.05, hold=0.25, decay=0.10,
                          magnitude=5.0)
FLASH_RPS = 2500.0
FLASH_SERVERS = 4
FLASH_DURATION_S = 0.30
QUICK_FLASH_DURATION_S = 0.04
N_WINDOWS = 8

#: Thresholds sit in this workload's *core*-utilization range: the
#: Text request is storage-bound (~0.7% busy cores per 2500 RPS on the
#: reduced server), so the stock 0.75/0.20 thresholds would never
#: fire.  0.01/0.04 makes the low baseline drain to ~2 servers and the
#: 5x flash (load concentrated on the survivors) cross the add line.
AUTOSCALE_DC = DcConfig(lb="rr", autoscale=True, min_servers=1,
                        autoscale_interval_ns=2_000_000.0,
                        scale_down_util=0.01, scale_up_util=0.04)


def _flash_hybrid(quick: bool) -> HybridConfig:
    """Hybrid knobs that commit within the pre-ramp baseline.

    The baseline span before the ramp is short (45% of the run), so
    quick mode borrows the aggressive figH trial knobs; the full run
    uses defaults with a calibration mass the baseline can supply.
    """
    if quick:
        return HybridConfig(tol=0.5, windows=3, min_samples=5,
                            window_ns=300_000.0, calibration_roots=10)
    return HybridConfig(calibration_roots=300)


def scenario_grid(settings: Settings) -> list:
    """Part 1 rows: (app, profile) -> p99/mean/completed."""
    apps = {name: deathstar_app(name) for name in SCENARIO_APPS}
    from repro.experiments.common import point_for

    points = [point_for(BASE, apps[app], SCENARIO_RPS, settings,
                        arrivals=arrivals)
              for app in SCENARIO_APPS for arrivals in ARRIVAL_NAMES]
    results = run_points(points)
    rows = []
    cells = [(app, arrivals)
             for app in SCENARIO_APPS for arrivals in ARRIVAL_NAMES]
    for (app, arrivals), r in zip(cells, results):
        rows.append([app, arrivals, r.completed, r.rejected,
                     f"{r.mean_ns / 1e3:.1f}", f"{r.p99_ns / 1e3:.1f}",
                     f"{r.summary.tail_to_average:.2f}"])
    return rows


def run_flash_cell(autoscale: bool, hybrid: bool, duration_s: float,
                   quick: bool, seed: int = 1) -> dict:
    """One Part 2 cell: in-process flash-crowd run with introspection."""
    check = None
    if execution().check:
        from repro.check import CheckContext

        check = CheckContext(strict=True)
    sim = ClusterSimulation(
        BASE, deathstar_app("Text"), rps_per_server=FLASH_RPS,
        n_servers=FLASH_SERVERS, duration_s=duration_s, seed=seed,
        warmup_fraction=0.0, arrivals=FLASH, check=check,
        dc=AUTOSCALE_DC if autoscale else None,
        hybrid=_flash_hybrid(quick) if hybrid else None)
    sim.run()
    horizon_ns = duration_s * 1e9
    windows = sim.recorder.windowed(horizon_ns / N_WINDOWS, horizon_ns)
    out = {
        "autoscale": autoscale,
        "hybrid": hybrid,
        "completed": len(sim.recorder),
        "offered": sim.offered,
        "windows": windows,
        "scale_ups": sim.autoscaler.scale_ups if sim.autoscaler else 0,
        "scale_downs": sim.autoscaler.scale_downs if sim.autoscaler else 0,
        "hybrid_stats": sim.hybrid.stats() if sim.hybrid else None,
    }
    if sim.hybrid is not None:
        hs = out["hybrid_stats"]
        ramp0_ns, ramp1_ns = (f * 1e9 for f in FLASH.ramp_span(duration_s))
        # "Committed through the ramp" = still in COMMITTED state at the
        # end of a run whose last abort (if any) precedes the ramp; the
        # guard must instead abort at/after the ramp onset.
        aborted_in_ramp = any(t >= ramp0_ns for t, __ in hs["abort_log"])
        committed_at = hs["committed_at_ns"]
        out["committed_pre_ramp"] = (committed_at is not None
                                     and committed_at < ramp0_ns)
        out["survived_ramp_committed"] = (hs["state"] == "committed"
                                          and not aborted_in_ramp
                                          and committed_at is not None
                                          and committed_at < ramp0_ns)
        out["aborted_in_ramp"] = aborted_in_ramp
    return out


def main(settings: Optional[Settings] = None) -> None:
    """Print this figure's tables to stdout."""
    quick = settings is not None and settings.n_servers == 1
    settings = settings or Settings()

    print(f"Figure W: non-stationary arrival scenarios "
          f"({settings.n_servers} server(s), {settings.duration_s:g} s, "
          f"{SCENARIO_RPS:g} RPS/server)\n")
    print("Part 1 — p99 by application x arrival profile (same mean "
          "load; stationary profiles pay for burstiness, non-stationary "
          "ones for their peaks):\n")
    print(format_table(
        ["app", "arrivals", "completed", "rejected", "mean us", "p99 us",
         "tail/avg"], scenario_grid(settings)))

    duration = QUICK_FLASH_DURATION_S if quick else FLASH_DURATION_S
    window_ms = duration * 1e3 / N_WINDOWS
    ramp0_s, ramp1_s = FLASH.ramp_span(duration)
    print(f"\nPart 2 — p99 through a {FLASH.magnitude:g}x flash crowd "
          f"({FLASH_SERVERS} servers, {FLASH_RPS:g} RPS/server baseline, "
          f"{duration:g} s, ramp at {ramp0_s * 1e3:.1f}-"
          f"{ramp1_s * 1e3:.1f} ms; per-window p99 in us, "
          f"{window_ms:.1f} ms windows):\n")
    rows = []
    notes = []
    for autoscale in (False, True):
        for hybrid in (False, True):
            cell = run_flash_cell(autoscale, hybrid, duration, quick)
            label = (("autoscale" if autoscale else "static") + " / "
                     + ("hybrid" if hybrid else "detailed"))
            row = [label, cell["completed"]]
            row += [(f"{w.p99 / 1e3:.0f}" if w.count else "-")
                    for w in cell["windows"]]
            if autoscale:
                row.append(f"{cell['scale_ups']}u/{cell['scale_downs']}d")
            else:
                row.append("-")
            if hybrid:
                hs = cell["hybrid_stats"]
                row.append(f"{hs['state']}, {hs['aborts']} aborts")
                if cell["survived_ramp_committed"]:
                    notes.append(f"  WARNING {label}: hybrid stayed "
                                 f"committed through the ramp")
                elif cell["committed_pre_ramp"]:
                    notes.append(f"  {label}: committed pre-ramp, then "
                                 + ("aborted in the ramp"
                                    if cell["aborted_in_ramp"]
                                    else "recalibrated"))
                else:
                    notes.append(f"  {label}: never committed "
                                 f"(state {hs['state']})")
            else:
                row.append("-")
            if autoscale and cell["scale_ups"] == 0:
                notes.append(f"  WARNING {label}: autoscaler never "
                             f"reacted to the flash")
            rows.append(row)
    headers = (["cell", "completed"]
               + [f"w{i}" for i in range(N_WINDOWS)]
               + ["scale", "hybrid"])
    print(format_table(headers, rows))
    for note in notes:
        print(note)
    print("\nThe flash crowd lands mid-run: static cells absorb it in "
          "queueing (the p99 spike), the autoscaler re-activates the "
          "servers it drained during the low baseline, and the hybrid "
          "drift guard — widened for stationary burstiness but sharp "
          "for genuine non-stationarity — aborts the fast path on the "
          "ramp instead of freezing a stale steady-state model.")


if __name__ == "__main__":
    main()
