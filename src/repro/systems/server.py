"""One server: a processor (villages + ICN + NICs) running service instances.

The Server implements the executor protocol consumed by
:class:`repro.core.village.Village` and owns the full request lifecycle:

* external ingress: fabric -> top-level NIC (ServiceMap round-robin) ->
  NIC-to-leaf link -> on-package ICN -> village RQ (buffer/reject on
  overflow);
* compute segments timed by the analytic core+cache model, including
  coherence-directory latency and resume-warmth penalties;
* blocking calls: storage accesses leave through the village R-NIC and
  the inter-server fabric; service calls route village-to-village over
  the ICN (or cross-server through the fabric);
* responses retrace the path and wake the blocked parent entry.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.context_switch import SchedulerDomain
from repro.core.request import RequestRecord
from repro.core.village import Village
from repro.cpu.coherence import CoherenceConfig, CoherenceModel
from repro.cpu.core_model import CoreModel
from repro.icn import FatTree, HierarchicalLeafSpine, Mesh2D, Network, \
    NetworkConfig
from repro.mem.mempool import MemoryPool
from repro.net.fabric import InterServerFabric, StorageBackend
from repro.net.nic import LNic, NicConfig, RNic, TopLevelNic
from repro.sim.engine import Engine
from repro.sim.resource import Resource
from repro.systems.configs import SystemConfig
from repro.workloads.spec import AppSpec, ServiceSpec

REQUEST_BYTES = 512
RESPONSE_BYTES = 512
STORAGE_BYTES = 256
RETRY_NS = 1000.0


class Server:
    """A single machine with one processor of the configured architecture."""

    def __init__(self, engine: Engine, server_id: int, config: SystemConfig,
                 apps: Dict[str, AppSpec], rng: np.random.Generator,
                 fabric: InterServerFabric, storage: StorageBackend,
                 hosted: Optional[frozenset] = None):
        self.engine = engine
        self.server_id = server_id
        self.config = config
        self.apps = apps
        self.rng = rng
        self.fabric = fabric
        self.storage = storage
        self.peers: List["Server"] = [self]
        #: Services this server hosts (None = all; set by the dc tier's
        #: PlacementPlan when replication < n_servers).
        self.hosted = hosted
        #: The cluster-wide :class:`repro.dc.PlacementPlan` (None when
        #: the dc tier is off or every service runs everywhere).
        self.placement_plan = None
        #: Leaf RPCs forwarded to a remote replica because the target
        #: service has no local instance under the placement plan.
        self.rpc_proxied = 0
        self.core_model = CoreModel(config.core)
        # Section 8: heterogeneous villages — a spread subset of villages
        # uses the beefier core type.
        self._big_villages = set()
        if config.big_village_fraction > 0:
            n_big = int(round(config.n_queues * config.big_village_fraction))
            stride = max(1, config.n_queues // max(1, n_big))
            self._big_villages = set(
                list(range(0, config.n_queues, stride))[:n_big])
            self._big_core_model = CoreModel(config.big_core)
        self.coherence = CoherenceModel(CoherenceConfig(
            domain_cores=config.coherence_domain_cores,
            total_cores=config.n_cores))
        # Hot-path constants: every RPC send resolves village node names,
        # cluster ids and coherence-inflated sizes; all are pure functions
        # of the frozen config, so compute them once here.
        self._village_nodes = [f"s{server_id}.vil{v}"
                               for v in range(config.n_queues)]
        per = max(1, config.n_queues // config.n_clusters)
        self._village_clusters = [min(v // per, config.n_clusters - 1)
                                  for v in range(config.n_queues)]
        coh_factor = self.coherence.coherence_message_factor()
        self._coh_request_bytes = int(REQUEST_BYTES * coh_factor)
        self._coh_response_bytes = int(RESPONSE_BYTES * coh_factor)
        self._coh_storage_bytes = int(STORAGE_BYTES * coh_factor)
        self._mem_cycles = (config.memory_latency_cycles
                            + self.coherence.directory_roundtrip_cycles())
        self._preempt_check_ns = \
            config.preempt_op_cycles / config.core.freq_ghz
        self._state_msg_bytes = max(
            64, config.state_bytes_per_invocation // 4)
        self._build_topology()
        self._build_villages()
        self._place_services()
        self.retries = 0
        self.rejected = 0
        self._scaling = set()      # services with an instance boot in flight
        self.instances_booted = 0
        #: Resilience policy (:class:`repro.faults.ResilienceConfig`),
        #: armed by the cluster harness for fault experiments.  None keeps
        #: every call on the original unguarded path — the fault-free
        #: experiments never see a timeout event or an extra branch.
        self.resilience = None
        #: Hybrid fast-path controller (:mod:`repro.hybrid`), armed by
        #: the cluster harness when ``--hybrid`` is on.  None keeps the
        #: RPC path branch-free apart from one attribute load.
        self.hybrid = None
        self.rpc_timeouts = 0
        self.rpc_retries = 0
        self.rpc_hedges = 0
        self.rpc_failed = 0
        self.wasted_responses = 0

    # -------------------------------------------------------------- build

    def _build_topology(self) -> None:
        cfg = self.config
        if cfg.topology == "leafspine":
            pods = 4 if cfg.n_clusters % 4 == 0 and cfg.n_clusters >= 4 else 1
            topo = HierarchicalLeafSpine(
                n_pods=pods, leaves_per_pod=cfg.n_clusters // pods)
            leaf_names = [topo.leaf(c) for c in range(cfg.n_clusters)]
        elif cfg.topology == "fattree":
            n = 1 << max(1, (cfg.n_clusters - 1).bit_length())
            topo = FatTree(n_leaves=n)
            leaf_names = [topo.leaf(c) for c in range(cfg.n_clusters)]
        else:  # mesh
            cols = int(math.ceil(math.sqrt(cfg.n_clusters)))
            rows = int(math.ceil(cfg.n_clusters / cols))
            topo = Mesh2D(cols, rows)
            leaf_names = [topo.tile(c % cols, c // cols)
                          for c in range(cfg.n_clusters)]
        # Cluster -> attachment-node names precomputed; list indexing is
        # the hot cluster-to-leaf map on every message send.
        self._leaf = leaf_names.__getitem__
        self.topology = topo
        net_cfg = NetworkConfig(hop_cycles=5.0, freq_ghz=cfg.core.freq_ghz,
                                link_bytes_per_ns=cfg.link_bytes_per_ns,
                                contention=cfg.icn_contention)
        self.network = Network(self.engine, topo, net_cfg, rng=self.rng)
        # Top-level NIC connects to every leaf NH (Figure 12): one
        # injection/ejection link per cluster.
        self._nic_links = [
            Resource(self.engine, capacity=1, name=f"s{self.server_id}.nic-l{c}")
            for c in range(cfg.n_clusters)]
        self._nic_hop_ns = net_cfg.hop_latency_ns

    def _build_villages(self) -> None:
        cfg = self.config
        nic_cfg = NicConfig(rpc_processing_ns=cfg.rpc_processing_ns)
        self.top_nic = TopLevelNic(self.engine, nic_cfg,
                                   name=f"s{self.server_id}.tnic",
                                   dispatch=cfg.dispatch, rng=self.rng)
        self.villages: List[Village] = []
        self.lnics: List[LNic] = []
        self.rnics: List[RNic] = []
        rq_capacity = cfg.rq_capacity if cfg.hw_queues \
            else max(cfg.rq_capacity, 100_000)  # software queues live in DRAM
        # A centralized software scheduler is ONE instance per server
        # (Section 4.4: Shinjuku on a dedicated core for the whole chip).
        shared_dom = SchedulerDomain(
            self.engine, cfg.cs, cfg.core.freq_ghz,
            name=f"s{self.server_id}.sched", rng=self.rng) \
            if cfg.cs.centralized and not cfg.per_queue_scheduler else None
        from repro.sched.policies import get_policy
        from repro.sched.stealing import get_steal_policy

        rq_policy = get_policy(cfg.rq_policy)
        steal_policy = get_steal_policy(cfg.steal_policy)
        for v in range(cfg.n_queues):
            dom = shared_dom or SchedulerDomain(
                self.engine, cfg.cs, cfg.core.freq_ghz,
                name=f"s{self.server_id}.v{v}", rng=self.rng)
            village = Village(self.engine, v, cfg.cores_per_queue, dom, self,
                              rq_capacity=rq_capacity,
                              steal_overhead_ns=200.0,
                              rq_policy=rq_policy,
                              steal_policy=steal_policy,
                              core_bypass=cfg.core_bypass,
                              name=f"s{self.server_id}.v{v}")
            self.villages.append(village)
            self.lnics.append(LNic(self.engine, nic_cfg,
                                   name=f"s{self.server_id}.v{v}.lnic"))
            self.rnics.append(RNic(self.engine, nic_cfg,
                                   name=f"s{self.server_id}.v{v}.rnic"))
            cluster = self.village_cluster(v)
            # A queue domain spanning k L2-villages has k I/O port pairs.
            ports = max(1, cfg.cores_per_queue // cfg.cores_per_village)
            self.topology.attach(self._village_node(v), self._leaf(cluster),
                                 capacity=ports)
        if cfg.work_steal:
            peers_of = self.rng.permutation(cfg.n_queues)
            for v, village in enumerate(self.villages):
                others = [self.villages[int(p)] for p in peers_of
                          if int(p) != v][:8]
                village.steal_from = others
                for other in others:
                    other.stealers.append(village)
        # Occupancy hook for load-aware dispatch policies (least/affinity).
        self.top_nic.occupancy_of = \
            lambda v: self.villages[v].rq.occupancy
        self.pools = [MemoryPool(self.engine, name=f"s{self.server_id}.pool{c}")
                      for c in range(cfg.n_clusters)]

    def _place_heterogeneous(self, names, services) -> None:
        """Section 8: call-free (leaf) services on big villages, call-heavy
        orchestration services on the many small ones."""
        def is_leaf(name):
            return all(c.is_storage for c in services[name].calls)

        leaf_names = [n for n in names if is_leaf(n)] or list(names)
        heavy_names = [n for n in names if not is_leaf(n)] or list(names)
        big = sorted(self._big_villages)
        small = [v for v in range(len(self.villages))
                 if v not in self._big_villages]
        for i, v in enumerate(big):
            self.placement[leaf_names[i % len(leaf_names)]].append(v)
        for i, v in enumerate(small):
            self.placement[heavy_names[i % len(heavy_names)]].append(v)

    def _village_node(self, v: int) -> str:
        return self._village_nodes[v]

    def village_cluster(self, v: int) -> int:
        return self._village_clusters[v]

    def _place_services(self) -> None:
        """Spread service instances over villages; partition cores when
        services must share a village (Section 4.1)."""
        services: Dict[str, ServiceSpec] = {}
        for app in self.apps.values():
            services.update(app.services)
        names = sorted(services)
        if self.hosted is not None:
            # Placement plan in force: only instantiate the services this
            # server hosts (leaf RPCs to the rest are proxied cross-server).
            names = [n for n in names if n in self.hosted]
        n_queues = self.config.n_queues
        self.placement: Dict[str, List[int]] = {name: [] for name in names}
        if n_queues >= len(names):
            if self._big_villages:
                self._place_heterogeneous(names, services)
            else:
                # Dedicate villages to services, spread round-robin.
                for i, village in enumerate(self.villages):
                    name = names[i % len(names)]
                    self.placement[name].append(i)
        else:
            # Few queue domains (software baselines): services co-locate
            # and all cores of a domain serve any service.
            for i, name in enumerate(names):
                self.placement[name].append(i % n_queues)
        for name, villages in self.placement.items():
            for v in villages:
                self.top_nic.register_instance(name, v)
            for c in range(self.config.n_clusters):
                self.pools[c].store_snapshot(name, 16 * 1024 * 1024)

    # ---------------------------------------------------- executor protocol

    def village_core_model(self, village_id: int) -> CoreModel:
        if village_id in self._big_villages:
            return self._big_core_model
        return self.core_model

    def segment_time_ns(self, rec: RequestRecord, core) -> float:
        cfg = self.config
        spec = self._service_spec(rec)
        base = self.village_core_model(rec.village).segment_time_ns(
            rec.current_segment_instructions, spec.profile,
            cfg.l2_latency_cycles, self._mem_cycles)
        # Software RPC stack: every segment starts by processing the
        # message that woke it (request or response) on the core.
        base += cfg.sw_rpc_core_ns
        # Preemptive software scheduling: the dispatcher interrupts the
        # segment every quantum; the check costs core cycles and loads
        # the (possibly centralized) scheduler core.
        if cfg.preempt_quantum_ns > 0:
            quanta = math.ceil(base / cfg.preempt_quantum_ns)
            per_check_ns = self._preempt_check_ns
            base += quanta * per_check_ns
            village = self.villages[rec.village]
            village.scheduler.background_load(quanta * per_check_ns)
        if rec.seg_index == 0 and not rec.has_run:
            self._fetch_state(rec)
        return base + self._resume_penalty_ns(rec, core)

    def _fetch_state(self, rec: RequestRecord) -> None:
        """Pull the invocation's read-mostly state over the ICN.

        With villages + memory pools the state (snapshot, instance data)
        sits in the local cluster's pool chiplet; with global coherence
        it is interleaved across the die and the fetch crosses the
        network fabric — the dominant contention source of Figure 7.
        The fetch overlaps execution (its latency is folded into the
        AMAT term); what matters here is the link occupancy it causes.
        """
        cfg = self.config
        v = rec.village
        dst = self._village_nodes[v]
        n_msgs = 4
        msg_bytes = self._state_msg_bytes
        local_cluster = self._village_clusters[v]
        rec._fetch_remaining = n_msgs
        rec._fetch_cont = None

        def arrived() -> None:
            rec._fetch_remaining -= 1
            if rec._fetch_remaining == 0 and rec._fetch_cont is not None:
                village, core = rec._fetch_cont
                rec._fetch_cont = None
                self._segment_done_impl(rec, village, core)

        def sources():
            # Lazily drawn so the locality draws interleave with each
            # message's ECMP picks on this server's RNG stream exactly
            # as the pre-batch send loop did.
            rng = self.rng
            frac = cfg.local_state_fraction
            n_clusters = cfg.n_clusters
            leaf = self._leaf
            for __ in range(n_msgs):
                if rng.random() < frac:
                    yield leaf(local_cluster)
                else:
                    yield leaf(int(rng.integers(n_clusters)))

        self.network.send_fanout(sources(), dst, msg_bytes, arrived, rec=rec)

    def _resume_penalty_ns(self, rec: RequestRecord, core) -> float:
        """Cache-warmth cost of resuming on a different core (Section 4.1)."""
        if not rec.has_run or rec.last_core is None:
            return 0.0
        cfg = self.config
        last_village, last_core = rec.last_core
        here = (rec.village, core.core_id)
        if (last_village, last_core) == here:
            return 0.0
        lines = cfg.resume_reload_lines
        mlp = self.core_model.memory_level_parallelism()
        freq = cfg.core.freq_ghz
        same_l2 = self._global_core(last_village, last_core) // \
            cfg.cores_per_village == self._global_core(*here) // \
            cfg.cores_per_village
        if same_l2:
            per_line = cfg.l2_latency_cycles
        elif self.coherence.is_global:
            per_line = cfg.l2_latency_cycles + \
                self.coherence.directory_roundtrip_cycles()
        else:
            per_line = cfg.memory_latency_cycles
        return lines * per_line / freq / mlp

    def _global_core(self, village: int, core_id: int) -> int:
        return village * self.config.cores_per_queue + core_id

    def segment_done(self, rec: RequestRecord, village: Village, core) -> None:
        # Demand state fetch still in flight: the core stalls on it (the
        # working set has not fully arrived).  Local-pool fetches finish
        # under the compute; remote interleaved fetches may not.
        if getattr(rec, "_fetch_remaining", 0) > 0:
            rec._fetch_cont = (village, core)
            return
        self._segment_done_impl(rec, village, core)

    def _segment_done_impl(self, rec: RequestRecord, village: Village,
                           core) -> None:
        if rec.is_last_segment:
            village.finish(rec, core)
            return
        spec = self._service_spec(rec)
        call = spec.calls[rec.seg_index]
        village.block_for_call(rec, core)
        if call.is_storage:
            self._storage_access(rec, village)
        else:
            self._service_call(rec, village, call.target)

    def _service_spec(self, rec: RequestRecord) -> ServiceSpec:
        return self.apps[rec.app_name].services[rec.service]

    # ------------------------------------------------------ blocking calls

    def _coh_bytes(self, size: int) -> int:
        """Coherence traffic inflates on-package message cost."""
        return int(size * self.coherence.coherence_message_factor())

    # (The three fixed RPC sizes are precomputed in __init__ as
    # _coh_request_bytes/_coh_response_bytes/_coh_storage_bytes.)

    def _storage_access(self, rec: RequestRecord, village: Village) -> None:
        """village -> leaf -> R-NIC -> fabric -> storage, and back."""
        v = village.village_id
        node = self._village_node(v)
        leaf = self._leaf(self.village_cluster(v))
        tracer = self.engine.tracer
        issued_ns = self.engine.now

        def resume(latency_ns: float = 0.0) -> None:
            if tracer.enabled:
                tracer.span("storage_rpc", "storage", issued_ns,
                            self.engine.now, rec=rec, track="storage")
            rec.advance_segment()
            village.make_ready(rec)

        def back_on_package() -> None:
            self.network.send(leaf, node, self._coh_storage_bytes,
                              resume, rec=rec)

        def storage_done(latency_ns: float) -> None:
            self.fabric.send(self.server_id, self.server_id, STORAGE_BYTES,
                             back_on_package, rec=rec)

        def at_rnic() -> None:
            self.rnics[v].process(
                STORAGE_BYTES,
                lambda: self.fabric.send(self.server_id, self.server_id,
                                         STORAGE_BYTES,
                                         lambda: self.storage.access(
                                             storage_done), rec=rec),
                rec=rec)

        self.network.send(node, leaf, self._coh_storage_bytes,
                          at_rnic, rec=rec)

    def _pick_callee(self, target: str) -> "Server":
        plan = self.placement_plan
        if plan is not None:
            hosts = plan.servers_for(target)
            if self.server_id not in hosts:
                # No local replica: proxy the RPC to a hosting server
                # over the inter-server fabric.
                self.rpc_proxied += 1
                if len(hosts) == 1:
                    return self.peers[hosts[0]]
                return self.peers[hosts[int(self.rng.integers(len(hosts)))]]
            if len(hosts) == 1 or self.rng.random() < self.config.locality:
                return self
            others = [sid for sid in hosts if sid != self.server_id]
            return self.peers[others[int(self.rng.integers(len(others)))]]
        if len(self.peers) == 1 or self.rng.random() < self.config.locality:
            return self
        others = [p for p in self.peers if p is not self]
        return others[int(self.rng.integers(len(others)))]

    def _send_call(self, village: Village, child: RequestRecord,
                   callee: "Server", target: str,
                   exclude: Optional[int] = None) -> Optional[int]:
        """Push one request toward its callee; returns the destination
        village for local calls (None for cross-server ones).  Raises
        ``KeyError`` when every local instance is marked unhealthy."""
        src_node = self._village_node(village.village_id)
        if callee is self:
            dst_village = self.top_nic.pick_village(target, exclude=exclude)
            self.lnics[village.village_id].process(
                REQUEST_BYTES,
                lambda: self.network.send(
                    src_node, self._village_node(dst_village),
                    self._coh_request_bytes,
                    lambda: self._submit_with_retry(child, dst_village),
                    rec=child),
                rec=child)
            return dst_village
        v = village.village_id
        leaf = self._leaf(self.village_cluster(v))
        self.network.send(
            src_node, leaf, self._coh_request_bytes,
            lambda: self.rnics[v].process(
                REQUEST_BYTES,
                lambda: self.fabric.send(
                    self.server_id, callee.server_id, REQUEST_BYTES,
                    lambda: callee.ingress_internal(child), rec=child),
                rec=child),
            rec=child)
        return None

    def _service_call(self, rec: RequestRecord, village: Village,
                      target: str) -> None:
        """Synchronous downstream RPC; parent resumes on the response."""
        if self.resilience is not None:
            _ResilientCall(self, rec, village, target).launch()
            return
        hybrid = self.hybrid
        if hybrid is not None and hybrid.should_elide_call(target):
            # Committed callee: answer the RPC analytically — no child
            # request, no NIC/ICN/RQ events, just a sampled latency and
            # the normal parent wakeup.
            hybrid.elide_call(rec, village, target)
            return
        callee = self._pick_callee(target)

        if hybrid is not None:
            # Detailed call under an armed controller: record the
            # parent-visible latency (issue -> resume) to calibrate the
            # callee's analytic model.  The resume body is identical to
            # the default one, so the event sequence does not change.
            issued_ns = self.engine.now

            def respond(child: RequestRecord) -> None:
                self._deliver_response(
                    callee, child, village, rec,
                    on_resume=lambda: self._hybrid_resume(
                        rec, village, target, issued_ns))
        else:
            def respond(child: RequestRecord) -> None:
                self._deliver_response(callee, child, village, rec)

        child = self._make_request(rec.app_name, target, respond,
                                   depth=rec.depth + 1)
        tracer = self.engine.tracer
        if tracer.enabled:
            # Nested RPC: its own request span, parented into the caller's
            # trace so the span tree follows the RPC tree.
            tracer.begin_request(child, self.engine.now, parent=rec)
        self._send_call(village, child, callee, target)

    def _hybrid_resume(self, parent: RequestRecord, village: Village,
                       target: str, issued_ns: float) -> None:
        """Default response wakeup plus one calibration observation."""
        if self.hybrid is not None:
            self.hybrid.observe_call(target, self.engine.now - issued_ns)
        parent.advance_segment()
        village.make_ready(parent)

    def _deliver_response(self, callee: "Server", child: RequestRecord,
                          parent_village: Village,
                          parent: RequestRecord,
                          on_resume: Optional[Callable[[], None]] = None
                          ) -> None:
        """Send a child's response back to the waiting parent.

        ``on_resume`` (resilient calls) replaces the default wakeup so the
        caller's first-response-wins logic decides what happens.
        """

        tracer = self.engine.tracer

        def resume() -> None:
            if tracer.enabled:
                # The nested call's span closes when its response reaches
                # the waiting parent — the full parent-visible latency.
                tracer.end_request(child, self.engine.now)
            if on_resume is not None:
                on_resume()
                return
            parent.advance_segment()
            parent_village.make_ready(parent)

        child_node = callee._village_node(child.village)
        if callee is self:
            self.network.send(child_node,
                              self._village_node(parent_village.village_id),
                              self._coh_response_bytes, resume,
                              rec=child)
        else:
            child_leaf = callee._leaf(callee.village_cluster(child.village))
            callee.network.send(
                child_node, child_leaf, callee._coh_response_bytes,
                lambda: callee.fabric.send(
                    callee.server_id, self.server_id, RESPONSE_BYTES,
                    lambda: self.network.send(
                        self._leaf(self.village_cluster(
                            parent_village.village_id)),
                        self._village_node(parent_village.village_id),
                        self._coh_response_bytes, resume, rec=child),
                    rec=child),
                rec=child)

    # ------------------------------------------------------------- ingress

    def _make_request(self, app_name: str, service: str,
                      on_complete: Callable[[RequestRecord], None],
                      depth: int = 0) -> RequestRecord:
        spec = self.apps[app_name].services[service]
        rec = RequestRecord(
            app_name=app_name, service=service,
            segments=spec.sample_segments(self.rng),
            on_complete=on_complete, arrival_ns=self.engine.now, depth=depth,
            server=self.server_id)
        check = self.engine.check
        if check.enabled:
            check.request_created(rec)
        return rec

    def _submit_with_retry(self, rec: RequestRecord, village_id: int,
                           attempt: int = 0) -> None:
        """Internal requests back-pressure (NIC buffering) instead of
        being dropped.  After a few attempts the request is admitted as a
        soft (NIC-buffered) entry: a child RPC can never be dropped, and
        waiting indefinitely for a slot would deadlock call trees whose
        blocked parents hold all the slots."""
        if self.villages[village_id].submit(rec):
            return
        self._maybe_scale(rec.service)
        self.retries += 1
        if attempt >= 4:
            self.villages[village_id].submit_soft(rec)
            return
        self.engine.schedule(RETRY_NS * (attempt + 1),
                             self._submit_with_retry, rec, village_id,
                             attempt + 1)

    def ingress_internal(self, rec: RequestRecord) -> None:
        """A request arriving from a peer server for a local instance."""
        self.top_nic.process(REQUEST_BYTES, lambda: self._dispatch_external(
            rec, internal=True), rec=rec)

    def client_request(self, app_name: str,
                       on_done: Callable[[RequestRecord], None]) -> None:
        """External request from a client outside the cluster."""
        if self.resilience is not None:
            _ResilientRoot(self, app_name, on_done).launch()
            return
        self._client_request_once(app_name, on_done)

    def _client_request_once(self, app_name: str,
                             on_done: Callable[[RequestRecord], None]) -> None:
        """One attempt at an external request (no deadline machinery)."""
        app = self.apps[app_name]
        tracer = self.engine.tracer

        def finish(rec: RequestRecord) -> None:
            if tracer.enabled:
                tracer.end_request(rec, self.engine.now)
            on_done(rec)

        def respond(rec: RequestRecord) -> None:
            # Egress: village -> leaf -> NIC link -> top NIC -> fabric.
            v = rec.village
            leaf = self._leaf(self.village_cluster(v))
            self.network.send(
                self._village_node(v), leaf,
                self._coh_response_bytes,
                lambda: self._nic_links[self.village_cluster(v)].acquire(
                    self._nic_hop_ns,
                    lambda s, f: self.top_nic.process(
                        RESPONSE_BYTES,
                        lambda: self.fabric.send(self.server_id,
                                                 self.server_id,
                                                 RESPONSE_BYTES,
                                                 lambda: finish(rec),
                                                 rec=rec),
                        rec=rec)),
                rec=rec)

        rec = self._make_request(app_name, app.root, respond)
        if tracer.enabled:
            tracer.begin_request(rec, self.engine.now)
        self.fabric.send(
            self.server_id, self.server_id, REQUEST_BYTES,
            lambda: self.top_nic.process(
                REQUEST_BYTES,
                lambda: self._dispatch_external(rec, internal=False,
                                                on_reject=finish),
                rec=rec),
            rec=rec)

    def _dispatch_external(self, rec: RequestRecord, internal: bool,
                           on_reject: Optional[Callable] = None) -> None:
        try:
            village_id = self.top_nic.pick_village(rec.service)
        except KeyError:
            if not self.top_nic._down:
                raise              # unknown service: a configuration bug
            # Every local instance is marked down.  External requests get
            # an error response; internal ones blackhole and are rescued
            # by their caller's timeout/retry.
            if not internal:
                self.rejected += 1
                rec.rejected = True
                rec.finish_ns = self.engine.now
                if self.engine.check.enabled:
                    self.engine.check.ext_rejected(rec)
                if self.engine.tracer.enabled:
                    self.engine.tracer.end_request(rec, self.engine.now,
                                                   rejected=True)
                if on_reject is not None:
                    on_reject(rec)
            return
        cluster = self.village_cluster(village_id)

        def deliver() -> None:
            if self.villages[village_id].submit(rec):
                return
            self._maybe_scale(rec.service)
            if internal:
                self._submit_with_retry(rec, village_id, attempt=1)
            elif self.top_nic.try_buffer(rec):
                self.engine.schedule(RETRY_NS, self._retry_buffered,
                                     rec, village_id, on_reject)
            else:
                self.rejected += 1
                rec.rejected = True
                rec.finish_ns = self.engine.now
                if self.engine.check.enabled:
                    self.engine.check.ext_rejected(rec)
                tracer = self.engine.tracer
                if tracer.enabled:
                    tracer.end_request(rec, self.engine.now, rejected=True)
                if on_reject is not None:
                    on_reject(rec)

        self._nic_links[cluster].acquire(
            self._nic_hop_ns,
            lambda s, f: self.network.send(
                self._leaf(cluster), self._village_node(village_id),
                self._coh_request_bytes, deliver, rec=rec))

    def _maybe_scale(self, service: str) -> None:
        """Section 4.1: when a village fills to capacity, boot another
        instance of the service in a different village from its snapshot
        in that cluster's memory pool."""
        if not self.config.auto_scale or service in self._scaling:
            return
        hosting = set(self.placement[service])
        candidates = sorted(
            (v for v in range(len(self.villages)) if v not in hosting),
            key=lambda v: self.villages[v].rq.occupancy)
        if not candidates:
            return
        target = candidates[0]
        self._scaling.add(service)
        pool = self.pools[self.village_cluster(target)]

        def booted(boot_ns: float) -> None:
            self.placement[service].append(target)
            self.top_nic.register_instance(service, target)
            self._scaling.discard(service)
            self.instances_booted += 1

        pool.boot_instance(service, booted)

    def _retry_buffered(self, rec: RequestRecord, village_id: int,
                        on_reject) -> None:
        buffered = self.top_nic.drain_buffered()
        if buffered is None:
            return
        if not self.villages[village_id].submit(buffered):
            # Keep back-pressuring; the RQ will drain.
            self._submit_with_retry(buffered, village_id, attempt=1)

    # --------------------------------------------------------------- stats

    def utilization(self) -> float:
        total = sum(c.busy_ns for v in self.villages for c in v.cores)
        elapsed = self.engine.now * self.config.n_cores
        return total / elapsed if elapsed > 0 else 0.0


class _ResilientCall:
    """One downstream RPC under a resilience policy.

    Wraps a blocking service call with a per-attempt timeout, capped
    exponential-backoff retries and (optionally) a hedged duplicate to a
    different instance.  The first response to reach the parent wins;
    late responses are counted as wasted work, and an exhausted retry
    budget resumes the parent with the request marked failed (an error
    response, propagated up the call tree).
    """

    __slots__ = ("server", "parent", "parent_village", "target", "policy",
                 "attempt", "done", "events", "primary_village", "hedged")

    def __init__(self, server: Server, parent: RequestRecord,
                 parent_village: Village, target: str):
        self.server = server
        self.parent = parent
        self.parent_village = parent_village
        self.target = target
        self.policy = server.resilience
        self.attempt = 0            # retries issued so far
        self.done = False
        self.events: List = []      # cancellable timeout/hedge/backoff events
        self.primary_village: Optional[int] = None
        self.hedged = False

    def launch(self) -> None:
        self._issue(exclude=None, hedge=False)
        if self.policy.hedging:
            self.events.append(self.server.engine.schedule(
                self.policy.hedge_delay_ns, self._hedge))

    # ------------------------------------------------------------ attempts

    def _issue(self, exclude: Optional[int], hedge: bool) -> None:
        server = self.server
        started = server.engine.now
        callee = server._pick_callee(self.target)

        def respond(child: RequestRecord) -> None:
            server._deliver_response(
                callee, child, self.parent_village, self.parent,
                on_resume=lambda: self._complete(child))

        child = server._make_request(self.parent.app_name, self.target,
                                     respond, depth=self.parent.depth + 1)
        tracer = server.engine.tracer
        if tracer.enabled:
            tracer.begin_request(child, started, parent=self.parent)
        try:
            dst = server._send_call(self.parent_village, child, callee,
                                    self.target, exclude=exclude)
        except KeyError:
            # Every healthy instance is gone right now: skip the blackhole
            # wait (the ServiceMap already knows) and go straight to the
            # backoff/give-up decision.
            if not hedge:
                self._attempt_failed()
            return
        if hedge:
            return       # rides on the primary attempt's timeout budget
        self.primary_village = dst
        self.events.append(server.engine.schedule(
            self.policy.timeout_ns, self._timeout, started))

    def _hedge(self) -> None:
        if self.done or self.hedged:
            return
        self.hedged = True
        server = self.server
        server.rpc_hedges += 1
        tracer = server.engine.tracer
        if tracer.enabled:
            tracer.span("hedge", self.target, server.engine.now,
                        server.engine.now, rec=self.parent,
                        track="resilience")
        self._issue(exclude=self.primary_village, hedge=True)

    # ------------------------------------------------------- failure paths

    def _timeout(self, started: float) -> None:
        if self.done:
            return
        server = self.server
        server.rpc_timeouts += 1
        tracer = server.engine.tracer
        if tracer.enabled:
            tracer.span("blackhole_wait", self.target, started,
                        server.engine.now, rec=self.parent,
                        track="resilience")
        self._attempt_failed()

    def _attempt_failed(self) -> None:
        if self.done:
            return
        server = self.server
        if self.attempt >= self.policy.max_retries:
            self._finish_failed()
            return
        backoff = self.policy.backoff_ns(self.attempt)
        self.attempt += 1
        server.rpc_retries += 1
        tracer = server.engine.tracer
        if tracer.enabled:
            tracer.span("retry", f"{self.target}#retry{self.attempt}",
                        server.engine.now, server.engine.now + backoff,
                        rec=self.parent, track="resilience")
        self.events.append(server.engine.schedule(backoff, self._relaunch))

    def _relaunch(self) -> None:
        if self.done:
            return
        self._issue(exclude=self.primary_village, hedge=False)

    # -------------------------------------------------------- resolutions

    def _cancel_all(self) -> None:
        for ev in self.events:
            ev.cancel()
        self.events.clear()

    def _complete(self, child: RequestRecord) -> None:
        if self.done:
            self.server.wasted_responses += 1
            return
        self.done = True
        self._cancel_all()
        if child.failed:
            # The child itself came back degraded: propagate up the tree.
            self.parent.failed = True
        self.parent.advance_segment()
        self.parent_village.make_ready(self.parent)

    def _finish_failed(self) -> None:
        self.done = True
        self._cancel_all()
        self.server.rpc_failed += 1
        self.parent.failed = True
        self.parent.advance_segment()
        self.parent_village.make_ready(self.parent)


class _ResilientRoot:
    """End-to-end deadline and retry for one external client request."""

    __slots__ = ("server", "app_name", "on_done", "attempt", "done",
                 "timeout_ev", "arrival_ns")

    def __init__(self, server: Server, app_name: str,
                 on_done: Callable[[RequestRecord], None]):
        self.server = server
        self.app_name = app_name
        self.on_done = on_done
        self.attempt = 0
        self.done = False
        self.timeout_ev = None
        self.arrival_ns = server.engine.now

    def launch(self) -> None:
        server = self.server
        self.timeout_ev = server.engine.schedule(
            server.resilience.effective_root_timeout_ns, self._timeout)
        server._client_request_once(self.app_name, self._finish)

    def _finish(self, rec: RequestRecord) -> None:
        if self.done:
            self.server.wasted_responses += 1
            return
        self.done = True
        if self.timeout_ev is not None:
            self.timeout_ev.cancel()
        self.on_done(rec)

    def _timeout(self) -> None:
        if self.done:
            return
        server = self.server
        policy = server.resilience
        server.rpc_timeouts += 1
        tracer = server.engine.tracer
        if self.attempt < policy.root_max_retries:
            self.attempt += 1
            server.rpc_retries += 1
            if tracer.enabled:
                tracer.span("retry", f"{self.app_name}#root-retry",
                            server.engine.now, server.engine.now,
                            track="resilience")
            self.launch()
            return
        # Deadline blown and the retry budget is spent: synthesize an
        # error response so the client is not left hanging forever.
        self.done = True
        server.rpc_failed += 1
        rec = RequestRecord(
            app_name=self.app_name, service="<root-timeout>",
            segments=[0.0], on_complete=lambda r: None,
            arrival_ns=self.arrival_ns, server=server.server_id)
        rec.failed = True
        rec.finish_ns = server.engine.now
        self.on_done(rec)
