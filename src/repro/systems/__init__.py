"""Assembled systems: uManycore, ScaleOut, ServerClass, and the harness."""

from repro.systems.cluster import ClusterSimulation, RunResult, simulate
from repro.systems.configs import (
    SCALEOUT,
    SERVERCLASS,
    SERVERCLASS_128,
    UMANYCORE,
    SystemConfig,
    ablation_ladder,
    umanycore_variant,
)
from repro.systems.server import Server

__all__ = [
    "SystemConfig",
    "UMANYCORE",
    "SCALEOUT",
    "SERVERCLASS",
    "SERVERCLASS_128",
    "ablation_ladder",
    "umanycore_variant",
    "Server",
    "ClusterSimulation",
    "RunResult",
    "simulate",
]
