"""Architecture configurations (Table 2) and ablation builders.

Three systems from Section 5:

* **uManycore** — 1024 simple cores in 128 eight-core villages (4 per
  cluster, 32 clusters), hierarchical leaf-spine ICN, hardware request
  queuing/scheduling, hardware context switching, per-village coherence.
* **ScaleOut** — same 1024 cores and cache hierarchy, but global cache
  coherence, fat-tree ICN, one software queue per 32-core cluster, and
  software (Shinjuku-class) scheduling/context switching.
* **ServerClass** — 40 (iso-power) or 128 (iso-area) IceLake-class cores,
  2D mesh, one coherence/scheduling domain, software scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.core.context_switch import (
    HARDWARE_CS,
    SHINJUKU_CS,
    ContextSwitchConfig,
)
from repro.cpu.core_model import SCALEOUT_CORE, SERVERCLASS_CORE, \
    UMANYCORE_CORE, CoreConfig


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to instantiate one server's processor."""

    name: str
    core: CoreConfig
    n_cores: int
    cores_per_village: int         # L2-sharing group
    cores_per_queue: int           # scheduling-domain size
    n_clusters: int                # ICN leaf count
    topology: str                  # "mesh" | "fattree" | "leafspine"
    cs: ContextSwitchConfig
    coherence_domain_cores: int
    rpc_processing_ns: float       # NIC RPC-layer cost (hw vs sw)
    l2_latency_cycles: float = 24.0
    memory_latency_cycles: float = 200.0
    rq_capacity: int = 64
    work_steal: bool = False
    icn_contention: bool = True
    resume_reload_lines: int = 512
    locality: float = 0.7          # child calls staying on this server
    hw_queues: bool = False        # hardware RQ (bounded) vs software (DRAM)
    # Software-stack costs (zero when the NIC/scheduler do it in hardware):
    sw_rpc_core_ns: float = 0.0    # per-message RPC processing on the core
    preempt_quantum_ns: float = 0.0   # scheduler preemption period (0 = off)
    preempt_op_cycles: float = 0.0    # dispatcher work per preemption check
    # Per-invocation read-mostly state pulled over the ICN; with villages +
    # memory pools it is served by the local cluster, with global coherence
    # it interleaves across the die (Section 3.5 / 4.1):
    state_bytes_per_invocation: int = 1024 * 1024
    local_state_fraction: float = 0.0
    link_bytes_per_ns: float = 16.0
    # Force one scheduler instance per queue even when centralized (used
    # by the Figure 3 queue-granularity study to model per-queue locks).
    per_queue_scheduler: bool = False
    # Pluggable scheduling (repro.sched): the three decision points.
    dispatch: str = "rr"           # NIC->village: rr/random/least/affinity
    rq_policy: str = "fcfs"        # intra-village: fcfs/srpt/sjf/edf
    steal_policy: str = "first"    # victim choice when work_steal is on
    core_bypass: bool = False      # nanoPU-style idle-core fast path
    # Section 8 / 4.1 extensions:
    big_core: object = None        # CoreConfig for "big" villages, or None
    big_village_fraction: float = 0.0
    auto_scale: bool = False       # boot instances from snapshots on overload

    def __post_init__(self):
        if self.n_cores % self.cores_per_queue != 0:
            raise ValueError(
                f"{self.name}: {self.n_cores} cores not divisible into "
                f"{self.cores_per_queue}-core queue domains")
        if self.topology not in ("mesh", "fattree", "leafspine"):
            raise ValueError(f"{self.name}: unknown topology {self.topology}")
        if not 0.0 <= self.locality <= 1.0:
            raise ValueError(f"{self.name}: locality must be in [0, 1]")
        if not 0.0 <= self.big_village_fraction <= 1.0:
            raise ValueError(
                f"{self.name}: big_village_fraction must be in [0, 1]")
        if self.big_village_fraction > 0 and self.big_core is None:
            raise ValueError(
                f"{self.name}: big villages need a big_core config")
        # Validate policy names against the repro.sched registries (lazy
        # imports: repro.sched pulls in nothing from systems, but keep the
        # module import graph acyclic and the error close to the typo).
        from repro.sched.dispatch import DISPATCH_FACTORIES
        from repro.sched.policies import POLICY_FACTORIES
        from repro.sched.stealing import STEAL_POLICIES
        if self.dispatch not in DISPATCH_FACTORIES:
            raise ValueError(f"{self.name}: unknown dispatch policy "
                             f"{self.dispatch!r}")
        if self.rq_policy not in POLICY_FACTORIES:
            raise ValueError(f"{self.name}: unknown RQ policy "
                             f"{self.rq_policy!r}")
        if self.steal_policy not in STEAL_POLICIES:
            raise ValueError(f"{self.name}: unknown steal policy "
                             f"{self.steal_policy!r}")

    @property
    def n_queues(self) -> int:
        return self.n_cores // self.cores_per_queue

    @property
    def villages_per_cluster(self) -> int:
        return max(1, self.n_queues // self.n_clusters)


#: Software NICs still use NIC-to-core optimizations [32, 77] (Section 5),
#: so their RPC-layer cost is sub-microsecond rather than kernel-stack ms.
SW_RPC_NS = 500.0
HW_RPC_NS = 50.0


UMANYCORE = SystemConfig(
    name="uManycore",
    core=UMANYCORE_CORE,
    n_cores=1024,
    cores_per_village=8,
    cores_per_queue=8,
    n_clusters=32,
    topology="leafspine",
    cs=HARDWARE_CS,
    coherence_domain_cores=8,
    rpc_processing_ns=HW_RPC_NS,
    hw_queues=True,
    local_state_fraction=0.85,
    state_bytes_per_invocation=1024 * 1024,    # snapshots/state in the cluster pool
)

SCALEOUT = SystemConfig(
    name="ScaleOut",
    core=SCALEOUT_CORE,
    n_cores=1024,
    cores_per_village=8,
    cores_per_queue=32,           # one queue per 32-core cluster (Sec 6.2)
    n_clusters=32,
    topology="fattree",
    cs=SHINJUKU_CS,
    coherence_domain_cores=1024,  # global hardware coherence
    rpc_processing_ns=SW_RPC_NS,
    sw_rpc_core_ns=20_000.0,
    preempt_quantum_ns=15_000.0,
    preempt_op_cycles=450.0,
    state_bytes_per_invocation=1024 * 1024,
)

SERVERCLASS = SystemConfig(
    name="ServerClass",
    core=SERVERCLASS_CORE,
    n_cores=40,                   # iso-power vs uManycore
    cores_per_village=40,         # one shared L3 domain
    cores_per_queue=40,
    n_clusters=40,                # mesh tile per core
    topology="mesh",
    cs=SHINJUKU_CS,
    coherence_domain_cores=40,
    rpc_processing_ns=SW_RPC_NS,
    l2_latency_cycles=16.0,
    link_bytes_per_ns=64.0,       # on-die mesh links are wide
    sw_rpc_core_ns=130_000.0,
    preempt_quantum_ns=15_000.0,
    preempt_op_cycles=450.0,
    state_bytes_per_invocation=1024 * 1024,
)

SERVERCLASS_128 = replace(
    SERVERCLASS, name="ServerClass-128", n_cores=128,
    cores_per_village=128, cores_per_queue=128, n_clusters=128,
    coherence_domain_cores=128)


def ablation_ladder() -> List[SystemConfig]:
    """Figure 15: apply the four uManycore techniques to ScaleOut in order.

    villages -> +leaf-spine ICN -> +HW scheduling -> +HW context switch
    (the last step IS uManycore).
    """
    villages = replace(
        SCALEOUT, name="+Villages", cores_per_queue=8,
        coherence_domain_cores=8,
        local_state_fraction=UMANYCORE.local_state_fraction)
    leafspine = replace(villages, name="+Leaf-spine", topology="leafspine")
    # HW scheduling moves enqueue/dequeue/queuing into the RQ hardware,
    # but context save/restore is still done by the centralized software
    # scheduler (the paper adds HW context switching as the *next* step).
    hw_sched_cs = ContextSwitchConfig(
        name="sw-switch-hw-sched",
        save_cycles=SHINJUKU_CS.save_cycles,
        restore_cycles=SHINJUKU_CS.restore_cycles,
        scheduler_op_cycles=0.0, centralized=True)
    hw_sched = replace(leafspine, name="+HW Scheduling", cs=hw_sched_cs,
                       rpc_processing_ns=HW_RPC_NS, hw_queues=True,
                       sw_rpc_core_ns=0.0, preempt_quantum_ns=0.0,
                       preempt_op_cycles=0.0)
    hw_cs = replace(hw_sched, name="+HW Context Switch", cs=HARDWARE_CS)
    return [villages, leafspine, hw_sched, hw_cs]


def heterogeneous_umanycore(big_village_fraction: float = 0.25,
                            big_core: CoreConfig = None) -> SystemConfig:
    """Section 8: a uManycore with a mix of village types.

    A fraction of villages get beefier cores; the placement policy sends
    call-free (leaf) services to big villages and call-heavy orchestration
    services to the many small ones.
    """
    big = big_core or CoreConfig("big-village", issue_width=6,
                                 rob_entries=192, lsq_entries=128,
                                 freq_ghz=2.6, mispredict_penalty=16)
    return replace(UMANYCORE, name=f"uManycore-hetero{big_village_fraction}",
                   big_core=big, big_village_fraction=big_village_fraction)


def umanycore_variant(cores_per_village: int, villages_per_cluster: int,
                      n_clusters: int) -> SystemConfig:
    """Figure 19 topology variants: (cores/village, villages/cluster,
    clusters); total cores must stay 1024."""
    total = cores_per_village * villages_per_cluster * n_clusters
    if total != 1024:
        raise ValueError(f"variant must total 1024 cores, got {total}")
    return replace(
        UMANYCORE,
        name=f"uManycore-{cores_per_village}x{villages_per_cluster}x{n_clusters}",
        cores_per_village=min(cores_per_village, 8),  # L2 stays 8-core
        cores_per_queue=cores_per_village,
        coherence_domain_cores=cores_per_village,
        n_clusters=n_clusters,
    )
