"""Multi-server cluster simulation harness (Section 5: 10-server machines).

``simulate`` builds N identical servers behind an inter-server fabric and
a shared storage tier, drives one application with Poisson arrivals at a
given per-server load, and returns latency/throughput statistics with the
warm-up window excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.net.fabric import FabricConfig, InterServerFabric, StorageBackend
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.systems.configs import SystemConfig
from repro.systems.server import Server
from repro.telemetry import MetricsRegistry, NullTracer, aggregate_breakdown
from repro.workloads.arrival import arrival_times, bursty_arrival_times
from repro.workloads.spec import AppSpec


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated run."""

    system: str
    app: str
    rps_per_server: float
    n_servers: int
    duration_s: float
    summary: LatencySummary
    completed: int
    rejected: int
    offered: int
    #: The run's tracer when tracing was enabled (else None).
    tracer: Optional[object] = None
    #: The run's sampled metrics registry when enabled (else None).
    metrics: Optional[MetricsRegistry] = None
    #: Warm-up cutoff used for the summary (ns) — also applied to the
    #: span-derived breakdown so both cover the same request population.
    warmup_ns: float = 0.0

    @property
    def throughput_rps(self) -> float:
        return self.completed / (self.duration_s * self.n_servers)

    @property
    def mean_ns(self) -> float:
        return self.summary.mean

    @property
    def p99_ns(self) -> float:
        return self.summary.p99

    def breakdown(self) -> Optional[dict]:
        """Span-derived per-category latency decomposition (see
        :mod:`repro.telemetry.breakdown`); None without tracing."""
        if self.tracer is None or not getattr(self.tracer, "enabled", False):
            return None
        return aggregate_breakdown(self.tracer, after_ns=self.warmup_ns)

    def as_dict(self) -> dict:
        """Machine-readable run summary (the ``--json`` payload)."""
        d = {
            "system": self.system,
            "app": self.app,
            "rps_per_server": self.rps_per_server,
            "n_servers": self.n_servers,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "throughput_rps": self.throughput_rps,
            "latency_ns": self.summary.as_dict(),
            "tail_to_average": self.summary.tail_to_average,
        }
        bd = self.breakdown()
        if bd is not None:
            d["breakdown"] = bd
        if self.metrics is not None:
            d["metrics"] = self.metrics.as_dict()
        return d


class ClusterSimulation:
    """Owns the engine, fabric, storage and servers for one run."""

    def __init__(self, config: SystemConfig, app: AppSpec,
                 rps_per_server: float, n_servers: int = 4,
                 duration_s: float = 0.02, seed: int = 0,
                 warmup_fraction: float = 0.25,
                 fabric_config: Optional[FabricConfig] = None,
                 arrivals: str = "poisson",
                 tracer: Optional[NullTracer] = None,
                 metrics_interval_ns: Optional[float] = None):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if arrivals not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        self.arrivals = arrivals
        self.config = config
        self.app = app
        self.rps_per_server = rps_per_server
        self.n_servers = n_servers
        self.duration_s = duration_s
        self.warmup_fraction = warmup_fraction
        self.engine = Engine()
        self.tracer = tracer
        if tracer is not None:
            self.engine.tracer = tracer     # every layer reports through it
        self.metrics: Optional[MetricsRegistry] = \
            MetricsRegistry() if metrics_interval_ns else None
        self.metrics_interval_ns = metrics_interval_ns
        self.streams = RngStreams(seed)
        self.fabric = InterServerFabric(self.engine, n_servers, fabric_config)
        self.storage = StorageBackend(self.engine,
                                      self.streams.stream("storage"),
                                      fabric_config)
        apps: Dict[str, AppSpec] = {app.name: app}
        self.servers = [
            Server(self.engine, i, config, apps,
                   self.streams.stream(f"server{i}"), self.fabric,
                   self.storage)
            for i in range(n_servers)]
        for server in self.servers:
            server.peers = self.servers
        self.recorder = LatencyRecorder(name=f"{config.name}/{app.name}")
        self.offered = 0
        self.rejected = 0
        if self.metrics is not None:
            self._register_gauges()

    def _register_gauges(self) -> None:
        """Periodic time series of the paper's congestion indicators:
        RQ depth, village utilization, NIC buffer occupancy, ICN link
        contention (Section 6 / uqSim-style per-stage visibility)."""
        reg = self.metrics
        for server in self.servers:
            s = server  # bind per-iteration for the closures below
            name = f"s{s.server_id}"
            reg.gauge(f"{name}.rq_depth",
                      lambda s=s: sum(v.rq.occupancy for v in s.villages))
            reg.gauge(f"{name}.rq_depth_max",
                      lambda s=s: max(v.rq.occupancy for v in s.villages))
            reg.gauge(f"{name}.utilization", lambda s=s: s.utilization())
            reg.gauge(f"{name}.nic_buffer", lambda s=s: s.top_nic.buffered)
            reg.gauge(f"{name}.icn_queued",
                      lambda s=s: s.network.queued_messages())

    def _schedule_arrivals(self) -> None:
        generate = arrival_times if self.arrivals == "poisson" \
            else bursty_arrival_times
        for i, server in enumerate(self.servers):
            rng = self.streams.stream(f"arrivals{i}")
            for t in generate(self.rps_per_server, self.duration_s, rng):
                self.offered += 1
                self.engine.schedule_at(
                    float(t), self._issue, server, float(t))

    def _issue(self, server: Server, arrival_ns: float) -> None:
        def done(rec) -> None:
            if rec.rejected:
                self.rejected += 1
                if self.metrics is not None:
                    self.metrics.counter("rejected").inc()
                return
            latency = self.engine.now - arrival_ns
            self.recorder.record(self.engine.now, latency)
            if self.metrics is not None:
                self.metrics.histogram("latency_ns").observe(latency)

        server.client_request(self.app.name, done)

    def run(self, max_events: Optional[int] = None) -> RunResult:
        self._schedule_arrivals()
        if self.metrics is not None:
            self.metrics.histogram("latency_ns")
            self.metrics.start_sampling(self.engine, self.metrics_interval_ns)
        self.engine.run(max_events=max_events)
        warmup_ns = self.warmup_fraction * self.duration_s * 1e9
        summary = self.recorder.summary(after_ns=warmup_ns)
        return RunResult(
            system=self.config.name, app=self.app.name,
            rps_per_server=self.rps_per_server, n_servers=self.n_servers,
            duration_s=self.duration_s, summary=summary,
            completed=len(self.recorder), rejected=self.rejected,
            offered=self.offered, tracer=self.tracer, metrics=self.metrics,
            warmup_ns=warmup_ns)


def simulate(config: SystemConfig, app: AppSpec, rps_per_server: float,
             n_servers: int = 4, duration_s: float = 0.02, seed: int = 0,
             warmup_fraction: float = 0.25,
             fabric_config: Optional[FabricConfig] = None,
             arrivals: str = "poisson",
             tracer: Optional[NullTracer] = None,
             metrics_interval_ns: Optional[float] = None) -> RunResult:
    """One-call wrapper: build the cluster, run it, return the result.

    Pass a :class:`repro.telemetry.Tracer` to capture spans and/or a
    ``metrics_interval_ns`` to sample system-state gauges periodically;
    both default to off (zero-overhead NullTracer path).
    """
    sim = ClusterSimulation(config, app, rps_per_server, n_servers,
                            duration_s, seed, warmup_fraction, fabric_config,
                            arrivals=arrivals, tracer=tracer,
                            metrics_interval_ns=metrics_interval_ns)
    return sim.run()
