"""Multi-server cluster simulation harness (Section 5: 10-server machines).

``simulate`` builds N identical servers behind an inter-server fabric and
a shared storage tier, drives one application with Poisson arrivals at a
given per-server load, and returns latency/throughput statistics with the
warm-up window excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.check.context import NULL_CHECK, NullCheckContext
from repro.dc.autoscale import Autoscaler
from repro.dc.config import DcConfig
from repro.dc.lb import AffinityLB, FrontEndLB, get_lb_policy
from repro.dc.placement import PlacementPlan
from repro.faults import FaultInjector, FaultSchedule, ResilienceConfig
from repro.hybrid.config import HybridConfig
from repro.hybrid.controller import HybridController
from repro.metrics.latency import LatencyRecorder, LatencySummary, \
    pooled_summary
from repro.net.fabric import FabricConfig, InterServerFabric, StorageBackend
from repro.sim.engine import Engine
from repro.sim.rng import RngStreams
from repro.systems.configs import SystemConfig
from repro.systems.server import Server
from repro.telemetry import MetricsRegistry, NullTracer, aggregate_breakdown
from repro.workloads.arrival import get_profile
from repro.workloads.spec import AppSpec


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated run."""

    system: str
    app: str
    rps_per_server: float
    n_servers: int
    duration_s: float
    summary: LatencySummary
    completed: int
    rejected: int
    offered: int
    #: The run's tracer when tracing was enabled (else None).
    tracer: Optional[object] = None
    #: The run's sampled metrics registry when enabled (else None).
    metrics: Optional[MetricsRegistry] = None
    #: Warm-up cutoff used for the summary (ns) — also applied to the
    #: span-derived breakdown so both cover the same request population.
    warmup_ns: float = 0.0
    #: Requests that came back as errors (retry budget exhausted or the
    #: root deadline blown); zero outside fault experiments.
    failed: int = 0
    #: Fault-injection and resilience counters; None in fault-free runs
    #: (keeps ``as_dict`` byte-identical to the pre-fault simulator).
    fault_stats: Optional[dict] = None
    #: Scheduling-policy counters (steals, bypasses, dispatch spills);
    #: None under the default policies so default output stays
    #: byte-identical to the pre-policy-layer simulator.
    sched_stats: Optional[dict] = None
    #: Datacenter-tier stats (LB routing, placement proxying, autoscale
    #: events, per-server/pooled tails); None when ``dc`` is off so
    #: non-dc output stays byte-identical to the pre-dc simulator.
    dc_stats: Optional[dict] = None
    #: Hybrid fast-path stats (commits/aborts/events elided, per-service
    #: models); None when ``hybrid`` is off so non-hybrid output stays
    #: byte-identical to the pre-hybrid simulator.
    hybrid_stats: Optional[dict] = None

    @property
    def throughput_rps(self) -> float:
        return self.completed / (self.duration_s * self.n_servers)

    @property
    def mean_ns(self) -> float:
        return self.summary.mean

    @property
    def p99_ns(self) -> float:
        return self.summary.p99

    @property
    def goodput_rps(self) -> float:
        """Successful completions per server-second (excludes failed and
        rejected requests; equals ``throughput_rps`` in fault-free runs)."""
        return self.completed / (self.duration_s * self.n_servers)

    @property
    def availability(self) -> float:
        """Fraction of answered requests that succeeded."""
        answered = self.completed + self.failed + self.rejected
        return self.completed / answered if answered else 1.0

    def breakdown(self) -> Optional[dict]:
        """Span-derived per-category latency decomposition (see
        :mod:`repro.telemetry.breakdown`); None without tracing."""
        if self.tracer is None or not getattr(self.tracer, "enabled", False):
            return None
        return aggregate_breakdown(self.tracer, after_ns=self.warmup_ns)

    def as_dict(self) -> dict:
        """Machine-readable run summary (the ``--json`` payload)."""
        d = {
            "system": self.system,
            "app": self.app,
            "rps_per_server": self.rps_per_server,
            "n_servers": self.n_servers,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "throughput_rps": self.throughput_rps,
            "latency_ns": self.summary.as_dict(),
            "tail_to_average": self.summary.tail_to_average,
        }
        bd = self.breakdown()
        if bd is not None:
            d["breakdown"] = bd
        if self.metrics is not None:
            d["metrics"] = self.metrics.as_dict()
        if self.fault_stats is not None:
            d["failed"] = self.failed
            d["availability"] = self.availability
            d["goodput_rps"] = self.goodput_rps
            d["faults"] = self.fault_stats
        if self.sched_stats is not None:
            d["sched"] = self.sched_stats
        if self.dc_stats is not None:
            d["dc"] = self.dc_stats
        if self.hybrid_stats is not None:
            d["hybrid"] = self.hybrid_stats
        return d


class ClusterSimulation:
    """Owns the engine, fabric, storage and servers for one run."""

    def __init__(self, config: SystemConfig, app: AppSpec,
                 rps_per_server: float, n_servers: int = 4,
                 duration_s: float = 0.02, seed: int = 0,
                 warmup_fraction: float = 0.25,
                 fabric_config: Optional[FabricConfig] = None,
                 arrivals="poisson",
                 tracer: Optional[NullTracer] = None,
                 metrics_interval_ns: Optional[float] = None,
                 faults: Optional[FaultSchedule] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 check: Optional[NullCheckContext] = None,
                 dc: Optional[DcConfig] = None,
                 hybrid: Optional[HybridConfig] = None):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if not 0 <= warmup_fraction < 1:
            raise ValueError("warmup_fraction must be in [0, 1)")
        #: Resolved arrival generator: a RateProfile (named profiles and
        #: instances) or a TraceReplay; ``self.arrivals`` keeps the raw
        #: argument for reporting.
        self.rate_profile = get_profile(arrivals)
        self.arrivals = arrivals
        self.config = config
        self.app = app
        self.rps_per_server = rps_per_server
        self.n_servers = n_servers
        self.duration_s = duration_s
        self.warmup_fraction = warmup_fraction
        self.engine = Engine()
        # Invariant sanitizer (repro.check): installed before any
        # component is built so every queue/resource registers with it.
        self.check = check if check is not None else NULL_CHECK
        if check is not None:
            self.engine.check = check
        self.tracer = tracer
        if tracer is not None:
            self.engine.tracer = tracer     # every layer reports through it
        self.metrics: Optional[MetricsRegistry] = \
            MetricsRegistry() if metrics_interval_ns else None
        self.metrics_interval_ns = metrics_interval_ns
        self.streams = RngStreams(seed)
        self.fabric = InterServerFabric(self.engine, n_servers, fabric_config)
        self.storage = StorageBackend(self.engine,
                                      self.streams.stream("storage"),
                                      fabric_config)
        apps: Dict[str, AppSpec] = {app.name: app}
        # Datacenter tier (repro.dc): service placement decides which
        # services each server hosts; the front-end LB owns routing.
        self.dc = dc
        self.placement: Optional[PlacementPlan] = None
        if dc is not None and dc.replication > 0:
            services = sorted({s for a in apps.values() for s in a.services})
            roots = {a.root for a in apps.values()}
            self.placement = PlacementPlan.build(
                services, roots, n_servers, dc.replication)
        self.servers = [
            Server(self.engine, i, config, apps,
                   self.streams.stream(f"server{i}"), self.fabric,
                   self.storage,
                   hosted=(self.placement.services_on(i)
                           if self.placement is not None else None))
            for i in range(n_servers)]
        for server in self.servers:
            server.peers = self.servers
            server.placement_plan = self.placement
        self.lb: Optional[FrontEndLB] = None
        self.autoscaler: Optional[Autoscaler] = None
        self.server_answered: Optional[list] = None
        self.server_recorders: Optional[list] = None
        if dc is not None:
            policy = get_lb_policy(dc.lb, dc.spill_margin)
            lb_rng = self.streams.stream("lb") if policy.needs_rng else None
            self.lb = FrontEndLB(n_servers, policy, rng=lb_rng,
                                 check=self.check)
            self.server_answered = [0] * n_servers
            self.server_recorders = [
                LatencyRecorder(name=f"{config.name}/s{i}")
                for i in range(n_servers)]
            if dc.autoscale:
                self.autoscaler = Autoscaler(self.engine, self.lb,
                                             self.servers, dc,
                                             check=self.check)
        self.recorder = LatencyRecorder(name=f"{config.name}/{app.name}")
        self.offered = 0
        self.rejected = 0
        self.failed = 0
        # Fault injection + resilience.  An *empty* schedule is treated
        # exactly like no schedule (falsy), so default runs never install
        # an injector, arm a timeout, or take a new branch.
        self.faults = faults if faults else None
        if self.faults is not None and resilience is None:
            resilience = ResilienceConfig()   # faults demand a response
        self.resilience = resilience
        self.injector: Optional[FaultInjector] = None
        if self.resilience is not None:
            for server in self.servers:
                server.resilience = self.resilience
        if self.faults is not None:
            self.injector = FaultInjector(self.engine, self.servers,
                                          self.faults)
        # Hybrid fast path (repro.hybrid): built last so its structural
        # guards can see the injector/autoscaler; installed in run().
        self.hybrid: Optional[HybridController] = \
            HybridController(self, hybrid) if hybrid is not None else None
        if self.metrics is not None:
            self._register_gauges()

    def install_faults(self, faults: Optional[FaultSchedule],
                       resilience: Optional[ResilienceConfig] = None) -> None:
        """Arm fault injection after construction.

        Lets callers inspect the built cluster (topology node names, the
        village inventory) to pick fault targets, then install the
        schedule — must be called before :meth:`run`.
        """
        self.faults = faults if faults else None
        if self.faults is None and resilience is None:
            return
        if resilience is None and self.resilience is None:
            resilience = ResilienceConfig()
        if resilience is not None:
            self.resilience = resilience
            for server in self.servers:
                server.resilience = resilience
        if self.faults is not None:
            self.injector = FaultInjector(self.engine, self.servers,
                                          self.faults)

    def _register_gauges(self) -> None:
        """Periodic time series of the paper's congestion indicators:
        RQ depth, village utilization, NIC buffer occupancy, ICN link
        contention (Section 6 / uqSim-style per-stage visibility)."""
        reg = self.metrics
        for server in self.servers:
            s = server  # bind per-iteration for the closures below
            name = f"s{s.server_id}"
            reg.gauge(f"{name}.rq_depth",
                      lambda s=s: sum(v.rq.occupancy for v in s.villages))
            reg.gauge(f"{name}.rq_depth_max",
                      lambda s=s: max(v.rq.occupancy for v in s.villages))
            reg.gauge(f"{name}.utilization", lambda s=s: s.utilization())
            reg.gauge(f"{name}.nic_buffer", lambda s=s: s.top_nic.buffered)
            reg.gauge(f"{name}.icn_queued",
                      lambda s=s: s.network.queued_messages())

    def _schedule_arrivals(self) -> None:
        profile = self.rate_profile
        if self.lb is not None:
            # One shared arrival process for the whole cluster, routed
            # per-request by the front-end LB.  Reuses the "arrivals0"
            # stream at the aggregate rate so lb=rr with one server
            # replays the single-server arrival sequence exactly.
            rng = self.streams.stream("arrivals0")
            rate = self.rps_per_server * self.n_servers
            times = profile.generate(rate, self.duration_s, rng).tolist()
            self.offered += len(times)
            if self.check.enabled:
                self.check.root_offered(len(times))
            if times:
                self.engine.schedule_at_batch(times, self._route,
                                              append_time=True)
            return
        if getattr(profile, "is_replay", False):
            # A replayed trace records *cluster-wide* arrivals; without
            # an LB, deal round-robin slices per server (``times[i::n]``
            # stays sorted, as schedule_at_batch requires) — the spread
            # an L4 balancer would have produced.
            rate = self.rps_per_server * self.n_servers
            rng = self.streams.stream("arrivals0")
            all_times = profile.generate(rate, self.duration_s, rng)
            for i, server in enumerate(self.servers):
                times = all_times[i::self.n_servers].tolist()
                self.offered += len(times)
                if self.check.enabled:
                    self.check.root_offered(len(times))
                if times:
                    self.engine.schedule_at_batch(times, self._issue, server,
                                                  append_time=True)
            return
        # Arrival times are bulk-drawn (vectorized) per server from its
        # dedicated ``arrivals{i}`` stream and batch-inserted; draw
        # order and event (time, seq) order match the former per-event
        # loop exactly, so schedules are byte-identical.
        for i, server in enumerate(self.servers):
            rng = self.streams.stream(f"arrivals{i}")
            times = profile.generate(self.rps_per_server, self.duration_s,
                                     rng).tolist()
            self.offered += len(times)
            if self.check.enabled:
                self.check.root_offered(len(times))
            if times:
                self.engine.schedule_at_batch(times, self._issue, server,
                                              append_time=True)

    def _route(self, arrival_ns: float) -> None:
        """LB entry point: pick a server for one arriving root request."""
        sid = self.lb.route(self.app.name)
        server = self.servers[sid]
        if self.dc.lb_latency_ns > 0:
            self.engine.schedule(self.dc.lb_latency_ns, self._issue,
                                 server, arrival_ns)
        else:
            self._issue(server, arrival_ns)

    def _issue(self, server: Server, arrival_ns: float) -> None:
        if self.hybrid is not None \
                and self.hybrid.intercept_root(server, arrival_ns):
            return

        def done(rec) -> None:
            if self.lb is not None:
                self.lb.request_done(server.server_id)
                self.server_answered[server.server_id] += 1
            if rec.rejected:
                self.rejected += 1
                if self.check.enabled:
                    self.check.root_done("rejected")
                if self.metrics is not None:
                    self.metrics.counter("rejected").inc()
                return
            if rec.failed:
                # An error response (retries exhausted / deadline blown):
                # answered, but not goodput — excluded from latency.
                self.failed += 1
                if self.check.enabled:
                    self.check.root_done("failed")
                if self.metrics is not None:
                    self.metrics.counter("failed").inc()
                return
            if self.check.enabled:
                self.check.root_done("completed")
            latency = self.engine.now - arrival_ns
            self.recorder.record(self.engine.now, latency)
            if self.server_recorders is not None:
                self.server_recorders[server.server_id].record(
                    self.engine.now, latency)
            if self.metrics is not None:
                self.metrics.histogram("latency_ns").observe(latency)

        server.client_request(self.app.name, done)

    def run(self, max_events: Optional[int] = None) -> RunResult:
        self._schedule_arrivals()
        if self.injector is not None:
            self.injector.install()
        if self.autoscaler is not None:
            self.autoscaler.install()
        if self.hybrid is not None:
            self.hybrid.install()
        if self.metrics is not None:
            self.metrics.histogram("latency_ns")
            self.metrics.start_sampling(self.engine, self.metrics_interval_ns)
        self.engine.run(max_events=max_events)
        if self.check.enabled:
            # Balance the conservation ledgers; drain-only checks are
            # skipped when a max_events budget truncated the run.
            drained = self.engine.peek_time() is None
            self.check.finalize(self, drained=drained)
            if getattr(self.check, "strict", False):
                self.check.raise_if_violations()
        warmup_ns = self.warmup_fraction * self.duration_s * 1e9
        summary = self.recorder.summary(after_ns=warmup_ns)
        fault_stats = self._fault_stats() \
            if (self.injector is not None or self.resilience is not None) \
            else None
        return RunResult(
            system=self.config.name, app=self.app.name,
            rps_per_server=self.rps_per_server, n_servers=self.n_servers,
            duration_s=self.duration_s, summary=summary,
            completed=len(self.recorder), rejected=self.rejected,
            offered=self.offered, tracer=self.tracer, metrics=self.metrics,
            warmup_ns=warmup_ns, failed=self.failed,
            fault_stats=fault_stats, sched_stats=self._sched_stats(),
            dc_stats=self._dc_stats(warmup_ns),
            hybrid_stats=self.hybrid.stats()
            if self.hybrid is not None else None)

    def _dc_stats(self, warmup_ns: float) -> Optional[dict]:
        """Datacenter-tier counters; None when ``dc`` is off (keeps the
        non-dc ``as_dict`` payload byte-identical to the pre-dc layer)."""
        if self.lb is None:
            return None
        dc = self.dc
        stats = {
            "lb": dc.lb,
            "lb_latency_ns": dc.lb_latency_ns,
            "replication": dc.replication,
            "autoscale": dc.autoscale,
            "routed": list(self.lb.routed),
            "active_at_end": self.lb.active_ids,
            "proxied": sum(s.rpc_proxied for s in self.servers),
            "per_server": [],
        }
        for sid, rec in enumerate(self.server_recorders):
            entry = {
                "server": sid,
                "routed": self.lb.routed[sid],
                "answered": self.server_answered[sid],
                "completed": len(rec),
            }
            if rec.latencies(after_ns=warmup_ns).size:
                s = rec.summary(after_ns=warmup_ns)
                entry.update(p50_ns=s.p50, p99_ns=s.p99, p999_ns=s.p999)
            stats["per_server"].append(entry)
        pooled = pooled_summary(self.server_recorders, after_ns=warmup_ns)
        stats["pooled"] = pooled.as_dict()
        if isinstance(self.lb.policy, AffinityLB):
            stats["spills"] = self.lb.policy.spills
        if self.autoscaler is not None:
            stats["scale_ups"] = self.autoscaler.scale_ups
            stats["scale_downs"] = self.autoscaler.scale_downs
            stats["scale_events"] = [
                {"time_ns": t, "action": action, "server": sid,
                 "mean_util": util}
                for t, action, sid, util in self.autoscaler.events]
        return stats

    def _sched_stats(self) -> Optional[dict]:
        """Policy-layer counters; None for default-policy runs (keeps
        their ``as_dict`` payload — including the legacy ``work_steal``
        configs of Figure 3 — byte-identical to the pre-policy layer)."""
        cfg = self.config
        if not (cfg.core_bypass
                or cfg.rq_policy != "fcfs"
                or cfg.dispatch not in ("rr", "random")
                or (cfg.work_steal and cfg.steal_policy != "first")):
            return None
        servers = self.servers
        stats = {
            "dispatch": cfg.dispatch,
            "rq_policy": cfg.rq_policy,
            "steal_policy": cfg.steal_policy if cfg.work_steal else "off",
            "core_bypass": cfg.core_bypass,
            "steals": sum(v.steals for s in servers for v in s.villages),
            "bypasses": sum(v.bypasses for s in servers for v in s.villages),
        }
        if cfg.dispatch == "affinity":
            stats["spills"] = sum(s.top_nic._dispatch_policy.spills
                                  for s in servers)
        return stats

    def _fault_stats(self) -> dict:
        """Aggregate resilience/fault counters across the cluster (also
        mirrored into the metrics registry when one is attached)."""
        servers = self.servers
        stats = {
            "injected": self.injector.stats() if self.injector else None,
            "rpc_timeouts": sum(s.rpc_timeouts for s in servers),
            "rpc_retries": sum(s.rpc_retries for s in servers),
            "rpc_hedges": sum(s.rpc_hedges for s in servers),
            "rpc_failed": sum(s.rpc_failed for s in servers),
            "wasted_responses": sum(s.wasted_responses for s in servers),
            "blackholed": sum(v.blackholed for s in servers
                              for v in s.villages),
            "icn_dropped": sum(s.network.messages_dropped for s in servers),
            "nic_dropped": sum(n.dropped for s in servers
                               for n in s.lnics + s.rnics),
            "health_marks": sum(s.top_nic.health_marks for s in servers),
        }
        if self.metrics is not None:
            for key in ("rpc_timeouts", "rpc_retries", "rpc_hedges",
                        "rpc_failed", "blackholed", "icn_dropped",
                        "nic_dropped"):
                self.metrics.counter(key).inc(stats[key])
        return stats


def simulate(config: SystemConfig, app: AppSpec, rps_per_server: float,
             n_servers: int = 4, duration_s: float = 0.02, seed: int = 0,
             warmup_fraction: float = 0.25,
             fabric_config: Optional[FabricConfig] = None,
             arrivals="poisson",
             tracer: Optional[NullTracer] = None,
             metrics_interval_ns: Optional[float] = None,
             faults: Optional[FaultSchedule] = None,
             resilience: Optional[ResilienceConfig] = None,
             check: Optional[NullCheckContext] = None,
             dc: Optional[DcConfig] = None,
             hybrid: Optional[HybridConfig] = None) -> RunResult:
    """One-call wrapper: build the cluster, run it, return the result.

    Pass a :class:`repro.telemetry.Tracer` to capture spans and/or a
    ``metrics_interval_ns`` to sample system-state gauges periodically;
    both default to off (zero-overhead NullTracer path).  A non-empty
    ``faults`` schedule installs the injector and (unless an explicit
    ``resilience`` policy is given) arms default timeout/retry handling.
    A :class:`repro.check.CheckContext` as ``check`` runs the run under
    the invariant sanitizer (raising on violations when it is strict).
    A :class:`repro.dc.DcConfig` as ``dc`` switches on the datacenter
    tier — one shared arrival process routed through a front-end LB,
    service placement/replication, and (optionally) autoscaling.
    A :class:`repro.hybrid.HybridConfig` as ``hybrid`` arms the analytic
    steady-state fast path (guard-and-abort; see :mod:`repro.hybrid`).
    """
    sim = ClusterSimulation(config, app, rps_per_server, n_servers,
                            duration_s, seed, warmup_fraction, fabric_config,
                            arrivals=arrivals, tracer=tracer,
                            metrics_interval_ns=metrics_interval_ns,
                            faults=faults, resilience=resilience,
                            check=check, dc=dc, hybrid=hybrid)
    return sim.run()
