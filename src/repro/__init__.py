"""uManycore reproduction: a discrete-event cluster simulator.

Reproduces "uManycore: A Cloud-Native CPU for Tail at Scale" in pure
Python.  Layer map (see docs/ARCHITECTURE.md for the full tour):

* :mod:`repro.sim` — the event engine everything runs on;
* :mod:`repro.core`, :mod:`repro.sched`, :mod:`repro.mem`,
  :mod:`repro.icn`, :mod:`repro.net` — microarchitecture, scheduling,
  memory, on-package interconnect and inter-server fabric models;
* :mod:`repro.systems` — the uManycore/ScaleOut/ServerClass system
  configurations and the cluster harness
  (:func:`repro.systems.cluster.simulate`);
* :mod:`repro.workloads` — DeathStarBench-derived and synthetic apps;
* :mod:`repro.telemetry`, :mod:`repro.faults` — tracing/metrics and
  deterministic fault injection;
* :mod:`repro.runner` — parallel, cached execution of experiment grids;
* :mod:`repro.experiments` — one module per paper figure;
* :mod:`repro.cli` — the ``python -m repro`` entry point.
"""
