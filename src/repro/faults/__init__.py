"""Deterministic fault injection and resilience (tail under failures).

The paper's thesis — tail latency at scale — meets its hardest test when
components fail.  This package adds a seed-deterministic fault model on
top of the simulator:

* :class:`FaultSchedule` — a concrete, replayable list of fail/recover/
  degrade events for villages, cores, ICN links and village NICs.
* :class:`FaultInjector` — turns the schedule into engine events and
  flips component state (villages purge their RQ and blackhole; links
  disappear from the topology; NICs drop traffic).
* :class:`ResilienceConfig` — the system-software response: per-call
  timeout, capped exponential-backoff retries, and optional request
  hedging, threaded through the RPC layer by the server.

An empty schedule and a ``None`` resilience config are the default
everywhere, and in that mode every code path is byte-identical to a
simulator that never loaded this package.
"""

from repro.faults.injector import FaultInjector, fault_inventory
from repro.faults.resilience import ResilienceConfig
from repro.faults.schedule import FaultEvent, FaultSchedule, merge

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultInjector",
    "ResilienceConfig",
    "fault_inventory",
    "merge",
]
