"""Deterministic fault schedules: what fails, when, and for how long.

A :class:`FaultSchedule` is a plain, sorted list of :class:`FaultEvent`
records — no randomness happens at injection time, so a simulation under
faults is still a pure function of ``(config, app, load, seed, schedule)``.
Randomized schedules exist, but the randomness is consumed *up front* by
:meth:`FaultSchedule.random` from its own seed, producing a concrete
event list that can be printed, diffed, and replayed.

Component addressing (the ``target`` tuple):

``village``  ``(server_id, village_id)``
``core``     ``(server_id, village_id, core_id)``
``link``     ``(server_id, u, v)`` — an on-package ICN link by node name
``nic``      ``(server_id, village_id, "lnic" | "rnic")``

Actions:

``fail``     the component stops; traffic through it blackholes
``recover``  the component returns to service
``degrade``  gray failure: the component keeps working ``factor``×
             slower (villages only; ``factor=1.0`` restores full speed)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

KINDS = ("village", "core", "link", "nic")
ACTIONS = ("fail", "recover", "degrade")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled change to a component's health."""

    time_ns: float
    kind: str                      # see KINDS
    action: str                    # see ACTIONS
    target: Tuple = ()
    factor: float = 1.0            # degrade slowdown (>1 = slower)

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.time_ns < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time_ns}")
        if self.action == "degrade":
            if self.kind != "village":
                raise ValueError("degrade is only defined for villages")
            if self.factor <= 0:
                raise ValueError("degrade factor must be positive")

    def as_dict(self) -> dict:
        """Return the event as a JSON-serializable dict."""
        return {"time_ns": self.time_ns, "kind": self.kind,
                "action": self.action, "target": list(self.target),
                "factor": self.factor}


@dataclass
class FaultSchedule:
    """An ordered set of fault events plus the failure-detection lag.

    ``detection_ns`` models the NIC ServiceMap health checker: a failed
    (or recovered) village is only marked down (up) in the dispatcher
    this long after the event — requests dispatched inside the window
    blackhole and are recovered by the RPC layer's timeout/retry.

    An empty schedule is falsy; the cluster harness treats it exactly
    like no schedule at all, so the zero-fault path stays byte-identical
    to a run that never heard of this module.
    """

    _events: List[FaultEvent] = field(default_factory=list)
    detection_ns: float = 100_000.0

    # ------------------------------------------------------------- events

    @property
    def events(self) -> List[FaultEvent]:
        """Events sorted by time (stable: ties keep insertion order)."""
        return sorted(self._events, key=lambda e: e.time_ns)

    def add(self, event: FaultEvent) -> "FaultSchedule":
        """Append one event; returns self for chaining."""
        self._events.append(event)
        return self

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __iter__(self):
        return iter(self.events)

    # ------------------------------------------------------ fluent builders

    def fail_village(self, server: int, village: int, at_ns: float,
                     recover_at_ns: Optional[float] = None) -> "FaultSchedule":
        """Fail a whole village at ``at_ns`` (optionally recovering).

        Args:
            server: Server the village lives on.
            village: Village index within the server.
            at_ns: Failure time in simulated ns.
            recover_at_ns: Recovery time; None means it stays down.

        Returns:
            self, for fluent chaining.
        """
        self.add(FaultEvent(at_ns, "village", "fail", (server, village)))
        if recover_at_ns is not None:
            self.add(FaultEvent(recover_at_ns, "village", "recover",
                                (server, village)))
        return self

    def degrade_village(self, server: int, village: int, at_ns: float,
                        factor: float,
                        recover_at_ns: Optional[float] = None
                        ) -> "FaultSchedule":
        """Gray-fail a village: it keeps serving, ``factor``x slower.

        Args:
            server: Server the village lives on.
            village: Village index within the server.
            at_ns: Degradation onset in simulated ns.
            factor: Slowdown multiplier (>1 = slower).
            recover_at_ns: When full speed returns; None means never.

        Returns:
            self, for fluent chaining.
        """
        self.add(FaultEvent(at_ns, "village", "degrade", (server, village),
                            factor=factor))
        if recover_at_ns is not None:
            self.add(FaultEvent(recover_at_ns, "village", "degrade",
                                (server, village), factor=1.0))
        return self

    def fail_core(self, server: int, village: int, core: int, at_ns: float,
                  recover_at_ns: Optional[float] = None) -> "FaultSchedule":
        """Fail one core of a village (see :meth:`fail_village`)."""
        self.add(FaultEvent(at_ns, "core", "fail", (server, village, core)))
        if recover_at_ns is not None:
            self.add(FaultEvent(recover_at_ns, "core", "recover",
                                (server, village, core)))
        return self

    def fail_link(self, server: int, u: str, v: str, at_ns: float,
                  recover_at_ns: Optional[float] = None) -> "FaultSchedule":
        """Fail the ICN link between nodes ``u`` and ``v`` by name.

        Node names come from the topology (e.g. ``leaf0:0``,
        ``spine0:0``); traffic routed across a dead link blackholes.
        """
        self.add(FaultEvent(at_ns, "link", "fail", (server, u, v)))
        if recover_at_ns is not None:
            self.add(FaultEvent(recover_at_ns, "link", "recover",
                                (server, u, v)))
        return self

    def fail_nic(self, server: int, village: int, which: str, at_ns: float,
                 recover_at_ns: Optional[float] = None) -> "FaultSchedule":
        """Fail a village's local (``lnic``) or remote (``rnic``) NIC."""
        if which not in ("lnic", "rnic"):
            raise ValueError(f"nic must be 'lnic' or 'rnic', got {which!r}")
        self.add(FaultEvent(at_ns, "nic", "fail", (server, village, which)))
        if recover_at_ns is not None:
            self.add(FaultEvent(recover_at_ns, "nic", "recover",
                                (server, village, which)))
        return self

    # --------------------------------------------------- randomized builder

    @classmethod
    def random(cls, seed: int, duration_ns: float,
               villages: Sequence[Tuple[int, int]] = (),
               links: Sequence[Tuple[int, str, str]] = (),
               nics: Sequence[Tuple[int, int, str]] = (),
               rate_per_s: float = 50.0,
               mttr_ns: float = 2_000_000.0,
               gray_fraction: float = 0.25,
               gray_factor: float = 4.0,
               detection_ns: float = 100_000.0) -> "FaultSchedule":
        """Generate a concrete fail/recover event list from a seed.

        ``rate_per_s`` is the aggregate failure arrival rate across the
        whole inventory; each failure picks a component uniformly and
        recovers after an exponential repair time with mean ``mttr_ns``.
        A ``gray_fraction`` of village faults are slow-node degradations
        (``gray_factor``× slower) instead of outright failures.
        """
        rng = np.random.default_rng(seed)
        inventory: List[Tuple[str, Tuple]] = \
            [("village", t) for t in villages] + \
            [("link", t) for t in links] + \
            [("nic", t) for t in nics]
        sched = cls(detection_ns=detection_ns)
        if not inventory or rate_per_s <= 0:
            return sched
        t = 0.0
        mean_gap_ns = 1e9 / rate_per_s
        while True:
            t += float(rng.exponential(mean_gap_ns))
            if t >= duration_ns:
                break
            kind, target = inventory[int(rng.integers(len(inventory)))]
            repair = t + float(rng.exponential(mttr_ns))
            recover_at = min(repair, duration_ns)
            if kind == "village" and float(rng.random()) < gray_fraction:
                sched.degrade_village(*target, at_ns=t, factor=gray_factor,
                                      recover_at_ns=recover_at)
            elif kind == "village":
                sched.fail_village(*target, at_ns=t,
                                   recover_at_ns=recover_at)
            elif kind == "link":
                sched.fail_link(*target, at_ns=t, recover_at_ns=recover_at)
            else:
                sched.fail_nic(*target, at_ns=t, recover_at_ns=recover_at)
        return sched

    # ------------------------------------------------------------- export

    def as_dicts(self) -> List[dict]:
        """Return the sorted event list as JSON-serializable dicts."""
        return [e.as_dict() for e in self.events]

    def describe(self) -> str:
        """Render the schedule as a human-readable multi-line listing."""
        lines = [f"{len(self._events)} fault events "
                 f"(detection lag {self.detection_ns / 1e3:.0f} us):"]
        for e in self.events:
            extra = f" x{e.factor:g}" if e.action == "degrade" else ""
            lines.append(f"  t={e.time_ns / 1e6:9.3f} ms  {e.action:7s} "
                         f"{e.kind:7s} {e.target}{extra}")
        return "\n".join(lines)


def merge(schedules: Iterable[FaultSchedule]) -> FaultSchedule:
    """Union of several schedules (first schedule's detection lag wins)."""
    out = FaultSchedule()
    first = True
    for s in schedules:
        if first:
            out.detection_ns = s.detection_ns
            first = False
        for e in s.events:
            out.add(e)
    return out
