"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a cluster.

The injector walks the schedule once at install time, turning every
fault event into an engine event at its absolute timestamp.  Applying a
fault is pure state flipping on the simulated components — villages,
cores, topology links, village NICs — so injection itself costs nothing
at simulation time and preserves event-order determinism.

Detection lag: the ServiceMap health checker (the top-level NIC) only
learns about a village failure/recovery ``schedule.detection_ns`` after
it happens.  Inside that window the dispatcher keeps sending requests
into the dead village; they blackhole, and the RPC layer's timeout and
retry machinery is what gets them re-served elsewhere.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.sim.engine import Engine


class FaultInjector:
    """Schedules and applies one fault schedule over a set of servers."""

    def __init__(self, engine: Engine, servers: Sequence,
                 schedule: FaultSchedule):
        """Bind a schedule to the cluster it will be injected into.

        Args:
            engine: The discrete-event engine events are scheduled on.
            servers: The cluster's server objects, indexed by server id.
            schedule: The fault schedule to apply (call :meth:`install`
                before running the engine).
        """
        self.engine = engine
        self.servers = list(servers)
        self.schedule = schedule
        self.injected = 0
        self.by_kind: Dict[str, int] = {}
        self._installed = False

    # ------------------------------------------------------------- install

    def install(self) -> None:
        """Schedule every fault event (idempotent)."""
        if self._installed:
            return
        self._installed = True
        for event in self.schedule.events:
            self.engine.schedule_at(event.time_ns, self._apply, event)

    # -------------------------------------------------------------- apply

    def _apply(self, event: FaultEvent) -> None:
        server = self._server(event.target[0])
        handler = getattr(self, f"_apply_{event.kind}")
        handler(server, event)
        self.injected += 1
        self.by_kind[event.kind] = self.by_kind.get(event.kind, 0) + 1
        check = self.engine.check
        if check.enabled:
            check.fault_applied(event, self.engine.now)

    def _server(self, server_id: int):
        try:
            return self.servers[server_id]
        except IndexError:
            raise ValueError(
                f"fault targets server {server_id} but the cluster has "
                f"{len(self.servers)} servers") from None

    def _apply_village(self, server, event: FaultEvent) -> None:
        __, village_id = event.target
        village = server.villages[village_id]
        lag = self.schedule.detection_ns
        if event.action == "fail":
            village.fail()
            self.engine.schedule(lag, server.top_nic.mark_village_down,
                                 village_id)
        elif event.action == "recover":
            village.recover()
            self.engine.schedule(lag, server.top_nic.mark_village_up,
                                 village_id)
        else:  # degrade — gray failure, invisible to the health checker
            village.degrade_factor = event.factor

    def _apply_core(self, server, event: FaultEvent) -> None:
        __, village_id, core_id = event.target
        village = server.villages[village_id]
        core = village.cores[core_id]
        if event.action == "fail":
            core.failed = True
        else:
            core.failed = False
            village._kick()

    def _apply_link(self, server, event: FaultEvent) -> None:
        __, u, v = event.target
        if event.action == "fail":
            server.topology.fail_link(u, v)
        else:
            server.topology.recover_link(u, v)

    def _apply_nic(self, server, event: FaultEvent) -> None:
        __, village_id, which = event.target
        nic = (server.lnics if which == "lnic" else server.rnics)[village_id]
        if event.action == "fail":
            nic.fail()
        else:
            nic.recover()

    # -------------------------------------------------------------- stats

    def stats(self) -> dict:
        """Injection counters: events applied so far, by kind, and the
        schedule's size and detection lag."""
        return {"injected": self.injected, "by_kind": dict(self.by_kind),
                "scheduled": len(self.schedule),
                "detection_ns": self.schedule.detection_ns}


def fault_inventory(servers: Sequence) -> Dict[str, List]:
    """Enumerate every faultable component of a cluster — the input
    :meth:`FaultSchedule.random` draws from."""
    villages: List = []
    links: List = []
    nics: List = []
    for server in servers:
        sid = server.server_id
        for v in range(len(server.villages)):
            villages.append((sid, v))
            nics.append((sid, v, "lnic"))
            nics.append((sid, v, "rnic"))
        for (u, v) in server.topology.links:
            if u < v:      # links are bidirectional pairs; count each once
                links.append((sid, u, v))
    return {"villages": villages, "links": links, "nics": nics}
