"""Resilience policy: timeout, capped exponential retry, hedging.

These knobs configure the RPC layer's response to lost or slow calls
(:mod:`repro.systems.server` threads them through every blocking call).
They are deliberately *not* part of :class:`~repro.systems.configs.
SystemConfig`: resilience is system software, orthogonal to the
architecture being simulated, and it is only armed when a fault
schedule (or an explicit config) is supplied — the fault-free paper
experiments never pay for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ResilienceConfig:
    """Timeout/retry/hedge parameters for RPCs and client requests.

    ``timeout_ns``
        How long a caller waits for a downstream response before
        declaring the attempt lost.  Must sit well above the healthy
        p99 or retries amplify load (retry storms).
    ``max_retries``
        Re-issues after the first attempt; when exhausted the caller
        resumes with the request marked failed (error response).
    ``backoff_base_ns`` / ``backoff_cap_ns``
        Capped exponential backoff between attempts:
        ``min(base * 2**attempt, cap)``.
    ``hedge_delay_ns``
        0 disables hedging.  Otherwise, an attempt still outstanding
        after this delay is duplicated to a different healthy instance
        and the first response wins (tail-at-scale hedged requests).
    ``root_timeout_ns``
        Deadline for a whole external request; defaults to
        ``timeout_ns * (max_retries + 2)`` so one nested call can burn
        its full retry budget before the root gives up.
    """

    timeout_ns: float = 2_000_000.0
    max_retries: int = 3
    backoff_base_ns: float = 100_000.0
    backoff_cap_ns: float = 1_600_000.0
    hedge_delay_ns: float = 0.0
    root_timeout_ns: Optional[float] = None
    root_max_retries: int = 1

    def __post_init__(self):
        if self.timeout_ns <= 0:
            raise ValueError("timeout_ns must be positive")
        if self.max_retries < 0 or self.root_max_retries < 0:
            raise ValueError("retry counts must be >= 0")
        if self.backoff_base_ns < 0 or self.backoff_cap_ns < 0:
            raise ValueError("backoff must be >= 0")
        if self.hedge_delay_ns < 0:
            raise ValueError("hedge_delay_ns must be >= 0")

    def backoff_ns(self, attempt: int) -> float:
        """Backoff before re-issue number ``attempt`` (0-based)."""
        return min(self.backoff_base_ns * (2.0 ** attempt),
                   self.backoff_cap_ns)

    @property
    def effective_root_timeout_ns(self) -> float:
        """Whole-request deadline (explicit, or derived per the docs)."""
        if self.root_timeout_ns is not None:
            return self.root_timeout_ns
        return self.timeout_ns * (self.max_retries + 2)

    @property
    def hedging(self) -> bool:
        """True when hedged duplicate RPCs are enabled."""
        return self.hedge_delay_ns > 0
