"""NIC models: village L-NIC / R-NIC and the package top-level NIC.

Section 4.1: the L-NIC runs on the lossless on-package network (no
retransmission/congestion machinery, back-pressure only), while the R-NIC
talks to the lossy outside world and pays transport overheads.  Section
4.2/4.3: the top-level NIC keeps a ServiceMap (service -> villages with an
instance) and dispatches arriving requests round-robin in hardware; when a
village RQ is full the NIC buffers, and when its buffer is exhausted it
rejects the request.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.engine import Engine
from repro.sim.resource import Resource


@dataclass(frozen=True)
class NicConfig:
    """Per-NIC processing and serialization parameters.

    ``rpc_processing_ns`` is the RPC-layer cost (header parsing, payload
    de-serialization, dispatch): ~hardware cost for uManycore's in-NIC
    RPC processing, ~software cost for the baselines.
    """

    rpc_processing_ns: float = 50.0
    bytes_per_ns: float = 100.0        # serialization bandwidth
    transport_overhead_ns: float = 0.0  # R-NIC retransmit/flow-control logic


class LNic:
    """Lossless on-package NIC: serialization + fixed RPC processing."""

    def __init__(self, engine: Engine, config: Optional[NicConfig] = None,
                 name: str = ""):
        self.engine = engine
        self.config = config or NicConfig()
        self.name = name
        self._port = Resource(engine, capacity=1, name=f"{name}.port")
        self.messages = 0
        #: Fault state: a failed NIC blackholes everything handed to it
        #: (its ``done`` callbacks never fire); callers recover via the
        #: RPC layer's timeout/retry.
        self.failed = False
        self.dropped = 0

    def fail(self) -> None:
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def _traced(self, done: Callable[[], None],
                rec) -> Callable[[], None]:
        """Wrap ``done`` with a ``nic_dispatch`` span covering port
        queueing + service; identity when tracing is off."""
        tracer = self.engine.tracer
        if not tracer.enabled:
            return done
        start = self.engine.now

        def finish() -> None:
            tracer.span("nic_dispatch", self.name or "nic", start,
                        self.engine.now, rec=rec, track=self.name or "nic")
            done()

        return finish

    def process(self, size_bytes: int, done: Callable[[], None],
                rec=None) -> None:
        """Pass one message through the NIC; ``done`` on completion."""
        if self.failed:
            self.dropped += 1
            check = self.engine.check
            if check.enabled:
                check.nic_drop(self)
            return
        self.messages += 1
        done = self._traced(done, rec)
        cfg = self.config
        service = cfg.rpc_processing_ns + size_bytes / cfg.bytes_per_ns
        self._port.acquire(service, lambda s, f: done())


class RNic(LNic):
    """Lossy-network NIC: adds transport (retransmission logic, flow and
    congestion control bookkeeping) on top of the L-NIC datapath."""

    def __init__(self, engine: Engine, config: Optional[NicConfig] = None,
                 name: str = ""):
        config = config or NicConfig(transport_overhead_ns=200.0)
        super().__init__(engine, config, name)

    def process(self, size_bytes: int, done: Callable[[], None],
                rec=None) -> None:
        if self.failed:
            self.dropped += 1
            check = self.engine.check
            if check.enabled:
                check.nic_drop(self)
            return
        self.messages += 1
        done = self._traced(done, rec)
        cfg = self.config
        service = (cfg.rpc_processing_ns + cfg.transport_overhead_ns
                   + size_bytes / cfg.bytes_per_ns)
        self._port.acquire(service, lambda s, f: done())


class TopLevelNic:
    """Package NIC with the hardware ServiceMap dispatcher.

    ``register_instance`` is called by system software whenever a service
    instance boots in a village; ``pick_village`` implements the
    round-robin hardware dispatch.  ``buffer_capacity`` bounds the
    overflow queue used when village RQs are full.
    """

    def __init__(self, engine: Engine, config: Optional[NicConfig] = None,
                 buffer_capacity: int = 256, name: str = "top-nic",
                 dispatch: str = "rr", rng=None):
        from repro.sched.dispatch import get_dispatch_policy

        self._dispatch_policy = get_dispatch_policy(dispatch)
        if dispatch == "random" and rng is None:
            raise ValueError("random dispatch needs an rng")
        self.engine = engine
        self.config = config or NicConfig()
        self.name = name
        self.dispatch = dispatch
        self.rng = rng
        #: Village-id -> RQ occupancy hook, wired by the server once its
        #: villages exist; occupancy-aware dispatch policies need it and
        #: pick_village raises if one runs without it.
        self.occupancy_of = None
        self.buffer_capacity = buffer_capacity
        self._service_map: Dict[str, List[int]] = {}
        self._buffer: deque = deque()
        self._port = Resource(engine, capacity=2, name=f"{name}.port")
        self.dispatched = 0
        self.rejected = 0
        #: ServiceMap health bits: villages the health checker marked
        #: down.  ``pick_village`` skips them; the set stays empty in
        #: fault-free runs so the healthy dispatch path is unchanged.
        self._down: set = set()
        self.health_marks = 0

    def register_instance(self, service: str, village: int) -> None:
        villages = self._service_map.setdefault(service, [])
        if village not in villages:
            villages.append(village)

    def deregister_instance(self, service: str, village: int) -> None:
        villages = self._service_map.get(service, [])
        if village in villages:
            villages.remove(village)

    def villages_for(self, service: str) -> List[int]:
        return list(self._service_map.get(service, []))

    # ---- ServiceMap health checking (fault detection)

    def mark_village_down(self, village: int) -> None:
        """Health checker verdict: stop dispatching to this village."""
        self._down.add(village)
        self.health_marks += 1

    def mark_village_up(self, village: int) -> None:
        self._down.discard(village)

    def village_healthy(self, village: int) -> bool:
        return village not in self._down

    def healthy_villages(self, service: str) -> List[int]:
        return [v for v in self._service_map.get(service, [])
                if v not in self._down]

    def pick_village(self, service: str,
                     exclude: Optional[int] = None) -> int:
        """Pick a hosting village via the configured dispatch policy
        (round-robin by default — the Section 4.2 hardware).

        Villages marked down by the health checker are skipped; raises
        KeyError when no healthy instance remains.  ``exclude`` biases
        hedged requests away from the primary attempt's village when an
        alternative exists.
        """
        villages = self._service_map.get(service)
        if not villages:
            raise KeyError(f"no instance of service {service!r} registered")
        if self._down:
            healthy = [v for v in villages if v not in self._down]
            if not healthy:
                raise KeyError(
                    f"no healthy instance of service {service!r}")
        else:
            healthy = villages
        if exclude is not None and len(healthy) > 1:
            candidates = [v for v in healthy if v != exclude] or healthy
        else:
            candidates = healthy
        self.dispatched += 1
        policy = self._dispatch_policy
        if policy.needs_occupancy and self.occupancy_of is None:
            raise RuntimeError(
                f"dispatch policy {policy.name!r} needs the NIC "
                f"occupancy_of hook (wired by the server)")
        village = policy.choose(self, service, villages, candidates)
        check = self.engine.check
        if check.enabled:
            check.nic_dispatch(self, service, village)
        return village

    def process(self, size_bytes: int, done: Callable[[], None],
                rec=None) -> None:
        """NIC datapath cost for one external message."""
        tracer = self.engine.tracer
        if tracer.enabled:
            start = self.engine.now
            inner = done

            def done() -> None:
                tracer.span("nic_dispatch", self.name, start,
                            self.engine.now, rec=rec, track=self.name)
                inner()

        cfg = self.config
        service = cfg.rpc_processing_ns + size_bytes / cfg.bytes_per_ns
        self._port.acquire(service, lambda s, f: done())

    # ---- overflow buffering (Section 4.3: full RQ -> NIC buffer -> reject)

    def try_buffer(self, item) -> bool:
        """Buffer a request that found its RQ full; False = rejected."""
        if len(self._buffer) >= self.buffer_capacity:
            self.rejected += 1
            check = self.engine.check
            if check.enabled:
                check.nic_reject(self)
            return False
        self._buffer.append(item)
        return True

    def drain_buffered(self):
        """Pop the oldest buffered request (None when empty)."""
        return self._buffer.popleft() if self._buffer else None

    @property
    def buffered(self) -> int:
        return len(self._buffer)
