"""Inter-server fabric and the remote storage backend.

Table 2: inter-server links are 1 us round trip at 200 GB/s.  Storage
requests leave the package through the R-NIC path, cross the fabric, and
are served by a storage tier modelled as a latency distribution (the
paper's workloads block on such accesses for most of their lifetime).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.sim.engine import Engine
from repro.sim.resource import Resource


@dataclass(frozen=True)
class FabricConfig:
    """Datacenter-network parameters (Table 2)."""

    one_way_latency_ns: float = 500.0        # 1 us round trip
    bytes_per_ns: float = 200.0              # 200 GB/s
    storage_mean_ns: float = 100_000.0        # mean storage service time
    storage_cv: float = 1.2                  # lognormal variability


class InterServerFabric:
    """Star fabric: per-server egress links + fixed propagation delay."""

    def __init__(self, engine: Engine, n_servers: int,
                 config: Optional[FabricConfig] = None):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        self.engine = engine
        self.config = config or FabricConfig()
        self.n_servers = n_servers
        self._egress = [Resource(engine, capacity=1, name=f"srv{i}.egress")
                        for i in range(n_servers)]
        self.messages = 0

    def send(self, src_server: int, dst_server: int, size_bytes: int,
             done: Callable[[], None], rec=None) -> None:
        """Deliver a message between servers (or to the storage tier)."""
        self.messages += 1
        tracer = self.engine.tracer
        if tracer.enabled:
            start = self.engine.now
            inner = done

            def done() -> None:
                tracer.span("fabric", f"s{src_server}->s{dst_server}",
                            start, self.engine.now, rec=rec, track="fabric",
                            bytes=size_bytes)
                inner()

        cfg = self.config
        serialize = size_bytes / cfg.bytes_per_ns
        self._egress[src_server].acquire(
            serialize,
            lambda s, f: self.engine.schedule(cfg.one_way_latency_ns, done))


class StorageBackend:
    """Remote storage tier: lognormal service latency, ample parallelism.

    Storage is shared infrastructure identical across the compared
    architectures, so it is modelled as a latency distribution rather
    than a contended resource — its job in the evaluation is to *block*
    requests, exposing scheduling/context-switch overheads.
    """

    def __init__(self, engine: Engine, rng: np.random.Generator,
                 config: Optional[FabricConfig] = None):
        self.engine = engine
        self.rng = rng
        self.config = config or FabricConfig()
        cv = self.config.storage_cv
        self._sigma2 = math.log(1.0 + cv * cv)
        self._mu = math.log(self.config.storage_mean_ns) - self._sigma2 / 2.0
        self.accesses = 0

    def sample_latency_ns(self) -> float:
        return float(self.rng.lognormal(self._mu, math.sqrt(self._sigma2)))

    def access(self, done: Callable[[float], None]) -> None:
        """Serve one storage request; ``done(latency_ns)`` at completion."""
        self.accesses += 1
        latency = self.sample_latency_ns()
        self.engine.schedule(latency, done, latency)
