"""RPC message representation."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional


class MessageKind(enum.Enum):
    """What a message carries."""

    REQUEST = "request"            # service invocation
    RESPONSE = "response"          # result back to the caller
    STORAGE_REQUEST = "storage_request"
    STORAGE_RESPONSE = "storage_response"


@dataclass
class Message:
    """One RPC-layer message.

    ``payload`` carries the simulator-level object (a request record);
    ``size_bytes`` drives serialization/link occupancy.  Sizes default to
    a small header+args RPC (requests) — Section 2.1's services exchange
    small payloads.

    ``msg_id`` is allocated per engine (:meth:`Message.create`) so ids are
    a deterministic function of one run, not of how many runs the hosting
    process executed before.
    """

    kind: MessageKind
    service: str
    payload: Any = None
    size_bytes: int = 512
    src: Optional[str] = None
    dst: Optional[str] = None
    msg_id: Optional[int] = None

    @classmethod
    def create(cls, engine, kind: MessageKind, service: str,
               **kwargs: Any) -> "Message":
        """Build a message with a run-local id from ``engine``."""
        msg = cls(kind, service, msg_id=engine.next_msg_id(), **kwargs)
        check = engine.check
        if check.enabled:
            check.message_created(msg)
        return msg

    @property
    def is_request(self) -> bool:
        return self.kind in (MessageKind.REQUEST, MessageKind.STORAGE_REQUEST)
