"""RPC message representation."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


class MessageKind(enum.Enum):
    """What a message carries."""

    REQUEST = "request"            # service invocation
    RESPONSE = "response"          # result back to the caller
    STORAGE_REQUEST = "storage_request"
    STORAGE_RESPONSE = "storage_response"


_ids = itertools.count()


@dataclass
class Message:
    """One RPC-layer message.

    ``payload`` carries the simulator-level object (a request record);
    ``size_bytes`` drives serialization/link occupancy.  Sizes default to
    a small header+args RPC (requests) — Section 2.1's services exchange
    small payloads.
    """

    kind: MessageKind
    service: str
    payload: Any = None
    size_bytes: int = 512
    src: Optional[str] = None
    dst: Optional[str] = None
    msg_id: int = field(default_factory=lambda: next(_ids))

    @property
    def is_request(self) -> bool:
        return self.kind in (MessageKind.REQUEST, MessageKind.STORAGE_REQUEST)
