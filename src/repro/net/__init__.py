"""NICs, RPC messaging, and the inter-server fabric."""

from repro.net.fabric import InterServerFabric, FabricConfig, StorageBackend
from repro.net.nic import LNic, NicConfig, RNic, TopLevelNic
from repro.net.rpc import Message, MessageKind

__all__ = [
    "Message",
    "MessageKind",
    "LNic",
    "RNic",
    "TopLevelNic",
    "NicConfig",
    "InterServerFabric",
    "FabricConfig",
    "StorageBackend",
]
