"""Reactive autoscaling of server replicas from utilization telemetry.

The :class:`Autoscaler` samples mean active-server core utilization on
an engine-driven tick (the same self-rearming pattern as the metrics
registry: the tick only re-arms while the engine has *other* work
pending, so a drained simulation terminates naturally).  Decisions are
deterministic and event-driven — a pure function of the measured busy-ns
deltas at each tick, no wall clock and no random numbers — so checked
and unchecked runs of the same seed scale identically.

Scaling acts through the :class:`~repro.dc.lb.FrontEndLB` active set
only: a drain stops new roots, never kills in-flight work, and a
scale-up re-admits the lowest-id drained server.  The conservation
ledger in :mod:`repro.check` verifies at drain time that no request was
lost across these transitions.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.check.context import NULL_CHECK


class Autoscaler:
    """Adds/drains server replicas from windowed utilization."""

    def __init__(self, engine, lb, servers, dc, check=NULL_CHECK):
        self.engine = engine
        self.lb = lb
        self.servers = servers
        self.dc = dc
        self.check = check
        self.min_servers = min(dc.min_servers, len(servers))
        self.interval_ns = dc.autoscale_interval_ns
        self._last_busy = [0.0] * len(servers)
        self._last_ns = 0.0
        #: (time_ns, "add"|"drain", server_id, mean_utilization) log.
        self.events: List[Tuple[float, str, int, float]] = []
        self.scale_ups = 0
        self.scale_downs = 0

    def install(self) -> None:
        """Arm the periodic decision tick."""
        self.engine.schedule(self.interval_ns, self._tick)

    def _busy_ns(self, server) -> float:
        return sum(c.busy_ns for v in server.villages for c in v.cores)

    def _tick(self) -> None:
        now = self.engine.now
        window = now - self._last_ns
        if window > 0:
            self._decide(now, window)
        for sid, server in enumerate(self.servers):
            self._last_busy[sid] = self._busy_ns(server)
        self._last_ns = now
        if self.engine.peek_time() is not None:
            self.engine.schedule(self.interval_ns, self._tick)

    def _decide(self, now: float, window: float) -> None:
        active = self.lb.active_ids
        cores = self.servers[0].config.n_cores
        utils = [
            (self._busy_ns(self.servers[sid]) - self._last_busy[sid])
            / (window * cores)
            for sid in active]
        mean = sum(utils) / len(utils)
        if mean > self.dc.scale_up_util:
            drained = [sid for sid in range(len(self.servers))
                       if not self.lb.is_active(sid)]
            if drained:
                self._apply(now, "add", drained[0], mean)
        elif mean < self.dc.scale_down_util \
                and len(active) > self.min_servers:
            # Drain the highest-id active server: scale-down peels from
            # the top, so the surviving set stays a stable prefix.
            self._apply(now, "drain", active[-1], mean)

    def _apply(self, now: float, action: str, sid: int,
               mean: float) -> None:
        if action == "add":
            self.lb.activate(sid)
            self.scale_ups += 1
        else:
            self.lb.drain(sid)
            self.scale_downs += 1
        self.events.append((now, action, sid, mean))
        if self.check.enabled:
            self.check.lb_scale(self.lb, action, sid)
