"""Service placement/replication across the servers of one cluster.

A :class:`PlacementPlan` decides which servers host an instance of each
service.  The assignment is a deterministic stripe over the sorted
service names — service *i* lands on servers ``(i + j) % n`` for ``j``
in ``range(replication)`` — so the same (services, n_servers,
replication) always produces the same plan and sweep-cache keys stay
content-addressed.

Root services are pinned to every server: the front-end LB must be free
to route any root anywhere (a stateless front-end tier).  Leaf RPCs to
a service with no local replica are proxied cross-server by
:meth:`repro.systems.server.Server._pick_callee` over the existing
inter-server fabric path.
"""

from __future__ import annotations

from typing import Collection, Dict, FrozenSet, Sequence, Tuple


class PlacementPlan:
    """Which servers host which services (immutable once built)."""

    def __init__(self, assignment: Dict[str, Tuple[int, ...]],
                 n_servers: int):
        self.n_servers = n_servers
        self._servers_for = dict(assignment)
        hosted: Dict[int, set] = {sid: set() for sid in range(n_servers)}
        for name, sids in assignment.items():
            if not sids:
                raise ValueError(f"service {name!r} has no hosting server")
            for sid in sids:
                if not 0 <= sid < n_servers:
                    raise ValueError(f"service {name!r} placed on invalid "
                                     f"server {sid}")
                hosted[sid].add(name)
        self._hosted: Dict[int, FrozenSet[str]] = {
            sid: frozenset(names) for sid, names in hosted.items()}

    @classmethod
    def build(cls, services: Sequence[str], roots: Collection[str],
              n_servers: int, replication: int) -> "PlacementPlan":
        """Stripe ``services`` over ``n_servers`` with ``replication``
        copies each (0 or >= n_servers = everywhere); ``roots`` are
        always placed everywhere."""
        everywhere = tuple(range(n_servers))
        k = n_servers if replication <= 0 else min(replication, n_servers)
        assignment: Dict[str, Tuple[int, ...]] = {}
        for i, name in enumerate(sorted(set(services))):
            if name in roots or k >= n_servers:
                assignment[name] = everywhere
            else:
                assignment[name] = tuple(sorted(
                    (i + j) % n_servers for j in range(k)))
        return cls(assignment, n_servers)

    def servers_for(self, service: str) -> Tuple[int, ...]:
        """Sorted server ids hosting an instance of ``service``."""
        return self._servers_for[service]

    def services_on(self, server_id: int) -> FrozenSet[str]:
        """The services server ``server_id`` hosts locally."""
        return self._hosted[server_id]

    def is_local(self, server_id: int, service: str) -> bool:
        """Whether ``service`` has a replica on ``server_id``."""
        return service in self._hosted[server_id]

    def describe(self) -> str:
        """One line per service: its hosting server list."""
        return "\n".join(
            f"  {name:12s} -> servers {list(sids)}"
            for name, sids in sorted(self._servers_for.items()))
