"""repro.dc — the datacenter tier over multi-server uManycore racks.

Front-end load balancer (:class:`FrontEndLB` + the pluggable policies
of :mod:`repro.dc.lb`), deterministic service placement/replication
(:class:`PlacementPlan`), and reactive utilization-driven autoscaling
(:class:`Autoscaler`), all configured through one opt-in frozen
:class:`DcConfig` threaded through ``simulate(..., dc=...)``, the sweep
runner and the CLI.  ``dc=None`` keeps every run byte-identical to the
pre-dc simulator.
"""

from repro.dc.autoscale import Autoscaler
from repro.dc.config import DcConfig
from repro.dc.lb import FrontEndLB, LB_FACTORIES, LB_NAMES, get_lb_policy
from repro.dc.placement import PlacementPlan

__all__ = [
    "Autoscaler",
    "DcConfig",
    "FrontEndLB",
    "LB_FACTORIES",
    "LB_NAMES",
    "PlacementPlan",
    "get_lb_policy",
]
