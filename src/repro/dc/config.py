"""Datacenter-tier configuration (:class:`DcConfig`).

One frozen dataclass describes the whole front-end tier of a
multi-server run: which load-balancing policy routes external arrivals,
the LB-to-server network hop, how aggressively services are replicated
across servers, and whether the reactive autoscaler may add/drain
server replicas.  ``dc=None`` (the default everywhere) disables the
tier entirely — those runs stay byte-identical to the pre-dc simulator.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DcConfig:
    """Knobs of the datacenter tier (front-end LB + placement + scaling).

    ``lb``
        Front-end routing policy (see :mod:`repro.dc.lb`): ``rr``,
        ``random``, ``p2c`` (power-of-two-choices), ``least``
        (least-outstanding) or ``affinity`` (request-type affinity with
        load-based spill, per Affinity Tailor).
    ``lb_latency_ns``
        One-way LB->server hop, layered in front of the server's own
        fabric ingress (which :class:`~repro.net.fabric.InterServerFabric`
        already charges).  0 keeps ``lb=rr, n_servers=1`` byte-identical
        to the plain single-server path.
    ``replication``
        Service placement: each non-root service is hosted on this many
        servers (a deterministic :class:`~repro.dc.placement.PlacementPlan`
        stripe); 0 means every service on every server (the pre-dc
        behaviour).  Root services are always placed everywhere — the
        LB must be free to route any root anywhere.
    ``spill_margin``
        Outstanding-request gap above the least-loaded server that makes
        the affinity policy spill away from a request type's home server.
    ``autoscale`` / ``min_servers``
        Arm the reactive :class:`~repro.dc.autoscale.Autoscaler`: every
        ``autoscale_interval_ns`` of simulated time it compares mean
        active-server utilization against the two thresholds and
        activates one drained server (above ``scale_up_util``) or drains
        one active server (below ``scale_down_util``, never under
        ``min_servers``).  Drained servers finish their in-flight work —
        the LB just stops routing new roots to them.
    """

    lb: str = "rr"
    lb_latency_ns: float = 0.0
    replication: int = 0
    spill_margin: int = 4
    autoscale: bool = False
    min_servers: int = 1
    autoscale_interval_ns: float = 500_000.0
    scale_up_util: float = 0.75
    scale_down_util: float = 0.20

    def __post_init__(self):
        """Validate against the LB registry and sanity-check the knobs."""
        from repro.dc.lb import LB_NAMES

        if self.lb not in LB_NAMES:
            raise ValueError(f"unknown lb policy {self.lb!r}; "
                             f"known: {list(LB_NAMES)}")
        if self.lb_latency_ns < 0:
            raise ValueError("lb_latency_ns must be >= 0")
        if self.replication < 0:
            raise ValueError("replication must be >= 0 (0 = replicate "
                             "everywhere)")
        if self.spill_margin < 0:
            raise ValueError("spill_margin must be >= 0")
        if self.min_servers < 1:
            raise ValueError("min_servers must be >= 1")
        if self.autoscale_interval_ns <= 0:
            raise ValueError("autoscale_interval_ns must be positive")
        if not 0.0 <= self.scale_down_util < self.scale_up_util <= 1.0:
            raise ValueError("need 0 <= scale_down_util < scale_up_util "
                             "<= 1")
