"""The front-end load balancer and its pluggable routing policies.

A :class:`FrontEndLB` sits in front of the whole cluster: every external
arrival enters through it and is routed to one *active* server.  The
policy layer mirrors :mod:`repro.sched.dispatch` — a name->factory
registry, deterministic tie-breaking, and per-LB policy instances so
rotation pointers and spill counters are private to one run.

Policies see the LB itself (for the outstanding-request counters the
load-aware policies rank by) plus the pre-filtered active-server list,
and must return one of the active ids.  ``rr`` keys its rotation on the
full server-id space, so a server draining (or coming back) never
shifts which server the surviving rotation hands to everyone else —
the same phase-stability property as the ServiceMap round-robin.
"""

from __future__ import annotations

from typing import List, Optional

from repro.check.context import NULL_CHECK


class LBPolicy:
    """Base: pick one active server for an arriving root request."""

    name = "base"
    #: Policies that draw random numbers get the run's dedicated "lb"
    #: RNG stream; declared so the cluster only creates it when needed.
    needs_rng = False

    def choose(self, lb: "FrontEndLB", service: str,
               active: List[int]) -> int:
        raise NotImplementedError


class RoundRobinLB(LBPolicy):
    """Rotate over the server-id space, skipping drained servers."""

    name = "rr"

    def __init__(self):
        self._next = 0

    def choose(self, lb: "FrontEndLB", service: str,
               active: List[int]) -> int:
        n = lb.n_servers
        for i in range(n):
            sid = (self._next + i) % n
            if lb.is_active(sid):
                self._next = (sid + 1) % n
                return sid
        return active[0]


class RandomLB(LBPolicy):
    """Uniformly-random active server."""

    name = "random"
    needs_rng = True

    def choose(self, lb: "FrontEndLB", service: str,
               active: List[int]) -> int:
        return active[int(lb.rng.integers(len(active)))]


class PowerOfTwoLB(LBPolicy):
    """Power-of-two-choices: sample two distinct active servers, join
    the one with fewer outstanding requests (ties to the lower id)."""

    name = "p2c"
    needs_rng = True

    def choose(self, lb: "FrontEndLB", service: str,
               active: List[int]) -> int:
        k = len(active)
        if k == 1:
            return active[0]
        i = int(lb.rng.integers(k))
        j = int(lb.rng.integers(k - 1))
        if j >= i:
            j += 1
        a, b = active[i], active[j]
        if a > b:
            a, b = b, a
        return b if lb.outstanding[b] < lb.outstanding[a] else a


class LeastOutstandingLB(LBPolicy):
    """Join the active server with the fewest outstanding root requests
    (ties to the lowest server id)."""

    name = "least"

    def choose(self, lb: "FrontEndLB", service: str,
               active: List[int]) -> int:
        outstanding = lb.outstanding
        best = active[0]
        best_out = outstanding[best]
        for sid in active[1:]:
            out = outstanding[sid]
            if out < best_out:
                best, best_out = sid, out
        return best


class AffinityLB(LBPolicy):
    """Request-type affinity with load-based spill (Affinity Tailor).

    Every request type (keyed on the root service name) has a *home*
    server — a stable hash over the server-id space, walked forward to
    the first active id — and keeps landing there (warm caches, resident
    state) until the home holds more than ``spill_margin`` outstanding
    requests above the least-loaded active server; then the request
    spills to that least-loaded server instead.
    """

    name = "affinity"

    def __init__(self, spill_margin: int = 4):
        if spill_margin < 0:
            raise ValueError("spill_margin must be >= 0")
        self.spill_margin = spill_margin
        self.spills = 0

    def _home(self, lb: "FrontEndLB", service: str) -> Optional[int]:
        from zlib import crc32

        start = crc32(service.encode()) % lb.n_servers
        for i in range(lb.n_servers):
            sid = (start + i) % lb.n_servers
            if lb.is_active(sid):
                return sid
        return None

    def choose(self, lb: "FrontEndLB", service: str,
               active: List[int]) -> int:
        outstanding = lb.outstanding
        least = active[0]
        least_out = outstanding[least]
        for sid in active[1:]:
            out = outstanding[sid]
            if out < least_out:
                least, least_out = sid, out
        home = self._home(lb, service)
        if home is None:
            return least
        if outstanding[home] - least_out > self.spill_margin:
            self.spills += 1
            return least
        return home


#: name -> factory; every policy carries per-LB state, so each
#: FrontEndLB gets a fresh instance.
LB_FACTORIES = {
    "rr": RoundRobinLB,
    "random": RandomLB,
    "p2c": PowerOfTwoLB,
    "least": LeastOutstandingLB,
    "affinity": AffinityLB,
}

#: The registered policy names (the CLI's ``--lb`` choices).
LB_NAMES = tuple(sorted(LB_FACTORIES))


def get_lb_policy(name: str, spill_margin: int = 4) -> LBPolicy:
    """Instantiate one LB policy by registry name."""
    try:
        factory = LB_FACTORIES[name]
    except KeyError:
        raise ValueError(f"unknown lb policy {name!r}; "
                         f"known: {sorted(LB_FACTORIES)}") from None
    if factory is AffinityLB:
        return factory(spill_margin)
    return factory()


class FrontEndLB:
    """The cluster's front door: routes every root request to a server.

    Tracks, per server: how many roots were routed there (increment-only,
    cross-checked against the :mod:`repro.check` ledger at drain) and how
    many are still outstanding (incremented on route, decremented when
    the root's answer — completed, rejected or failed — comes back; the
    load-aware policies rank by it).  The autoscaler activates/drains
    servers through :meth:`activate`/:meth:`drain`; a drained server
    receives no new roots but keeps serving its in-flight work and any
    cross-server leaf RPCs, so no request is ever lost to a scale-down.
    """

    def __init__(self, n_servers: int, policy: LBPolicy,
                 rng=None, check=NULL_CHECK):
        if n_servers < 1:
            raise ValueError("n_servers must be >= 1")
        if policy.needs_rng and rng is None:
            raise ValueError(f"lb policy {policy.name!r} needs an rng")
        self.n_servers = n_servers
        self.policy = policy
        self.rng = rng
        self.check = check
        self._active = [True] * n_servers
        self.outstanding = [0] * n_servers
        self.routed = [0] * n_servers
        self.activations = 0
        self.drains = 0

    # ------------------------------------------------------- active set

    def is_active(self, server_id: int) -> bool:
        return self._active[server_id]

    @property
    def active_ids(self) -> List[int]:
        """Sorted ids of the servers currently receiving new roots."""
        return [sid for sid, up in enumerate(self._active) if up]

    def activate(self, server_id: int) -> None:
        """Re-admit a drained server to the routing set."""
        if not self._active[server_id]:
            self._active[server_id] = True
            self.activations += 1

    def drain(self, server_id: int) -> None:
        """Stop routing new roots to a server (in-flight work finishes).

        Raises:
            ValueError: When this would empty the active set — the LB
                must always have somewhere to route.
        """
        if self._active[server_id] and sum(self._active) == 1:
            raise ValueError("cannot drain the last active server")
        if self._active[server_id]:
            self._active[server_id] = False
            self.drains += 1

    # ---------------------------------------------------------- routing

    def route(self, service: str) -> int:
        """Pick the server for one arriving root request."""
        sid = self.policy.choose(self, service, self.active_ids)
        self.routed[sid] += 1
        self.outstanding[sid] += 1
        if self.check.enabled:
            self.check.lb_route(self, sid, active=self._active[sid])
        return sid

    def request_done(self, server_id: int) -> None:
        """A routed root was answered (completed/rejected/failed)."""
        self.outstanding[server_id] -= 1
