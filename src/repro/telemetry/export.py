"""Trace exporters: Chrome trace-event JSON and flat JSON/CSV dumps.

The Chrome format is the ``traceEvents`` JSON consumed by Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing``: complete events
(``ph: "X"``) with microsecond timestamps.  Spans are laid out one
track per *root request* (so each request's RPC tree reads as a little
flame graph) plus component tracks for spans not attributed to any
request.

Exports are deterministic: track ids are assigned in first-use order
and events are emitted in span-record order, so two identical runs
produce byte-identical files.
"""

from __future__ import annotations

import csv
import json
from typing import Any, Dict, List

#: Trace-event pid used for all simulator events.
PID = 1


def _track_key(tracer, span) -> str:
    if span.req_index is not None:
        return f"req{tracer.root_of(span.req_index)}"
    return span.track or span.category


def chrome_trace(tracer) -> Dict[str, Any]:
    """Build the trace-event dict for one tracer's spans."""
    events: List[Dict[str, Any]] = [{
        "ph": "M", "pid": PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro simulation"},
    }]
    tids: Dict[str, int] = {}
    for span in tracer.spans:
        key = _track_key(tracer, span)
        tid = tids.get(key)
        if tid is None:
            tid = tids[key] = len(tids) + 1
            events.append({
                "ph": "M", "pid": PID, "tid": tid, "name": "thread_name",
                "args": {"name": key},
            })
        args: Dict[str, Any] = {"span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.req_index is not None:
            args["req"] = span.req_index
        if span.track:
            args["track"] = span.track
        args.update(span.attrs)
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start_ns / 1000.0,       # trace-event ts is in us
            "dur": span.duration_ns / 1000.0,
            "pid": PID,
            "tid": tid,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ns"}


def write_chrome_trace(tracer, path: str) -> int:
    """Write the Chrome trace JSON; returns the number of X events."""
    trace = chrome_trace(tracer)
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return sum(1 for e in trace["traceEvents"] if e["ph"] == "X")


def spans_as_dicts(tracer) -> List[Dict[str, Any]]:
    """Every recorded span as a JSON-serializable dict, in record order."""
    return [span.as_dict() for span in tracer.spans]


def write_spans_json(tracer, path: str) -> None:
    """Flat JSON dump: one object per span."""
    with open(path, "w") as fh:
        json.dump(spans_as_dicts(tracer), fh)


CSV_FIELDS = ("span_id", "parent_id", "req", "category", "name", "track",
              "start_ns", "end_ns", "duration_ns")


def write_spans_csv(tracer, path: str) -> None:
    """Flat CSV dump (attrs omitted)."""
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=CSV_FIELDS,
                                extrasaction="ignore")
        writer.writeheader()
        for span in tracer.spans:
            writer.writerow(span.as_dict())
