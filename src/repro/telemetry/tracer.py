"""Tracers: the hook API every simulated layer reports through.

Two implementations share one interface:

* :class:`NullTracer` — the default on every :class:`~repro.sim.engine.
  Engine`.  All methods are no-ops and ``enabled`` is False, so
  instrumentation sites guard with ``if tracer.enabled:`` and pay only
  an attribute load + branch when tracing is off.
* :class:`Tracer` — records spans and per-request metadata in memory
  for export (:mod:`repro.telemetry.export`) and analysis
  (:mod:`repro.telemetry.breakdown`).

Request identity is *trace-local*: the tracer assigns each request a
dense index in ``begin_request`` order.  Global ``req_id`` counters
never leak into the trace, which keeps two same-seed runs byte-identical
even inside one process (the determinism regression contract).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.telemetry.span import Span


class NullTracer:
    """Disabled tracer: every hook is a no-op.

    Also serves as the interface definition — :class:`Tracer` overrides
    every method.
    """

    enabled: bool = False

    def begin_request(self, rec, now: float, parent=None) -> None:
        """A request (root or nested RPC) entered the system."""

    def end_request(self, rec, now: float, rejected: bool = False) -> None:
        """The request's response was delivered (or it was rejected)."""

    def span(self, category: str, name: str, start_ns: float, end_ns: float,
             rec=None, track: str = "", **attrs: Any) -> None:
        """Record one completed interval of work."""


#: Shared default instance; safe because NullTracer is stateless.
NULL_TRACER = NullTracer()


class _RequestInfo:
    """Trace-local bookkeeping for one request."""

    __slots__ = ("index", "root_index", "span_id", "parent_span_id",
                 "service", "start_ns", "end_ns", "rejected")

    def __init__(self, index: int, root_index: int, span_id: int,
                 parent_span_id: Optional[int], service: str,
                 start_ns: float):
        """Record the identifiers of one traced request."""
        self.index = index
        self.root_index = root_index
        self.span_id = span_id
        self.parent_span_id = parent_span_id
        self.service = service
        self.start_ns = start_ns
        self.end_ns: Optional[float] = None
        self.rejected = False


class Tracer(NullTracer):
    """Collects spans for one simulation run."""

    enabled = True

    def __init__(self) -> None:
        """Start an empty trace."""
        self.spans: List[Span] = []
        self.requests: List[_RequestInfo] = []
        self._by_req_id: Dict[int, _RequestInfo] = {}
        self._next_span_id = 0

    # ------------------------------------------------------------ hooks

    def _new_span_id(self) -> int:
        sid = self._next_span_id
        self._next_span_id += 1
        return sid

    def begin_request(self, rec, now: float, parent=None) -> None:
        """Assign the request a trace-local index and open its span."""
        parent_info = self._by_req_id.get(parent.req_id) \
            if parent is not None else None
        info = _RequestInfo(
            index=len(self.requests),
            root_index=parent_info.root_index if parent_info else
            len(self.requests),
            span_id=self._new_span_id(),
            parent_span_id=parent_info.span_id if parent_info else None,
            service=rec.service,
            start_ns=now)
        self.requests.append(info)
        self._by_req_id[rec.req_id] = info

    def end_request(self, rec, now: float, rejected: bool = False) -> None:
        """Close the request's root span (idempotent per request)."""
        info = self._by_req_id.get(rec.req_id)
        if info is None or info.end_ns is not None:
            return
        info.end_ns = now
        info.rejected = rejected
        attrs: Dict[str, Any] = {"depth": rec.depth}
        if rejected:
            attrs["rejected"] = True
        self.spans.append(Span(
            span_id=info.span_id, name=info.service, category="request",
            start_ns=info.start_ns, end_ns=now,
            track=f"req{info.root_index}", req_index=info.index,
            parent_id=info.parent_span_id, attrs=attrs))

    def span(self, category: str, name: str, start_ns: float, end_ns: float,
             rec=None, track: str = "", **attrs: Any) -> None:
        """Record one completed interval, linked to ``rec`` when given."""
        info = self._by_req_id.get(rec.req_id) if rec is not None else None
        self.spans.append(Span(
            span_id=self._new_span_id(), name=name, category=category,
            start_ns=start_ns, end_ns=end_ns, track=track,
            req_index=info.index if info else None,
            parent_id=info.span_id if info else None, attrs=attrs))

    # ---------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.spans)

    def root_of(self, req_index: int) -> int:
        """The root request's index for any (possibly nested) request."""
        return self.requests[req_index].root_index

    def request_spans(self) -> List[Span]:
        """The root (category ``request``) spans, in completion order."""
        return [s for s in self.spans if s.category == "request"]

    def category_totals(self) -> Dict[str, float]:
        """Raw summed duration per category (overlaps not removed)."""
        totals: Dict[str, float] = {}
        for s in self.spans:
            totals[s.category] = totals.get(s.category, 0.0) + s.duration_ns
        return totals
