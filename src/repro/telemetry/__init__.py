"""Telemetry subsystem: request tracing, metrics, export, breakdown.

Spans (:mod:`~repro.telemetry.span`) record where each request's time
goes; the :class:`~repro.telemetry.metrics.MetricsRegistry` samples
system state over time; exporters write Chrome trace-event JSON
(Perfetto-loadable) and flat JSON/CSV; the breakdown module turns a
span stream into the per-category latency decomposition of Figure 15.

Tracing defaults to :data:`~repro.telemetry.tracer.NULL_TRACER` on
every engine — instrumentation sites guard on ``tracer.enabled`` and
cost one attribute load when disabled.
"""

from repro.telemetry.breakdown import (
    BREAKDOWN_CATEGORIES,
    aggregate_breakdown,
    format_breakdown,
    per_request_breakdown,
)
from repro.telemetry.export import (
    chrome_trace,
    spans_as_dicts,
    write_chrome_trace,
    write_spans_csv,
    write_spans_json,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.span import CATEGORIES, Span
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "CATEGORIES",
    "Span",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_json",
    "write_spans_csv",
    "spans_as_dicts",
    "per_request_breakdown",
    "aggregate_breakdown",
    "format_breakdown",
    "BREAKDOWN_CATEGORIES",
]
