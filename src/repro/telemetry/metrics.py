"""Metrics registry: counters, gauges, histograms, periodic sampling.

The registry is the second half of the telemetry subsystem: where spans
describe *one request's* path, metrics describe *system state over
time* — RQ depths, village utilization, NIC buffer occupancy, ICN link
contention.  Gauges are callables sampled on a fixed simulated-time
interval by a self-rescheduling engine event; the sampler stops
rescheduling once the event heap is otherwise empty so it never keeps a
finished simulation alive.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence, Tuple

import numpy as np


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        """Name the counter; the value starts at 0."""
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A named callable returning the current value of some system state."""

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]):
        """Bind the gauge name to its reader callable."""
        self.name = name
        self.fn = fn

    def read(self) -> float:
        """Evaluate the gauge's callable now."""
        return float(self.fn())


class Histogram:
    """Stores observations; summarizes to percentiles on demand."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str):
        """Name the histogram; no observations yet."""
        self.name = name
        self._values: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> List[float]:
        """A copy of every recorded observation, in arrival order."""
        return list(self._values)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) of the observations."""
        if not self._values:
            raise ValueError(f"histogram {self.name}: no observations")
        return float(np.percentile(self._values, q))

    def summary(self) -> Dict[str, float]:
        """count/mean/p50/p99/max of the observations ({'count': 0} when
        empty)."""
        if not self._values:
            return {"count": 0}
        arr = np.asarray(self._values)
        return {
            "count": int(arr.size),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }


class MetricsRegistry:
    """Create-or-get registry of counters/gauges/histograms plus the
    sampled time series of every gauge."""

    def __init__(self) -> None:
        """Create an empty registry."""
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        #: gauge name -> [(sample_time_ns, value)]
        self.series: Dict[str, List[Tuple[float, float]]] = {}
        self.samples_taken = 0

    # ------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        """Create-or-get the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        """Register gauge ``name`` backed by callable ``fn`` (once)."""
        if name in self._gauges:
            raise ValueError(f"gauge {name!r} already registered")
        g = self._gauges[name] = Gauge(name, fn)
        self.series[name] = []
        return g

    def histogram(self, name: str) -> Histogram:
        """Create-or-get the histogram called ``name``."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    @property
    def gauges(self) -> Sequence[str]:
        """Registered gauge names, in registration order."""
        return list(self._gauges)

    # ---------------------------------------------------------- sampling

    def sample_once(self, now_ns: float) -> None:
        """Read every gauge and append to its time series."""
        self.samples_taken += 1
        for name, gauge in self._gauges.items():
            self.series[name].append((now_ns, gauge.read()))

    def start_sampling(self, engine, interval_ns: float) -> None:
        """Sample every ``interval_ns`` of simulated time.

        The tick re-arms itself only while the engine has *other* work
        pending, so a drained simulation terminates naturally.
        """
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")

        def tick() -> None:
            self.sample_once(engine.now)
            if engine.peek_time() is not None:
                engine.schedule(interval_ns, tick)

        engine.schedule(interval_ns, tick)

    # ----------------------------------------------------------- export

    def series_stats(self, name: str) -> Dict[str, float]:
        """Mean/max over one gauge's sampled series."""
        points = self.series.get(name)
        if not points:
            return {"samples": 0}
        vals = np.asarray([v for __, v in points])
        return {"samples": int(vals.size), "mean": float(vals.mean()),
                "max": float(vals.max())}

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serializable dump of every instrument and series stat."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: self.series_stats(n) for n in sorted(self._gauges)},
            "histograms": {n: h.summary()
                           for n, h in sorted(self._histograms.items())},
            "samples_taken": self.samples_taken,
        }
