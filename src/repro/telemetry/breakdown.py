"""Span-derived latency breakdown (the Figure 15 decomposition).

For each *root* request we project every span of its RPC tree onto the
request's wall-clock interval and attribute each instant to exactly one
category by priority (compute wins over context switch, which wins over
RQ wait, and so on down to storage; instants covered by no span fall
into ``other``).  The per-category times of one request therefore sum
to its end-to-end latency *exactly*, which is what makes the breakdown
validatable against the latency recorder.

Priority order: a request blocked on a nested RPC is represented by the
child's own spans, so specific activity (a core computing, a scheduler
saving state) must shadow enclosing wait spans (the parent's storage
round trip, the child's whole ``request`` span).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

#: Attribution priority, most-specific first.  ``request`` spans are
#: containers, not activity, and are excluded from attribution.
PRIORITY: Tuple[str, ...] = (
    "compute",
    "context_switch",
    "rq_wait",
    "nic_dispatch",
    "icn_hop",
    "fabric",
    "storage_rpc",
)

#: The residual bucket: wall time no span accounts for (NIC-link
#: arbitration, retry backoff, scheduling gaps).
OTHER = "other"

BREAKDOWN_CATEGORIES: Tuple[str, ...] = PRIORITY + (OTHER,)


def _sweep(intervals: List[Tuple[float, float, int]],
           start: float, end: float) -> List[float]:
    """Attribute [start, end] over categories by priority.

    ``intervals`` holds (lo, hi, priority_index) items; returns summed
    time per priority index with the residual in the final slot.
    """
    out = [0.0] * (len(PRIORITY) + 1)
    if end <= start:
        return out
    events: List[Tuple[float, int, int]] = []
    for lo, hi, cat in intervals:
        lo, hi = max(lo, start), min(hi, end)
        if hi > lo:
            events.append((lo, +1, cat))
            events.append((hi, -1, cat))
    if not events:
        out[-1] = end - start
        return out
    events.sort(key=lambda e: (e[0], e[1]))
    active = [0] * len(PRIORITY)
    prev = start
    i = 0
    n = len(events)
    while i < n:
        t = events[i][0]
        if t > prev:
            seg = t - prev
            for ci in range(len(PRIORITY)):
                if active[ci]:
                    out[ci] += seg
                    break
            else:
                out[-1] += seg
            prev = t
        while i < n and events[i][0] == t:
            active[events[i][2]] += events[i][1]
            i += 1
    if end > prev:
        # Tail after the last span: residual.
        out[-1] += end - prev
    return out


def per_request_breakdown(tracer, after_ns: float = 0.0
                          ) -> Dict[int, Dict[str, float]]:
    """Per-category time for every completed, non-rejected root request.

    ``after_ns`` mirrors the latency recorder's warm-up cutoff: only
    requests *completing* at or after it are included, so the breakdown
    population matches the run summary's.
    """
    cat_index = {c: i for i, c in enumerate(PRIORITY)}
    # Spans grouped by the root request of their RPC tree.
    by_root: Dict[int, List[Tuple[float, float, int]]] = {}
    for span in tracer.spans:
        if span.req_index is None:
            continue
        ci = cat_index.get(span.category)
        if ci is None:
            continue
        root = tracer.root_of(span.req_index)
        by_root.setdefault(root, []).append(
            (span.start_ns, span.end_ns, ci))
    out: Dict[int, Dict[str, float]] = {}
    for info in tracer.requests:
        if info.index != info.root_index:       # nested RPC, not a root
            continue
        if info.rejected or info.end_ns is None:
            continue
        if info.end_ns < after_ns:
            continue
        sums = _sweep(by_root.get(info.index, []),
                      info.start_ns, info.end_ns)
        row = {cat: sums[i] for i, cat in enumerate(PRIORITY)}
        row[OTHER] = sums[-1]
        out[info.index] = row
    return out


def aggregate_breakdown(tracer, after_ns: float = 0.0
                        ) -> Optional[Dict[str, object]]:
    """Mean per-category time and fractions across root requests.

    Returns None when no request completed after the cutoff.  The
    invariant ``sum(mean_ns.values()) == wall_mean_ns`` holds by
    construction (up to float rounding).
    """
    rows = per_request_breakdown(tracer, after_ns=after_ns)
    if not rows:
        return None
    n = len(rows)
    mean_ns = {cat: 0.0 for cat in BREAKDOWN_CATEGORIES}
    for row in rows.values():
        for cat, v in row.items():
            mean_ns[cat] += v
    for cat in mean_ns:
        mean_ns[cat] /= n
    wall = sum(mean_ns.values())
    fraction = {cat: (v / wall if wall > 0 else 0.0)
                for cat, v in mean_ns.items()}
    return {
        "n_requests": n,
        "wall_mean_ns": wall,
        "mean_ns": mean_ns,
        "fraction": fraction,
    }


def format_breakdown(agg: Dict[str, object]) -> str:
    """Human-readable table of one aggregate breakdown."""
    lines = [f"breakdown over {agg['n_requests']} requests "
             f"(mean wall {agg['wall_mean_ns'] / 1e3:.1f} us)"]
    mean_ns: Dict[str, float] = agg["mean_ns"]          # type: ignore
    fraction: Dict[str, float] = agg["fraction"]        # type: ignore
    for cat in BREAKDOWN_CATEGORIES:
        lines.append(f"  {cat:15s} {mean_ns[cat] / 1e3:10.2f} us "
                     f"{100.0 * fraction[cat]:6.1f}%")
    return "\n".join(lines)
