"""Span model for the tracing subsystem.

A *span* is one timed interval of work attributed to a layer of the
simulated stack.  Spans carry a trace-local request index and a parent
link, so the spans of one client request (and of every nested RPC it
fans out to) form a tree that mirrors the RPC tree.

The category taxonomy is fixed so exporters and the breakdown analysis
can rely on it:

``request``
    Root span of one service invocation, client-arrival to response
    delivery (for nested calls: until the response reaches the parent).
``nic_dispatch``
    Time inside a NIC datapath (top-level NIC, L-NIC, R-NIC),
    including queueing on the NIC port.
``rq_wait``
    Request Queue residency: entry READY (enqueue or wakeup) until a
    core dequeues it.
``compute``
    A segment executing on a core.
``context_switch``
    State save/restore and software scheduler operations.
``icn_hop``
    An on-package ICN message, injection to delivery (all hops).
``storage_rpc``
    A blocking storage access, village egress to resume.
``fabric``
    An inter-server fabric message.
``blackhole_wait``
    Time an RPC attempt spent waiting on a response that never came
    (failed village/NIC/link), ending at the timeout that detected it.
``retry``
    Backoff delay between a timed-out attempt and its re-issue.
``hedge``
    A speculative duplicate attempt issued after the hedge delay; its
    children are the duplicate's own spans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Every category a span may carry, in breakdown-priority order (see
#: :mod:`repro.telemetry.breakdown`).
CATEGORIES: Tuple[str, ...] = (
    "request",
    "compute",
    "context_switch",
    "rq_wait",
    "nic_dispatch",
    "icn_hop",
    "fabric",
    "storage_rpc",
    # Fault/resilience categories: they fall into the breakdown's "other"
    # bucket by design (the per-figure category split is frozen).
    "blackhole_wait",
    "retry",
    "hedge",
)


@dataclass
class Span:
    """One completed timed interval (all times in ns)."""

    span_id: int
    name: str
    category: str
    start_ns: float
    end_ns: float
    track: str = ""                        # component lane for exporters
    req_index: Optional[int] = None        # trace-local request index
    parent_id: Optional[int] = None        # enclosing span (RPC-tree link)
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> float:
        """Length of the interval (``end_ns - start_ns``)."""
        return self.end_ns - self.start_ns

    def as_dict(self) -> Dict[str, Any]:
        """The span as a JSON-serializable dict (``attrs`` only when
        non-empty)."""
        d = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "req": self.req_index,
            "category": self.category,
            "name": self.name,
            "track": self.track,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            d["attrs"] = dict(self.attrs)
        return d
