"""On-package interconnection networks.

Three topologies from the paper: 2D mesh (ServerClass), fat-tree
(ScaleOut) and the hierarchical leaf-spine of uManycore.  A
:class:`~repro.icn.network.Network` instantiates a topology over the
event engine, modelling every link as a FIFO resource so that contention
appears as queueing delay — the mechanism behind Figure 7.
"""

from repro.icn.fattree import FatTree
from repro.icn.leafspine import HierarchicalLeafSpine
from repro.icn.mesh import Mesh2D
from repro.icn.network import Network, NetworkConfig
from repro.icn.topology import NoPathError, Topology

__all__ = [
    "Topology",
    "NoPathError",
    "Mesh2D",
    "FatTree",
    "HierarchicalLeafSpine",
    "Network",
    "NetworkConfig",
]
