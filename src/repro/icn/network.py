"""Event-driven network: links as FIFO resources, contention as queueing.

Each hop costs the router+wire latency (Table 2: 5 cycles/hop) plus the
message's serialization time on the link; a busy link queues messages.
``contention=False`` turns links into pure delays — the normalization
baseline of Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.icn.topology import NoPathError, Topology
from repro.sim.engine import Engine
from repro.sim.resource import Resource


@dataclass(frozen=True)
class NetworkConfig:
    """Link timing parameters.

    ``hop_cycles`` and ``freq_ghz`` follow Table 2 (5 cycles/hop at 2 GHz);
    ``link_bytes_per_ns`` models on-package link width (~128 B/ns).
    """

    hop_cycles: float = 5.0
    freq_ghz: float = 2.0
    link_bytes_per_ns: float = 128.0
    contention: bool = True

    @property
    def hop_latency_ns(self) -> float:
        return self.hop_cycles / self.freq_ghz

    def serialization_ns(self, size_bytes: int) -> float:
        return size_bytes / self.link_bytes_per_ns


class _Transit:
    """One in-flight message walking a compiled route's link resources.

    Replaces the per-message closure chain (one ``traverse`` closure plus
    one lambda per hop) with a single object; it *is* the Resource done
    callback (``done(start, finish)``), so each hop costs one bound-call
    and one ``acquire``.
    """

    __slots__ = ("net", "route", "hop_time", "sent_at",
                 "on_delivered", "on_dropped", "idx")

    def __init__(self, net: "Network", route: "_Route", hop_time: float,
                 on_delivered: Callable[[], None],
                 on_dropped: Optional[Callable[[], None]]):
        self.net = net
        self.route = route
        self.hop_time = hop_time
        self.sent_at = net.engine.now
        self.on_delivered = on_delivered
        self.on_dropped = on_dropped
        self.idx = 0

    def __call__(self, _start: float = 0.0, _finish: float = 0.0) -> None:
        net = self.net
        route = self.route
        i = self.idx
        if i >= route.n_hops:
            net._deliver(self.sent_at, self.on_delivered)
            return
        topo = net.topology
        if topo._failed_links:
            u, v = route.pairs[i]
            if not topo.link_alive(u, v):
                # The link died while the message was queued upstream.
                net._drop(self.on_dropped, in_flight=True)
                return
        self.idx = i + 1
        route.links[i].acquire(self.hop_time, self)


class _Route:
    """Per-path compiled hop list: link Resources resolved once.

    Holds a strong reference to the (shared, topology-cached) path list
    it was compiled from, which keeps the ``id(path)`` lookup key in
    ``Network._routes`` valid for the network's lifetime.
    """

    __slots__ = ("path", "links", "pairs", "n_hops")

    def __init__(self, net: "Network", path: list):
        self.path = path
        self.pairs = list(zip(path, path[1:]))
        self.links = [net._link(u, v) for u, v in self.pairs]
        self.n_hops = len(self.pairs)


class Network:
    """Drives messages across a topology on the event engine."""

    def __init__(self, engine: Engine, topology: Topology,
                 config: Optional[NetworkConfig] = None,
                 rng: Optional[np.random.Generator] = None):
        self.engine = engine
        self.topology = topology
        self.config = config or NetworkConfig()
        self.rng = rng
        self._links: Dict[Tuple[str, str], Resource] = {}
        #: Compiled routes keyed by ``id(path)`` of the shared path lists
        #: the topology cache hands out (each _Route pins its path alive,
        #: so keys cannot be recycled); holds the link Resource list so
        #: the hot send path skips per-hop dict probes.
        self._routes: Dict[int, _Route] = {}
        #: Exact per-size hop times (``hop_latency_ns + serialization``),
        #: memoized so the hot path recomputes nothing — same float ops
        #: on first use, so values are bit-identical to the uncached code.
        self._hop_times: Dict[int, float] = {}
        self.messages_sent = 0
        self.hops_traversed = 0
        self.total_latency = 0.0
        #: Messages lost to failed links/partitions (blackholes).  The
        #: RPC layer's timeouts are what turns these into retries.
        self.messages_dropped = 0

    def _link(self, u: str, v: str) -> Resource:
        res = self._links.get((u, v))
        if res is None:
            res = Resource(self.engine, capacity=self.topology.link_capacity(u, v),
                           name=f"{u}->{v}")
            self._links[(u, v)] = res
        return res

    def send(self, src: str, dst: str, size_bytes: int,
             on_delivered: Callable[[], None], rec=None,
             on_dropped: Optional[Callable[[], None]] = None) -> None:
        """Route a message and call ``on_delivered`` when it arrives.

        ``rec`` optionally attributes the message's ``icn_hop`` span to a
        request's trace (ignored when tracing is off).  When no surviving
        route exists (failed links) the message blackholes:
        ``on_dropped`` fires if given, otherwise nothing does — callers
        with a delivery guarantee wrap sends in a timeout.

        Fault-free sends run a compiled fast path: cached route, cached
        per-size hop time, and one :class:`_Transit` object instead of a
        closure chain.  Messages launched while links are failed use the
        uncompiled path below; either way a mid-flight failure is caught
        hop-by-hop.  Event order and accounting are byte-identical
        between the two (pinned by the perf_smoke equivalence gates).
        """
        engine = self.engine
        topo = self.topology
        if topo._failed_links:
            self._send_degraded(src, dst, size_bytes, on_delivered, rec,
                                on_dropped)
            return
        try:
            path = topo.path(src, dst, self.rng)
        except NoPathError:
            self._drop(on_dropped)
            return
        self.messages_sent += 1
        if len(path) < 2:
            engine.schedule(0.0, on_delivered)
            return
        check = engine.check
        if check.enabled:
            # Conservation ledger covers routed (multi-hop) messages:
            # every send ends in _deliver or an in-flight drop.
            check.icn_send(self)
        hop_time = self._hop_times.get(size_bytes)
        if hop_time is None:
            hop_time = self.config.hop_latency_ns + \
                self.config.serialization_ns(size_bytes)
            self._hop_times[size_bytes] = hop_time
        n_hops = len(path) - 1
        self.hops_traversed += n_hops

        if engine.tracer.enabled:
            inner = on_delivered
            name = f"{src}->{dst}"
            sent_at = engine.now

            def on_delivered() -> None:
                engine.tracer.span(
                    "icn_hop", name, sent_at, engine.now, rec=rec,
                    track="icn", hops=n_hops, bytes=size_bytes)
                inner()

        if not self.config.contention:
            engine.schedule(hop_time * n_hops, self._deliver, engine.now,
                            on_delivered)
            return

        route = self._routes.get(id(path))
        if route is None:
            route = self._routes[id(path)] = _Route(self, path)
        _Transit(self, route, hop_time, on_delivered, on_dropped)()

    def send_fanout(self, sources, dst: str, size_bytes: int,
                    on_each: Callable[[], None], rec=None) -> None:
        """Send one message to ``dst`` from each source yielded by
        ``sources``, invoking ``on_each`` per delivery.

        ``sources`` is iterated lazily, so a generator whose body draws
        from an RNG interleaves those draws with each message's ECMP
        picks exactly as an equivalent ``send`` loop would — the draw
        order (and hence every downstream event) is byte-identical.
        The batch hoists the per-send constant work (hop-time lookup,
        flag slots, counter loads) out of the loop; tracing, invariant
        checking, degraded topologies and contention-free mode fall
        back to plain sends, which keeps the fast path small.
        """
        engine = self.engine
        topo = self.topology
        if (topo._failed_links or engine.tracer.enabled
                or engine.check.enabled or not self.config.contention):
            send = self.send
            for src in sources:
                send(src, dst, size_bytes, on_each, rec=rec)
            return
        hop_time = self._hop_times.get(size_bytes)
        if hop_time is None:
            hop_time = self.config.hop_latency_ns + \
                self.config.serialization_ns(size_bytes)
            self._hop_times[size_bytes] = hop_time
        path_of = topo.path
        rng = self.rng
        routes = self._routes
        schedule = engine.schedule
        sent = 0
        hops = 0
        for src in sources:
            try:
                path = path_of(src, dst, rng)
            except NoPathError:
                self._drop(None)
                continue
            sent += 1
            if len(path) < 2:
                schedule(0.0, on_each)
                continue
            hops += len(path) - 1
            route = routes.get(id(path))
            if route is None:
                route = routes[id(path)] = _Route(self, path)
            _Transit(self, route, hop_time, on_each, None)()
        # The loop is synchronous (no event runs mid-batch), so the
        # deferred counter flush is observationally identical to the
        # per-send increments.
        self.messages_sent += sent
        self.hops_traversed += hops

    def _send_degraded(self, src: str, dst: str, size_bytes: int,
                       on_delivered: Callable[[], None], rec=None,
                       on_dropped: Optional[Callable[[], None]] = None) -> None:
        """Uncompiled send used while any link is failed (rare path)."""
        try:
            path = self.topology.path(src, dst, self.rng)
        except NoPathError:
            self._drop(on_dropped)
            return
        self.messages_sent += 1
        if len(path) < 2:
            self.engine.schedule(0.0, on_delivered)
            return
        check = self.engine.check
        if check.enabled:
            check.icn_send(self)
        sent_at = self.engine.now
        hop_time = self.config.hop_latency_ns + \
            self.config.serialization_ns(size_bytes)
        hops = list(zip(path, path[1:]))
        self.hops_traversed += len(hops)

        if self.engine.tracer.enabled:
            inner = on_delivered
            name = f"{src}->{dst}"
            n_hops = len(hops)

            def on_delivered() -> None:
                self.engine.tracer.span(
                    "icn_hop", name, sent_at, self.engine.now, rec=rec,
                    track="icn", hops=n_hops, bytes=size_bytes)
                inner()

        if not self.config.contention:
            total = hop_time * len(hops)
            self.engine.schedule(total, self._deliver, sent_at, on_delivered)
            return

        topo = self.topology

        def traverse(index: int) -> None:
            if index >= len(hops):
                self._deliver(sent_at, on_delivered)
                return
            u, v = hops[index]
            if topo.has_failures and not topo.link_alive(u, v):
                # The link died while the message was queued upstream.
                self._drop(on_dropped, in_flight=True)
                return
            self._link(u, v).acquire(hop_time,
                                     lambda s, f: traverse(index + 1))

        traverse(0)

    def _drop(self, on_dropped: Optional[Callable[[], None]],
              in_flight: bool = False) -> None:
        """Blackhole one message (no route, or a hop died in flight)."""
        self.messages_dropped += 1
        check = self.engine.check
        if check.enabled:
            check.icn_drop(self, in_flight=in_flight)
        if on_dropped is not None:
            self.engine.schedule(0.0, on_dropped)

    def _deliver(self, sent_at: float, on_delivered: Callable[[], None]) -> None:
        self.total_latency += self.engine.now - sent_at
        check = self.engine.check
        if check.enabled:
            check.icn_deliver(self)
        on_delivered()

    def queued_messages(self) -> int:
        """Messages currently waiting on busy links (contention gauge)."""
        return sum(res.queue_length for res in self._links.values())

    def transit_time(self, src: str, dst: str, size_bytes: int) -> float:
        """Contention-free latency of one message (for analytic baselines)."""
        hops = len(self.topology.path(src, dst, self.rng)) - 1
        return max(0, hops) * (self.config.hop_latency_ns
                               + self.config.serialization_ns(size_bytes))

    @property
    def mean_latency(self) -> float:
        if self.messages_sent == 0:
            return 0.0
        return self.total_latency / self.messages_sent

    def busiest_links(self, top: int = 5):
        """(link, jobs_served) of the most-used links — contention hot spots."""
        ranked = sorted(self._links.items(), key=lambda kv: -kv[1].jobs_served)
        return [(link, res.jobs_served) for link, res in ranked[:top]]
