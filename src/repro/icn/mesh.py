"""2D mesh with XY dimension-order routing (the ServerClass ICN)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.icn.topology import Topology


class Mesh2D(Topology):
    """``cols`` x ``rows`` mesh of tiles, named ``t{x},{y}``.

    Routing is deterministic XY (first along x, then along y), the common
    deadlock-free scheme; determinism is also what concentrates traffic
    and makes meshes contention-prone (Figure 7).

    Under link failures XY routers have no fallback: a dead link on the
    XY path loses the route (the message blackholes) even though the
    grid may still be connected.  ``adaptive=True`` models a fabric with
    adaptive routing tables instead — failed links are detoured via BFS,
    trading blackholes for longer paths and detour hotspots.
    """

    def __init__(self, cols: int, rows: int, link_capacity: int = 1,
                 adaptive: bool = False):
        super().__init__(name=f"mesh{cols}x{rows}")
        if cols < 1 or rows < 1:
            raise ValueError("mesh dimensions must be >= 1")
        self.adaptive = adaptive
        self.cols = cols
        self.rows = rows
        for x in range(cols):
            for y in range(rows):
                if x + 1 < cols:
                    self.add_link(self.tile(x, y), self.tile(x + 1, y),
                                  capacity=link_capacity)
                if y + 1 < rows:
                    self.add_link(self.tile(x, y), self.tile(x, y + 1),
                                  capacity=link_capacity)
    @staticmethod
    def tile(x: int, y: int) -> str:
        return f"t{x},{y}"

    @staticmethod
    def coords(node: str) -> tuple:
        x, y = node[1:].split(",")
        return int(x), int(y)

    def attach_at(self, name: str, x: int, y: int, capacity: int = 1) -> None:
        """Attach an endpoint (e.g. the NIC) to a tile by coordinates."""
        self.attach(name, self.tile(x, y), capacity=capacity)

    def _route(self, src: str, dst: str,
               rng: Optional[np.random.Generator] = None) -> List[str]:
        x0, y0 = self.coords(src)
        x1, y1 = self.coords(dst)
        path = [self.tile(x0, y0)]
        x, y = x0, y0
        while x != x1:
            x += 1 if x1 > x else -1
            path.append(self.tile(x, y))
        while y != y1:
            y += 1 if y1 > y else -1
            path.append(self.tile(x, y))
        return path
