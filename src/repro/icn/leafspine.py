"""Hierarchical leaf-spine ICN — the uManycore topology (Section 4.2).

Default geometry matches Section 5: 32 leaf NHs in 4 pods of 8; each pod
has 4 second-level (spine) NHs connected all-to-all to its 8 leaves; 8
third-level (core) NHs each connect to all 16 spines.  Longest path:
leaf -> spine -> core -> spine -> leaf = 4 hops, and every stage offers
multiple equal-cost choices (ECMP), which is what suppresses contention.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.icn.topology import Topology


class HierarchicalLeafSpine(Topology):
    """Pods of leaf+spine switches joined by a third level of core switches."""

    def __init__(self, n_pods: int = 4, leaves_per_pod: int = 8,
                 spines_per_pod: int = 4, n_core: int = 8,
                 link_capacity: int = 1):
        if min(n_pods, leaves_per_pod, spines_per_pod) < 1 or n_core < 1:
            raise ValueError("all dimensions must be >= 1")
        super().__init__(name=f"leafspine{n_pods}x{leaves_per_pod}")
        #: ECMP hardware re-picks among surviving equal-cost paths, and
        #: the base class falls back to BFS when none survives — the
        #: "many redundant equal-cost paths" resilience claim (Sec 4.2).
        self.adaptive = True
        self.n_pods = n_pods
        self.leaves_per_pod = leaves_per_pod
        self.spines_per_pod = spines_per_pod
        self.n_core = n_core
        for pod in range(n_pods):
            for leaf in range(leaves_per_pod):
                for spine in range(spines_per_pod):
                    self.add_link(self.leaf_name(pod, leaf),
                                  self.spine_name(pod, spine),
                                  capacity=link_capacity)
            for spine in range(spines_per_pod):
                for core in range(n_core):
                    self.add_link(self.spine_name(pod, spine),
                                  self.core_name(core),
                                  capacity=link_capacity)
        self._leaf_names = [
            self.leaf_name(i // leaves_per_pod, i % leaves_per_pod)
            for i in range(n_pods * leaves_per_pod)]

    @property
    def n_leaves(self) -> int:
        return self.n_pods * self.leaves_per_pod

    @property
    def n_switches(self) -> int:
        return self.n_leaves + self.n_pods * self.spines_per_pod + self.n_core

    @staticmethod
    def leaf_name(pod: int, leaf: int) -> str:
        return f"leaf{pod}:{leaf}"

    @staticmethod
    def spine_name(pod: int, spine: int) -> str:
        return f"spine{pod}:{spine}"

    @staticmethod
    def core_name(core: int) -> str:
        return f"core{core}"

    def leaf(self, index: int) -> str:
        """Global leaf index 0..n_leaves-1 -> node name (precomputed)."""
        if not 0 <= index < self.n_leaves:
            raise IndexError(f"leaf index {index} out of range")
        return self._leaf_names[index]

    def _route(self, src: str, dst: str,
               rng: Optional[np.random.Generator] = None) -> List[str]:
        """ECMP routing: random equal-cost spine/core picks per message.

        With failed links present, the pick is made among the *surviving*
        equal-cost paths (the hardware's link-liveness mask); the healthy
        fast path below is untouched so fault-free runs consume the RNG
        identically to pre-fault builds.
        """
        if src == dst:
            return [src]
        if self._failed_links:
            paths = self.equal_cost_paths(src, dst, alive_only=True)
            if not paths:
                # Every minimal path lost a link; the base class's
                # adaptive BFS finds a (longer) detour or raises.
                return self.shortest_path(src, dst)
            if rng is None:
                return paths[0]
            return paths[int(rng.integers(len(paths)))]
        choice = (lambda n: int(rng.integers(n))) if rng is not None else (lambda n: 0)
        src_pod, __ = self._parse_leaf(src)
        dst_pod, __ = self._parse_leaf(dst)
        if src_pod == dst_pod:
            spine = self.spine_name(src_pod, choice(self.spines_per_pod))
            return [src, spine, dst]
        up_spine = self.spine_name(src_pod, choice(self.spines_per_pod))
        core = self.core_name(choice(self.n_core))
        down_spine = self.spine_name(dst_pod, choice(self.spines_per_pod))
        return [src, up_spine, core, down_spine, dst]

    def _route_plan(self, src: str, dst: str):
        """Compiled-ECMP descriptor mirroring :meth:`_route`'s healthy path.

        Draw order per message is pinned: one ``rng.integers`` for the
        shared spine intra-pod, or up-spine → core → down-spine for
        inter-pod — exactly the ``choice`` sequence in ``_route``.
        """
        if src == dst:
            return None
        src_pod, __ = self._parse_leaf(src)
        dst_pod, __ = self._parse_leaf(dst)
        if src_pod == dst_pod:
            def build_intra(key):
                return [src, self.spine_name(src_pod, key[0]), dst]
            return (self.spines_per_pod,), build_intra

        def build_inter(key):
            return [src, self.spine_name(src_pod, key[0]),
                    self.core_name(key[1]),
                    self.spine_name(dst_pod, key[2]), dst]
        return (self.spines_per_pod, self.n_core, self.spines_per_pod), \
            build_inter

    def equal_cost_paths(self, src: str, dst: str,
                         alive_only: bool = False) -> List[List[str]]:
        """Every minimal ECMP path between two leaves.

        ``alive_only`` filters to paths whose links all survive the
        current failure set — the redundancy that makes single-link
        failures invisible here while deterministic fabrics blackhole.
        """
        if src == dst:
            return [[src]]
        ok = self.link_alive if alive_only else self.has_link
        src_pod, __ = self._parse_leaf(src)
        dst_pod, __ = self._parse_leaf(dst)
        paths: List[List[str]] = []
        if src_pod == dst_pod:
            for s in range(self.spines_per_pod):
                spine = self.spine_name(src_pod, s)
                if ok(src, spine) and ok(spine, dst):
                    paths.append([src, spine, dst])
            return paths
        for up in range(self.spines_per_pod):
            up_spine = self.spine_name(src_pod, up)
            if not ok(src, up_spine):
                continue
            for c in range(self.n_core):
                core = self.core_name(c)
                if not ok(up_spine, core):
                    continue
                for down in range(self.spines_per_pod):
                    down_spine = self.spine_name(dst_pod, down)
                    if ok(core, down_spine) and ok(down_spine, dst):
                        paths.append(
                            [src, up_spine, core, down_spine, dst])
        return paths

    @staticmethod
    def _parse_leaf(node: str):
        if not node.startswith("leaf"):
            raise ValueError(f"leaf-spine routing endpoints must be leaves: {node}")
        pod, leaf = node[4:].split(":")
        return int(pod), int(leaf)
