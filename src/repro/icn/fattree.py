"""Fat-tree ICN (the ScaleOut baseline).

Section 5: "the fat-tree topology has 63 NHs and its longest path is 10
hops".  That is a binary tree over 32 leaves (32+16+8+4+2+1 = 63
switches; leaf -> root -> leaf = 10 hops).  Fatness is modelled as link
capacity doubling towards the root, capped — a tapered fat-tree, which is
what keeps it cheaper than a full-bisection fabric and why it still
suffers contention near the root.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.icn.topology import Topology


class FatTree(Topology):
    """Binary fat-tree over ``n_leaves`` leaf switches.

    Nodes are ``ft{level}:{index}``; level 0 is the leaves.  A single
    up/down path exists between any two leaves (deterministic routing),
    which is also the topology's resilience Achilles' heel: since the
    graph is a tree, any link failure *partitions* it — every pair whose
    route crossed that link blackholes until the link recovers, with no
    possible reroute (``adaptive`` stays False by construction).
    """

    def __init__(self, n_leaves: int = 32, max_link_capacity: int = 2):
        if n_leaves < 2 or n_leaves & (n_leaves - 1):
            raise ValueError("n_leaves must be a power of two >= 2")
        super().__init__(name=f"fattree{n_leaves}")
        self.n_leaves = n_leaves
        self.levels = n_leaves.bit_length()  # 32 -> 6 levels (0..5)
        for level in range(self.levels - 1):
            width = n_leaves >> level
            capacity = min(2 ** level * 2, max_link_capacity)
            for i in range(width):
                self.add_link(self.switch(level, i),
                              self.switch(level + 1, i // 2),
                              capacity=capacity)

    @staticmethod
    def switch(level: int, index: int) -> str:
        return f"ft{level}:{index}"

    def leaf(self, index: int) -> str:
        if not 0 <= index < self.n_leaves:
            raise IndexError(f"leaf index {index} out of range")
        return self.switch(0, index)

    @property
    def n_switches(self) -> int:
        return 2 * self.n_leaves - 1

    def _route(self, src: str, dst: str,
               rng: Optional[np.random.Generator] = None) -> List[str]:
        """Up to the lowest common ancestor, then down."""
        if src == dst:
            return [src]
        sl, si = self._parse(src)
        dl, di = self._parse(dst)
        up: List[str] = [src]
        down: List[str] = [dst]
        while (sl, si) != (dl, di):
            if sl <= dl:
                sl, si = sl + 1, si // 2
                up.append(self.switch(sl, si))
            else:
                dl, di = dl + 1, di // 2
                down.append(self.switch(dl, di))
        # The meeting node appears at the end of both lists.
        return up + down[::-1][1:]

    @staticmethod
    def _parse(node: str):
        level, index = node[2:].split(":")
        return int(level), int(index)
