"""Topology base class: a directed graph with per-link capacities.

Concrete topologies implement :meth:`path`, returning the node sequence a
message follows.  Multi-path topologies (leaf-spine, fat-tree fabrics)
make randomized equal-cost choices using the caller's RNG, which is how
ECMP load-spreading is modelled.

Links can *fail* (:meth:`fail_link`) and recover.  What happens to a
route that crosses a dead link is a property of the routing scheme:

* ``adaptive=False`` (deterministic hardware routing — the 2D mesh's XY
  dimension-order routers, the fat-tree's single up/down path): the
  route is simply gone and :meth:`path` raises :class:`NoPathError`;
  the message blackholes and recovery is the RPC layer's problem.
* ``adaptive=True``: the fabric recomputes a shortest path over the
  surviving links (BFS), still raising :class:`NoPathError` when the
  failure actually partitions the graph.  The leaf-spine fabric goes
  further and re-picks among its surviving equal-cost paths (ECMP).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

import numpy as np


class NoPathError(ValueError):
    """No surviving route between two nodes (failure/partition)."""


class EcmpRoutePlan:
    """Compiled multi-path route for one endpoint pair.

    ``dims`` is the sequence of equal-cost choice widths drawn per
    message, in draw order; ``build`` maps a drawn index tuple to the
    final (attachment-resolved, deduplicated) node path.  ``pick``
    consumes the caller's RNG with exactly the same number and order of
    ``rng.integers`` calls as the uncompiled routing code, so cached and
    uncached routing are byte-identical — the determinism contract of
    docs/PERFORMANCE.md.
    """

    __slots__ = ("dims", "build", "variants", "_zero")

    def __init__(self, dims, build):
        self.dims = tuple(dims)
        self.build = build
        self.variants: Dict[tuple, List[str]] = {}
        self._zero = (0,) * len(self.dims)

    def pick(self, rng: Optional[np.random.Generator]) -> List[str]:
        if rng is None:
            key = self._zero
        else:
            integers = rng.integers
            dims = self.dims
            # Unrolled for the two shapes that exist (1- and 3-draw ECMP);
            # the generic tail keeps arbitrary plans correct.
            if len(dims) == 1:
                key = (int(integers(dims[0])),)
            elif len(dims) == 3:
                key = (int(integers(dims[0])), int(integers(dims[1])),
                       int(integers(dims[2])))
            else:
                key = tuple(int(integers(n)) for n in dims)
        path = self.variants.get(key)
        if path is None:
            path = self.variants[key] = self.build(key)
        return path


class Topology:
    """Directed graph; links carry a capacity used by the Network layer."""

    def __init__(self, name: str = ""):
        self.name = name
        self._adj: Dict[str, List[str]] = {}
        self._capacity: Dict[Tuple[str, str], int] = {}
        self._attachments: Dict[str, str] = {}
        self._failed_links: Set[Tuple[str, str]] = set()
        #: Whether routing recomputes around dead links (see module doc).
        self.adaptive = False
        #: Healthy-path compiled routes, keyed by the (src, dst) pair as
        #: given to :meth:`path` (attachment names included).  Entries are
        #: either a shared path list (rng-independent routing) or an
        #: :class:`EcmpRoutePlan`.  Only consulted when no link is failed;
        #: invalidated by :meth:`add_link` (and therefore :meth:`attach`).
        self._route_cache: Dict[Tuple[str, str], object] = {}

    @property
    def nodes(self) -> List[str]:
        return list(self._adj.keys())

    @property
    def links(self) -> List[Tuple[str, str]]:
        return list(self._capacity.keys())

    def add_node(self, node: str) -> None:
        self._adj.setdefault(node, [])

    def add_link(self, u: str, v: str, capacity: int = 1,
                 bidirectional: bool = True) -> None:
        """Add a directed link u->v (and v->u unless ``bidirectional=False``)."""
        if capacity < 1:
            raise ValueError("link capacity must be >= 1")
        self._route_cache.clear()
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].append(v)
        self._capacity[(u, v)] = capacity
        if bidirectional:
            if u not in self._adj[v]:
                self._adj[v].append(u)
            self._capacity[(v, u)] = capacity

    def has_link(self, u: str, v: str) -> bool:
        return (u, v) in self._capacity

    def link_capacity(self, u: str, v: str) -> int:
        return self._capacity[(u, v)]

    # ------------------------------------------------------- link failures

    def fail_link(self, u: str, v: str, bidirectional: bool = True) -> None:
        """Take a link out of service (both directions by default)."""
        if not self.has_link(u, v):
            raise KeyError(f"cannot fail unknown link {u!r}->{v!r}")
        self._failed_links.add((u, v))
        if bidirectional and self.has_link(v, u):
            self._failed_links.add((v, u))

    def recover_link(self, u: str, v: str, bidirectional: bool = True) -> None:
        """Return a failed link to service."""
        self._failed_links.discard((u, v))
        if bidirectional:
            self._failed_links.discard((v, u))

    def link_alive(self, u: str, v: str) -> bool:
        return (u, v) in self._capacity and (u, v) not in self._failed_links

    @property
    def failed_links(self) -> Set[Tuple[str, str]]:
        return set(self._failed_links)

    @property
    def has_failures(self) -> bool:
        return bool(self._failed_links)

    def _path_alive(self, path: List[str]) -> bool:
        failed = self._failed_links
        return not any((u, v) in failed for u, v in zip(path, path[1:]))

    def neighbors(self, node: str) -> List[str]:
        return self._adj[node]

    def attach(self, name: str, node: str, capacity: int = 1) -> None:
        """Attach an endpoint (NIC, village port) to a switch node.

        Endpoint hops are real links (they can contend) but routing inside
        the fabric is delegated to the topology's own scheme.
        """
        if node not in self._adj:
            raise KeyError(f"cannot attach {name!r}: unknown node {node!r}")
        self.add_link(name, node, capacity=capacity)
        self._attachments[name] = node

    def attachment_point(self, name: str) -> str:
        return self._attachments[name]

    def path(self, src: str, dst: str, rng: Optional[np.random.Generator] = None
             ) -> List[str]:
        """Node sequence from src to dst, resolving attached endpoints.

        Fault-free routing is served from a per-pair compiled cache:
        attachment resolution, route construction, and deduplication run
        once, after which each call is a dict probe (plus the original
        per-message ECMP draws — see :class:`EcmpRoutePlan`).  Returned
        lists are shared; callers must not mutate them.  With failed
        links present the uncached degraded path below runs instead.
        """
        if self._failed_links:
            return self._path_degraded(src, dst, rng)
        entry = self._route_cache.get((src, dst))
        if entry is None:
            entry = self._compile_route(src, dst)
            self._route_cache[(src, dst)] = entry
        if entry.__class__ is list:
            return entry
        return entry.pick(rng)

    def _compile_route(self, src: str, dst: str):
        """Build the healthy-path cache entry for one endpoint pair."""
        prefix: List[str] = []
        suffix: List[str] = []
        s, d = src, dst
        if s in self._attachments:
            prefix = [src]
            s = self._attachments[src]
        if d in self._attachments:
            suffix = [dst]
            d = self._attachments[dst]

        def assemble(route: List[str]) -> List[str]:
            full = prefix + route + suffix
            return [n for i, n in enumerate(full) if i == 0 or n != full[i - 1]]

        plan = self._route_plan(s, d)
        if plan is None:
            return assemble(self._route(s, d, None))
        dims, build = plan
        return EcmpRoutePlan(dims, lambda key: assemble(build(key)))

    def _route_plan(self, src: str, dst: str):
        """Describe the healthy route's RNG draws for compilation.

        Returns ``None`` when ``_route`` ignores the RNG (the route is a
        single fixed path — BFS, XY mesh, fat-tree up/down), or a
        ``(dims, build)`` pair replicating the draw sequence.  Any
        subclass whose ``_route`` consumes the RNG on the fault-free path
        MUST override this to match its draws exactly, or healthy routing
        through the cache would change RNG stream consumption.
        """
        return None

    def _path_degraded(self, src: str, dst: str,
                       rng: Optional[np.random.Generator] = None) -> List[str]:
        """Uncached routing used while any link is failed."""
        prefix: List[str] = []
        suffix: List[str] = []
        if src in self._attachments:
            prefix = [src]
            src = self._attachments[src]
        if dst in self._attachments:
            suffix = [dst]
            dst = self._attachments[dst]
        full = prefix + self._route(src, dst, rng) + suffix
        full = [n for i, n in enumerate(full) if i == 0 or n != full[i - 1]]
        if self._failed_links and not self._path_alive(full):
            if not self.adaptive:
                raise NoPathError(
                    f"route {full[0]} -> {full[-1]} crosses a failed link "
                    f"({self.name}: deterministic routing, no reroute)")
            # Adaptive fabric: recompute over the surviving links.  The
            # endpoint attachment hops are fixed wires — if one of those
            # died, no amount of rerouting helps.
            full = prefix + self.shortest_path(src, dst) + suffix
            full = [n for i, n in enumerate(full) if i == 0 or n != full[i - 1]]
            if not self._path_alive(full):
                raise NoPathError(
                    f"endpoint link of {full[0]} -> {full[-1]} is down")
        return full

    def _route(self, src: str, dst: str,
               rng: Optional[np.random.Generator] = None) -> List[str]:
        """Fabric-internal routing; subclasses override.  Default: BFS."""
        return self.shortest_path(src, dst)

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """BFS shortest path over *surviving* links; raises
        :class:`NoPathError` when disconnected (or partitioned)."""
        if src == dst:
            return [src]
        if src not in self._adj or dst not in self._adj:
            raise KeyError(f"unknown node in path request: {src} -> {dst}")
        failed = self._failed_links
        prev: Dict[str, str] = {}
        q = deque([src])
        seen = {src}
        while q:
            node = q.popleft()
            for nb in self._adj[node]:
                if nb in seen:
                    continue
                if failed and (node, nb) in failed:
                    continue
                seen.add(nb)
                prev[nb] = node
                if nb == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    return path[::-1]
                q.append(nb)
        raise NoPathError(f"no path from {src} to {dst}")

    def validate_path(self, path: List[str]) -> bool:
        """True when every consecutive pair is an existing link."""
        return all(self.has_link(u, v) for u, v in zip(path, path[1:]))

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.shortest_path(src, dst)) - 1
