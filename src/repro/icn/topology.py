"""Topology base class: a directed graph with per-link capacities.

Concrete topologies implement :meth:`path`, returning the node sequence a
message follows.  Multi-path topologies (leaf-spine, fat-tree fabrics)
make randomized equal-cost choices using the caller's RNG, which is how
ECMP load-spreading is modelled.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

import numpy as np


class Topology:
    """Directed graph; links carry a capacity used by the Network layer."""

    def __init__(self, name: str = ""):
        self.name = name
        self._adj: Dict[str, List[str]] = {}
        self._capacity: Dict[Tuple[str, str], int] = {}
        self._attachments: Dict[str, str] = {}

    @property
    def nodes(self) -> List[str]:
        return list(self._adj.keys())

    @property
    def links(self) -> List[Tuple[str, str]]:
        return list(self._capacity.keys())

    def add_node(self, node: str) -> None:
        self._adj.setdefault(node, [])

    def add_link(self, u: str, v: str, capacity: int = 1,
                 bidirectional: bool = True) -> None:
        """Add a directed link u->v (and v->u unless ``bidirectional=False``)."""
        if capacity < 1:
            raise ValueError("link capacity must be >= 1")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].append(v)
        self._capacity[(u, v)] = capacity
        if bidirectional:
            if u not in self._adj[v]:
                self._adj[v].append(u)
            self._capacity[(v, u)] = capacity

    def has_link(self, u: str, v: str) -> bool:
        return (u, v) in self._capacity

    def link_capacity(self, u: str, v: str) -> int:
        return self._capacity[(u, v)]

    def neighbors(self, node: str) -> List[str]:
        return self._adj[node]

    def attach(self, name: str, node: str, capacity: int = 1) -> None:
        """Attach an endpoint (NIC, village port) to a switch node.

        Endpoint hops are real links (they can contend) but routing inside
        the fabric is delegated to the topology's own scheme.
        """
        if node not in self._adj:
            raise KeyError(f"cannot attach {name!r}: unknown node {node!r}")
        self.add_link(name, node, capacity=capacity)
        self._attachments[name] = node

    def attachment_point(self, name: str) -> str:
        return self._attachments[name]

    def path(self, src: str, dst: str, rng: Optional[np.random.Generator] = None
             ) -> List[str]:
        """Node sequence from src to dst, resolving attached endpoints."""
        prefix: List[str] = []
        suffix: List[str] = []
        if src in self._attachments:
            prefix = [src]
            src = self._attachments[src]
        if dst in self._attachments:
            suffix = [dst]
            dst = self._attachments[dst]
        full = prefix + self._route(src, dst, rng) + suffix
        return [n for i, n in enumerate(full) if i == 0 or n != full[i - 1]]

    def _route(self, src: str, dst: str,
               rng: Optional[np.random.Generator] = None) -> List[str]:
        """Fabric-internal routing; subclasses override.  Default: BFS."""
        return self.shortest_path(src, dst)

    def shortest_path(self, src: str, dst: str) -> List[str]:
        """BFS shortest path; raises if disconnected."""
        if src == dst:
            return [src]
        if src not in self._adj or dst not in self._adj:
            raise KeyError(f"unknown node in path request: {src} -> {dst}")
        prev: Dict[str, str] = {}
        q = deque([src])
        seen = {src}
        while q:
            node = q.popleft()
            for nb in self._adj[node]:
                if nb in seen:
                    continue
                seen.add(nb)
                prev[nb] = node
                if nb == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(prev[path[-1]])
                    return path[::-1]
                q.append(nb)
        raise ValueError(f"no path from {src} to {dst}")

    def validate_path(self, path: List[str]) -> bool:
        """True when every consecutive pair is an existing link."""
        return all(self.has_link(u, v) for u, v in zip(path, path[1:]))

    def hop_count(self, src: str, dst: str) -> int:
        return len(self.shortest_path(src, dst)) - 1
