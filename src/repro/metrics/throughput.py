"""Throughput and QoS accounting (Section 6.5).

"We say that a QoS violation occurs if the request execution time is
higher than 5 times the contention-free average request execution time."
Figure 18 reports the maximum load each system sustains without QoS
violations; the search harness in :mod:`repro.experiments.fig18_throughput`
uses these helpers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

QOS_FACTOR = 5.0


def qos_threshold_ns(contention_free_avg_ns: float,
                     factor: float = QOS_FACTOR) -> float:
    """Latency bound above which a request violates QoS."""
    if contention_free_avg_ns <= 0:
        raise ValueError("contention-free average must be positive")
    return factor * contention_free_avg_ns


def qos_violated(latencies_ns: np.ndarray, contention_free_avg_ns: float,
                 factor: float = QOS_FACTOR,
                 violation_quantile: float = 0.99) -> bool:
    """True when the run violates QoS.

    A run violates QoS when more than ``1 - violation_quantile`` of its
    requests exceed the bound — i.e. the P99 latency is over threshold.
    """
    if len(latencies_ns) == 0:
        raise ValueError("no latency samples")
    threshold = qos_threshold_ns(contention_free_avg_ns, factor)
    return float(np.percentile(latencies_ns, violation_quantile * 100)) > threshold


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of a max-throughput search for one system/app."""

    system: str
    app: str
    max_rps: float
    qos_threshold_ns: float

    def normalized_to(self, baseline: "ThroughputResult") -> float:
        if baseline.max_rps <= 0:
            raise ValueError("baseline throughput must be positive")
        return self.max_rps / baseline.max_rps
