"""Measurement utilities: latency recording, throughput/QoS accounting."""

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.throughput import ThroughputResult, qos_threshold_ns, qos_violated

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "ThroughputResult",
    "qos_violated",
    "qos_threshold_ns",
]
