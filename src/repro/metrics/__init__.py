"""Measurement utilities: latency recording, throughput/QoS accounting.

The time-series instruments (counters/gauges/histograms with periodic
sampling) live in :mod:`repro.telemetry.metrics` and are re-exported
here so measurement code has one import root.
"""

from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.throughput import ThroughputResult, qos_threshold_ns, qos_violated
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "LatencyRecorder",
    "LatencySummary",
    "ThroughputResult",
    "qos_violated",
    "qos_threshold_ns",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
