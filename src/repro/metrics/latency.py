"""End-to-end latency recording and summarization.

The paper reports average and P99 ("tail") response times, measured
end-to-end from client send to client receive (Section 6), after the
system reaches steady state.  ``LatencyRecorder`` supports a warm-up
cutoff so ramp-up samples can be excluded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of one run (all times in ns)."""

    count: int
    mean: float
    p50: float
    p99: float
    p999: float
    maximum: float

    @property
    def tail_to_average(self) -> float:
        return self.p99 / self.mean if self.mean > 0 else 0.0

    @property
    def is_empty(self) -> bool:
        """True for the zero-sample sentinel (see :meth:`empty`)."""
        return self.count == 0

    @classmethod
    def empty(cls) -> "LatencySummary":
        """Explicit zero-sample sentinel.

        Windows with no post-warm-up completions are a legitimate
        outcome (hybrid-elided low-load windows, autoscaler drains, a
        warm-up cutoff past the last completion), so summarization
        degrades to this all-zeros summary instead of raising.
        """
        return cls(count=0, mean=0.0, p50=0.0, p99=0.0, p999=0.0,
                   maximum=0.0)

    def as_dict(self) -> dict:
        return {"count": self.count, "mean": self.mean, "p50": self.p50,
                "p99": self.p99, "p999": self.p999, "max": self.maximum}


class LatencyRecorder:
    """Collects (completion_time, latency) samples."""

    def __init__(self, name: str = ""):
        self.name = name
        self._times: List[float] = []
        self._latencies: List[float] = []

    def record(self, completion_ns: float, latency_ns: float) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self._times.append(completion_ns)
        self._latencies.append(latency_ns)

    def __len__(self) -> int:
        return len(self._latencies)

    def latencies(self, after_ns: float = 0.0) -> np.ndarray:
        """Latency samples completing after the warm-up cutoff."""
        if after_ns <= 0:
            return np.asarray(self._latencies)
        times = np.asarray(self._times)
        lats = np.asarray(self._latencies)
        return lats[times >= after_ns]

    def samples(self) -> "np.ndarray":
        """All ``(completion_ns, latency_ns)`` pairs, shape ``(n, 2)``
        (windowed analyses — e.g. p99-over-time — slice these)."""
        return np.column_stack([self._times, self._latencies]) \
            if self._latencies else np.empty((0, 2))

    def windowed(self, window_ns: float, horizon_ns: float) -> list:
        """Per-window :class:`LatencySummary` list over ``[0, horizon)``.

        Windows bucket by *completion* time with boundaries at
        ``i * window_ns`` (index-computed, never float-accumulated);
        empty windows yield the zero sentinel.
        """
        if window_ns <= 0 or horizon_ns <= 0:
            raise ValueError("window and horizon must be positive")
        n_windows = int(np.ceil(horizon_ns / window_ns))
        times = np.asarray(self._times)
        lats = np.asarray(self._latencies)
        out = []
        for i in range(n_windows):
            left, right = i * window_ns, min((i + 1) * window_ns,
                                             horizon_ns)
            sel = lats[(times >= left) & (times < right)]
            if len(sel) == 0:
                out.append(LatencySummary.empty())
                continue
            out.append(LatencySummary(
                count=len(sel), mean=float(np.mean(sel)),
                p50=float(np.percentile(sel, 50)),
                p99=float(np.percentile(sel, 99)),
                p999=float(np.percentile(sel, 99.9)),
                maximum=float(np.max(sel))))
        return out

    def summary(self, after_ns: float = 0.0) -> LatencySummary:
        """Summary of the post-cutoff samples; the
        :meth:`LatencySummary.empty` sentinel when there are none."""
        lats = self.latencies(after_ns)
        if len(lats) == 0:
            return LatencySummary.empty()
        return LatencySummary(
            count=len(lats),
            mean=float(np.mean(lats)),
            p50=float(np.percentile(lats, 50)),
            p99=float(np.percentile(lats, 99)),
            p999=float(np.percentile(lats, 99.9)),
            maximum=float(np.max(lats)),
        )


def pooled_summary(recorders, after_ns: float = 0.0) -> LatencySummary:
    """Summarize the *pooled raw samples* of several recorders.

    Tail percentiles do not compose: averaging per-server p99s
    understates (or overstates) the cluster-level tail whenever load or
    latency is skewed across servers.  This merges the underlying
    samples and takes percentiles of the pool, which is the
    statistically correct cluster aggregate.
    """
    pools = [r.latencies(after_ns) for r in recorders]
    lats = np.concatenate(pools) if pools else np.asarray([])
    if len(lats) == 0:
        return LatencySummary.empty()
    return LatencySummary(
        count=len(lats),
        mean=float(np.mean(lats)),
        p50=float(np.percentile(lats, 50)),
        p99=float(np.percentile(lats, 99)),
        p999=float(np.percentile(lats, 99.9)),
        maximum=float(np.max(lats)),
    )
