"""Per-cluster SRAM memory pool with service snapshots (Section 4.1).

The pool stores read-mostly state — most importantly service *snapshots*
(initialized container/runtime/library images, 10s of MB).  Creating a new
service instance from a snapshot only needs a bulk read from the pool
(L-MEM engine), cutting instance boot from >300 ms to <10 ms [18].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.engine import Engine
from repro.sim.resource import Resource

MB = 1024 * 1024


@dataclass(frozen=True)
class MemoryPoolConfig:
    """Capacity and bulk-transfer bandwidth of one pool chiplet."""

    capacity_mb: float = 256.0
    read_bandwidth_bytes_per_ns: float = 64.0    # L-MEM bulk engine
    access_latency_ns: float = 20.0              # fixed SRAM access cost
    cold_boot_ms: float = 300.0                  # boot without a snapshot
    snapshot_boot_overhead_ms: float = 2.0       # non-copy part of a warm boot


class MemoryPool:
    """SRAM chiplet shared by the villages of one cluster."""

    def __init__(self, engine: Engine, config: Optional[MemoryPoolConfig] = None,
                 name: str = ""):
        self.engine = engine
        self.config = config or MemoryPoolConfig()
        self.name = name
        self._snapshots: Dict[str, float] = {}   # service -> size bytes
        self._used_bytes = 0.0
        # Bulk reads serialize on the L-MEM engine.
        self._lmem = Resource(engine, capacity=1, name=f"{name}.L-MEM")
        self.snapshot_boots = 0
        self.cold_boots = 0

    @property
    def free_bytes(self) -> float:
        return self.config.capacity_mb * MB - self._used_bytes

    def has_snapshot(self, service: str) -> bool:
        return service in self._snapshots

    def store_snapshot(self, service: str, size_bytes: float) -> bool:
        """Record a snapshot; False when the pool lacks capacity."""
        if size_bytes <= 0:
            raise ValueError("snapshot size must be positive")
        if service in self._snapshots:
            return True
        if size_bytes > self.free_bytes:
            return False
        self._snapshots[service] = size_bytes
        self._used_bytes += size_bytes
        return True

    def evict_snapshot(self, service: str) -> None:
        size = self._snapshots.pop(service, 0.0)
        self._used_bytes -= size

    def boot_instance(self, service: str, done: Callable[[float], None]) -> None:
        """Boot a service instance; calls ``done(boot_time_ns)``.

        With a snapshot: pool read (bandwidth-limited, serialized on the
        L-MEM engine) plus a small fixed overhead.  Without: full cold
        boot (~300 ms), executed off-pool.
        """
        cfg = self.config
        size = self._snapshots.get(service)
        if size is None:
            self.cold_boots += 1
            boot_ns = cfg.cold_boot_ms * 1e6
            self.engine.schedule(boot_ns, done, boot_ns)
            return
        self.snapshot_boots += 1
        copy_ns = cfg.access_latency_ns + size / cfg.read_bandwidth_bytes_per_ns
        overhead_ns = cfg.snapshot_boot_overhead_ms * 1e6
        start = self.engine.now
        self._lmem.acquire(
            copy_ns,
            lambda s, f: self.engine.schedule(
                overhead_ns, lambda: done(self.engine.now - start)))
