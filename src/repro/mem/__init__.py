"""Memory substrate: DRAM timing, SRAM memory pools, footprint models."""

from repro.mem.dram import Dram, DramConfig
from repro.mem.footprint import FootprintModel, SharingReport, sharing
from repro.mem.mempool import MemoryPool, MemoryPoolConfig

__all__ = [
    "Dram",
    "DramConfig",
    "MemoryPool",
    "MemoryPoolConfig",
    "FootprintModel",
    "SharingReport",
    "sharing",
]
