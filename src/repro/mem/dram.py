"""DRAM channel/bank timing model (the DRAMSim2 stand-in).

Table 2: 80 GB per server, 4 channels x 8 banks at 1 GHz DDR, 8 memory
controllers at 102.4 GB/s each.  We model the essential timing behaviour:
accesses queue per channel, banks keep an open row (row hits are fast,
row conflicts pay precharge+activate), and bandwidth is bounded by the
channel resources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.engine import Engine
from repro.sim.resource import Resource


@dataclass(frozen=True)
class DramConfig:
    """Geometry and timing of the per-server memory system."""

    channels: int = 4
    banks_per_channel: int = 8
    row_bytes: int = 8192
    row_hit_ns: float = 15.0        # CAS only
    row_miss_ns: float = 45.0       # precharge + activate + CAS
    line_bytes: int = 64

    def __post_init__(self):
        if self.channels < 1 or self.banks_per_channel < 1:
            raise ValueError("channels and banks must be >= 1")


class Dram:
    """Open-row DRAM with per-channel queueing."""

    def __init__(self, engine: Engine, config: Optional[DramConfig] = None,
                 name: str = "dram"):
        self.engine = engine
        self.config = config or DramConfig()
        self.name = name
        self._channels = [Resource(engine, capacity=1, name=f"{name}.ch{i}")
                          for i in range(self.config.channels)]
        # open row per (channel, bank); None = closed
        self._open_rows = [[None] * self.config.banks_per_channel
                           for __ in range(self.config.channels)]
        self.row_hits = 0
        self.row_misses = 0

    def _map(self, addr: int):
        """Address interleaving: line -> channel, then bank, then row."""
        line = addr // self.config.line_bytes
        channel = line % self.config.channels
        bank = (line // self.config.channels) % self.config.banks_per_channel
        row = addr // self.config.row_bytes
        return channel, bank, row

    def access(self, addr: int, done: Callable[[float], None]) -> None:
        """Read one line; ``done(latency_ns)`` fires at completion."""
        channel, bank, row = self._map(addr)
        open_row = self._open_rows[channel][bank]
        if open_row == row:
            self.row_hits += 1
            service = self.config.row_hit_ns
        else:
            self.row_misses += 1
            service = self.config.row_miss_ns
            self._open_rows[channel][bank] = row
        start = self.engine.now
        self._channels[channel].acquire(
            service, lambda s, f: done(self.engine.now - start))

    @property
    def accesses(self) -> int:
        return self.row_hits + self.row_misses

    def row_hit_rate(self) -> float:
        return self.row_hits / self.accesses if self.accesses else 0.0
