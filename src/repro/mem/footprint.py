"""Handler/instance memory-footprint sharing model (Section 3.5, Figure 8).

A service instance has an *initialization footprint* (container, runtime,
libraries) and each handler has a small per-request footprint (~0.5 MB on
average).  Handlers of the same instance read mostly the same pages: the
paper measures 78-99% commonality between two handlers, and between a
handler and the initialization footprint, at both page and cache-line
granularity, for data and instructions.

We model footprints as sets of page/line ids.  A handler draws most of
its pages from the instance's shared pool and a small remainder from a
private region; line-granularity sharing within a shared page is itself
partial (a handler touches a subset of each page's lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

import numpy as np

PAGE_BYTES = 4096
LINE_BYTES = 64
LINES_PER_PAGE = PAGE_BYTES // LINE_BYTES


@dataclass(frozen=True)
class SharingReport:
    """Fraction of a handler footprint common with another footprint."""

    d_page: float
    d_line: float
    i_page: float
    i_line: float

    def as_dict(self) -> Dict[str, float]:
        return {"d-Page": self.d_page, "d-Line": self.d_line,
                "i-Page": self.i_page, "i-Line": self.i_line}


@dataclass
class HandlerFootprint:
    """Concrete pages/lines touched by one handler."""

    data_pages: Set[int]
    data_lines: Set[int]
    instr_pages: Set[int]
    instr_lines: Set[int]

    @property
    def data_bytes(self) -> int:
        return len(self.data_lines) * LINE_BYTES


class FootprintModel:
    """Generates instance-init and handler footprints for one service.

    Parameters follow the paper: handler data footprint ~0.5 MB, of which
    ``shared_page_fraction`` of pages come from the instance's shared pool
    (≈0.85 for data, ≈0.97 for instructions — instructions are the same
    handler code every time).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        handler_data_kb: float = 512.0,
        handler_instr_kb: float = 128.0,
        init_data_kb: float = 4096.0,
        init_instr_kb: float = 1024.0,
        shared_data_page_fraction: float = 0.85,
        shared_instr_page_fraction: float = 0.97,
        lines_touched_per_page: float = 0.8,
    ):
        if not 0 <= shared_data_page_fraction <= 1:
            raise ValueError("shared_data_page_fraction must be in [0, 1]")
        if not 0 <= shared_instr_page_fraction <= 1:
            raise ValueError("shared_instr_page_fraction must be in [0, 1]")
        self.rng = rng
        self.handler_data_pages = max(1, int(handler_data_kb * 1024 / PAGE_BYTES))
        self.handler_instr_pages = max(1, int(handler_instr_kb * 1024 / PAGE_BYTES))
        self.init_data_pages = max(1, int(init_data_kb * 1024 / PAGE_BYTES))
        self.init_instr_pages = max(1, int(init_instr_kb * 1024 / PAGE_BYTES))
        self.shared_data_page_fraction = shared_data_page_fraction
        self.shared_instr_page_fraction = shared_instr_page_fraction
        self.lines_touched_per_page = lines_touched_per_page
        self._next_private_page = self.init_data_pages + self.init_instr_pages

    def init_footprint(self) -> HandlerFootprint:
        """The instance's initialization footprint (all pool pages)."""
        d_pages = set(range(self.init_data_pages))
        i_pages = set(range(self.init_data_pages,
                            self.init_data_pages + self.init_instr_pages))
        return HandlerFootprint(
            data_pages=d_pages,
            data_lines=self._all_lines(d_pages),
            instr_pages=i_pages,
            instr_lines=self._all_lines(i_pages),
        )

    def handler_footprint(self) -> HandlerFootprint:
        """One handler's footprint: mostly shared pages, few private ones."""
        d_pages, d_lines = self._draw(
            self.handler_data_pages, self.init_data_pages, 0,
            self.shared_data_page_fraction)
        i_pages, i_lines = self._draw(
            self.handler_instr_pages, self.init_instr_pages,
            self.init_data_pages, self.shared_instr_page_fraction)
        return HandlerFootprint(d_pages, d_lines, i_pages, i_lines)

    def _draw(self, n_pages: int, pool_size: int, pool_base: int,
              shared_fraction: float) -> Tuple[Set[int], Set[int]]:
        n_shared = int(round(n_pages * shared_fraction))
        n_shared = min(n_shared, pool_size)
        # Handlers of a service execute the same code over the same
        # read-mostly state, so the bulk of the shared pages is the same
        # *hot set* every time; only a small remainder varies per request.
        n_hot = int(round(n_shared * 0.9))
        shared = set(pool_base + p for p in range(n_hot))
        n_varying = n_shared - n_hot
        if n_varying > 0 and pool_size > n_hot:
            varying = self.rng.choice(pool_size - n_hot, size=min(
                n_varying, pool_size - n_hot), replace=False)
            shared.update(pool_base + n_hot + int(v) for v in varying)
        private = set()
        for __ in range(n_pages - n_shared):
            private.add(self._next_private_page)
            self._next_private_page += 1
        pages = shared | private
        lines = set()
        for page in pages:
            n_lines = max(1, int(self.rng.binomial(
                LINES_PER_PAGE, self.lines_touched_per_page)))
            # Handlers touch a page's lines from the start (headers first),
            # so line sets of a shared page largely overlap too.
            lines.update(page * LINES_PER_PAGE + i for i in range(n_lines))
        return pages, lines

    @staticmethod
    def _all_lines(pages: Set[int]) -> Set[int]:
        return {p * LINES_PER_PAGE + i for p in pages for i in range(LINES_PER_PAGE)}


def sharing(a: HandlerFootprint, b: HandlerFootprint) -> SharingReport:
    """Fraction of ``a``'s footprint also present in ``b`` (Figure 8 bars)."""

    def frac(x: Set[int], y: Set[int]) -> float:
        return len(x & y) / len(x) if x else 0.0

    return SharingReport(
        d_page=frac(a.data_pages, b.data_pages),
        d_line=frac(a.data_lines, b.data_lines),
        i_page=frac(a.instr_pages, b.instr_pages),
        i_line=frac(a.instr_lines, b.instr_lines),
    )
