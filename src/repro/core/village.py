"""Village execution engine (Section 4.1): cores + shared L2 + RQ.

A village is the hardware cache-coherent unit: a handful of cores that
pull service requests from the village Request Queue.  The same class
also models the *queue domains* of the baselines (a 32-core ScaleOut
cluster sharing one software queue, or the whole 40-core ServerClass
processor) — the differences are the scheduler domain (hardware vs
software costs) and the domain size.

The village delegates workload semantics to an *executor* object
(implemented by :mod:`repro.systems.server`), which provides::

    segment_time_ns(rec, core) -> float   # compute time of current segment
    segment_done(rec, village, core)      # decide: block on a call / finish

and drives the village back through :meth:`block_for_call`,
:meth:`finish` and :meth:`make_ready`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.context_switch import SchedulerDomain
from repro.core.request import RequestRecord
from repro.core.request_queue import RequestQueue


@dataclass
class Core:
    """One core of a village."""

    core_id: int
    village_id: int
    service: Optional[str] = None       # partitioned-service assignment
    busy: bool = False
    requests_run: int = 0
    busy_ns: float = 0.0
    failed: bool = False                # faulted out of the dispatch pool


class Village:
    """A cache-coherent domain of cores sharing one request queue."""

    def __init__(self, engine, village_id: int, n_cores: int,
                 scheduler: SchedulerDomain, executor,
                 rq_capacity: int = 64,
                 steal_from: Optional[List["Village"]] = None,
                 steal_overhead_ns: float = 0.0,
                 rq_policy: Optional[object] = None,
                 rq: Optional[object] = None,
                 core_borrowing: bool = False,
                 steal_policy: Optional[object] = None,
                 core_bypass: bool = False,
                 name: str = ""):
        if n_cores < 1:
            raise ValueError("a village needs at least one core")
        self.engine = engine
        self.village_id = village_id
        self.scheduler = scheduler
        self.executor = executor
        self.name = name or f"village{village_id}"
        # ``rq`` lets callers install a PartitionedRequestQueue (the
        # Section 4.3 RQ_Map design) instead of the default shared RQ.
        self.rq = rq if rq is not None else RequestQueue(
            rq_capacity, name=f"{self.name}.rq", policy=rq_policy)
        if hasattr(self.rq, "set_clock"):
            self.rq.set_clock(engine)   # RQ-wait stamping for telemetry
        #: Section 8: a co-located instance may temporarily borrow cores
        #: assigned to another instance when its own queue backs up.
        self.core_borrowing = core_borrowing
        #: nanoPU-style fast path: an arriving request may skip the
        #: queue/scheduler machinery and start on an idle core at once
        #: (it still takes an RQ slot, so conservation is untouched).
        self.core_bypass = core_bypass
        self.cores = [Core(core_id=i, village_id=village_id)
                      for i in range(n_cores)]
        self.steal_from = steal_from or []
        #: Villages that may steal from this one; notified when work backs
        #: up here so their idle cores can come and take it.
        self.stealers: List["Village"] = []
        if steal_policy is None:
            from repro.sched.stealing import FIRST_STEAL

            steal_policy = FIRST_STEAL
        self.steal_policy = steal_policy
        self.steal_overhead_ns = steal_overhead_ns
        # Measured-service-time feedback for the dequeue policy (SJF):
        # the RQ (or its policy) may expose ``observe(service, ns)``.
        observe = getattr(self.rq, "observe", None)
        if observe is None:
            observe = getattr(getattr(self.rq, "policy", None),
                              "observe", None)
        self._observe_segment = observe
        #: Service-time tap of the hybrid fast path (repro.hybrid); None
        #: outside hybrid runs so the hot path pays one attribute load.
        self.hybrid_observe = None
        self.completed = 0
        self.steals = 0
        self.bypasses = 0
        #: Fault state.  A failed village blackholes: it acks submissions
        #: (the sender cannot tell yet — that is the detection lag) but
        #: drops them; its RQ is purged on failure.  ``degrade_factor``
        #: models gray failures — every segment runs that much slower.
        self.failed = False
        self.degrade_factor = 1.0
        self.blackholed = 0

    # ------------------------------------------------------------ fault state

    def fail(self) -> None:
        """Hard failure: purge the RQ, blackhole everything from now on."""
        if self.failed:
            return
        self.failed = True
        self.blackholed += self.rq.purge()

    def recover(self) -> None:
        self.failed = False
        self.degrade_factor = 1.0
        for core in self.cores:
            core.busy = False      # contexts died with the purge
        self._kick()

    # ------------------------------------------------------------ ingress

    def submit(self, rec: RequestRecord) -> bool:
        """Enqueue an arriving request; False when the RQ is full."""
        if self.failed:
            # Dead hardware acks nothing, but the sender cannot know that
            # until its health check fires: the request just vanishes.
            # Timeout/retry at the RPC layer is what rescues it.
            self.blackholed += 1
            rec.village = self.village_id
            return True
        if self.core_bypass and self._try_bypass(rec):
            return True
        if not self.rq.enqueue(rec):
            return False
        rec.village = self.village_id
        rec._owner_village = self           # home RQ for later transitions
        rec._enqueue_ns = self.engine.now
        self._kick()
        if self.stealers and self.rq.has_ready():
            for stealer in self.stealers:
                stealer._kick()
                if not self.rq.has_ready():
                    break
        return True

    def submit_soft(self, rec: RequestRecord) -> None:
        """Admit an internal request via NIC buffering (no RQ slot)."""
        if self.failed:
            self.blackholed += 1
            rec.village = self.village_id
            return
        self.rq.soft_enqueue(rec)
        rec.village = self.village_id
        rec._owner_village = self
        rec._enqueue_ns = self.engine.now
        self._kick()

    def make_ready(self, rec: RequestRecord) -> None:
        """An RPC response arrived: entry goes blocked -> ready (wakeup)."""
        owner = getattr(rec, "_owner_village", self)
        if owner.failed or owner.rq.is_stale(rec):
            # The entry's context memory was purged by a village failure;
            # a late response has nothing to wake up.
            owner.blackholed += 1
            return

        def ready():
            if owner.failed or owner.rq.is_stale(rec):
                owner.blackholed += 1
                return
            owner.rq.mark_ready(rec)
            self._kick()

        self.scheduler.scheduler_op(ready, rec=rec)

    def _try_bypass(self, rec: RequestRecord) -> bool:
        """nanoPU-style core bypass: land the request straight on an
        idle core, skipping the scheduler round-trip.

        The request still claims a normal RQ slot and is immediately
        dequeued, so every queue/conservation invariant holds unchanged;
        what it skips is the scheduler op (queueing + jitter on software
        schedulers) between enqueue and first execution.  Requires an
        idle core that may serve the request's service AND no older
        READY work that core should take first (no queue jumping) AND a
        free slot; otherwise the caller falls back to normal dispatch.
        """
        if self.rq.is_full:
            return False
        core = None
        for c in self.cores:
            if not c.busy and not c.failed and \
                    (c.service is None or c.service == rec.service):
                core = c
                break
        if core is None:
            return False
        if self.rq.has_ready(core.service):
            return False
        self.rq.enqueue(rec)            # cannot fail: is_full was checked
        rec.village = self.village_id
        rec._owner_village = self
        rec._enqueue_ns = self.engine.now
        got = self.rq.dequeue(core.service)
        if got is not rec:              # pragma: no cover - invariant
            raise RuntimeError("core bypass dequeued a different entry")
        core.busy = True
        core.requests_run += 1
        rec._first_dispatch_ns = self.engine.now
        rec.queue_wait_ns = 0.0
        self.bypasses += 1
        check = self.engine.check
        if check.enabled:
            check.core_bypass(self, rec)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.span("core_bypass", self.name, self.engine.now,
                        self.engine.now, rec=rec, track=self.name)
        self._execute(core, rec)
        return True

    # ----------------------------------------------------------- dispatch

    def _kick(self) -> None:
        if self.failed:
            return
        for core in self.cores:
            if not core.busy and not core.failed:
                dispatched = self._try_dispatch(core)
                # An unpartitioned core failing to dequeue means the RQ
                # has no ready work for anyone — stop scanning cores.
                if not dispatched and core.service is None:
                    break

    def _try_dispatch(self, core: Core) -> bool:
        if core.busy or core.failed or self.failed:
            return False
        rec = self.rq.dequeue(core.service)
        if rec is None and core.service is not None and self.core_borrowing:
            # The core's own service is idle: serve a co-located one.
            rec = self.rq.dequeue(None)
        if rec is None and self.steal_from:
            rec = self.steal_policy.steal(self, core)
            if rec is not None:
                self.steals += 1
        if rec is None:
            return False
        core.busy = True
        core.requests_run += 1
        if not hasattr(rec, "_first_dispatch_ns"):
            rec._first_dispatch_ns = self.engine.now
            rec.queue_wait_ns = self.engine.now - getattr(
                rec, "_enqueue_ns", self.engine.now)
        tracer = self.engine.tracer
        if tracer.enabled:
            # RQ residency ends at dequeue; the ready stamp comes from the
            # queue's clock (enqueue or the last blocked->ready wakeup).
            tracer.span("rq_wait", self.name, getattr(
                rec, "_ready_since_ns", self.engine.now), self.engine.now,
                rec=rec, track=self.name)
        stolen = rec.village != self.village_id
        if stolen:
            check = self.engine.check
            if check.enabled:
                check.rq_steal(self, rec)
            if tracer.enabled:
                tracer.span("steal", self.name, self.engine.now,
                            self.engine.now + self.steal_overhead_ns,
                            rec=rec, track=self.name)

        def start():
            if rec.has_run:
                self.scheduler.charge_restore(
                    lambda: self._execute(core, rec), rec=rec)
            else:
                self._execute(core, rec)

        extra = self.steal_overhead_ns if stolen else 0.0
        if extra > 0:
            self.scheduler.scheduler_op(
                lambda: self.engine.schedule(extra, start), rec=rec)
        else:
            self.scheduler.scheduler_op(start, rec=rec)
        return True

    def _execute(self, core: Core, rec: RequestRecord) -> None:
        duration = self.executor.segment_time_ns(rec, core)
        if self.degrade_factor != 1.0:       # gray failure: slow node
            duration *= self.degrade_factor
        if self._observe_segment is not None:
            self._observe_segment(rec.service, duration)
        if self.hybrid_observe is not None:
            self.hybrid_observe(rec.service, duration)
        rec.last_core = (self.village_id, core.core_id)
        rec.has_run = True
        core.busy_ns += duration
        check = self.engine.check
        if check.enabled:
            check.compute_segment(self, rec, duration)
        tracer = self.engine.tracer
        if tracer.enabled:
            tracer.span("compute", f"{rec.service}#seg{rec.seg_index}",
                        self.engine.now, self.engine.now + duration,
                        rec=rec, track=f"{self.name}.c{core.core_id}",
                        core=core.core_id)
        self.engine.schedule(duration, self._segment_finished, core, rec)

    def _segment_finished(self, core: Core, rec: RequestRecord) -> None:
        owner = getattr(rec, "_owner_village", self)
        if self.failed or owner.failed or owner.rq.is_stale(rec):
            # The village (or the entry's home RQ) died mid-segment: the
            # request is gone.  Free the core if *this* village is alive.
            owner.blackholed += 1
            core.busy = False
            if not self.failed:
                self._try_dispatch(core)
            return
        self.executor.segment_done(rec, self, core)

    # ----------------------------------------- executor-driven transitions

    def block_for_call(self, rec: RequestRecord, core: Core) -> None:
        """The request issued a blocking RPC: save state, free the core."""
        owner = getattr(rec, "_owner_village", self)
        owner.rq.mark_blocked(rec)

        def saved():
            core.busy = False
            self._try_dispatch(core)

        self.scheduler.charge_save(saved, rec=rec)

    def finish(self, rec: RequestRecord, core: Core) -> None:
        """The request completed: Complete instruction, free the core."""
        owner = getattr(rec, "_owner_village", self)
        owner.rq.complete(rec)
        rec.finish_ns = self.engine.now
        self.completed += 1

        def done():
            core.busy = False
            rec.on_complete(rec)
            self._try_dispatch(core)

        self.scheduler.scheduler_op(done, rec=rec)

    # ------------------------------------------------------------- stats

    @property
    def n_cores(self) -> int:
        return len(self.cores)

    def utilization(self, elapsed_ns: Optional[float] = None) -> float:
        elapsed = elapsed_ns if elapsed_ns is not None else self.engine.now
        if elapsed <= 0:
            return 0.0
        return sum(c.busy_ns for c in self.cores) / (elapsed * self.n_cores)
