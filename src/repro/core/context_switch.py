"""Context-switch and scheduler-overhead models (Sections 3.3, 4.4).

uManycore saves/restores process state in hardware (~10^2 cycles total);
the baselines use software schedulers whose costs Figure 6 quotes:
~2K cycles for the state of the art (Shenango/Shinjuku/ZygOS) and ~5K
cycles for Linux.  Centralized software schedulers (Shinjuku, Shenango)
additionally funnel every scheduling operation through a dedicated core,
which becomes a throughput bottleneck (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.engine import Engine
from repro.sim.resource import Resource


@dataclass(frozen=True)
class ContextSwitchConfig:
    """Cycle costs of one scheduling regime.

    ``save_cycles``/``restore_cycles`` are charged on the core at block/
    resume; ``scheduler_op_cycles`` is the per-operation cost of the
    scheduling software (enqueue, dequeue, wakeup); with ``centralized``
    those operations serialize on one dedicated scheduler core per domain.
    """

    name: str
    save_cycles: float
    restore_cycles: float
    scheduler_op_cycles: float = 0.0
    centralized: bool = False
    # Software scheduling jitter: with probability ``jitter_prob`` an
    # operation stalls for ``jitter_ns`` (timer interference, lock
    # contention, kernel noise) — the classic software sources of tail
    # latency that hardware scheduling removes.
    jitter_prob: float = 0.0
    jitter_ns: float = 0.0

    @property
    def switch_cycles(self) -> float:
        return self.save_cycles + self.restore_cycles

    def scaled(self, switch_cycles: float) -> "ContextSwitchConfig":
        """Same regime with a different total switch cost (Figure 6 sweeps)."""
        half = switch_cycles / 2.0
        return ContextSwitchConfig(
            name=f"{self.name}-{int(switch_cycles)}cy",
            save_cycles=half, restore_cycles=half,
            scheduler_op_cycles=self.scheduler_op_cycles,
            centralized=self.centralized,
            jitter_prob=self.jitter_prob, jitter_ns=self.jitter_ns)


#: uManycore: ContextSwitch/Dequeue instructions (~128 cycles total).
HARDWARE_CS = ContextSwitchConfig("hardware", save_cycles=64,
                                  restore_cycles=64)
#: State-of-the-art software schedulers (~2K cycles/switch, Figure 6).
#: Shinjuku's dispatcher core spends ~1 us per scheduling decision when
#: RPC dispatch is included; that one core is the throughput bottleneck
#: the paper calls out in Section 4.4.
SHINJUKU_CS = ContextSwitchConfig("shinjuku", 1000, 1000,
                                  scheduler_op_cycles=1200, centralized=True,
                                  jitter_prob=0.0004, jitter_ns=2_000_000.0)
SHENANGO_CS = ContextSwitchConfig("shenango", 900, 900,
                                  scheduler_op_cycles=1100, centralized=True,
                                  jitter_prob=0.0004, jitter_ns=1_800_000.0)
ZYGOS_CS = ContextSwitchConfig("zygos", 1100, 1100,
                               scheduler_op_cycles=5500, centralized=False,
                               jitter_prob=0.0006, jitter_ns=2_200_000.0)
#: Linux (~5K cycles/switch, kernel scheduling + network stack per op).
LINUX_CS = ContextSwitchConfig("linux", 2500, 2500,
                               scheduler_op_cycles=15000, centralized=False,
                               jitter_prob=0.0010, jitter_ns=3_000_000.0)

CS_PRESETS: Dict[str, ContextSwitchConfig] = {
    cfg.name: cfg
    for cfg in (HARDWARE_CS, SHINJUKU_CS, SHENANGO_CS, ZYGOS_CS, LINUX_CS)
}


class SchedulerDomain:
    """Scheduling-overhead engine for one queue domain.

    Charges save/restore costs and, for software schedulers, per-op
    scheduler costs — serialized through the domain's dedicated scheduler
    core when ``centralized``.
    """

    def __init__(self, engine: Engine, config: ContextSwitchConfig,
                 freq_ghz: float, name: str = "", rng=None):
        if freq_ghz <= 0:
            raise ValueError("freq_ghz must be positive")
        self.engine = engine
        self.config = config
        self.freq_ghz = freq_ghz
        self.name = name
        self.rng = rng
        self.jitter_events = 0
        self._sched_core: Optional[Resource] = (
            Resource(engine, capacity=1, name=f"{name}.sched")
            if config.centralized else None)
        self.switches = 0
        self.scheduler_ops = 0
        # Per-op costs precomputed (config is frozen, freq fixed at
        # construction): the save/restore/op paths run per segment.
        self._save_ns = config.save_cycles / freq_ghz
        self._restore_ns = config.restore_cycles / freq_ghz
        self._op_ns = config.scheduler_op_cycles / freq_ghz
        self._jitter_on = rng is not None and config.jitter_prob > 0

    def _ns(self, cycles: float) -> float:
        return cycles / self.freq_ghz

    @property
    def save_ns(self) -> float:
        return self._save_ns

    @property
    def restore_ns(self) -> float:
        return self._restore_ns

    def _traced(self, done: Callable[[], None], op: str,
                rec) -> Callable[[], None]:
        """Wrap ``done`` in a ``context_switch`` span (queueing on a
        centralized scheduler core included); identity when tracing is
        off."""
        tracer = self.engine.tracer
        if not tracer.enabled:
            return done
        start = self.engine.now

        def finish() -> None:
            tracer.span("context_switch", op, start, self.engine.now,
                        rec=rec, track=self.name or "sched")
            done()

        return finish

    def charge_save(self, done: Callable[[], None], rec=None) -> None:
        """Save process state on a block.

        Hardware: the core's ContextSwitch instruction (~save_cycles).
        Centralized software (Shinjuku-style): the dedicated scheduler
        core detects the block and saves the context — the work
        serializes with everything else that core does (Section 4.4).
        """
        self.switches += 1
        if self.engine.tracer.enabled:
            done = self._traced(done, "save", rec)
        if self._sched_core is not None:
            self._sched_core.acquire(self._save_ns, lambda s, f: done())
        else:
            self.engine.schedule(self._save_ns, done)

    def charge_restore(self, done: Callable[[], None], rec=None) -> None:
        """Restore process state on resume (part of Dequeue / dispatch)."""
        if self.engine.tracer.enabled:
            done = self._traced(done, "restore", rec)
        if self._sched_core is not None:
            self._sched_core.acquire(self._restore_ns, lambda s, f: done())
        else:
            self.engine.schedule(self._restore_ns, done)

    def scheduler_op(self, done: Callable[[], None], rec=None) -> None:
        """One scheduling operation (enqueue/dequeue/wakeup).

        Hardware scheduling costs nothing here (the Dequeue instruction's
        few cycles are folded into restore).  Software costs
        ``scheduler_op_cycles``; centralized software also queues on the
        dedicated scheduler core.
        """
        self.scheduler_ops += 1
        op_ns = self._op_ns
        if self._jitter_on and self.rng.random() < self.config.jitter_prob:
            self.jitter_events += 1
            op_ns += self.config.jitter_ns
        if op_ns <= 0:
            done()
            return
        if self.engine.tracer.enabled:
            done = self._traced(done, "sched_op", rec)
        if self._sched_core is not None:
            self._sched_core.acquire(op_ns, lambda s, f: done())
        else:
            self.engine.schedule(op_ns, done)

    def background_load(self, busy_ns: float) -> None:
        """Extra dispatcher work (e.g. preemption checks) on the scheduler
        core, contending with the dispatch path but with no completion
        callback of its own."""
        if busy_ns > 0 and self._sched_core is not None:
            self._sched_core.acquire(busy_ns, lambda s, f: None)

    def scheduler_utilization(self) -> float:
        if self._sched_core is None:
            return 0.0
        return self._sched_core.utilization()
