"""Hardware Request Queue (Section 4.3, Figure 13).

A circular buffer with head/tail pointers.  Entries hold a status, a
service id, and a pointer into the Request Context Memory (here: the
:class:`~repro.core.request.RequestRecord` itself).

Semantics implemented faithfully:

* ``enqueue`` appends at the tail; fails when the buffer is full.
* ``dequeue(service)`` atomically returns the READY entry *closest to the
  head* whose service matches (FCFS), marking it running.
* ``complete`` marks an entry finished and, when it is at the head,
  advances the head past consecutive finished entries.  Finished entries
  not at the head keep occupying their slot until the head passes them —
  exactly what a hardware circular buffer does.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.check.context import NULL_CHECK
from repro.core.request import RequestRecord, RequestStatus


class RequestQueue:
    """Circular buffer of request entries with FCFS dequeue."""

    def __init__(self, capacity: int = 64, name: str = "",
                 policy: Optional[object] = None, clock=None):
        from repro.sched.policies import FCFS_POLICY

        if capacity < 1:
            raise ValueError("RQ capacity must be >= 1")
        self.capacity = capacity
        self.name = name
        self.policy = policy or FCFS_POLICY
        self._slots: List[Optional[RequestRecord]] = [None] * capacity
        self._head = 0
        self._size = 0
        self.enqueued = 0
        self.rejected = 0
        self.peak_occupancy = 0
        self.soft_entries = 0      # NIC-buffered entries (no slot held)
        # FCFS index: min-heap of (enqueue sequence, record) with lazy
        # invalidation, so dequeue does not scan long blocked queues.
        self._ready_heap: List = []
        # Telemetry: ``clock`` (anything with ``.now``, normally the sim
        # engine) lets the queue stamp when entries become READY and
        # account total RQ residency; None keeps the queue time-free.
        self.clock = clock
        #: Sanitizer hook, picked up from the clock (the engine carries
        #: it) so a checked run validates every queue transition.
        self.check = getattr(clock, "check", NULL_CHECK)
        self.wait_ns_total = 0.0
        self.dequeues = 0
        # Fault epoch: bumped by ``purge`` (village failure wipes the RQ
        # and its Request Context Memory).  Entries stamped with an older
        # epoch are stale — late wakeups/completions for them are ignored.
        self.epoch = 0

    def set_clock(self, clock) -> None:
        """Attach a time source for RQ-wait accounting."""
        self.clock = clock
        self.check = getattr(clock, "check", NULL_CHECK)

    def _stamp_ready(self, rec: RequestRecord) -> None:
        if self.clock is not None:
            rec._ready_since_ns = self.clock.now

    def _account_dequeue(self, rec: RequestRecord) -> None:
        self.dequeues += 1
        if self.clock is not None:
            rec._rq_wait_ns = self.clock.now - getattr(
                rec, "_ready_since_ns", self.clock.now)
            self.wait_ns_total += rec._rq_wait_ns

    @property
    def occupancy(self) -> int:
        return self._size

    @property
    def is_full(self) -> bool:
        return self._size >= self.capacity

    def enqueue(self, rec: RequestRecord) -> bool:
        """Append at the tail; False (and count a rejection) when full."""
        if self.is_full:
            self.rejected += 1
            return False
        tail = (self._head + self._size) % self.capacity
        self._slots[tail] = rec
        self._size += 1
        self.enqueued += 1
        if self._size > self.peak_occupancy:
            self.peak_occupancy = self._size
        rec.status = RequestStatus.READY
        rec._rq_seq = self.enqueued
        rec._rq_soft = False
        rec._rq_epoch = self.epoch
        self._stamp_ready(rec)
        heapq.heappush(self._ready_heap,
                       (self.policy.key(rec), rec.req_id, rec))
        if self.check.enabled:
            self.check.rq_admit(self, rec)
        return True

    def soft_enqueue(self, rec: RequestRecord) -> None:
        """Admit an entry without occupying a circular-buffer slot.

        Models the NIC-side buffering of Section 4.3 for *internal*
        (nested-call) requests: a child RPC cannot be dropped, and letting
        it wait only in the NIC while every RQ slot is held by a blocked
        parent would deadlock the call tree.  Soft entries are scheduled
        exactly like slot entries but skip the head/tail bookkeeping.
        """
        self.enqueued += 1
        self.soft_entries += 1
        rec.status = RequestStatus.READY
        rec._rq_seq = self.enqueued
        rec._rq_soft = True
        rec._rq_epoch = self.epoch
        self._stamp_ready(rec)
        heapq.heappush(self._ready_heap,
                       (self.policy.key(rec), rec.req_id, rec))
        if self.check.enabled:
            self.check.rq_admit(self, rec, soft=True)

    def dequeue(self, service: Optional[str] = None) -> Optional[RequestRecord]:
        """Highest-priority READY entry matching ``service`` (None = any)."""
        if service is None:
            while self._ready_heap:
                __, __id, rec = self._ready_heap[0]
                if rec.status is not RequestStatus.READY:
                    heapq.heappop(self._ready_heap)   # stale entry
                    continue
                heapq.heappop(self._ready_heap)
                return self._dequeued(rec)
            return None
        # Service-filtered dequeue (co-located services): pick the
        # highest-priority matching READY entry from the index, which —
        # unlike a circular-buffer slot scan — also sees soft
        # (NIC-buffered) entries, so co-located child RPCs cannot
        # starve.  The heap entry stays behind for lazy invalidation.
        best = None
        for key, req_id, rec in self._ready_heap:
            if rec.status is not RequestStatus.READY \
                    or rec.service != service:
                continue
            if best is None or (key, req_id) < best[0]:
                best = ((key, req_id), rec)
        if best is None:
            return None
        return self._dequeued(best[1])

    def _dequeued(self, rec: RequestRecord) -> RequestRecord:
        rec.status = RequestStatus.RUNNING
        self._account_dequeue(rec)
        if self.check.enabled:
            self.check.rq_dequeue(self, rec)
        return rec

    def has_ready(self, service: Optional[str] = None) -> bool:
        """The per-core Work flag: is there anything to dequeue?"""
        if service is None:
            while self._ready_heap:
                if self._ready_heap[0][2].status is RequestStatus.READY:
                    return True
                heapq.heappop(self._ready_heap)
            return False
        # Same index walk as the filtered dequeue: soft entries count.
        return any(rec.status is RequestStatus.READY
                   and rec.service == service
                   for __, __id, rec in self._ready_heap)

    def mark_blocked(self, rec: RequestRecord) -> None:
        rec.status = RequestStatus.BLOCKED

    def mark_ready(self, rec: RequestRecord) -> None:
        if self.is_stale(rec):
            # The entry (and its context memory) was wiped by a purge; a
            # late wakeup must not plant a ghost in the new epoch's heap.
            return
        if rec.status is not RequestStatus.BLOCKED:
            raise RuntimeError(
                f"request {rec.req_id} not blocked ({rec.status})")
        rec.status = RequestStatus.READY
        self._stamp_ready(rec)
        # Re-index: FCFS keeps the original arrival position; SRPT re-keys
        # by the (now smaller) remaining work.
        heapq.heappush(self._ready_heap,
                       (self.policy.key(rec), rec.req_id, rec))
        if self.check.enabled:
            self.check.rq_wakeup(self, rec)

    def complete(self, rec: RequestRecord) -> None:
        """Mark finished; advance the head past finished entries."""
        rec.status = RequestStatus.FINISHED
        stale = self.is_stale(rec)
        if getattr(rec, "_rq_soft", False):
            # Epoch guard: a purge already reset ``soft_entries`` to 0,
            # so a late completion of a pre-purge soft entry must not
            # decrement it (the counter would go negative and poison
            # occupancy accounting for the rest of the run).
            if not stale:
                self.soft_entries -= 1
            if self.check.enabled:
                self.check.rq_complete(self, rec, stale=stale)
            return
        if not stale:
            while self._size > 0:
                head_rec = self._slots[self._head]
                if head_rec is None \
                        or head_rec.status is RequestStatus.FINISHED:
                    self._slots[self._head] = None
                    self._head = (self._head + 1) % self.capacity
                    self._size -= 1
                else:
                    break
        if self.check.enabled:
            self.check.rq_complete(self, rec, stale=stale)

    def is_stale(self, rec: RequestRecord) -> bool:
        """Was ``rec``'s entry wiped by a purge since it was enqueued?"""
        return getattr(rec, "_rq_epoch", self.epoch) != self.epoch

    def purge(self) -> int:
        """Village failure: drop every entry (slots *and* soft entries).

        Blocked soft entries hold no enumerable slot, so instead of
        chasing them the queue bumps its epoch; any later wakeup or
        completion for a pre-purge entry is recognised as stale and
        ignored.  Returns the number of entries dropped.
        """
        if self.check.enabled:
            self.check.rq_purge(self)       # counts the pre-wipe entries
        dropped = self._size + self.soft_entries
        self._slots = [None] * self.capacity
        self._head = 0
        self._size = 0
        self.soft_entries = 0
        self._ready_heap.clear()
        self.epoch += 1
        return dropped

    def entries(self) -> List[RequestRecord]:
        """Live entries from head to tail (diagnostics)."""
        out = []
        for offset in range(self._size):
            rec = self._slots[(self._head + offset) % self.capacity]
            if rec is not None:
                out.append(rec)
        return out
