"""Dynamically partitioned Request Queue (the Section 4.3 advanced design).

"A more advanced design of the RQ would involve dynamically partitioning
it into multiple RQs — each partition devoted to a different service...
The proportion of entries assigned to each service can be the same as
the proportion of cores assigned to each service...  This additional
hardware would eliminate contention of different-service cores for the
same RQ."  The paper describes but does not evaluate this design; it is
implemented here (with an ablation benchmark) as the natural extension.

The RQ_Map table maps a service id to its partition; ``Dequeue`` consults
the map first, exactly as the paper's augmented instruction would.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.core.request import RequestRecord, RequestStatus
from repro.core.request_queue import RequestQueue


class PartitionedRequestQueue:
    """An RQ split into per-service partitions via an RQ_Map table.

    Drop-in compatible with :class:`RequestQueue` for the village's usage:
    ``enqueue`` routes by the record's service; ``dequeue(service)`` only
    inspects that service's partition (no cross-service contention);
    ``dequeue(None)`` serves the globally oldest ready entry.
    """

    def __init__(self, capacity: int, shares: Dict[str, float],
                 name: str = "", policy: Optional[object] = None,
                 policies: Optional[Dict[str, object]] = None):
        if capacity < len(shares):
            raise ValueError("capacity smaller than the number of partitions")
        if not shares:
            raise ValueError("at least one service share required")
        total_share = sum(shares.values())
        if total_share <= 0:
            raise ValueError("shares must sum to a positive value")
        self.capacity = capacity
        self.name = name
        self._partitions: Dict[str, RequestQueue] = {}
        remaining = capacity
        items = sorted(shares.items())
        for i, (service, share) in enumerate(items):
            if i == len(items) - 1:
                part_capacity = remaining
            else:
                part_capacity = max(1, int(capacity * share / total_share))
            remaining -= part_capacity
            # ``policies`` overrides the shared policy per partition (each
            # service may order its own queue differently).
            part_policy = policy
            if policies is not None and service in policies:
                part_policy = policies[service]
            self._partitions[service] = RequestQueue(
                part_capacity, name=f"{name}.{service}", policy=part_policy)
        self.rejected = 0
        self._seq = 0          # global arrival order across partitions
        # When every partition ranks by the same non-FCFS policy, the
        # unpartitioned dequeue compares heap keys across partitions;
        # FCFS (or mixed policies) keeps global arrival order.
        policy_names = {q.policy.name for q in self._partitions.values()}
        self._uniform_policy = (policy_names.pop()
                                if len(policy_names) == 1 else None)

    def set_clock(self, clock) -> None:
        """Attach a time source to every partition (RQ-wait telemetry)."""
        for q in self._partitions.values():
            q.set_clock(clock)

    @property
    def wait_ns_total(self) -> float:
        return sum(q.wait_ns_total for q in self._partitions.values())

    # ------------------------------------------------------------ RQ_Map

    @property
    def rq_map(self) -> Dict[str, int]:
        """Service -> partition capacity (the hardware RQ_Map contents)."""
        return {s: q.capacity for s, q in self._partitions.items()}

    def partition(self, service: str) -> RequestQueue:
        try:
            return self._partitions[service]
        except KeyError:
            raise KeyError(f"service {service!r} not in RQ_Map "
                           f"({sorted(self._partitions)})") from None

    # -------------------------------------------------- RequestQueue API

    @property
    def occupancy(self) -> int:
        return sum(q.occupancy for q in self._partitions.values())

    @property
    def is_full(self) -> bool:
        return all(q.is_full for q in self._partitions.values())

    @property
    def soft_entries(self) -> int:
        return sum(q.soft_entries for q in self._partitions.values())

    def enqueue(self, rec: RequestRecord) -> bool:
        ok = self.partition(rec.service).enqueue(rec)
        if ok:
            rec._prq_seq = self._seq
            self._seq += 1
        else:
            self.rejected += 1
        return ok

    def soft_enqueue(self, rec: RequestRecord) -> None:
        """Admit an internal request via NIC buffering (no slot held)."""
        self.partition(rec.service).soft_enqueue(rec)
        rec._prq_seq = self._seq
        self._seq += 1

    def observe(self, service: str, duration_ns: float) -> None:
        """Feed a measured segment time to the partition's policy (SJF)."""
        fn = getattr(self.partition(service).policy, "observe", None)
        if fn is not None:
            fn(service, duration_ns)

    def dequeue(self, service: Optional[str] = None
                ) -> Optional[RequestRecord]:
        if service is not None:
            return self.partition(service).dequeue()
        if self._uniform_policy not in (None, "fcfs"):
            return self._dequeue_best_key()
        # Unpartitioned core: serve the globally oldest ready entry.
        best: Optional[RequestQueue] = None
        best_seq = None
        for q in self._partitions.values():
            # Peek via the heap, discarding stale (non-READY) entries.
            while q._ready_heap and \
                    q._ready_heap[0][2].status is not RequestStatus.READY:
                heapq.heappop(q._ready_heap)
            if q._ready_heap:
                seq = q._ready_heap[0][2]._prq_seq
                if best_seq is None or seq < best_seq:
                    best, best_seq = q, seq
        return best.dequeue() if best is not None else None

    def _dequeue_best_key(self) -> Optional[RequestRecord]:
        """Unpartitioned dequeue under a uniform non-FCFS policy: take
        the globally best (policy key, req_id) across partition heaps.
        The trailing per-partition sequence in each key is not globally
        meaningful, but the comparison stays deterministic (req_id is
        the final tie-break)."""
        best: Optional[RequestQueue] = None
        best_key = None
        for q in self._partitions.values():
            while q._ready_heap and \
                    q._ready_heap[0][2].status is not RequestStatus.READY:
                heapq.heappop(q._ready_heap)
            if q._ready_heap:
                key = q._ready_heap[0][:2]
                if best_key is None or key < best_key:
                    best, best_key = q, key
        return best.dequeue() if best is not None else None

    def has_ready(self, service: Optional[str] = None) -> bool:
        if service is not None:
            return self.partition(service).has_ready()
        return any(q.has_ready() for q in self._partitions.values())

    def mark_blocked(self, rec: RequestRecord) -> None:
        self.partition(rec.service).mark_blocked(rec)

    def mark_ready(self, rec: RequestRecord) -> None:
        self.partition(rec.service).mark_ready(rec)

    def complete(self, rec: RequestRecord) -> None:
        self.partition(rec.service).complete(rec)

    def is_stale(self, rec: RequestRecord) -> bool:
        return self.partition(rec.service).is_stale(rec)

    def purge(self) -> int:
        return sum(q.purge() for q in self._partitions.values())

    def entries(self) -> List[RequestRecord]:
        out: List[RequestRecord] = []
        for q in self._partitions.values():
            out.extend(q.entries())
        return out
