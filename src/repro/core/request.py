"""Runtime state of one service invocation."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional


class RequestStatus(enum.Enum):
    """RQ entry status field (Section 4.3)."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


_ids = itertools.count()


@dataclass
class RequestRecord:
    """One in-flight invocation of a service (an RQ entry + its context).

    The entry's Request Context Memory contents — input, destination of
    the results, saved process state — are represented by the record
    itself; ``on_complete`` delivers the response to the caller.
    """

    app_name: str
    service: str
    segments: List[float]                      # instructions per segment
    on_complete: Callable[["RequestRecord"], None]
    arrival_ns: float = 0.0
    status: RequestStatus = RequestStatus.READY
    seg_index: int = 0
    village: Optional[int] = None
    server: Optional[int] = None
    last_core: Optional[Any] = None            # for resume-warmth modelling
    has_run: bool = False                      # state must be restored?
    depth: int = 0                             # call-tree depth
    finish_ns: Optional[float] = None
    queue_wait_ns: float = 0.0
    rejected: bool = False
    failed: bool = False                       # lost to a fault (retries exhausted)
    req_id: int = field(default_factory=lambda: next(_ids))

    @property
    def n_segments(self) -> int:
        return len(self.segments)

    @property
    def current_segment_instructions(self) -> float:
        return self.segments[self.seg_index]

    @property
    def is_last_segment(self) -> bool:
        return self.seg_index == self.n_segments - 1

    def advance_segment(self) -> None:
        if self.is_last_segment:
            raise RuntimeError(f"request {self.req_id} has no more segments")
        self.seg_index += 1
