"""uManycore core machinery: request queues, context switching, villages.

This package implements the paper's primary contribution (Section 4):
hardware request queuing/scheduling (4.3), hardware context switching
(4.4), and the village execution model (4.1).  The full-system assembly
of villages, clusters, ICN and NICs lives in :mod:`repro.systems`.
"""

from repro.core.context_switch import (
    CS_PRESETS,
    HARDWARE_CS,
    LINUX_CS,
    SHENANGO_CS,
    SHINJUKU_CS,
    ZYGOS_CS,
    ContextSwitchConfig,
    SchedulerDomain,
)
from repro.core.request import RequestRecord, RequestStatus
from repro.core.request_queue import RequestQueue
from repro.core.rq_map import PartitionedRequestQueue
from repro.core.village import Village

__all__ = [
    "RequestRecord",
    "RequestStatus",
    "RequestQueue",
    "PartitionedRequestQueue",
    "Village",
    "ContextSwitchConfig",
    "SchedulerDomain",
    "HARDWARE_CS",
    "SHINJUKU_CS",
    "SHENANGO_CS",
    "ZYGOS_CS",
    "LINUX_CS",
    "CS_PRESETS",
]
